//! Bring your own trace: write, read back, and simulate a trace file.
//!
//! The library consumes any interleaved multiprocessor reference stream,
//! not just the synthetic generators. This example
//!
//! 1. writes a workload to the compact binary `DTR1` format,
//! 2. writes a small hand-crafted trace in the human-readable text format,
//! 3. reads both back and runs a protocol over them, with the coherence
//!    oracle enabled.
//!
//! Run with:
//!
//! ```text
//! cargo run -p dirsim --example custom_trace
//! ```

use std::io::BufReader;

use dirsim::prelude::*;
use dirsim_trace::io::{read_binary, read_text, write_binary, write_text};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Binary round-trip of a generated workload ---------------------
    let cfg = WorkloadConfig::builder().seed(7).build()?;
    let refs: Vec<MemRef> = Workload::new(cfg).take(50_000).collect();

    let path = std::env::temp_dir().join("dirsim_quickstart.dtr");
    let mut file = std::fs::File::create(&path)?;
    let written = write_binary(&mut file, refs.iter().copied())?;
    drop(file);
    println!(
        "wrote {written} references to {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    let reader = read_binary(BufReader::new(std::fs::File::open(&path)?));
    let back: Vec<MemRef> = reader.collect::<Result<_, _>>()?;
    assert_eq!(back, refs, "binary format round-trips exactly");

    let mut protocol = Scheme::Directory(DirSpec::dir0_b()).build(4);
    let sim = Simulator::new(SimConfig {
        check_oracle: true,
        ..SimConfig::default()
    });
    let result = sim.run(protocol.as_mut(), back)?;
    println!(
        "Dir0B over the file: {} refs, {} bus transactions, {:.4} cycles/ref (pipelined)\n",
        result.refs,
        result.transactions,
        result.cycles_per_ref(CostModel::pipelined())
    );

    // --- Text format: hand-written sharing scenario ---------------------
    // Two processes ping-pong a block: the classic migratory pattern.
    let text = "\
# cpu pid kind addr [flags: l=lock-test, s=os]
0 0 r 1000
0 0 w 1000
1 1 r 1000
1 1 w 1000
0 0 r 1000
0 0 w 1000
";
    let mut buf = Vec::new();
    let parsed: Vec<MemRef> = read_text(text.as_bytes()).collect::<Result<_, _>>()?;
    write_text(&mut buf, parsed.iter().copied())?;
    println!(
        "hand-written trace ({} refs):\n{}",
        parsed.len(),
        String::from_utf8_lossy(&buf)
    );

    let mut protocol = Scheme::Directory(DirSpec::dir0_b()).build(2);
    let result = sim.run(protocol.as_mut(), parsed)?;
    println!("event counts for the migratory ping-pong:");
    for (kind, count) in result.events.iter() {
        if count > 0 {
            println!("  {kind:<14} {count}");
        }
    }
    println!("\nEvery read miss found the block dirty in the other cache —");
    println!("each handoff costs a flush (write-back) plus an invalidation.");

    std::fs::remove_file(&path).ok();
    Ok(())
}
