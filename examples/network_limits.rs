//! Why directories, in one sweep: snoopy protocols on richer interconnects.
//!
//! The paper's argument (§1) is that snoopy schemes cannot scale past a
//! bus because they depend on every cache observing every transaction,
//! while directory schemes send directed messages that work over any
//! network. This example quantifies that: it simulates directory and
//! snoopy schemes once, then prices the recorded operations on a bus, a
//! crossbar, and a 2-D mesh at increasing node counts, reporting how many
//! processors each combination can sustain before the interconnect
//! saturates.
//!
//! Run with:
//!
//! ```text
//! cargo run -p dirsim --example network_limits --release
//! ```

use dirsim::paper::network_scaling;
use dirsim::prelude::*;
use dirsim_cost::Topology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schemes = vec![
        Scheme::Directory(DirSpec::dir1_b()),
        Scheme::Directory(DirSpec::dir_n_nb()),
        Scheme::Wti,
        Scheme::Dragon,
    ];

    println!("saturation bound in processors (higher is better):\n");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "nodes", "topology", "Dir1B", "Dragon", "WTI"
    );
    for nodes in [4u16, 16, 64, 256] {
        let rows = network_scaling(nodes, 100_000, schemes.clone())?;
        for topology in Topology::ALL {
            let get = |name: &str| {
                rows.iter()
                    .find(|r| r.scheme == name && r.topology == topology)
                    .map(|r| r.saturation_processors)
                    .unwrap_or(f64::NAN)
            };
            println!(
                "{:>8} {:>10} {:>10.1} {:>10.1} {:>10.1}",
                nodes,
                topology.to_string(),
                get("Dir1B"),
                get("Dragon"),
                get("WTI"),
            );
        }
        println!();
    }

    println!(
        "On the bus every scheme hits the same wall (the paper's ~15\n\
         effective processors). Moving to a crossbar or mesh multiplies the\n\
         directory schemes' headroom, while the snoopy protocols — whose\n\
         every transaction must be flooded to all snoopers — barely improve.\n\
         That asymmetry is the paper's thesis: directories are what make\n\
         large-scale cache-coherent shared memory possible."
    );
    Ok(())
}
