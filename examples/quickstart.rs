//! Quickstart: compare directory and snoopy coherence schemes on a
//! synthetic multiprocessor workload.
//!
//! Run with:
//!
//! ```text
//! cargo run -p dirsim --example quickstart
//! ```

use dirsim::prelude::*;
use dirsim::report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a workload: 4 processors, default mix (about half
    //    instruction fetches, mostly-private data, some lock contention).
    let workload = WorkloadConfig::builder()
        .cpus(4)
        .processes(4)
        .shared_frac(0.03)
        .seed(42)
        .build()?;

    // 2. Pick the schemes to evaluate: the paper's four headline protocols
    //    (Dir1NB, WTI, Dir0B, Dragon) plus the full-map directory.
    let mut schemes = Scheme::paper_lineup();
    schemes.push(Scheme::Directory(DirSpec::dir_n_nb()));

    // 3. Simulate. The engine counts Table 4 events and bus operations once
    //    per scheme; costs are applied afterwards.
    let results = Experiment::new()
        .workload(NamedWorkload::new("demo", workload))
        .schemes(schemes)
        .refs_per_trace(300_000)
        .check_oracle(true) // audit every data movement for coherence
        .run()?;

    // 4. Report: bus cycles per memory reference under both bus models.
    println!("{}", report::render_table4(&results));
    println!("{}", report::render_figure2(&results));

    let pipelined = CostModel::pipelined();
    let dir0b = &results[Scheme::dir0_b()];
    let dragon = &results[Scheme::Dragon];
    let ratio =
        dir0b.combined.cycles_per_ref(pipelined) / dragon.combined.cycles_per_ref(pipelined);
    println!(
        "Dir0B uses {ratio:.2}x the bus cycles of Dragon (paper: ~1.5x) — \
         directory schemes are competitive with the best snoopy scheme."
    );
    Ok(())
}
