//! The scalability story (§6): how many directory pointers do you need?
//!
//! The original authors only had 4-CPU traces and wrote that "an accurate
//! evaluation of the tradeoffs will require traces from a much larger
//! number of processors". This example runs that study on synthetic
//! workloads at 4, 16 and 64 processors, sweeping the `Dir_i{B,NB}` design
//! space plus the coarse-vector code, and prints per-scheme cost, the
//! coherence miss rate (NB schemes trade misses for broadcasts), broadcast
//! traffic, and directory storage.
//!
//! Run with:
//!
//! ```text
//! cargo run -p dirsim --example scaling_pointers --release
//! ```

use dirsim::paper::{pointer_sweep, scaled_workload};
use dirsim::prelude::*;
use dirsim::report;
use dirsim_protocol::CoarseVectorProtocol;

fn directory_storage_bits(scheme: &str, caches: u32) -> String {
    // Bits of sharer-tracking state per directory entry.
    let log_n = if caches <= 1 {
        1
    } else {
        32 - (caches - 1).leading_zeros()
    };
    match scheme {
        "Dir0B" => "2".to_string(), // the Archibald–Baer state bits
        "DirnNB" => format!("{caches}"),
        "CoarseVector" => format!("{}", CoarseVectorProtocol::new(caches).storage_bits()),
        s => {
            // Dir{i}B / Dir{i}NB: i pointers of log2(n) bits (+1 bcast bit).
            let i: u32 = s
                .trim_start_matches("Dir")
                .trim_end_matches("NB")
                .trim_end_matches('B')
                .parse()
                .unwrap_or(0);
            let bcast = if s.ends_with("NB") { 0 } else { 1 };
            format!("{}", i * log_n + bcast)
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let refs = 200_000;
    for processors in [4u16, 16, 64] {
        let rows = pointer_sweep(processors, refs, &[1, 2, 4])?;
        println!("{}", report::render_pointer_sweep(processors, &rows));
        println!("directory storage per block entry:");
        for row in &rows {
            println!(
                "  {:>12}: {:>4} bits",
                row.scheme,
                directory_storage_bits(&row.scheme, u32::from(processors))
            );
        }
        println!();

        // The paper's motivating statistic, re-measured at this scale: how
        // often does a write to a previously-clean block have at most one
        // remote copy to invalidate?
        let results = Experiment::new()
            .workload(NamedWorkload::new(
                format!("scaled-{processors}p"),
                scaled_workload(processors, 0xfa11_0000 + u64::from(processors)),
            ))
            .scheme(Scheme::Directory(DirSpec::dir0_b()))
            .refs_per_trace(refs)
            .run()?;
        let hist = &results.per_scheme[0].combined.fanout;
        println!(
            "at {processors} processors, {:.1}% of clean-block writes invalidate ≤1 cache \
             (mean fan-out {:.2})\n",
            hist.fraction_at_most(1) * 100.0,
            hist.mean()
        );
    }
    println!(
        "Conclusion (matches §6): a small number of pointers plus a broadcast\n\
         bit — or a coarse vector — captures almost all invalidations with a\n\
         directory that grows O(log n) instead of O(n) bits per block."
    );
    Ok(())
}
