//! Scenarios: drive the simulator from the scenario language instead of
//! hand-built `WorkloadConfig`s.
//!
//! The bundled registry ships the paper's three trace stand-ins plus a
//! family of stress workloads (lock storms, false sharing, Zipf-skewed
//! pools, open-system arrivals, phased mixes). Any of them — or a `.scn`
//! spec file of your own — resolves to the same `Scenario` type.
//!
//! Run with:
//!
//! ```text
//! cargo run -p dirsim --example scenarios
//! ```

use dirsim::prelude::*;
use dirsim::report;
use dirsim_trace::scenario::registry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The bundled registry: every scenario the crate ships, already
    //    parsed and validated. `simulate --list-scenarios` prints the same.
    println!("bundled scenarios:");
    for s in registry() {
        println!("  {:<18} {}", s.name(), s.description());
    }
    println!();

    // 2. Scenarios are just specs: the same language accepts inline text
    //    (or a file via `Scenario::from_file` / `Scenario::resolve`).
    //    Everything not named falls back to the calibrated defaults.
    let custom = Scenario::parse(
        r#"
        scenario "hot-lock-demo" {
            description = "one fiercely contended lock on eight cpus"
            cpus = 8
            processes = 8
            lock { locks = 1, acquire_prob = 0.01, hold = 300, write_frac = 0.5 }
        }
        "#,
    )?;

    // 3. Mix bundled and custom scenarios in one experiment matrix. The
    //    `NamedWorkload` conversion keeps the scenario's registry name.
    let results = Experiment::new()
        .workload(NamedWorkload::from(Scenario::named("pops")?))
        .workload(NamedWorkload::from(Scenario::named("lock-storm")?))
        .workload(NamedWorkload::from(&custom))
        .schemes(Scheme::paper_lineup())
        .refs_per_trace(150_000)
        .run()?;

    println!("{}", report::render_figure2(&results));

    // 4. A scenario also renders back to spec text (`to_spec`), so a tuned
    //    configuration can be committed as a reviewable .scn file.
    println!("hot-lock-demo as a spec:\n{}", custom.to_spec());
    Ok(())
}
