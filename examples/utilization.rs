//! Absolute performance: cycle-level timing simulation.
//!
//! The paper's bus-cycles-per-reference metric abstracts time away and the
//! authors note that absolute performance "cannot be determined from the
//! bus cycle metric alone" (§5.1). This example runs the timing-level
//! simulator — processors stall behind a FCFS bus whose transactions cost
//! the §4.3 cycle counts plus one cycle of fixed overhead — and prints the
//! utilisation/speedup curves that the paper could only bound analytically
//! ("a maximum performance of 15 effective processors").
//!
//! Run with:
//!
//! ```text
//! cargo run -p dirsim --example utilization --release
//! ```

use dirsim::paper::utilization_study;
use dirsim::prelude::*;
use dirsim::report;

fn main() {
    let rows = utilization_study(80_000, &[1, 2, 4, 8, 12, 16], Scheme::paper_lineup());
    println!("{}", report::render_utilization(&rows));

    // The knee of each curve is where the bus saturates; compare with the
    // §5 analytic bound for the same scheme.
    let system = dirsim::analysis::SystemModel::PAPER;
    println!("analytic §5 bandwidth bounds for comparison:");
    for scheme in Scheme::paper_lineup() {
        let peak = rows
            .iter()
            .filter(|r| r.scheme == scheme.name())
            .map(|r| r.effective_processors)
            .fold(0.0f64, f64::max);
        println!(
            "  {:>8}: timing-simulated peak {:.1} effective processors",
            scheme.name(),
            peak
        );
        let _ = system; // the analytic bound needs measured cycles/ref; see sec5.sys
    }
    println!(
        "\nDragon and Dir0B sustain real speedup well past the point where\n\
         Dir1NB's spin-lock bouncing has already consumed the entire bus —\n\
         and every curve flattens in the low teens, the paper's conclusion\n\
         that a single bus tops out around fifteen effective processors."
    );
}
