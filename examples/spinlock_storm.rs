//! The §5.2 pathology: spin locks destroy single-copy directories.
//!
//! `Dir1NB` allows each block in at most one cache, so when two processes
//! spin on the same test-and-test-and-set lock the lock word bounces
//! between their caches on *every* test read. This example builds
//! progressively more contended workloads, measures the damage, and then
//! reruns with the lock-test reads filtered out (the paper's ablation:
//! Dir1NB improved from 0.32 to 0.12 bus cycles per reference while Dir0B
//! was unchanged).
//!
//! Run with:
//!
//! ```text
//! cargo run -p dirsim --example spinlock_storm --release
//! ```

use dirsim::prelude::*;
use dirsim_trace::synth::LockConfig;

fn storm(acquire_prob: f64, cs: u32, seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        lock: LockConfig {
            locks: 1,
            acquire_prob,
            critical_section_len: cs,
            critical_write_frac: 0.4,
        },
        seed,
        ..WorkloadConfig::default()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let refs = 200_000;
    let model = CostModel::pipelined();
    let schemes = [
        Scheme::Directory(DirSpec::dir1_nb()),
        Scheme::Directory(DirSpec::dir0_b()),
        Scheme::Dragon,
    ];

    println!("contention sweep (pipelined bus cycles per reference):\n");
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10}",
        "contention", "lock/reads", "Dir1NB", "Dir0B", "Dragon"
    );
    for (label, p, cs) in [
        ("none", 0.0, 50u32),
        ("light", 0.002, 100),
        ("moderate", 0.005, 200),
        ("heavy", 0.015, 300),
    ] {
        let cfg = storm(p, cs, 0xabc0 + cs as u64);
        let stats = TraceStats::from_refs(Workload::new(cfg.clone()).take(refs));
        let results = Experiment::new()
            .workload(NamedWorkload::new(label, cfg))
            .schemes(schemes)
            .refs_per_trace(refs)
            .run()?;
        let cost = |scheme: Scheme| results[scheme].combined.cycles_per_ref(model);
        println!(
            "{label:>12} {:>10.3} {:>10.4} {:>10.4} {:>10.4}",
            stats.lock_read_fraction(),
            cost(Scheme::dir1_nb()),
            cost(Scheme::dir0_b()),
            cost(Scheme::Dragon),
        );
    }

    // The §5.2 ablation on the heavy workload: exclude lock-test reads.
    println!("\nexcluding spin-lock test reads (the paper's §5.2 experiment):\n");
    let cfg = storm(0.015, 300, 0xabc0 + 300);
    for exclude in [false, true] {
        let results = Experiment::new()
            .workload(NamedWorkload::new("heavy", cfg.clone()))
            .schemes(schemes)
            .refs_per_trace(refs)
            .exclude_lock_tests(exclude)
            .run()?;
        let cost = |scheme: Scheme| results[scheme].combined.cycles_per_ref(model);
        println!(
            "  lock tests {}: Dir1NB {:.4}  Dir0B {:.4}",
            if exclude { "excluded" } else { "included" },
            cost(Scheme::dir1_nb()),
            cost(Scheme::dir0_b()),
        );
    }
    println!(
        "\nDir1NB collapses under lock contention and recovers when spins are\n\
         removed; Dir0B barely notices (spinners all hold clean copies).\n\
         Software coherence schemes that flush critical sections behave like\n\
         Dir1NB — they must special-case locks (§5.2)."
    );
    Ok(())
}
