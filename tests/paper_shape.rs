//! Shape tests against the paper's published results.
//!
//! Absolute numbers cannot match (the substrate is a calibrated synthetic
//! workload, not the authors' ATUM traces — see DESIGN.md §2), but the
//! qualitative results the paper's conclusions rest on must hold: who wins,
//! by roughly what factor, and where the crossovers fall. EXPERIMENTS.md
//! records the quantitative paper-vs-measured comparison.

use dirsim::prelude::*;
use dirsim_protocol::Scheme;

const REFS: usize = 120_000;

fn pipelined(results: &ExperimentResults, scheme: Scheme) -> f64 {
    results[scheme]
        .combined
        .cycles_per_ref(CostModel::pipelined())
}

fn non_pipelined(results: &ExperimentResults, scheme: Scheme) -> f64 {
    results[scheme]
        .combined
        .cycles_per_ref(CostModel::non_pipelined())
}

#[test]
fn figure2_scheme_ordering_holds() {
    // Paper Figure 2: Dir1NB > WTI >> Dir0B > Dragon on both bus models.
    let results = dirsim::paper::headline_experiment(REFS).run().unwrap();
    for cost in [pipelined, non_pipelined] {
        let dir1nb = cost(&results, Scheme::dir1_nb());
        let wti = cost(&results, Scheme::Wti);
        let dir0b = cost(&results, Scheme::dir0_b());
        let dragon = cost(&results, Scheme::Dragon);
        assert!(
            dir1nb > wti && wti > dir0b && dir0b > dragon,
            "ordering violated: Dir1NB={dir1nb:.4} WTI={wti:.4} Dir0B={dir0b:.4} Dragon={dragon:.4}"
        );
    }
}

#[test]
fn dir0b_approaches_dragon() {
    // Paper: Dir0B uses "close to 50% more bus cycles than Dragon"
    // (0.0491 vs 0.0336 ≈ 1.46x). Accept 1x–2.5x.
    let results = dirsim::paper::headline_experiment(REFS).run().unwrap();
    let ratio = pipelined(&results, Scheme::dir0_b()) / pipelined(&results, Scheme::Dragon);
    assert!(
        (1.0..2.5).contains(&ratio),
        "Dir0B/Dragon = {ratio:.2}, expected ~1.5"
    );
}

#[test]
fn wti_is_several_times_worse_than_dir0b() {
    // Paper: 0.1466 vs 0.0491 ≈ 3.0x.
    let results = dirsim::paper::headline_experiment(REFS).run().unwrap();
    let ratio = pipelined(&results, Scheme::Wti) / pipelined(&results, Scheme::dir0_b());
    assert!(ratio > 1.8, "WTI/Dir0B = {ratio:.2}, expected ~3");
}

#[test]
fn dir1nb_is_many_times_worse_than_dir0b() {
    // Paper: "over a factor of six" (0.3210 vs 0.0491 ≈ 6.5x).
    let results = dirsim::paper::headline_experiment(REFS).run().unwrap();
    let ratio = pipelined(&results, Scheme::dir1_nb()) / pipelined(&results, Scheme::dir0_b());
    assert!(ratio > 4.0, "Dir1NB/Dir0B = {ratio:.2}, expected ~6.5");
}

#[test]
fn figure1_most_clean_writes_invalidate_at_most_one_cache() {
    // Paper Figure 1: "over 85% of the writes to previously-clean blocks
    // cause invalidations in no more than one cache."
    let results = dirsim::paper::headline_experiment(REFS).run().unwrap();
    let hist = &results[Scheme::dir0_b()].combined.fanout;
    let frac = hist.fraction_at_most(1);
    assert!(frac > 0.78, "≤1 fraction = {frac:.3}, paper reports >0.85");
    assert!(hist.total() > 100, "enough clean writes to be meaningful");
}

#[test]
fn table4_event_shape() {
    let results = dirsim::paper::headline_experiment(REFS).run().unwrap();
    let dir1nb = &results[Scheme::dir1_nb()].combined.events;
    let dir0b = &results[Scheme::dir0_b()].combined.events;
    let dragon = &results[Scheme::Dragon].combined.events;
    // "The most obvious feature ... is the high rate of data read misses"
    // for Dir1NB — read-sharing misses dominate.
    assert!(
        dir1nb.read_misses() > 5 * dir0b.read_misses(),
        "Dir1NB rm {} vs Dir0B rm {}",
        dir1nb.read_misses(),
        dir0b.read_misses()
    );
    // Dragon's miss rate is the native rate: below Dir0B's.
    assert!(dragon.coherence_miss_rate() < dir0b.coherence_miss_rate());
    // "Most data writes occur on blocks first brought in via read misses":
    // write misses are far rarer than write hits.
    assert!(dir1nb.write_misses() * 5 < dir1nb.write_hits());
    // Consistency-related misses are a meaningful share of the total
    // (paper: ~36% of the Dir0B miss rate).
    let coherence = dir0b.coherence_miss_rate();
    let total = dir0b.data_miss_rate();
    let share = coherence / total;
    assert!(
        (0.15..0.95).contains(&share),
        "coherence share of misses = {share:.2}, paper ~0.36"
    );
}

#[test]
fn table5_breakdown_shape() {
    use dirsim_cost::CostCategory;
    let results = dirsim::paper::headline_experiment(REFS).run().unwrap();
    let model = CostModel::pipelined();
    // WTI: "most of the bus cycles ... are due to the write-through policy".
    let wti = results[Scheme::Wti].combined.breakdown(model);
    assert!(wti[CostCategory::WtOrWup] > 0.25 * wti.cycles_per_ref());
    // Dir0B: unoverlapped directory traffic is a small fraction —
    // "diminishes previous concerns that the directory could be a major
    // performance bottleneck".
    let dir0b = results[Scheme::dir0_b()].combined.breakdown(model);
    assert!(
        dir0b[CostCategory::DirAccess] < 0.25 * dir0b.cycles_per_ref(),
        "dir access share = {:.3}",
        dir0b[CostCategory::DirAccess] / dir0b.cycles_per_ref()
    );
    // ... and the invalidation share is low, making sequential
    // invalidation viable (§6).
    assert!(dir0b[CostCategory::Invalidate] < 0.30 * dir0b.cycles_per_ref());
    // Dir1NB: dominated by memory accesses from bouncing blocks.
    let dir1nb = results[Scheme::dir1_nb()].combined.breakdown(model);
    assert!(dir1nb[CostCategory::MemAccess] > 0.4 * dir1nb.cycles_per_ref());
}

#[test]
fn figure5_transaction_cost_shape() {
    // Dragon and WTI move a word per transaction (cheap); Dir1NB moves
    // whole blocks (expensive). Dragon's average cost per transaction is
    // lower than Dir0B's, so fixed overheads hurt it more (§5.1).
    let results = dirsim::paper::headline_experiment(REFS).run().unwrap();
    let model = CostModel::pipelined();
    let per_txn = |scheme: Scheme| {
        results[scheme]
            .combined
            .breakdown(model)
            .cycles_per_transaction()
    };
    assert!(per_txn(Scheme::Dragon) < per_txn(Scheme::dir0_b()));
    assert!(per_txn(Scheme::Wti) < per_txn(Scheme::dir0_b()));
    assert!(per_txn(Scheme::dir1_nb()) > per_txn(Scheme::dir0_b()));
}

#[test]
fn section51_fixed_overhead_narrows_the_gap() {
    // Paper: "with q = 1, Dir0B needs only 12% more bus cycles than
    // Dragon, as compared with 46%".
    let results = dirsim::paper::headline_experiment(REFS).run().unwrap();
    let model = CostModel::pipelined();
    let dir0b = results[Scheme::dir0_b()].combined.breakdown(model);
    let dragon = results[Scheme::Dragon].combined.breakdown(model);
    let gap_at =
        |q: f64| dir0b.cycles_per_ref_with_overhead(q) / dragon.cycles_per_ref_with_overhead(q);
    assert!(
        gap_at(1.0) < gap_at(0.0),
        "fixed overhead must narrow the Dir0B-Dragon gap: q0={:.3} q1={:.3}",
        gap_at(0.0),
        gap_at(1.0)
    );
    assert!(gap_at(4.0) < gap_at(1.0));
}

#[test]
fn section52_spin_locks_cripple_dir1nb_only() {
    // Paper: Dir1NB improves from 0.32 to 0.12 (62%) when lock tests are
    // excluded; Dir0B is unchanged.
    let impacts = dirsim::paper::lock_impact(
        REFS,
        vec![
            Scheme::Directory(DirSpec::dir1_nb()),
            Scheme::Directory(DirSpec::dir0_b()),
            Scheme::Dragon,
        ],
    )
    .unwrap();
    let by_name = |n: &str| impacts.iter().find(|i| i.scheme == n).unwrap();
    assert!(
        by_name("Dir1NB").improvement() > 0.35,
        "Dir1NB improvement {:.2}, paper 0.62",
        by_name("Dir1NB").improvement()
    );
    assert!(by_name("Dir0B").improvement().abs() < 0.2);
    assert!(by_name("Dragon").improvement().abs() < 0.2);
}

#[test]
fn section6_sequential_invalidation_is_nearly_free() {
    // Paper: DirnNB 0.0499 vs Dir0B 0.0491 — under 2% apart. Allow 10%.
    let results = dirsim::paper::extended_experiment(REFS).run().unwrap();
    let dir0b = pipelined(&results, Scheme::dir0_b());
    let dirn = pipelined(&results, Scheme::dir_n_nb());
    assert!(
        dirn >= dir0b * 0.99,
        "sequential can't be cheaper than broadcast"
    );
    assert!(
        dirn < dir0b * 1.10,
        "DirnNB {dirn:.4} should be within 10% of Dir0B {dir0b:.4}"
    );
}

#[test]
fn section6_dir1b_broadcast_slope_is_tiny() {
    // Paper: Dir1B ≈ 0.0485 + 0.0006·b — the broadcast term is marginal
    // because almost all invalidations are single and directed.
    let results = dirsim::paper::extended_experiment(REFS).run().unwrap();
    let dir1b = &results[Scheme::dir1_b()].combined;
    let points = dirsim::paper::broadcast_sensitivity(dir1b, &[1, 16]);
    let slope = (points[1].1 - points[0].1) / 15.0;
    let base = points[0].1;
    assert!(slope >= 0.0);
    assert!(
        slope < 0.05 * base,
        "broadcast slope {slope:.5} should be a tiny fraction of base {base:.4}"
    );
    // And Dir1B at b=1 is close to Dir0B.
    let dir0b = pipelined(&results, Scheme::dir0_b());
    assert!((base - dir0b).abs() < 0.15 * dir0b);
}

#[test]
fn section6_berkeley_sits_between_dir0b_and_dragon() {
    let results = dirsim::paper::extended_experiment(REFS).run().unwrap();
    let dragon = pipelined(&results, Scheme::Dragon);
    let dir0b = pipelined(&results, Scheme::dir0_b());
    let berkeley = pipelined(&results, Scheme::Berkeley);
    assert!(
        dragon < berkeley && berkeley <= dir0b,
        "Dragon {dragon:.4} < Berkeley {berkeley:.4} <= Dir0B {dir0b:.4}"
    );
}

#[test]
fn figure3_pero_is_much_cheaper_than_pops_and_thor() {
    // Paper: "the numbers for POPS and THOR are similar, while those for
    // PERO are much smaller" (less sharing).
    let results = dirsim::paper::headline_experiment(REFS).run().unwrap();
    let model = CostModel::pipelined();
    for s in &results.per_scheme {
        let by_trace: std::collections::HashMap<&str, f64> = s
            .per_trace
            .iter()
            .map(|(n, r)| (n.as_str(), r.cycles_per_ref(model)))
            .collect();
        if s.scheme.name() == "WTI" {
            // WTI is dominated by write-throughs, which don't depend on
            // sharing; PERO is only mildly cheaper.
            assert!(by_trace["PERO"] < 1.1 * by_trace["POPS"], "{}", s.scheme);
            continue;
        }
        assert!(
            by_trace["PERO"] < 0.6 * by_trace["POPS"],
            "{}: PERO {:.4} !<< POPS {:.4}",
            s.scheme,
            by_trace["PERO"],
            by_trace["POPS"]
        );
        assert!(by_trace["PERO"] < 0.6 * by_trace["THOR"], "{}", s.scheme);
    }
}

#[test]
fn relative_performance_is_bus_model_insensitive() {
    // Paper §5: "the relative performance of the four schemes does not
    // depend strongly on the sophistication of the bus."
    let results = dirsim::paper::headline_experiment(REFS).run().unwrap();
    let order = |cost: fn(&ExperimentResults, Scheme) -> f64| {
        let mut schemes = Scheme::paper_lineup();
        schemes.sort_by(|&a, &b| {
            cost(&results, a)
                .partial_cmp(&cost(&results, b))
                .expect("finite costs")
        });
        schemes
    };
    assert_eq!(order(pipelined), order(non_pipelined));
}

#[test]
fn timing_simulation_tops_out_in_the_teens() {
    // The paper's closing §5 estimate: a single bus yields "a maximum
    // performance of 15 effective processors" for the best scheme. The
    // cycle-level simulator must agree in order of magnitude: at 16
    // processors no scheme sustains anywhere near linear speedup, and the
    // best (Dragon) still leads the worst (Dir1NB).
    let rows = dirsim::paper::utilization_study(40_000, &[16], Scheme::paper_lineup());
    let get = |name: &str| {
        rows.iter()
            .find(|r| r.scheme == name)
            .map(|r| r.effective_processors)
            .unwrap()
    };
    for s in ["Dir1NB", "WTI", "Dir0B", "Dragon"] {
        assert!(
            get(s) < 16.0 * 0.85,
            "{s}: {} effective processors at n=16 — the bus must bind",
            get(s)
        );
    }
    assert!(get("Dragon") > get("Dir1NB"));
    assert!(get("Dir0B") > get("Dir1NB"));
}

#[test]
fn section6_pointer_sweep_shape_at_scale() {
    // More pointers monotonically (weakly) reduce broadcast traffic, and
    // DirnNB eliminates it; NB schemes trade a higher miss rate instead.
    let rows = dirsim::paper::pointer_sweep(16, 60_000, &[1, 2, 4]).unwrap();
    let get = |name: &str| rows.iter().find(|r| r.scheme == name).unwrap();
    assert!(get("Dir1B").broadcasts_per_kiloref >= get("Dir2B").broadcasts_per_kiloref);
    assert!(get("Dir2B").broadcasts_per_kiloref >= get("Dir4B").broadcasts_per_kiloref);
    assert_eq!(get("DirnNB").broadcasts_per_kiloref, 0.0);
    assert_eq!(get("Dir1NB").broadcasts_per_kiloref, 0.0);
    // The single-copy scheme pays in misses relative to the full map.
    assert!(get("Dir1NB").miss_rate > get("DirnNB").miss_rate);
    // Limited NB misses decrease with more pointers.
    assert!(get("Dir1NB").miss_rate >= get("Dir2NB").miss_rate);
    assert!(get("Dir2NB").miss_rate >= get("Dir4NB").miss_rate);
}
