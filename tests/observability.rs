//! Observability contract: metrics must describe the run faithfully and
//! must never change it.
//!
//! Three guarantees matter enough to pin down across the full 14-scheme
//! gauntlet:
//!
//! 1. **Zero perturbation** — attaching a recorder (or leaving the default
//!    no-op one) yields bit-identical [`ExperimentResults`] on every
//!    execution path.
//! 2. **Faithful totals** — the exported counters agree exactly with the
//!    simulation's own results (`engine_refs`, per-scheme refs /
//!    transactions / bus-op counts).
//! 3. **Lossless export** — writing the registry as JSON lines and parsing
//!    it back reproduces the manifest and every series exactly.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use dirsim::obs::{
    parse_metrics, write_jsonl, MetricsRegistry, ProgressMeter, Recorder, RunManifest,
};
use dirsim::prelude::*;
use dirsim::{ExecutionMode, Experiment, ExperimentResults};
use dirsim_protocol::DirSpec;

const REFS: usize = 6_000;

/// The 14-scheme model-checker gauntlet (mirrors `tests/equivalence.rs`).
fn gauntlet() -> Vec<Scheme> {
    vec![
        Scheme::dir_n_nb(),
        Scheme::dir0_b(),
        Scheme::dir1_b(),
        Scheme::dir_i_b(2),
        Scheme::dir1_nb(),
        Scheme::Directory(DirSpec::dir_i_nb(2).expect("two pointers is a valid NB spec")),
        Scheme::CoarseVector,
        Scheme::Tang,
        Scheme::YenFu,
        Scheme::DirUpdate,
        Scheme::Wti,
        Scheme::Illinois,
        Scheme::Dragon,
        Scheme::Berkeley,
    ]
}

fn experiment() -> Experiment {
    Experiment::new()
        .workloads(dirsim::paper::paper_workloads())
        .schemes(gauntlet())
        .refs_per_trace(REFS)
}

fn assert_identical(a: &ExperimentResults, b: &ExperimentResults, what: &str) {
    assert_eq!(a.trace_stats, b.trace_stats, "{what}: trace statistics");
    assert_eq!(
        a.per_scheme.len(),
        b.per_scheme.len(),
        "{what}: scheme count"
    );
    for (x, y) in a.per_scheme.iter().zip(&b.per_scheme) {
        assert_eq!(x.scheme, y.scheme, "{what}: scheme order");
        assert_eq!(x.per_trace, y.per_trace, "{what}: {} per-trace", x.scheme);
        assert_eq!(x.combined, y.combined, "{what}: {} combined", x.scheme);
    }
}

#[test]
fn recorder_never_perturbs_results() {
    // Baseline: the default no-op recorder.
    let baseline = experiment().run_with(ExecutionMode::SinglePass).unwrap();
    for (what, mode) in [
        ("single-pass", ExecutionMode::SinglePass),
        ("serial", ExecutionMode::Serial),
        ("sharded", ExecutionMode::Sharded { workers: 3 }),
        ("pipelined", ExecutionMode::Pipelined { workers: 3 }),
    ] {
        let registry = Arc::new(MetricsRegistry::new());
        let instrumented = experiment()
            .recorder(Arc::clone(&registry) as Arc<dyn Recorder>)
            .run_with(mode)
            .unwrap();
        assert_identical(&baseline, &instrumented, what);
        assert!(
            !registry.is_empty(),
            "{what}: an attached registry must actually collect metrics"
        );
    }
}

#[test]
fn recorded_counters_match_simulation_results() {
    let registry = Arc::new(MetricsRegistry::new());
    let results = experiment()
        .recorder(Arc::clone(&registry) as Arc<dyn Recorder>)
        .run_with(ExecutionMode::SinglePass)
        .unwrap();

    // The engine decodes each workload's stream exactly once, which every
    // scheme then consumes in lockstep.
    let engine_refs = registry
        .counter_value("engine_refs", &[])
        .expect("engine_refs must be recorded");
    for s in &results.per_scheme {
        assert_eq!(engine_refs, s.combined.refs, "{}", s.scheme);
        let name = s.scheme.name();
        let labels = [("scheme", name.as_str())];
        assert_eq!(
            registry.counter_value("scheme_refs", &labels),
            Some(s.combined.refs),
            "{name}: scheme_refs"
        );
        assert_eq!(
            registry.counter_value("scheme_transactions", &labels),
            Some(s.combined.transactions),
            "{name}: scheme_transactions"
        );
        let recorded_ops: u64 = s
            .combined
            .ops
            .iter()
            .filter(|&(_, count)| count > 0)
            .map(|(op, _)| {
                registry
                    .counter_value(
                        "scheme_ops",
                        &[("op", op.name()), ("scheme", name.as_str())],
                    )
                    .unwrap_or_else(|| panic!("{name}: missing scheme_ops for {}", op.name()))
            })
            .sum();
        assert_eq!(recorded_ops, s.combined.ops.total(), "{name}: scheme_ops");
    }

    // Phase spans fire at least once per chunk on the single-pass path.
    for phase in ["decode", "step"] {
        let h = registry
            .histogram_summary("phase_seconds", &[("phase", phase)])
            .unwrap_or_else(|| panic!("missing phase_seconds for {phase}"));
        assert!(h.count > 0, "{phase}: no span samples");
        assert!(h.sum >= 0.0 && h.min >= 0.0, "{phase}: negative timing");
    }
}

#[test]
fn sharded_run_records_per_shard_series() {
    let registry = Arc::new(MetricsRegistry::new());
    let results = experiment()
        .recorder(Arc::clone(&registry) as Arc<dyn Recorder>)
        .run_with(ExecutionMode::Sharded { workers: 3 })
        .unwrap();

    // Shards partition the reference stream: per-shard refs sum to the
    // refs every scheme saw.
    let total: u64 = (0..3)
        .map(|shard| {
            registry
                .counter_value("shard_refs", &[("shard", &shard.to_string())])
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(total, results.per_scheme[0].combined.refs);
    assert!(
        registry
            .histogram_summary("phase_seconds", &[("phase", "merge")])
            .is_some(),
        "sharded runs must time the merge phase"
    );
}

#[test]
fn finite_sharded_run_records_per_shard_series() {
    // Set-sharded finite-cache runs report the same shard_refs/shard_ops
    // series as block-sharded infinite runs, and attaching the recorder
    // must not perturb the (replacement-heavy) results.
    use dirsim_mem::CacheGeometry;
    let config = SimConfig::builder()
        .geometry(CacheGeometry { sets: 8, ways: 2 })
        .build()
        .unwrap();
    let workers = 3;
    let baseline = experiment()
        .sim_config(config)
        .run_with(ExecutionMode::SinglePass)
        .unwrap();
    let registry = Arc::new(MetricsRegistry::new());
    let results = experiment()
        .sim_config(config)
        .recorder(Arc::clone(&registry) as Arc<dyn Recorder>)
        .run_with(ExecutionMode::Sharded { workers })
        .unwrap();
    assert_identical(&baseline, &results, "finite sharded instrumented");

    let shard_refs: u64 = (0..workers)
        .map(|shard| {
            registry
                .counter_value("shard_refs", &[("shard", &shard.to_string())])
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(shard_refs, results.per_scheme[0].combined.refs);
    let shard_ops: u64 = (0..workers)
        .map(|shard| {
            registry
                .counter_value("shard_ops", &[("shard", &shard.to_string())])
                .unwrap_or(0)
        })
        .sum();
    let total_ops: u64 = results
        .per_scheme
        .iter()
        .map(|s| s.combined.ops.total())
        .sum();
    assert_eq!(shard_ops, total_ops, "eviction ops are per-shard too");
    assert!(
        results.per_scheme[0].combined.capacity_evictions > 0,
        "the geometry must be small enough to exercise replacement"
    );
}

#[test]
fn pipelined_run_records_overlap_metrics() {
    // The overlapped-decode path must make the overlap observable:
    // per-chunk stall histograms on both sides of the handshake, queue
    // depths per stage, and a closing occupancy gauge in [0, 1] — on top
    // of everything the inline paths record.
    let workers = 3;
    let baseline = experiment().run_with(ExecutionMode::SinglePass).unwrap();
    let registry = Arc::new(MetricsRegistry::new());
    let results = experiment()
        .recorder(Arc::clone(&registry) as Arc<dyn Recorder>)
        .run_with(ExecutionMode::Pipelined { workers })
        .unwrap();
    assert_identical(&baseline, &results, "pipelined instrumented");

    let decode_stall = registry
        .histogram_summary("decode_stall_seconds", &[])
        .expect("decode_stall_seconds must be recorded");
    assert!(decode_stall.count > 0 && decode_stall.sum >= 0.0);
    let step_stall = registry
        .histogram_summary("step_stall_seconds", &[])
        .expect("step_stall_seconds must be recorded");
    assert!(step_stall.count > 0 && step_stall.sum >= 0.0);

    let decode_depth = registry
        .histogram_summary("pipeline_queue_depth", &[("stage", "decode")])
        .expect("decode-stage queue depth must be recorded");
    assert!(decode_depth.count > 0 && decode_depth.min >= 0.0);
    let step_depths: u64 = (0..workers)
        .filter_map(|shard| {
            registry.histogram_summary(
                "pipeline_queue_depth",
                &[("shard", &shard.to_string()), ("stage", "step")],
            )
        })
        .map(|h| h.count)
        .sum();
    assert!(
        step_depths > 0,
        "per-shard step queue depth must be recorded"
    );

    // One occupancy gauge per workload pass; gauges overwrite, so only
    // the final value is visible — but it must be a valid fraction.
    let occupancy = registry
        .gauge_value("pipeline_occupancy", &[])
        .expect("pipeline_occupancy must be recorded");
    assert!(
        (0.0..=1.0).contains(&occupancy),
        "occupancy must be a fraction, got {occupancy}"
    );

    // The inline metrics are unchanged by overlap: per-shard refs still
    // partition the stream.
    let shard_refs: u64 = (0..workers)
        .map(|shard| {
            registry
                .counter_value("shard_refs", &[("shard", &shard.to_string())])
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(shard_refs, results.per_scheme[0].combined.refs);
}

#[test]
fn exported_jsonl_round_trips_exactly() {
    let registry = Arc::new(MetricsRegistry::new());
    experiment()
        .recorder(Arc::clone(&registry) as Arc<dyn Recorder>)
        .run_with(ExecutionMode::SinglePass)
        .unwrap();

    let manifest = RunManifest::new("observability-test")
        .schemes(gauntlet().iter().map(|s| s.name()))
        .mode("single-pass")
        .trace("synth:paper-workloads")
        .refs(REFS as u64)
        .wall_secs(0.125)
        .extra("suite", "integration");
    let mut buf = Vec::new();
    write_jsonl(&mut buf, &manifest, &registry).unwrap();
    let text = String::from_utf8(buf).unwrap();

    let run = parse_metrics(&text).expect("writer output must satisfy its own schema");
    assert_eq!(run.manifest, manifest, "manifest round-trip");
    assert_eq!(run.records, registry.snapshot(), "metric series round-trip");
}

#[test]
fn progress_meter_sees_monotone_cumulative_refs() {
    let seen = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    let meter = ProgressMeter::new(
        "refs",
        Duration::ZERO,
        Box::new(move |p| sink.lock().unwrap().push(p.done)),
    );
    let results = experiment()
        .progress(Arc::new(Mutex::new(meter)))
        .run_with(ExecutionMode::SinglePass)
        .unwrap();

    let seen = seen.lock().unwrap();
    // 3 workloads × 6 000 refs comfortably clears the tick stride.
    assert!(!seen.is_empty(), "expected at least one progress report");
    assert!(
        seen.windows(2).all(|w| w[0] <= w[1]),
        "progress must be monotone: {seen:?}"
    );
    assert!(*seen.last().unwrap() <= results.per_scheme[0].combined.refs);
}
