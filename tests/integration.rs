//! Cross-crate integration tests: protocol identities, oracle audits,
//! accounting invariants, and end-to-end behaviour of the experiment
//! harness over the paper workloads.

use dirsim::prelude::*;
use dirsim::{Experiment, NamedWorkload};
use dirsim_cost::CostCategory;
use dirsim_mem::{BlockAddr, CacheId};

const REFS: usize = 60_000;

fn headline(refs: usize) -> ExperimentResults {
    dirsim::paper::headline_experiment(refs).run().unwrap()
}

fn combined(results: &ExperimentResults, scheme: Scheme) -> &dirsim::SimResult {
    &results[scheme].combined
}

#[test]
fn wti_and_dir0b_event_frequencies_are_identical() {
    // §5: "since Dir0B and WTI both rely on the same basic data
    // state-change model ... their event frequencies are identical."
    let results = headline(REFS);
    let wti = combined(&results, Scheme::Wti);
    let dir0b = combined(&results, Scheme::dir0_b());
    for kind in EventKind::ALL {
        assert_eq!(
            wti.events[kind], dir0b.events[kind],
            "event {kind} differs between WTI and Dir0B"
        );
    }
}

#[test]
fn berkeley_equals_dir0b_minus_directory_accesses() {
    // §5 aside: Berkeley's cost model is Dir0B with directory cost zero.
    let results = dirsim::paper::extended_experiment(REFS).run().unwrap();
    let dir0b = combined(&results, Scheme::dir0_b());
    let berkeley = combined(&results, Scheme::Berkeley);
    let model = CostModel::pipelined();
    let dir0b_bd = dir0b.breakdown(model);
    let berkeley_bd = berkeley.breakdown(model);
    let expected = dir0b_bd.cycles_per_ref() - dir0b_bd[CostCategory::DirAccess];
    assert!(
        (berkeley_bd.cycles_per_ref() - expected).abs() < 1e-9,
        "berkeley {} != dir0b minus dir access {}",
        berkeley_bd.cycles_per_ref(),
        expected
    );
    assert_eq!(berkeley_bd[CostCategory::DirAccess], 0.0);
}

#[test]
fn all_schemes_pass_the_coherence_oracle_on_paper_workloads() {
    // Full audit: every data movement of every scheme replayed against the
    // protocol-independent shadow memory; every access must observe the
    // globally latest value.
    dirsim::paper::extended_experiment(30_000)
        .check_oracle(true)
        .run()
        .unwrap_or_else(|e| panic!("coherence violation: {e}"));
}

#[test]
fn event_counts_partition_every_reference() {
    let results = dirsim::paper::extended_experiment(REFS).run().unwrap();
    for s in &results.per_scheme {
        assert_eq!(
            s.combined.events.total(),
            s.combined.refs,
            "{}: event counts must partition the reference stream",
            s.scheme
        );
        for (_, r) in &s.per_trace {
            assert_eq!(r.events.total(), r.refs);
        }
    }
}

#[test]
fn table4_subcategories_add_up() {
    // The paper: "the fractions in each sub-category add up".
    let results = headline(REFS);
    for s in &results.per_scheme {
        let e = &s.combined.events;
        let reads = e[EventKind::RdHit]
            + e[EventKind::RmBlkCln]
            + e[EventKind::RmBlkDrty]
            + e[EventKind::RmFirstRef];
        assert_eq!(reads, e.reads(), "{}", s.scheme);
        let writes = e[EventKind::WhBlkCln]
            + e[EventKind::WhBlkDrty]
            + e[EventKind::WhDistrib]
            + e[EventKind::WhLocal]
            + e[EventKind::WmBlkCln]
            + e[EventKind::WmBlkDrty]
            + e[EventKind::WmFirstRef];
        assert_eq!(writes, e.writes(), "{}", s.scheme);
        assert_eq!(
            e[EventKind::Instr] + e.reads() + e.writes(),
            s.combined.refs,
            "{}",
            s.scheme
        );
    }
}

#[test]
fn reads_and_writes_agree_across_schemes() {
    // The reference stream is identical for every scheme, so the derived
    // read/write totals must agree even though the event splits differ.
    let results = headline(REFS);
    let first = &results.per_scheme[0].combined;
    for s in &results.per_scheme[1..] {
        assert_eq!(s.combined.events.reads(), first.events.reads());
        assert_eq!(s.combined.events.writes(), first.events.writes());
        assert_eq!(
            s.combined.events[EventKind::Instr],
            first.events[EventKind::Instr]
        );
        // Cold misses are a property of the trace, not the scheme.
        assert_eq!(
            s.combined.events[EventKind::RmFirstRef] + s.combined.events[EventKind::WmFirstRef],
            first.events[EventKind::RmFirstRef] + first.events[EventKind::WmFirstRef]
        );
    }
}

#[test]
fn first_ref_events_cost_nothing() {
    // §4: cold misses are excluded from the coherence cost.
    let cfg = WorkloadConfig::builder().seed(9).build().unwrap();
    // A trace short enough to be dominated by cold misses:
    let results = Experiment::new()
        .workload(NamedWorkload::new("cold", cfg))
        .scheme(Scheme::Directory(DirSpec::dir0_b()))
        .refs_per_trace(300)
        .run()
        .unwrap();
    let r = &results.per_scheme[0].combined;
    let cold = r.events[EventKind::RmFirstRef] + r.events[EventKind::WmFirstRef];
    assert!(cold > 0, "short trace should have cold misses");
    // Transactions only come from non-cold events:
    assert!(r.transactions <= r.refs - cold);
}

#[test]
fn dragon_never_invalidates() {
    let results = headline(REFS);
    let dragon = combined(&results, Scheme::Dragon);
    assert_eq!(
        dragon.fanout.total(),
        0,
        "update protocol records no fan-out"
    );
    assert_eq!(dragon.events[EventKind::WhBlkCln], 0);
    assert_eq!(dragon.ops[BusOp::Invalidate], 0);
    assert_eq!(dragon.ops[BusOp::BroadcastInvalidate], 0);
    assert_eq!(dragon.ops[BusOp::WriteBack], 0);
}

#[test]
fn dir1nb_never_needs_directory_or_broadcast() {
    let results = headline(REFS);
    let dir1nb = combined(&results, Scheme::dir1_nb());
    assert_eq!(dir1nb.ops[BusOp::DirLookup], 0, "always overlapped (§4.3)");
    assert_eq!(
        dir1nb.ops[BusOp::BroadcastInvalidate],
        0,
        "NB never broadcasts"
    );
}

#[test]
fn dirn_nb_never_broadcasts_but_queries_directory() {
    let results = dirsim::paper::extended_experiment(REFS).run().unwrap();
    let dirn = combined(&results, Scheme::dir_n_nb());
    assert_eq!(dirn.ops[BusOp::BroadcastInvalidate], 0);
    assert!(dirn.ops[BusOp::DirLookup] > 0);
    assert!(dirn.ops[BusOp::Invalidate] > 0, "sequential invalidations");
}

#[test]
fn lock_filtering_leaves_dir0b_roughly_unchanged() {
    // §5.2: "Dir0B gave the same performance as before".
    let impacts = dirsim::paper::lock_impact(
        REFS,
        vec![
            Scheme::Directory(DirSpec::dir1_nb()),
            Scheme::Directory(DirSpec::dir0_b()),
        ],
    )
    .unwrap();
    let dir1nb = &impacts[0];
    let dir0b = &impacts[1];
    assert!(
        dir1nb.improvement() > 0.25,
        "Dir1NB should improve a lot: {:?}",
        dir1nb
    );
    assert!(
        dir0b.improvement().abs() < 0.25,
        "Dir0B should be roughly unchanged: {:?}",
        dir0b
    );
    assert!(dir1nb.improvement() > 3.0 * dir0b.improvement().abs().max(0.05));
}

#[test]
fn sharing_models_agree_without_migration() {
    // With processes pinned to processors, per-process and per-processor
    // attribution are the same partition, so results are identical.
    let cfg = WorkloadConfig::builder()
        .seed(11)
        .migration_prob(0.0)
        .build()
        .unwrap();
    let refs: Vec<MemRef> = Workload::new(cfg).take(20_000).collect();
    let mut by_process = Scheme::Directory(DirSpec::dir0_b()).build(4);
    let mut by_processor = Scheme::Directory(DirSpec::dir0_b()).build(4);
    let a = Simulator::new(SimConfig {
        sharing: SharingModel::PerProcess,
        ..SimConfig::default()
    })
    .run(by_process.as_mut(), refs.iter().copied())
    .unwrap();
    let b = Simulator::new(SimConfig {
        sharing: SharingModel::PerProcessor,
        ..SimConfig::default()
    })
    .run(by_processor.as_mut(), refs.iter().copied())
    .unwrap();
    assert_eq!(a.events, b.events);
}

#[test]
fn migration_induces_processor_sharing_only() {
    // §4.4: migration-induced sharing shows up under per-processor
    // attribution but not per-process attribution.
    let cfg = WorkloadConfig::builder()
        .seed(13)
        .migration_prob(0.002)
        .shared_frac(0.0)
        .lock(dirsim_trace::synth::LockConfig {
            locks: 0,
            acquire_prob: 0.0,
            critical_section_len: 1,
            critical_write_frac: 0.0,
        })
        .os_frac(0.0)
        .build()
        .unwrap();
    let refs: Vec<MemRef> = Workload::new(cfg).take(40_000).collect();
    let run = |sharing| {
        let mut p = Scheme::Directory(DirSpec::dir0_b()).build(4);
        Simulator::new(SimConfig {
            sharing,
            ..SimConfig::default()
        })
        .run(p.as_mut(), refs.iter().copied())
        .unwrap()
    };
    let by_process = run(SharingModel::PerProcess);
    let by_processor = run(SharingModel::PerProcessor);
    assert_eq!(
        by_process.events.coherence_miss_rate(),
        0.0,
        "purely private workload: no process-level sharing"
    );
    assert!(
        by_processor.events.coherence_miss_rate() > 0.0,
        "migration must induce processor-level sharing"
    );
}

#[test]
fn trace_io_round_trips_a_full_workload() {
    use dirsim_trace::io::{read_binary, read_text, write_binary, write_text};
    let refs: Vec<MemRef> = Scenario::named("thor")
        .unwrap()
        .workload()
        .take(25_000)
        .collect();
    let mut bin = Vec::new();
    write_binary(&mut bin, refs.iter().copied()).unwrap();
    let back: Vec<MemRef> = read_binary(&bin[..]).collect::<Result<_, _>>().unwrap();
    assert_eq!(back, refs);
    let mut txt = Vec::new();
    write_text(&mut txt, refs.iter().copied()).unwrap();
    let back: Vec<MemRef> = read_text(&txt[..]).collect::<Result<_, _>>().unwrap();
    assert_eq!(back, refs);
}

#[test]
fn simulating_a_file_trace_matches_simulating_the_generator() {
    use dirsim_trace::io::{read_binary, write_binary};
    let refs: Vec<MemRef> = Scenario::named("pero")
        .unwrap()
        .workload()
        .take(20_000)
        .collect();
    let mut bin = Vec::new();
    write_binary(&mut bin, refs.iter().copied()).unwrap();
    let from_file: Vec<MemRef> = read_binary(&bin[..]).collect::<Result<_, _>>().unwrap();

    let sim = Simulator::paper();
    let mut p1 = Scheme::Dragon.build(4);
    let direct = sim.run(p1.as_mut(), refs).unwrap();
    let mut p2 = Scheme::Dragon.build(4);
    let via_file = sim.run(p2.as_mut(), from_file).unwrap();
    assert_eq!(direct.events, via_file.events);
    assert_eq!(direct.ops, via_file.ops);
}

#[test]
fn coarse_vector_costs_at_least_the_exact_full_map() {
    // The coarse code invalidates a superset, so it can never use fewer
    // directed invalidations than the exact full map.
    let results = dirsim::paper::extended_experiment(REFS).run().unwrap();
    let coarse = combined(&results, Scheme::CoarseVector);
    let full = combined(&results, Scheme::dir_n_nb());
    assert!(
        coarse.ops[BusOp::Invalidate] >= full.ops[BusOp::Invalidate],
        "superset invalidation can't beat exact knowledge"
    );
    for kind in EventKind::ALL {
        assert_eq!(
            coarse.events[kind],
            combined(&results, Scheme::dir0_b()).events[kind],
            "coarse vector shares the Dir0B state-change model ({kind})"
        );
    }
}

#[test]
fn finite_cache_storage_composes_with_block_map() {
    // The finite-cache substrate (the paper's "first-order extension")
    // plugs into the same block addressing.
    use dirsim_mem::{CacheGeometry, CacheStorage, FiniteCache};
    let map = BlockMap::paper();
    let mut cache: FiniteCache<u8> = FiniteCache::new(CacheGeometry { sets: 16, ways: 2 }).unwrap();
    let mut evictions = 0;
    for r in Scenario::named("pops").unwrap().workload().take(20_000) {
        if r.kind.is_data() {
            let block = map.block_of(r.addr);
            if cache.touch(block).is_none() && cache.insert(block, 0).is_some() {
                evictions += 1;
            }
        }
    }
    assert!(
        evictions > 0,
        "a small cache must evict under this workload"
    );
    assert!(cache.len() <= cache.capacity());
}

#[test]
fn barrier_releases_invalidate_every_waiter() {
    // Barrier rendezvous: the release write must invalidate the barrier
    // word in every spinning cache — the full-fan-out events that populate
    // the tail of Figure 1.
    use dirsim_trace::synth::BarrierConfig;
    let cfg = WorkloadConfig {
        barrier: BarrierConfig { interval: 300 },
        seed: 0xba881e8,
        ..WorkloadConfig::default()
    };
    let refs: Vec<MemRef> = Workload::new(cfg).take(80_000).collect();
    let mut p = Scheme::Directory(DirSpec::dir0_b()).build(4);
    let result = Simulator::new(SimConfig {
        check_oracle: true,
        ..SimConfig::default()
    })
    .run(p.as_mut(), refs)
    .unwrap();
    assert!(
        result.fanout.count(3) > 0,
        "4-process barriers must produce fan-out-3 invalidations: {}",
        result.fanout
    );
    // Dir1NB suffers extra misses from the same workload (barrier word
    // bouncing), while Dragon glides through with updates.
    assert!(result.events.coherence_miss_rate() > 0.0);
}

#[test]
fn compressed_traces_feed_the_engine() {
    use dirsim_trace::compress::{read_compressed, write_compressed};
    let refs: Vec<MemRef> = Scenario::named("pops")
        .unwrap()
        .workload()
        .take(20_000)
        .collect();
    let mut buf = Vec::new();
    write_compressed(&mut buf, refs.iter().copied()).unwrap();
    let from_file: Vec<MemRef> = read_compressed(&buf[..]).collect::<Result<_, _>>().unwrap();
    let sim = Simulator::paper();
    let mut a = Scheme::Dragon.build(4);
    let direct = sim.run(a.as_mut(), refs).unwrap();
    let mut b = Scheme::Dragon.build(4);
    let via_file = sim.run(b.as_mut(), from_file).unwrap();
    assert_eq!(direct.events, via_file.events);
    assert_eq!(direct.ops, via_file.ops);
}

#[test]
fn false_sharing_is_a_block_granularity_artifact() {
    // A workload whose only "sharing" is per-process words co-located in
    // 16-byte blocks: with 16-byte coherence blocks it ping-pongs, with
    // 4-byte blocks the sharing disappears entirely.
    use dirsim_trace::synth::{LockConfig, SharingMix};
    let cfg = WorkloadConfig {
        shared_frac: 0.05,
        sharing_mix: SharingMix {
            read_mostly: 0.0,
            migratory: 0.0,
            producer_consumer: 0.0,
            false_sharing: 1.0,
        },
        lock: LockConfig {
            locks: 0,
            acquire_prob: 0.0,
            critical_section_len: 1,
            critical_write_frac: 0.0,
        },
        os_frac: 0.0,
        seed: 0xfa15e,
        ..WorkloadConfig::default()
    };
    let refs: Vec<MemRef> = Workload::new(cfg).take(60_000).collect();
    let run = |block_bytes: u32| {
        let config = SimConfig {
            block_map: BlockMap::new(block_bytes).unwrap(),
            ..SimConfig::default()
        };
        let mut p = Scheme::Directory(DirSpec::dir0_b()).build(4);
        Simulator::new(config)
            .run(p.as_mut(), refs.iter().copied())
            .unwrap()
    };
    let wide = run(16);
    let narrow = run(4);
    assert!(
        wide.events.coherence_miss_rate() > 0.001,
        "16-byte blocks must show false-sharing misses: {}",
        wide.events.coherence_miss_rate()
    );
    assert_eq!(
        narrow.events.coherence_miss_rate(),
        0.0,
        "word-sized blocks eliminate false sharing"
    );
}

/// A deliberately broken "protocol" that lets multiple writers coexist
/// without invalidation or update — a classic forgot-the-invalidate bug.
/// Exists to prove the oracle is a real check, not a rubber stamp.
mod broken {
    use dirsim_mem::{BlockAddr, CacheId};
    use dirsim_protocol::api::{BlockProbe, BlockState, CoherenceProtocol, StateSnapshot};
    use dirsim_protocol::ops::{BusOp, DataMovement, RefOutcome};
    use dirsim_protocol::EventKind;
    use std::collections::HashMap;

    #[derive(Debug, Clone, Default)]
    pub struct ForgotInvalidations {
        holders: HashMap<BlockAddr, Vec<CacheId>>,
    }

    impl CoherenceProtocol for ForgotInvalidations {
        fn name(&self) -> String {
            "Broken".to_string()
        }

        fn cache_count(&self) -> u32 {
            4
        }

        fn on_data_ref(&mut self, cache: CacheId, block: BlockAddr, write: bool) -> RefOutcome {
            let holders = self.holders.entry(block).or_default();
            let first = holders.is_empty();
            let mut out = RefOutcome::event(match (write, first, holders.contains(&cache)) {
                (false, true, _) => EventKind::RmFirstRef,
                (true, true, _) => EventKind::WmFirstRef,
                (false, _, true) => EventKind::RdHit,
                (true, _, true) => EventKind::WhBlkDrty,
                (false, _, false) => EventKind::RmBlkCln,
                (true, _, false) => EventKind::WmBlkCln,
            });
            if !holders.contains(&cache) {
                holders.push(cache);
                out.movements.push(DataMovement::FillFromMemory { cache });
                if !first {
                    out.ops.push(BusOp::MemRead);
                }
            }
            if write {
                // The bug: writes never invalidate or update other copies.
                out.movements.push(DataMovement::CacheWrite { cache });
            }
            out
        }

        fn evict(&mut self, _cache: CacheId, _block: BlockAddr) -> RefOutcome {
            RefOutcome::default()
        }

        fn probe(&self, block: BlockAddr) -> Option<BlockProbe> {
            self.holders.get(&block).map(|h| BlockProbe {
                holders: h.clone(),
                dirty: false,
            })
        }

        fn tracked_blocks(&self) -> usize {
            self.holders.len()
        }

        fn snapshot(&self) -> StateSnapshot {
            StateSnapshot::from_blocks(
                self.holders
                    .iter()
                    .map(|(&block, h)| BlockState::basic(block, h.clone(), false))
                    .collect(),
            )
        }

        fn boxed_clone(&self) -> Box<dyn CoherenceProtocol> {
            Box::new(self.clone())
        }
    }
}

#[test]
fn the_oracle_catches_a_protocol_that_forgets_invalidations() {
    use dirsim_mem::OracleViolation;
    let p0 = ProcessId::new(0);
    let p1 = ProcessId::new(1);
    let refs = vec![
        MemRef::read(CpuId::new(0), p0, Addr::new(0x40)),
        MemRef::read(CpuId::new(1), p1, Addr::new(0x40)),
        MemRef::write(CpuId::new(1), p1, Addr::new(0x40)),
        // Cache 0 still holds the stale copy and "reads" it:
        MemRef::read(CpuId::new(0), p0, Addr::new(0x40)),
    ];
    let mut broken = broken::ForgotInvalidations::default();
    // Invariant auditing off: it would catch this mutant earlier (at the
    // un-propagated write); this test is about the *oracle* check.
    let err = Simulator::new(SimConfig {
        check_oracle: true,
        check_invariants: false,
        ..SimConfig::default()
    })
    .run(&mut broken, refs.clone())
    .expect_err("the oracle must reject the stale read");
    assert_eq!(err.ref_index, 3);
    assert!(matches!(err.violation, OracleViolation::StaleRead { .. }));

    // Crucially, the same stream passes with a correct protocol.
    let mut good = Scheme::Directory(DirSpec::dir0_b()).build(2);
    Simulator::new(SimConfig {
        check_oracle: true,
        ..SimConfig::default()
    })
    .run(good.as_mut(), refs)
    .expect("a correct protocol passes the same stream");
}

#[test]
fn scheme_results_expose_probe_state() {
    let mut p = Scheme::Directory(DirSpec::dir_n_nb()).build(3);
    let b = BlockAddr::new(5);
    p.on_data_ref(CacheId::new(0), b, false);
    p.on_data_ref(CacheId::new(1), b, false);
    p.on_data_ref(CacheId::new(2), b, false);
    let probe = p.probe(b).unwrap();
    assert_eq!(probe.holders.len(), 3);
    assert!(!probe.dirty);
    p.on_data_ref(CacheId::new(1), b, true);
    let probe = p.probe(b).unwrap();
    assert_eq!(probe.holders, vec![CacheId::new(1)]);
    assert!(probe.dirty);
}
