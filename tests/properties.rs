//! Property-based tests (proptest) over random reference streams: protocol
//! invariants, oracle cleanliness, format round-trips, and cost-model
//! algebra.

use proptest::prelude::*;

use dirsim::prelude::*;
use dirsim_mem::{BlockAddr, CacheId};
use dirsim_protocol::directory::EvictionPolicy;
use dirsim_trace::RefFlags;

/// A compact random reference: (cpu/pid index, block index, is-write).
fn raw_refs(caches: u32, blocks: u64, len: usize) -> impl Strategy<Value = Vec<(u32, u64, bool)>> {
    prop::collection::vec((0..caches, 0..blocks, any::<bool>()), 1..len)
}

fn all_schemes() -> Vec<Scheme> {
    let mut v = Scheme::paper_lineup();
    v.push(Scheme::Berkeley);
    v.push(Scheme::CoarseVector);
    v.push(Scheme::Directory(DirSpec::dir_n_nb()));
    v.push(Scheme::Directory(DirSpec::dir1_b()));
    v.push(Scheme::Directory(DirSpec::dir_i_b(2)));
    v.push(Scheme::Directory(DirSpec::dir_i_nb(2).unwrap()));
    v
}

fn to_memrefs(raw: &[(u32, u64, bool)]) -> Vec<MemRef> {
    raw.iter()
        .map(|&(c, b, w)| {
            let cpu = CpuId::new(c as u16);
            let pid = ProcessId::new(c);
            let addr = Addr::new(b * 16);
            if w {
                MemRef::write(cpu, pid, addr)
            } else {
                MemRef::read(cpu, pid, addr)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The big one: every scheme stays coherent (oracle-audited) on any
    /// reference stream.
    #[test]
    fn every_scheme_is_coherent_on_random_traces(raw in raw_refs(4, 12, 400)) {
        let refs = to_memrefs(&raw);
        let sim = Simulator::new(SimConfig { check_oracle: true, ..SimConfig::default() });
        for scheme in all_schemes() {
            let mut protocol = scheme.build(4);
            sim.run(protocol.as_mut(), refs.iter().copied())
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }

    /// Single-writer invariant: a dirty block has exactly one holder, in
    /// every directory scheme, after every reference.
    #[test]
    fn dirty_implies_sole_holder(raw in raw_refs(4, 8, 300)) {
        for scheme in all_schemes() {
            let mut protocol = scheme.build(4);
            for &(c, b, w) in &raw {
                let block = BlockAddr::new(b);
                protocol.on_data_ref(CacheId::new(c), block, w);
                let probe = protocol.probe(block).unwrap();
                if probe.dirty && scheme != Scheme::Dragon {
                    prop_assert_eq!(probe.holders.len(), 1, "{}", scheme);
                }
                prop_assert!(!probe.holders.is_empty(), "{}", scheme);
            }
        }
    }

    /// `DiriNB` never exceeds its copy limit and never broadcasts.
    #[test]
    fn limited_nb_capacity_respected(raw in raw_refs(6, 8, 300), i in 1u32..4) {
        let spec = DirSpec::dir_i_nb(i).unwrap();
        let mut protocol = Scheme::Directory(spec).build(6);
        for &(c, b, w) in &raw {
            let block = BlockAddr::new(b);
            let out = protocol.on_data_ref(CacheId::new(c % 6), block, w);
            prop_assert!(!out.ops.contains(&BusOp::BroadcastInvalidate));
            let probe = protocol.probe(block).unwrap();
            prop_assert!(probe.holders.len() <= i as usize);
        }
    }

    /// Both eviction policies keep the capacity invariant.
    #[test]
    fn eviction_policies_equivalent_capacity(raw in raw_refs(5, 6, 200)) {
        for policy in [EvictionPolicy::OldestSharer, EvictionPolicy::NewestSharer] {
            let spec = DirSpec::dir_i_nb(2).unwrap().with_eviction(policy);
            let mut protocol = Scheme::Directory(spec).build(5);
            for &(c, b, w) in &raw {
                let block = BlockAddr::new(b);
                protocol.on_data_ref(CacheId::new(c % 5), block, w);
                prop_assert!(protocol.probe(block).unwrap().holders.len() <= 2);
            }
        }
    }

    /// WTI and Dir0B classify every reference identically (§5).
    #[test]
    fn wti_dir0b_event_identity(raw in raw_refs(4, 10, 400)) {
        let mut wti = Scheme::Wti.build(4);
        let mut dir0b = Scheme::Directory(DirSpec::dir0_b()).build(4);
        for &(c, b, w) in &raw {
            let block = BlockAddr::new(b);
            let a = wti.on_data_ref(CacheId::new(c), block, w);
            let d = dir0b.on_data_ref(CacheId::new(c), block, w);
            prop_assert_eq!(a.kind(), d.kind());
            prop_assert_eq!(a.clean_write_fanout, d.clean_write_fanout);
        }
    }

    /// Berkeley emits exactly Dir0B's ops with DirLookup stripped.
    #[test]
    fn berkeley_is_dir0b_without_dir_lookups(raw in raw_refs(4, 10, 300)) {
        let mut berkeley = Scheme::Berkeley.build(4);
        let mut dir0b = Scheme::Directory(DirSpec::dir0_b()).build(4);
        for &(c, b, w) in &raw {
            let block = BlockAddr::new(b);
            let a = berkeley.on_data_ref(CacheId::new(c), block, w);
            let d = dir0b.on_data_ref(CacheId::new(c), block, w);
            let stripped: Vec<BusOp> =
                d.ops.iter().copied().filter(|&o| o != BusOp::DirLookup).collect();
            prop_assert_eq!(a.ops, stripped);
        }
    }

    /// Dragon performs no invalidations and no write-backs, ever.
    #[test]
    fn dragon_never_invalidates(raw in raw_refs(4, 10, 300)) {
        let mut dragon = Scheme::Dragon.build(4);
        for &(c, b, w) in &raw {
            let out = dragon.on_data_ref(CacheId::new(c), BlockAddr::new(b), w);
            prop_assert!(!out.ops.contains(&BusOp::Invalidate));
            prop_assert!(!out.ops.contains(&BusOp::BroadcastInvalidate));
            prop_assert!(!out.ops.contains(&BusOp::WriteBack));
            prop_assert_eq!(out.clean_write_fanout, None);
        }
    }

    /// Event counts always partition the stream; derived totals agree.
    #[test]
    fn events_partition_stream(raw in raw_refs(4, 10, 300)) {
        let refs = to_memrefs(&raw);
        for scheme in all_schemes() {
            let mut protocol = scheme.build(4);
            let result = Simulator::paper()
                .run(protocol.as_mut(), refs.iter().copied())
                .unwrap();
            prop_assert_eq!(result.events.total(), result.refs);
            prop_assert_eq!(
                result.events.reads() + result.events.writes(),
                result.refs,
                "no instruction fetches in this stream"
            );
        }
    }

    /// Pricing is linear: merging two runs prices to the sum of cycles.
    #[test]
    fn cost_is_additive_under_merge(
        raw_a in raw_refs(4, 8, 200),
        raw_b in raw_refs(4, 8, 200),
    ) {
        let model = CostModel::pipelined();
        let sim = Simulator::paper();
        let run = |raw: &[(u32, u64, bool)]| {
            let mut p = Scheme::Directory(DirSpec::dir0_b()).build(4);
            sim.run(p.as_mut(), to_memrefs(raw)).unwrap()
        };
        let a = run(&raw_a);
        let b = run(&raw_b);
        let total_cycles =
            a.cycles_per_ref(model) * a.refs as f64 + b.cycles_per_ref(model) * b.refs as f64;
        let mut merged = a.clone();
        merged.merge(&b);
        let merged_cycles = merged.cycles_per_ref(model) * merged.refs as f64;
        prop_assert!((total_cycles - merged_cycles).abs() < 1e-6);
    }

    /// The fixed-overhead model is exactly affine in q.
    #[test]
    fn q_model_is_affine(raw in raw_refs(4, 8, 200), q in 0.0f64..8.0) {
        let mut p = Scheme::Wti.build(4);
        let result = Simulator::paper().run(p.as_mut(), to_memrefs(&raw)).unwrap();
        let bd = result.breakdown(CostModel::pipelined());
        let expected = bd.cycles_per_ref() + q * bd.transactions_per_ref();
        prop_assert!((bd.cycles_per_ref_with_overhead(q) - expected).abs() < 1e-12);
    }

    /// Binary and text trace formats round-trip arbitrary records.
    #[test]
    fn trace_formats_round_trip(
        records in prop::collection::vec(
            (0u16..8, 0u32..8, 0u64..1u64 << 40, 0u8..3, any::<bool>(), any::<bool>()),
            0..200,
        )
    ) {
        use dirsim_trace::io::{read_binary, read_text, write_binary, write_text};
        let refs: Vec<MemRef> = records
            .iter()
            .map(|&(cpu, pid, addr, kind, lock, os)| {
                let kind = match kind {
                    0 => AccessKind::InstrFetch,
                    1 => AccessKind::Read,
                    _ => AccessKind::Write,
                };
                let mut flags = RefFlags::empty();
                if lock {
                    flags = flags.with_lock();
                }
                if os {
                    flags = flags.with_os();
                }
                MemRef::new(CpuId::new(cpu), ProcessId::new(pid), Addr::new(addr), kind)
                    .with_flags(flags)
            })
            .collect();
        let mut bin = Vec::new();
        write_binary(&mut bin, refs.iter().copied()).unwrap();
        let back: Vec<MemRef> = read_binary(&bin[..]).collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(&back, &refs);
        let mut txt = Vec::new();
        write_text(&mut txt, refs.iter().copied()).unwrap();
        let back: Vec<MemRef> = read_text(&txt[..]).collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(&back, &refs);
    }

    /// The coarse code always denotes a superset of what was inserted.
    #[test]
    fn coarse_code_is_a_superset(
        caches in 2u32..64,
        inserts in prop::collection::vec(0u64..64, 1..20),
    ) {
        use dirsim_protocol::directory::CoarseCode;
        let mut code = CoarseCode::new(caches);
        let mut inserted = Vec::new();
        for &i in &inserts {
            let idx = i % u64::from(caches);
            code.insert(idx);
            inserted.push(idx);
            for &j in &inserted {
                prop_assert!(code.denotes(j), "{j} dropped from code {code}");
            }
        }
        // Every inserted index is enumerated by members().
        let members = code.members(caches);
        for &j in &inserted {
            prop_assert!(members.contains(&j));
        }
        prop_assert!(members.len() as u64 <= code.superset_size());
    }

    /// Fan-out histogram algebra: fractions normalise, merge adds.
    #[test]
    fn histogram_algebra(xs in prop::collection::vec(0u32..6, 1..100)) {
        let mut h = FanoutHistogram::new();
        for &x in &xs {
            h.record(x);
        }
        prop_assert_eq!(h.total(), xs.len() as u64);
        let full: f64 = (0..6).map(|k| h.fraction(k)).sum();
        prop_assert!((full - 1.0).abs() < 1e-9);
        prop_assert!((h.fraction_at_most(5) - 1.0).abs() < 1e-9);
        let mut doubled = h.clone();
        doubled.merge(&h);
        prop_assert_eq!(doubled.total(), 2 * h.total());
        prop_assert!((doubled.mean() - h.mean()).abs() < 1e-9);
    }

    /// The workload generator is a pure function of its configuration.
    #[test]
    fn generator_is_deterministic(seed in any::<u64>()) {
        let cfg = WorkloadConfig::builder().seed(seed).build().unwrap();
        let a: Vec<MemRef> = Workload::new(cfg.clone()).take(500).collect();
        let b: Vec<MemRef> = Workload::new(cfg).take(500).collect();
        prop_assert_eq!(a, b);
    }

    /// Merging histograms equals recording the concatenated samples —
    /// including when either side is empty, so merge has no way to leave
    /// the representation non-canonical (trailing zero buckets).
    #[test]
    fn histogram_merge_matches_direct_recording(
        a in prop::collection::vec(0u32..12, 0..40),
        b in prop::collection::vec(0u32..12, 0..40),
    ) {
        let mut left = FanoutHistogram::new();
        for &f in &a {
            left.record(f);
        }
        let mut right = FanoutHistogram::new();
        for &f in &b {
            right.record(f);
        }
        let mut merged = left.clone();
        merged.merge(&right);

        let mut direct = FanoutHistogram::new();
        for &f in a.iter().chain(&b) {
            direct.record(f);
        }
        prop_assert_eq!(&merged, &direct);
        prop_assert_eq!(merged.total(), (a.len() + b.len()) as u64);
        prop_assert_eq!(merged.max_fanout(), a.iter().chain(&b).max().copied());

        // Merge is symmetric in value.
        let mut flipped = right;
        flipped.merge(&left);
        prop_assert_eq!(&flipped, &direct);
    }

    /// Merging with the empty histogram is the identity in both
    /// directions, and the empty histogram itself reports safe zeros.
    #[test]
    fn histogram_empty_merge_is_identity(a in prop::collection::vec(0u32..12, 0..40)) {
        let empty = FanoutHistogram::new();
        prop_assert_eq!(empty.total(), 0);
        prop_assert_eq!(empty.max_fanout(), None);
        prop_assert_eq!(empty.mean(), 0.0);

        let mut h = FanoutHistogram::new();
        for &f in &a {
            h.record(f);
        }
        let before = h.clone();
        h.merge(&empty);
        prop_assert_eq!(&h, &before);
        let mut other = FanoutHistogram::new();
        other.merge(&before);
        prop_assert_eq!(&other, &before);
    }

    /// A histogram fed a single bucket reports exactly that bucket.
    #[test]
    fn histogram_single_bucket_is_exact(f in 0u32..16, n in 1u64..50) {
        let mut h = FanoutHistogram::new();
        for _ in 0..n {
            h.record(f);
        }
        prop_assert_eq!(h.total(), n);
        prop_assert_eq!(h.count(f), n);
        prop_assert_eq!(h.max_fanout(), Some(f));
        prop_assert!((h.fraction(f) - 1.0).abs() < 1e-12);
        prop_assert!((h.mean() - f64::from(f)).abs() < 1e-9);
    }
}
