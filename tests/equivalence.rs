//! Engine-path equivalence: the legacy serial per-scheme path, the
//! single-pass broadcast path, and the block-sharded parallel path must
//! produce **bit-identical** results for every scheme.
//!
//! This is the load-bearing guarantee behind `ExecutionMode`: sharding by
//! block address is exact under the paper's infinite-cache model because
//! per-block protocol state never interacts across blocks, and every
//! counter merged across shards is a commutative sum. Any drift here means
//! one of the paths is wrong, not "parallel noise".
//!
//! The scheme list mirrors the `dirsim-verify` gauntlet (that crate
//! depends on this one, so the 14 schemes are enumerated inline).

use dirsim::prelude::*;
use dirsim::{ExecutionMode, Experiment, ExperimentResults, NamedWorkload};
use dirsim_protocol::DirSpec;

const REFS: usize = 12_000;

/// The paper's Table 5 line-up plus the remaining directory organisations
/// and snoopy baselines — every protocol the model checker gauntlets.
fn gauntlet() -> Vec<Scheme> {
    vec![
        Scheme::dir_n_nb(),
        Scheme::dir0_b(),
        Scheme::dir1_b(),
        Scheme::dir_i_b(2),
        Scheme::dir1_nb(),
        Scheme::Directory(DirSpec::dir_i_nb(2).expect("two pointers is a valid NB spec")),
        Scheme::CoarseVector,
        Scheme::Tang,
        Scheme::YenFu,
        Scheme::DirUpdate,
        Scheme::Wti,
        Scheme::Illinois,
        Scheme::Dragon,
        Scheme::Berkeley,
    ]
}

fn experiment() -> Experiment {
    Experiment::new()
        .workloads(dirsim::paper::paper_workloads())
        .schemes(gauntlet())
        .refs_per_trace(REFS)
}

fn assert_identical(a: &ExperimentResults, b: &ExperimentResults, what: &str) {
    assert_eq!(a.trace_stats, b.trace_stats, "{what}: trace statistics");
    assert_eq!(
        a.per_scheme.len(),
        b.per_scheme.len(),
        "{what}: scheme count"
    );
    for (x, y) in a.per_scheme.iter().zip(&b.per_scheme) {
        assert_eq!(x.scheme, y.scheme, "{what}: scheme order");
        assert_eq!(x.per_trace, y.per_trace, "{what}: {} per-trace", x.scheme);
        assert_eq!(x.combined, y.combined, "{what}: {} combined", x.scheme);
    }
}

#[test]
fn gauntlet_covers_all_fourteen_schemes() {
    let schemes = gauntlet();
    assert_eq!(schemes.len(), 14);
    let names: std::collections::HashSet<String> = schemes.iter().map(|s| s.name()).collect();
    assert_eq!(names.len(), 14, "scheme names must be distinct");
}

#[test]
fn single_pass_matches_serial_for_every_scheme() {
    let exp = experiment();
    let serial = exp.run_with(ExecutionMode::Serial).unwrap();
    let single = exp.run_with(ExecutionMode::SinglePass).unwrap();
    assert_identical(&serial, &single, "single-pass vs serial");
}

#[test]
fn sharded_matches_serial_for_every_scheme() {
    let exp = experiment();
    let serial = exp.run_with(ExecutionMode::Serial).unwrap();
    for workers in [2, 5] {
        let sharded = exp.run_with(ExecutionMode::Sharded { workers }).unwrap();
        assert_identical(&serial, &sharded, &format!("{workers} shards vs serial"));
    }
}

#[test]
fn shard_count_is_immaterial() {
    // Per-shard counters are commutative sums, so the worker count must
    // not leak into the results at all.
    let exp = experiment();
    let three = exp.run_with(ExecutionMode::Sharded { workers: 3 }).unwrap();
    let eight = exp.run_with(ExecutionMode::Sharded { workers: 8 }).unwrap();
    assert_identical(&three, &eight, "3 shards vs 8 shards");
}

#[test]
fn equivalence_holds_with_lock_tests_excluded() {
    // The §5.2 ablation filters the stream *before* it reaches the
    // engine; every execution path must see the identical filtered trace.
    let exp = experiment().exclude_lock_tests(true);
    let serial = exp.run_with(ExecutionMode::Serial).unwrap();
    let single = exp.run_with(ExecutionMode::SinglePass).unwrap();
    let sharded = exp.run_with(ExecutionMode::Sharded { workers: 4 }).unwrap();
    assert_identical(&serial, &single, "lock-filtered single-pass");
    assert_identical(&serial, &sharded, "lock-filtered sharded");
}

#[test]
fn equivalence_holds_under_the_oracle() {
    // The shadow-memory audit must neither perturb results nor behave
    // differently per path (each shard audits its own blocks).
    let exp = Experiment::new()
        .workload(NamedWorkload::new(
            "audited",
            WorkloadConfig::builder().seed(7).build().unwrap(),
        ))
        .schemes(gauntlet())
        .refs_per_trace(6_000)
        .check_oracle(true);
    let serial = exp.run_with(ExecutionMode::Serial).unwrap();
    let single = exp.run_with(ExecutionMode::SinglePass).unwrap();
    let sharded = exp.run_with(ExecutionMode::Sharded { workers: 3 }).unwrap();
    assert_identical(&serial, &single, "audited single-pass");
    assert_identical(&serial, &sharded, "audited sharded");
}

#[test]
fn default_and_parallel_runs_agree_with_serial() {
    // The public entry points (`run`, `run_parallel`) sit on top of the
    // same machinery; they must agree with the explicit modes too.
    let exp = Experiment::new()
        .workloads(dirsim::paper::paper_workloads())
        .schemes(Scheme::paper_lineup())
        .refs_per_trace(REFS);
    let serial = exp.run_with(ExecutionMode::Serial).unwrap();
    let default = exp.run().unwrap();
    let parallel = exp.run_parallel().unwrap();
    assert_identical(&serial, &default, "default run");
    assert_identical(&serial, &parallel, "run_parallel");
}
