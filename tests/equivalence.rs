//! Engine-path equivalence: the legacy serial per-scheme path, the
//! single-pass broadcast path, the sharded parallel path, and the
//! pipelined overlapped-decode path must produce **bit-identical**
//! results for every scheme.
//!
//! This is the load-bearing guarantee behind `ExecutionMode`: sharding is
//! exact because per-block protocol state never interacts across blocks
//! and every counter merged across shards is a commutative sum. Infinite
//! caches shard by block address; finite caches shard by cache set index
//! (LRU state never crosses sets, and a block's set is a pure function of
//! its address), so both geometries get the full guarantee. Overlapped
//! decode is exact because only decode *work* moves to the producer
//! thread — chunks arrive in stream order over one bounded FIFO and
//! chunk boundaries carry no simulation state. Any drift here means one
//! of the paths is wrong, not "parallel noise".
//!
//! The scheme list mirrors the `dirsim-verify` gauntlet (that crate
//! depends on this one, so the 14 schemes are enumerated inline).

use dirsim::prelude::*;
use dirsim::{ExecutionMode, Experiment, ExperimentResults, NamedWorkload};
use dirsim_mem::CacheGeometry;
use dirsim_protocol::DirSpec;

const REFS: usize = 12_000;

/// Reference count for the finite-cache rounds: capacity evictions make
/// every reference more expensive (evict + re-fetch + oracle replay), so
/// the finite gauntlet runs a slightly shorter trace.
const FINITE_REFS: usize = 8_000;

/// The paper's Table 5 line-up plus the remaining directory organisations
/// and snoopy baselines — every protocol the model checker gauntlets.
fn gauntlet() -> Vec<Scheme> {
    vec![
        Scheme::dir_n_nb(),
        Scheme::dir0_b(),
        Scheme::dir1_b(),
        Scheme::dir_i_b(2),
        Scheme::dir1_nb(),
        Scheme::Directory(DirSpec::dir_i_nb(2).expect("two pointers is a valid NB spec")),
        Scheme::CoarseVector,
        Scheme::Tang,
        Scheme::YenFu,
        Scheme::DirUpdate,
        Scheme::Wti,
        Scheme::Illinois,
        Scheme::Dragon,
        Scheme::Berkeley,
    ]
}

fn experiment() -> Experiment {
    Experiment::new()
        .workloads(dirsim::paper::paper_workloads())
        .schemes(gauntlet())
        .refs_per_trace(REFS)
}

fn assert_identical(a: &ExperimentResults, b: &ExperimentResults, what: &str) {
    assert_eq!(a.trace_stats, b.trace_stats, "{what}: trace statistics");
    assert_eq!(
        a.per_scheme.len(),
        b.per_scheme.len(),
        "{what}: scheme count"
    );
    for (x, y) in a.per_scheme.iter().zip(&b.per_scheme) {
        assert_eq!(x.scheme, y.scheme, "{what}: scheme order");
        assert_eq!(x.per_trace, y.per_trace, "{what}: {} per-trace", x.scheme);
        assert_eq!(x.combined, y.combined, "{what}: {} combined", x.scheme);
    }
}

#[test]
fn gauntlet_covers_all_fourteen_schemes() {
    let schemes = gauntlet();
    assert_eq!(schemes.len(), 14);
    let names: std::collections::HashSet<String> = schemes.iter().map(|s| s.name()).collect();
    assert_eq!(names.len(), 14, "scheme names must be distinct");
}

#[test]
fn single_pass_matches_serial_for_every_scheme() {
    let exp = experiment();
    let serial = exp.run_with(ExecutionMode::Serial).unwrap();
    let single = exp.run_with(ExecutionMode::SinglePass).unwrap();
    assert_identical(&serial, &single, "single-pass vs serial");
}

#[test]
fn sharded_matches_serial_for_every_scheme() {
    let exp = experiment();
    let serial = exp.run_with(ExecutionMode::Serial).unwrap();
    for workers in [2, 5] {
        let sharded = exp.run_with(ExecutionMode::Sharded { workers }).unwrap();
        assert_identical(&serial, &sharded, &format!("{workers} shards vs serial"));
    }
}

#[test]
fn pipelined_matches_serial_for_every_scheme() {
    // Overlap enabled vs disabled, for every scheme: Pipelined { 1 } is
    // single-pass with decode overlapped; Pipelined { n } is sharded
    // with decode overlapped. Serial and SinglePass are the
    // overlap-disabled baselines.
    let exp = experiment();
    let serial = exp.run_with(ExecutionMode::Serial).unwrap();
    for workers in [1, 4] {
        let pipelined = exp.run_with(ExecutionMode::Pipelined { workers }).unwrap();
        assert_identical(
            &serial,
            &pipelined,
            &format!("pipelined ({workers} workers) vs serial"),
        );
    }
}

#[test]
fn shard_count_is_immaterial() {
    // Per-shard counters are commutative sums, so the worker count must
    // not leak into the results at all.
    let exp = experiment();
    let three = exp.run_with(ExecutionMode::Sharded { workers: 3 }).unwrap();
    let eight = exp.run_with(ExecutionMode::Sharded { workers: 8 }).unwrap();
    assert_identical(&three, &eight, "3 shards vs 8 shards");
}

#[test]
fn equivalence_holds_with_lock_tests_excluded() {
    // The §5.2 ablation filters the stream *before* it reaches the
    // engine; every execution path must see the identical filtered trace.
    let exp = experiment().exclude_lock_tests(true);
    let serial = exp.run_with(ExecutionMode::Serial).unwrap();
    let single = exp.run_with(ExecutionMode::SinglePass).unwrap();
    let sharded = exp.run_with(ExecutionMode::Sharded { workers: 4 }).unwrap();
    let pipelined = exp
        .run_with(ExecutionMode::Pipelined { workers: 4 })
        .unwrap();
    assert_identical(&serial, &single, "lock-filtered single-pass");
    assert_identical(&serial, &sharded, "lock-filtered sharded");
    assert_identical(&serial, &pipelined, "lock-filtered pipelined");
}

#[test]
fn equivalence_holds_under_the_oracle() {
    // The shadow-memory audit must neither perturb results nor behave
    // differently per path (each shard audits its own blocks).
    let exp = Experiment::new()
        .workload(NamedWorkload::new(
            "audited",
            WorkloadConfig::builder().seed(7).build().unwrap(),
        ))
        .schemes(gauntlet())
        .refs_per_trace(6_000)
        .check_oracle(true);
    let serial = exp.run_with(ExecutionMode::Serial).unwrap();
    let single = exp.run_with(ExecutionMode::SinglePass).unwrap();
    let sharded = exp.run_with(ExecutionMode::Sharded { workers: 3 }).unwrap();
    let pipelined = exp
        .run_with(ExecutionMode::Pipelined { workers: 3 })
        .unwrap();
    assert_identical(&serial, &single, "audited single-pass");
    assert_identical(&serial, &sharded, "audited sharded");
    assert_identical(&serial, &pipelined, "audited pipelined");
}

fn finite_experiment(geometry: CacheGeometry) -> Experiment {
    let config = SimConfig::builder()
        .geometry(geometry)
        .build()
        .expect("test geometry is valid");
    Experiment::new()
        .workloads(dirsim::paper::paper_workloads())
        .schemes(gauntlet())
        .refs_per_trace(FINITE_REFS)
        .sim_config(config)
}

#[test]
fn finite_cache_sharded_matches_serial_for_every_scheme() {
    // The tentpole guarantee: set-sharded finite-cache execution is
    // bit-identical to serial for all 14 schemes. This configuration was
    // rejected outright (`SimConfigError::ShardedFiniteCache`) before
    // set sharding existed, so this doubles as the regression test that
    // the old rejection path now succeeds.
    let exp = finite_experiment(CacheGeometry { sets: 8, ways: 2 });
    let serial = exp.run_with(ExecutionMode::Serial).unwrap();
    let single = exp.run_with(ExecutionMode::SinglePass).unwrap();
    assert_identical(&serial, &single, "finite single-pass vs serial");
    for workers in [2, 5] {
        let sharded = exp.run_with(ExecutionMode::Sharded { workers }).unwrap();
        assert_identical(
            &serial,
            &sharded,
            &format!("finite {workers} shards vs serial"),
        );
    }
    for workers in [1, 5] {
        let pipelined = exp.run_with(ExecutionMode::Pipelined { workers }).unwrap();
        assert_identical(
            &serial,
            &pipelined,
            &format!("finite pipelined ({workers} workers) vs serial"),
        );
    }
    // The geometry is small enough that the equivalence is exercised by
    // real replacement traffic, not a trivially infinite-looking run.
    for s in &serial.per_scheme {
        assert!(
            s.combined.capacity_evictions > 0,
            "{}: no capacity evictions — geometry too large for the trace",
            s.scheme
        );
    }
}

#[test]
fn finite_cache_shard_count_is_immaterial() {
    let exp = finite_experiment(CacheGeometry { sets: 8, ways: 2 });
    let three = exp.run_with(ExecutionMode::Sharded { workers: 3 }).unwrap();
    let eight = exp.run_with(ExecutionMode::Sharded { workers: 8 }).unwrap();
    assert_identical(&three, &eight, "finite 3 shards vs 8 shards");
}

#[test]
fn degenerate_finite_geometries_agree_across_modes() {
    // The corners of the geometry space: direct-mapped (ways = 1, every
    // touch of a new block in a set evicts), a single set (sets = 1, the
    // set key routes everything to shard 0 and the run degenerates to
    // single-pass-on-a-worker), and fewer sets than shards (most shards
    // stay empty). Each must agree with serial in every mode.
    let cases = [
        ("direct-mapped", CacheGeometry { sets: 16, ways: 1 }),
        ("single-set", CacheGeometry { sets: 1, ways: 4 }),
        ("sets < shards", CacheGeometry { sets: 2, ways: 2 }),
    ];
    for (label, geometry) in cases {
        let exp = finite_experiment(geometry);
        let serial = exp.run_with(ExecutionMode::Serial).unwrap();
        let single = exp.run_with(ExecutionMode::SinglePass).unwrap();
        let sharded = exp.run_with(ExecutionMode::Sharded { workers: 8 }).unwrap();
        let pipelined = exp
            .run_with(ExecutionMode::Pipelined { workers: 8 })
            .unwrap();
        assert_identical(&serial, &single, &format!("{label} single-pass"));
        assert_identical(&serial, &sharded, &format!("{label} sharded"));
        assert_identical(&serial, &pipelined, &format!("{label} pipelined"));
    }
}

#[test]
fn finite_cache_equivalence_holds_under_the_oracle() {
    // Eviction write-backs and post-eviction re-fetches must replay
    // identically against each shard's shadow memory.
    let config = SimConfig::builder()
        .geometry(CacheGeometry { sets: 4, ways: 2 })
        .check_oracle(true)
        .build()
        .unwrap();
    let exp = Experiment::new()
        .workload(NamedWorkload::new(
            "audited",
            WorkloadConfig::builder().seed(7).build().unwrap(),
        ))
        .schemes(gauntlet())
        .refs_per_trace(6_000)
        .sim_config(config);
    let serial = exp.run_with(ExecutionMode::Serial).unwrap();
    let single = exp.run_with(ExecutionMode::SinglePass).unwrap();
    let sharded = exp.run_with(ExecutionMode::Sharded { workers: 3 }).unwrap();
    let pipelined = exp
        .run_with(ExecutionMode::Pipelined { workers: 3 })
        .unwrap();
    assert_identical(&serial, &single, "audited finite single-pass");
    assert_identical(&serial, &sharded, "audited finite sharded");
    assert_identical(&serial, &pipelined, "audited finite pipelined");
}

#[test]
fn open_system_scenario_agrees_across_all_modes() {
    // Open-system workloads exercise the one generator feature that
    // changes the *population* mid-trace: Poisson arrivals mint new
    // process IDs and departures retire them, with a Zipf-skewed shared
    // pool and a phased write ramp layered on top ("open-zipf-phased").
    // The engine paths only ever see the emitted reference stream, so
    // every mode must still be bit-identical across all 14 schemes.
    let scenario = Scenario::named("open-zipf-phased").unwrap();
    let exp = Experiment::new()
        .workload(NamedWorkload::from(scenario))
        .schemes(gauntlet())
        .refs_per_trace(REFS);
    let serial = exp.run_with(ExecutionMode::Serial).unwrap();
    let single = exp.run_with(ExecutionMode::SinglePass).unwrap();
    let sharded = exp.run_with(ExecutionMode::Sharded { workers: 4 }).unwrap();
    let pipelined = exp
        .run_with(ExecutionMode::Pipelined { workers: 4 })
        .unwrap();
    assert_identical(&serial, &single, "open-system single-pass");
    assert_identical(&serial, &sharded, "open-system sharded");
    assert_identical(&serial, &pipelined, "open-system pipelined");
    // The run really is open: more processes appear than the six that
    // start, so the equivalence covers mid-trace arrivals.
    let procs = serial.trace_stats[0].1.process_count();
    assert!(
        procs > 6,
        "expected arrivals beyond the initial population, saw {procs} processes"
    );
}

#[test]
fn default_and_parallel_runs_agree_with_serial() {
    // The public entry points (`run`, `run_parallel`) sit on top of the
    // same machinery; they must agree with the explicit modes too.
    let exp = Experiment::new()
        .workloads(dirsim::paper::paper_workloads())
        .schemes(Scheme::paper_lineup())
        .refs_per_trace(REFS);
    let serial = exp.run_with(ExecutionMode::Serial).unwrap();
    let default = exp.run().unwrap();
    let parallel = exp.run_parallel().unwrap();
    assert_identical(&serial, &default, "default run");
    assert_identical(&serial, &parallel, "run_parallel");
}

// ---------------------------------------------------------------------
// Table kernels: the memoized transition-table step path must be
// bit-identical to the match-based machines it replaces. These runs set
// `check_invariants(false)` because the per-reference audit forces the
// direct path (audits read machine internals the kernel never touches),
// and debug builds audit by default.
// ---------------------------------------------------------------------

fn kernel_experiment(kernels: KernelPolicy, geometry: Option<CacheGeometry>) -> Experiment {
    let mut builder = SimConfig::builder()
        .check_invariants(false)
        .kernels(kernels);
    if let Some(g) = geometry {
        builder = builder.geometry(g);
    }
    let config = builder.build().expect("kernel test config is valid");
    Experiment::new()
        .workloads(dirsim::paper::paper_workloads())
        .schemes(gauntlet())
        .refs_per_trace(FINITE_REFS)
        .sim_config(config)
}

#[test]
fn table_kernels_match_the_direct_machines() {
    // `Required` panics if any lane silently falls back at construction,
    // so passing proves the kernel path actually ran on the left side.
    let kernels = kernel_experiment(KernelPolicy::Required, None);
    let direct = kernel_experiment(KernelPolicy::Disabled, None);
    for (mode, what) in [
        (ExecutionMode::Serial, "kernel serial"),
        (ExecutionMode::SinglePass, "kernel single-pass"),
        (ExecutionMode::Sharded { workers: 3 }, "kernel sharded"),
        (ExecutionMode::Pipelined { workers: 2 }, "kernel pipelined"),
    ] {
        let k = kernels.run_with(mode).unwrap();
        let d = direct.run_with(mode).unwrap();
        assert_identical(&k, &d, what);
    }
}

#[test]
fn table_kernels_match_the_direct_machines_with_finite_caches() {
    // Finite geometries route LRU capacity evictions through the kernel's
    // two-phase prepare/commit step; the small geometry guarantees real
    // replacement traffic (asserted in the finite gauntlet above).
    let geometry = CacheGeometry { sets: 8, ways: 2 };
    let kernels = kernel_experiment(KernelPolicy::Required, Some(geometry));
    let direct = kernel_experiment(KernelPolicy::Disabled, Some(geometry));
    for (mode, what) in [
        (ExecutionMode::Serial, "finite kernel serial"),
        (
            ExecutionMode::Sharded { workers: 3 },
            "finite kernel sharded",
        ),
        (
            ExecutionMode::Pipelined { workers: 2 },
            "finite kernel pipelined",
        ),
    ] {
        let k = kernels.run_with(mode).unwrap();
        let d = direct.run_with(mode).unwrap();
        assert_identical(&k, &d, what);
    }
}

#[test]
fn table_kernels_match_the_direct_machines_under_auto_policy() {
    // `Auto` is the shipped default; it must agree with `Disabled` too
    // (and with `Required`, by transitivity with the test above).
    let auto = kernel_experiment(KernelPolicy::Auto, None);
    let direct = kernel_experiment(KernelPolicy::Disabled, None);
    let a = auto.run_with(ExecutionMode::SinglePass).unwrap();
    let d = direct.run_with(ExecutionMode::SinglePass).unwrap();
    assert_identical(&a, &d, "auto-policy single-pass");
}

#[test]
fn wide_systems_agree_with_kernels_on_auto() {
    // 24 caches shrink the kernel's state budget enough that read-heavy
    // sharing can overflow it mid-run; the overflow path materializes a
    // machine from the table recipes and continues on the direct path,
    // which must stay bit-identical whether or not the budget trips.
    let wide = NamedWorkload::new(
        "wide",
        WorkloadConfig::builder()
            .cpus(24)
            .processes(24)
            .seed(11)
            .build()
            .expect("wide workload config is valid"),
    );
    let base = SimConfig::builder().sharing(SharingModel::PerProcessor);
    let auto = base
        .clone()
        .check_invariants(false)
        .kernels(KernelPolicy::Auto)
        .build()
        .unwrap();
    let direct = base
        .check_invariants(false)
        .kernels(KernelPolicy::Disabled)
        .build()
        .unwrap();
    let with_kernels = Experiment::new()
        .workload(wide.clone())
        .schemes(gauntlet())
        .refs_per_trace(10_000)
        .sim_config(auto);
    let without = Experiment::new()
        .workload(wide)
        .schemes(gauntlet())
        .refs_per_trace(10_000)
        .sim_config(direct);
    for (mode, what) in [
        (ExecutionMode::SinglePass, "wide single-pass"),
        (ExecutionMode::Sharded { workers: 4 }, "wide sharded"),
    ] {
        let k = with_kernels.run_with(mode).unwrap();
        let d = without.run_with(mode).unwrap();
        assert_identical(&k, &d, what);
    }
}

// ---------------------------------------------------------------------
// Corpus ingestion: the same trace served four ways — replayed from
// memory, buffered DTR1 decode, zero-copy mmap decode, and a DTR3
// pack/unpack round-trip — must be bit-identical across every engine
// shape (1 and 4 workers, inline and overlapped decode) for all 14
// schemes. The mmap source takes the borrowed-chunk path inline and the
// owned-buffer handshake when pipelined, so this round pins both.
// ---------------------------------------------------------------------

#[test]
fn corpus_round_is_bit_identical_across_sources_and_modes() {
    use dirsim::BroadcastSimulator;
    use dirsim_trace::corpus::{write_corpus, CorpusReader};
    use dirsim_trace::io::{read_binary, write_binary};
    use dirsim_trace::{IterSource, MmapTraceSource, TraceSource, TraceStats};
    use std::io::Write as _;

    const CORPUS_REFS: usize = 10_000;
    let refs: Vec<MemRef> = Scenario::named("pops")
        .unwrap()
        .workload()
        .take(CORPUS_REFS)
        .collect();
    let caches = TraceStats::from_refs(refs.iter().copied()).process_id_bound();
    let dir = std::env::temp_dir();
    let dtr = dir.join(format!("dirsim-equiv-corpus-{}.dtr", std::process::id()));
    let dtrz = dir.join(format!("dirsim-equiv-corpus-{}.dtrz", std::process::id()));
    {
        let mut out = std::io::BufWriter::new(std::fs::File::create(&dtr).unwrap());
        write_binary(&mut out, refs.iter().copied()).unwrap();
        out.flush().unwrap();
    }
    {
        // Pack the on-disk DTR1 into a DTR3 corpus, exactly as
        // `trace_tool pack` does.
        let src = read_binary(std::io::BufReader::new(std::fs::File::open(&dtr).unwrap()));
        let mut out = std::io::BufWriter::new(std::fs::File::create(&dtrz).unwrap());
        let packed = write_corpus(&mut out, src).unwrap();
        out.flush().unwrap();
        assert_eq!(packed as usize, CORPUS_REFS);
    }

    // Unpacking the corpus reproduces the original DTR1 byte for byte.
    {
        let mut src = CorpusReader::open(&dtrz).unwrap();
        let mut unpacked = Vec::new();
        let mut chunk = Vec::new();
        let mut writer = dirsim_trace::codec::BinaryWriter::new(Vec::new()).unwrap();
        while src.read_chunk(&mut chunk, 4096).unwrap() > 0 {
            for r in &chunk {
                writer.push(r).unwrap();
            }
        }
        let (bytes, count) = writer.finish().unwrap();
        unpacked.extend_from_slice(&bytes);
        assert_eq!(count as usize, CORPUS_REFS);
        assert_eq!(
            unpacked,
            std::fs::read(&dtr).unwrap(),
            "pack/unpack must round-trip the DTR1 bytes exactly"
        );
    }

    let schemes = gauntlet();
    let engine = |workers: usize| BroadcastSimulator::new(SimConfig::default()).workers(workers);
    let baseline = engine(1)
        .run(&schemes, caches, IterSource::new(refs.iter().copied()))
        .unwrap();

    for workers in [1, 4] {
        for overlapped in [false, true] {
            let run = |source: Box<dyn TraceSource + Send>| {
                if overlapped {
                    engine(workers).run_pipelined(&schemes, caches, source)
                } else {
                    engine(workers).run(&schemes, caches, source)
                }
            };
            let what = format!("workers={workers} overlapped={overlapped}");
            let buffered = run(Box::new(read_binary(std::io::BufReader::new(
                std::fs::File::open(&dtr).unwrap(),
            ))))
            .unwrap();
            assert_eq!(buffered, baseline, "buffered DTR1 ({what})");
            let mapped = run(Box::new(MmapTraceSource::open(&dtr).unwrap())).unwrap();
            assert_eq!(mapped, baseline, "mmap DTR1 ({what})");
            let corpus = run(Box::new(CorpusReader::open(&dtrz).unwrap())).unwrap();
            assert_eq!(corpus, baseline, "DTR3 corpus ({what})");
        }
    }
    std::fs::remove_file(&dtr).unwrap();
    std::fs::remove_file(&dtrz).unwrap();
}

#[test]
fn wide_finite_systems_agree_with_kernels_on_auto() {
    // The overflow fallback under a *finite* geometry: 64 caches shrink
    // the kernel's state budget to ~1365 states, and read-only traffic
    // over a wide shared pool makes every scheme's lane observe a fresh
    // holder subset per block (eviction pruning included), so DirnNB
    // trips the budget a few thousand references in. Kernel lanes carry
    // no finite-cache state of their own (the bank's shared replica
    // does), so the fallback must also reconstruct the lane's LRU
    // replica from the chunk-start snapshot — this pins that
    // reconstruction bit-identical in both the staged multi-lane decode
    // (single-pass, sharded) and the fused single-lane decode (serial).
    let wide = NamedWorkload::new(
        "wide-finite",
        WorkloadConfig::builder()
            .cpus(64)
            .processes(64)
            // Read-only traffic over a wide shared pool: every block
            // accumulates holders in its own insertion order, which is
            // exactly what mints fresh DirnNB states fastest.
            .instr_frac(0.0)
            .write_frac(0.0)
            .shared_frac(0.95)
            .shared_blocks_per_pool(256)
            .seed(13)
            .build()
            .expect("wide finite workload config is valid"),
    );
    let base = SimConfig::builder()
        .sharing(SharingModel::PerProcessor)
        .geometry(CacheGeometry { sets: 8, ways: 2 })
        .check_invariants(false);
    let auto = base.clone().kernels(KernelPolicy::Auto).build().unwrap();
    let direct = base.kernels(KernelPolicy::Disabled).build().unwrap();
    let schemes = vec![Scheme::dir_n_nb(), Scheme::CoarseVector, Scheme::Wti];
    let with_kernels = Experiment::new()
        .workload(wide.clone())
        .schemes(schemes.clone())
        .refs_per_trace(20_000)
        .sim_config(auto);
    let without = Experiment::new()
        .workload(wide)
        .schemes(schemes)
        .refs_per_trace(20_000)
        .sim_config(direct);
    for (mode, what) in [
        (ExecutionMode::Serial, "wide finite serial"),
        (ExecutionMode::SinglePass, "wide finite single-pass"),
        (ExecutionMode::Sharded { workers: 3 }, "wide finite sharded"),
    ] {
        let k = with_kernels.run_with(mode).unwrap();
        let d = without.run_with(mode).unwrap();
        assert_identical(&k, &d, what);
    }
}
