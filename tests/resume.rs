//! Crash-resume contract of the sweep orchestrator, end to end.
//!
//! Runs a real grid (> 100 cells) to completion, simulates a mid-run kill
//! by truncating the store in the middle of a record, re-runs the same
//! spec, and pins the three properties ISSUE #8 asks for:
//!
//! * records that survived the crash are **byte-identical** — resume never
//!   rewrites or reorders what is already stored;
//! * the re-run fills exactly the missing cells, so the store ends up
//!   covering the full grid;
//! * the report rendered from the resumed store equals the report from the
//!   uninterrupted run, bit for bit.

use std::fs;
use std::path::PathBuf;

use dirsim_sweep::{render_report, run_sweep, Store, SweepOptions, SweepSpec};

/// 7 schemes x 4 scenarios x 2 geometries x 2 cpu counts = 112 cells.
/// Scenario choice keeps trace generation cheap (no open-system queueing).
const GRID: &str = "\
schemes     = Dir0B, Dir1NB, Dir2NB, DirnNB, WTI, Dragon, Berkeley
scenarios   = pops, thor, pero, zipf-hot
geometries  = infinite, 16x2
cpus        = default, 8
refs        = 1_500
cost-models = pipelined, non-pipelined
";

fn temp_store(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "dirsim-sweep-resume-{}-{tag}.jsonl",
        std::process::id()
    ))
}

#[test]
fn killed_sweep_resumes_without_recomputing_or_rewriting() {
    let spec = SweepSpec::parse(GRID).unwrap();
    assert!(
        spec.cell_count() >= 100,
        "grid must exercise a real sweep, got {} cells",
        spec.cell_count()
    );

    // Uninterrupted run: the reference store and report.
    let path = temp_store("full");
    let _ = fs::remove_file(&path);
    let mut store = Store::open(&path).unwrap();
    let full = run_sweep(&spec, &mut store, &SweepOptions::default()).unwrap();
    assert_eq!(full.ran, spec.cell_count());
    assert_eq!(full.skipped, 0);
    let full_bytes = fs::read(&path).unwrap();
    let full_report = render_report(&spec, &store).unwrap();

    // Re-running the identical spec is a pure cache hit: nothing
    // simulated, not a byte written.
    let mut store = Store::open(&path).unwrap();
    let cached = run_sweep(&spec, &mut store, &SweepOptions::default()).unwrap();
    assert_eq!(cached.ran, 0, "a complete store must skip every cell");
    assert_eq!(cached.skipped, spec.cell_count());
    assert_eq!(cached.refs_simulated, 0);
    assert_eq!(fs::read(&path).unwrap(), full_bytes);
    drop(store);

    // Simulate a kill mid-write: truncate to ~60% of the file, landing in
    // the middle of a record (a torn final line).
    let cut = full_bytes.len() * 3 / 5;
    let file = fs::OpenOptions::new().write(true).open(&path).unwrap();
    file.set_len(cut as u64).unwrap();
    drop(file);
    let survived = full_bytes[..cut]
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |p| p + 1);

    // Resume: only the lost cells run again.
    let mut store = Store::open(&path).unwrap();
    let kept = store.len();
    assert!(
        kept > 0 && kept < spec.cell_count(),
        "cut must land mid-grid"
    );
    let resumed = run_sweep(&spec, &mut store, &SweepOptions::default()).unwrap();
    assert_eq!(resumed.skipped, kept, "surviving cells must not recompute");
    assert_eq!(resumed.ran, spec.cell_count() - kept);

    // Survivors are byte-identical (same bytes, same offsets), and the
    // store now covers the whole grid.
    let resumed_bytes = fs::read(&path).unwrap();
    assert_eq!(
        &resumed_bytes[..survived],
        &full_bytes[..survived],
        "resume must leave surviving records untouched"
    );
    let store = Store::open(&path).unwrap();
    assert_eq!(store.len(), spec.cell_count());
    for cell in spec.expand().unwrap() {
        assert!(store.contains(&cell.hash), "missing cell {}", cell.hash);
    }

    // And the report regenerated from the resumed store matches the
    // uninterrupted one exactly.
    assert_eq!(render_report(&spec, &store).unwrap(), full_report);

    fs::remove_file(&path).unwrap();
}
