//! Committed counterexample seeds.
//!
//! Every `tests/regressions/*.trace` file is a minimised counterexample
//! (or a hand-written boundary sequence) from a past checker run. Each
//! must keep replaying cleanly through the full engine — oracle and
//! invariant audit on — for every scheme in the gauntlet.

use std::fs;
use std::path::PathBuf;

use dirsim::{SimConfig, Simulator};
use dirsim_trace::MemRef;

fn regression_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/regressions")
}

fn seeds() -> Vec<(String, Vec<u8>)> {
    let mut seeds: Vec<(String, Vec<u8>)> = fs::read_dir(regression_dir())
        .expect("tests/regressions exists")
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            (path.extension().is_some_and(|e| e == "trace")).then(|| {
                (
                    path.file_name().unwrap().to_string_lossy().into_owned(),
                    fs::read(&path).expect("readable seed"),
                )
            })
        })
        .collect();
    seeds.sort();
    seeds
}

#[test]
fn regression_seeds_are_present_and_parse() {
    let seeds = seeds();
    assert!(
        seeds.len() >= 3,
        "expected the committed counterexample seeds, found {}",
        seeds.len()
    );
    for (name, bytes) in &seeds {
        let refs: Vec<MemRef> = dirsim_trace::io::read_text(&bytes[..])
            .collect::<Result<_, _>>()
            .unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
        assert!(!refs.is_empty(), "{name} is empty");
    }
}

#[test]
fn every_scheme_replays_every_seed_cleanly() {
    let config = SimConfig {
        check_oracle: true,
        check_invariants: true,
        ..SimConfig::default()
    };
    let sim = Simulator::new(config);
    for (name, bytes) in seeds() {
        let refs: Vec<MemRef> = dirsim_trace::io::read_text(&bytes[..])
            .collect::<Result<_, _>>()
            .unwrap();
        for scheme in dirsim_verify::gauntlet() {
            let mut protocol = scheme.build(3);
            sim.run(protocol.as_mut(), refs.iter().copied())
                .unwrap_or_else(|e| {
                    panic!(
                        "{}: seed {name} no longer replays cleanly: {e}",
                        scheme.name()
                    )
                });
        }
    }
}
