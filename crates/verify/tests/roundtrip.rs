//! Counterexample traces round-trip byte-identically through
//! `dirsim-trace::io` in both formats.

use dirsim_mem::{BlockAddr, CacheId};
use dirsim_trace::MemRef;
use dirsim_verify::{Counterexample, Failure, Step};

fn sample() -> Counterexample {
    Counterexample {
        scheme: "Dir1NB".to_string(),
        steps: vec![
            Step {
                cache: CacheId::new(0),
                block: BlockAddr::new(0),
                write: false,
            },
            Step {
                cache: CacheId::new(2),
                block: BlockAddr::new(1),
                write: true,
            },
            Step {
                cache: CacheId::new(1),
                block: BlockAddr::new(0),
                write: true,
            },
        ],
        failure: Failure::Oracle(dirsim_mem::OracleViolation::StaleRead {
            cache: CacheId::new(1),
            block: BlockAddr::new(0),
            copy_version: 0,
            latest: 1,
        }),
    }
}

#[test]
fn text_serialisation_is_a_fixed_point() {
    let refs = sample().to_refs();
    let mut first = Vec::new();
    dirsim_trace::io::write_text(&mut first, refs.iter().copied()).unwrap();
    let reread: Vec<MemRef> = dirsim_trace::io::read_text(&first[..])
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(reread, refs);
    let mut second = Vec::new();
    dirsim_trace::io::write_text(&mut second, reread).unwrap();
    assert_eq!(first, second, "write ∘ read must be the identity on bytes");
}

#[test]
fn binary_serialisation_is_a_fixed_point() {
    let refs = sample().to_refs();
    let mut first = Vec::new();
    dirsim_trace::io::write_binary(&mut first, refs.iter().copied()).unwrap();
    let reread: Vec<MemRef> = dirsim_trace::io::read_binary(&first[..])
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(reread, refs);
    let mut second = Vec::new();
    dirsim_trace::io::write_binary(&mut second, reread).unwrap();
    assert_eq!(first, second, "write ∘ read must be the identity on bytes");
}

#[test]
fn annotated_counterexample_reparses_to_the_same_refs() {
    // The `#` header the exporter writes is skipped by the reader, so the
    // annotated trace and the bare trace parse identically.
    let cx = sample();
    let mut annotated = Vec::new();
    cx.write_trace(&mut annotated).unwrap();
    let parsed: Vec<MemRef> = dirsim_trace::io::read_text(&annotated[..])
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(parsed, cx.to_refs());

    // Stripping the comments reproduces write_text's output byte for byte.
    let body: String = String::from_utf8(annotated)
        .unwrap()
        .lines()
        .filter(|l| !l.starts_with('#'))
        .map(|l| format!("{l}\n"))
        .collect();
    let mut bare = Vec::new();
    dirsim_trace::io::write_text(&mut bare, cx.to_refs()).unwrap();
    assert_eq!(body.into_bytes(), bare);
}
