//! The checker must catch every deliberately broken protocol, minimise
//! the failing sequence, and export a trace that replays the failure.

use dirsim::invariant::InvariantViolation;
use dirsim::{SimConfig, Simulator};
use dirsim_protocol::{CoherenceProtocol, DirSpec, Scheme};
use dirsim_trace::MemRef;
use dirsim_verify::mutants::{DroppedInvalidate, MisclassifiedHit};
use dirsim_verify::{explore, replay, CheckConfig, Failure};

fn bounds() -> CheckConfig {
    CheckConfig {
        caches: 3,
        blocks: 2,
        depth: 8,
    }
}

#[test]
fn dropped_invalidate_is_caught_and_minimised() {
    let cx = explore(
        "DroppedInvalidate",
        || Box::new(DroppedInvalidate::new(3)),
        &bounds(),
    )
    .expect_err("the checker must catch a lost invalidation");
    assert_eq!(
        cx.steps.len(),
        2,
        "minimal counterexample is two references"
    );
    assert!(
        matches!(
            cx.failure,
            Failure::Invariant(InvariantViolation::DirtyNotExclusive { .. })
        ),
        "expected the single-writer audit to fire, got: {}",
        cx.failure
    );
    // The counterexample replays: the same steps fail again from scratch…
    assert!(replay(|| Box::new(DroppedInvalidate::new(3)), &cx.steps).is_some());
    // …and every *correct* scheme sails through them.
    for scheme in dirsim_verify::gauntlet() {
        assert_eq!(
            replay(|| scheme.build(3), &cx.steps),
            None,
            "{} rejects the mutant's counterexample",
            scheme.name()
        );
    }
}

#[test]
fn misclassified_hit_is_caught_by_event_prediction() {
    let cx = explore(
        "MisclassifiedHit",
        || Box::new(MisclassifiedHit::new(3)),
        &bounds(),
    )
    .expect_err("the checker must catch the mispriced miss");
    assert!(
        matches!(
            cx.failure,
            Failure::Invariant(InvariantViolation::EventMismatch { .. })
        ),
        "expected the event audit to fire, got: {}",
        cx.failure
    );
    assert_eq!(cx.steps.len(), 2);
}

#[test]
fn exported_counterexample_trace_replays_through_the_engine() {
    let cx = explore(
        "DroppedInvalidate",
        || Box::new(DroppedInvalidate::new(3)),
        &bounds(),
    )
    .expect_err("mutant must be caught");
    let mut bytes = Vec::new();
    cx.write_trace(&mut bytes).unwrap();
    let refs: Vec<MemRef> = dirsim_trace::io::read_text(&bytes[..])
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(refs, cx.to_refs());

    // Replaying the exported trace through the full simulation engine
    // (oracle + invariant audit on) is clean for the real full map…
    let config = SimConfig {
        check_oracle: true,
        check_invariants: true,
        ..SimConfig::default()
    };
    let sim = Simulator::new(config);
    let mut good: Box<dyn CoherenceProtocol> = Scheme::Directory(DirSpec::dir_n_nb()).build(3);
    sim.run(good.as_mut(), refs.iter().copied())
        .expect("the correct protocol replays the counterexample cleanly");

    // …and trips the engine's own audit for the mutant.
    let mut bad = DroppedInvalidate::new(3);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sim.run(&mut bad, refs.iter().copied())
    }));
    assert!(
        caught.is_err() || caught.is_ok_and(|r| r.is_err()),
        "the engine must reject the mutant on its own counterexample"
    );
}
