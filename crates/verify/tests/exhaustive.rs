//! Acceptance bounds: every scheme in the gauntlet is exhaustively clean
//! at (caches = 3, blocks = 2, depth = 8), and the search closes well
//! before the depth bound.

use dirsim_verify::explore::explore_gauntlet;
use dirsim_verify::CheckConfig;

#[test]
fn every_scheme_is_clean_at_the_acceptance_bounds() {
    let cfg = CheckConfig {
        caches: 3,
        blocks: 2,
        depth: 8,
    };
    let reports = explore_gauntlet(&cfg).unwrap_or_else(|cx| panic!("violation found:\n{cx}"));
    assert_eq!(reports.len(), dirsim_verify::gauntlet().len());
    for (name, report) in &reports {
        assert!(report.states > 1, "{name}: trivial state space");
        // The reachable space closes before the bound — depth 8 is truly
        // exhaustive, not a truncation.
        assert!(
            report.frontier_depth < cfg.depth,
            "{name}: still discovering states at the depth bound \
             (frontier {}), the bounds are not exhaustive",
            report.frontier_depth
        );
    }
}

#[test]
fn limited_pointer_schemes_reach_fewer_states_than_full_map() {
    // Dir1NB keeps at most one sharer per block, so its reachable space is
    // strictly poorer than the full map's — a structural sanity check that
    // the snapshot really reflects pointer capacity.
    let cfg = CheckConfig {
        caches: 3,
        blocks: 1,
        depth: 8,
    };
    let reports = explore_gauntlet(&cfg).unwrap();
    let states = |wanted: &str| {
        reports
            .iter()
            .find(|(name, _)| name == wanted)
            .unwrap_or_else(|| panic!("{wanted} missing from gauntlet"))
            .1
            .states
    };
    assert!(states("Dir1NB") < states("DirnNB"));
    assert_eq!(states("Dir0B"), states("DirnNB"));
}
