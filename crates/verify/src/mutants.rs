//! Deliberately broken protocols the checker must catch.
//!
//! A model checker that has never failed proves nothing. Each mutant here
//! plants one realistic protocol bug; `explore` must find it, minimise it,
//! and export a replayable counterexample. The mutants double as living
//! documentation of *which* audit layer catches *which* class of bug:
//!
//! * [`DroppedInvalidate`] — a full-map copy-back directory that forgets
//!   to invalidate the most recently added sharer on clean writes. The
//!   event classification and fan-out it reports look plausible; only the
//!   post-state structural audit (`DirtyNotExclusive`) sees the lost
//!   invalidation, two references in.
//! * [`MisclassifiedHit`] — a correct `Dir_nNB` machine whose *reporting*
//!   is wrong: clean read misses are booked as read hits, silently zeroing
//!   their cost. State stays coherent forever; only the event-prediction
//!   audit (`EventMismatch`) can catch it.

use std::collections::HashMap;

use dirsim_mem::{BlockAddr, CacheId};
use dirsim_protocol::directory::{DirSpec, DirectoryProtocol};
use dirsim_protocol::{
    BlockProbe, BlockState, CoherenceProtocol, DataMovement, EventKind, RefOutcome, StateSnapshot,
};

#[derive(Debug, Clone, Default)]
struct Entry {
    holders: Vec<CacheId>,
    dirty: bool,
}

/// Full-map copy-back directory that fails to invalidate the newest
/// remote sharer on clean writes.
#[derive(Debug, Clone)]
pub struct DroppedInvalidate {
    caches: u32,
    blocks: HashMap<BlockAddr, Entry>,
}

impl DroppedInvalidate {
    /// Creates the mutant for `caches` caches.
    pub fn new(caches: u32) -> Self {
        DroppedInvalidate {
            caches,
            blocks: HashMap::new(),
        }
    }
}

impl CoherenceProtocol for DroppedInvalidate {
    fn name(&self) -> String {
        "DroppedInvalidate".to_string()
    }

    fn cache_count(&self) -> u32 {
        self.caches
    }

    fn on_data_ref(&mut self, cache: CacheId, block: BlockAddr, write: bool) -> RefOutcome {
        let first_ref = !self.blocks.contains_key(&block);
        let e = self.blocks.entry(block).or_default();
        let resident = e.holders.contains(&cache);
        let remote: Vec<CacheId> = e.holders.iter().copied().filter(|&h| h != cache).collect();
        let mut out = RefOutcome::default();
        if !write {
            if resident {
                out.event = Some(EventKind::RdHit);
            } else if first_ref {
                out.event = Some(EventKind::RmFirstRef);
                out.movements.push(DataMovement::FillFromMemory { cache });
                e.holders.push(cache);
            } else if e.dirty {
                let owner = e.holders[0];
                out.event = Some(EventKind::RmBlkDrty);
                out.movements.push(DataMovement::WriteBack { cache: owner });
                out.movements.push(DataMovement::FillFromCache {
                    cache,
                    supplier: owner,
                });
                e.dirty = false;
                e.holders.push(cache);
            } else {
                out.event = Some(EventKind::RmBlkCln);
                out.movements.push(DataMovement::FillFromMemory { cache });
                e.holders.push(cache);
            }
            return out;
        }
        if first_ref {
            out.event = Some(EventKind::WmFirstRef);
            out.movements.push(DataMovement::FillFromMemory { cache });
            out.movements.push(DataMovement::CacheWrite { cache });
            e.holders.push(cache);
            e.dirty = true;
        } else if resident && e.dirty {
            out.event = Some(EventKind::WhBlkDrty);
            out.movements.push(DataMovement::CacheWrite { cache });
        } else if resident {
            out.event = Some(EventKind::WhBlkCln);
            out.clean_write_fanout = Some(remote.len() as u32);
            // THE BUG: the last remote sharer is never invalidated — its
            // stale copy lives on while the block goes dirty here.
            for &victim in remote.iter().rev().skip(1) {
                out.movements
                    .push(DataMovement::Invalidate { cache: victim });
            }
            e.holders
                .retain(|&h| h == cache || remote.last() == Some(&h));
            out.movements.push(DataMovement::CacheWrite { cache });
            e.dirty = true;
        } else if e.dirty {
            let owner = e.holders[0];
            out.event = Some(EventKind::WmBlkDrty);
            out.movements.push(DataMovement::WriteBack { cache: owner });
            out.movements.push(DataMovement::FillFromCache {
                cache,
                supplier: owner,
            });
            out.movements
                .push(DataMovement::Invalidate { cache: owner });
            out.movements.push(DataMovement::CacheWrite { cache });
            e.holders.clear();
            e.holders.push(cache);
            e.dirty = true;
        } else {
            out.event = Some(EventKind::WmBlkCln);
            out.clean_write_fanout = Some(remote.len() as u32);
            out.movements.push(DataMovement::FillFromMemory { cache });
            // THE BUG, again, on the miss path.
            for &victim in remote.iter().rev().skip(1) {
                out.movements
                    .push(DataMovement::Invalidate { cache: victim });
            }
            e.holders.retain(|&h| remote.last() == Some(&h));
            out.movements.push(DataMovement::CacheWrite { cache });
            e.holders.push(cache);
            e.dirty = true;
        }
        out
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> RefOutcome {
        let mut out = RefOutcome::default();
        if let Some(e) = self.blocks.get_mut(&block) {
            if e.holders.contains(&cache) {
                if e.dirty {
                    out.movements.push(DataMovement::WriteBack { cache });
                    e.dirty = false;
                }
                out.movements.push(DataMovement::Invalidate { cache });
                e.holders.retain(|&h| h != cache);
            }
        }
        out
    }

    fn probe(&self, block: BlockAddr) -> Option<BlockProbe> {
        self.blocks.get(&block).map(|e| BlockProbe {
            holders: e.holders.clone(),
            dirty: e.dirty,
        })
    }

    fn tracked_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn snapshot(&self) -> StateSnapshot {
        StateSnapshot::from_blocks(
            self.blocks
                .iter()
                .map(|(&block, e)| BlockState::basic(block, e.holders.clone(), e.dirty))
                .collect(),
        )
    }

    fn block_state(&self, block: BlockAddr) -> Option<BlockState> {
        self.blocks
            .get(&block)
            .map(|e| BlockState::basic(block, e.holders.clone(), e.dirty))
    }

    fn boxed_clone(&self) -> Box<dyn CoherenceProtocol> {
        Box::new(self.clone())
    }
}

/// A correct `Dir_nNB` machine whose event reporting books clean read
/// misses as read hits.
#[derive(Debug, Clone)]
pub struct MisclassifiedHit {
    inner: DirectoryProtocol,
}

impl MisclassifiedHit {
    /// Creates the mutant for `caches` caches.
    pub fn new(caches: u32) -> Self {
        MisclassifiedHit {
            inner: DirectoryProtocol::new(DirSpec::dir_n_nb(), caches),
        }
    }
}

impl CoherenceProtocol for MisclassifiedHit {
    fn name(&self) -> String {
        "MisclassifiedHit".to_string()
    }

    fn cache_count(&self) -> u32 {
        self.inner.cache_count()
    }

    fn on_data_ref(&mut self, cache: CacheId, block: BlockAddr, write: bool) -> RefOutcome {
        let mut out = self.inner.on_data_ref(cache, block, write);
        if out.event == Some(EventKind::RmBlkCln) {
            // THE BUG: a coherence miss priced as a free hit.
            out.event = Some(EventKind::RdHit);
        }
        out
    }

    fn evict(&mut self, cache: CacheId, block: BlockAddr) -> RefOutcome {
        self.inner.evict(cache, block)
    }

    fn probe(&self, block: BlockAddr) -> Option<BlockProbe> {
        self.inner.probe(block)
    }

    fn tracked_blocks(&self) -> usize {
        self.inner.tracked_blocks()
    }

    fn snapshot(&self) -> StateSnapshot {
        self.inner.snapshot()
    }

    fn block_state(&self, block: BlockAddr) -> Option<BlockState> {
        self.inner.block_state(block)
    }

    fn boxed_clone(&self) -> Box<dyn CoherenceProtocol> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> CacheId {
        CacheId::new(i)
    }

    const B: BlockAddr = BlockAddr::new(0);

    #[test]
    fn dropped_invalidate_leaves_a_stale_sharer() {
        let mut p = DroppedInvalidate::new(3);
        p.on_data_ref(c(1), B, false);
        p.on_data_ref(c(0), B, true);
        let probe = p.probe(B).unwrap();
        assert!(probe.dirty);
        assert_eq!(probe.holders.len(), 2, "the stale sharer was kept");
    }

    #[test]
    fn misclassified_hit_reports_rd_hit_for_a_clean_miss() {
        let mut p = MisclassifiedHit::new(3);
        p.on_data_ref(c(0), B, false);
        let out = p.on_data_ref(c(1), B, false);
        assert_eq!(out.event, Some(EventKind::RdHit));
    }
}
