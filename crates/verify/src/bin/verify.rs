//! `verify` — exhaustive model checking of every dirsim coherence scheme.
//!
//! ```text
//! verify [--caches N] [--blocks N] [--depth N] [--diff-depth N]
//!        [--scheme NAME]... [--out DIR] [--mutants] [--skip-diff]
//! ```
//!
//! Explores every reference interleaving of each scheme under the given
//! bounds, auditing the invariant catalogue and the shadow-memory oracle
//! on every transition, then replays all bounded sequences through every
//! scheme in lockstep (differential check). On a violation the minimised
//! counterexample is written as a replayable text trace under `--out` and
//! the process exits non-zero.
//!
//! `--mutants` is the self-test: it runs the checker against the
//! deliberately broken protocols in `dirsim_verify::mutants` and fails if
//! any of them *survives*.

use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dirsim_obs::ProgressMeter;
use dirsim_protocol::{CoherenceProtocol, Scheme};
use dirsim_verify::{differential, explore_observed, mutants, CheckConfig, Counterexample};

struct Options {
    check: CheckConfig,
    diff_depth: u32,
    schemes: Vec<Scheme>,
    out: PathBuf,
    run_mutants: bool,
    skip_diff: bool,
    progress: bool,
}

fn usage() -> &'static str {
    "usage: verify [--caches N] [--blocks N] [--depth N] [--diff-depth N]\n\
     \x20             [--scheme NAME]... [--out DIR] [--mutants] [--skip-diff]\n\
     \x20             [--progress]\n\
     \n\
     Exhaustively checks every reachable protocol state under the bounds\n\
     (defaults: --caches 3 --blocks 2 --depth 8 --diff-depth 5), then\n\
     cross-checks all schemes in lockstep. Counterexample traces are\n\
     written to --out (default: current directory). --progress reports\n\
     BFS throughput (states/sec and frontier depth) on stderr."
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        check: CheckConfig::default(),
        diff_depth: 5,
        schemes: Vec::new(),
        out: PathBuf::from("."),
        run_mutants: false,
        skip_diff: false,
        progress: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--caches" => {
                opts.check.caches = value("--caches")?
                    .parse()
                    .map_err(|_| "--caches must be a number".to_string())?;
            }
            "--blocks" => {
                opts.check.blocks = value("--blocks")?
                    .parse()
                    .map_err(|_| "--blocks must be a number".to_string())?;
            }
            "--depth" => {
                opts.check.depth = value("--depth")?
                    .parse()
                    .map_err(|_| "--depth must be a number".to_string())?;
            }
            "--diff-depth" => {
                opts.diff_depth = value("--diff-depth")?
                    .parse()
                    .map_err(|_| "--diff-depth must be a number".to_string())?;
            }
            "--scheme" => {
                let name = value("--scheme")?;
                opts.schemes.push(name.parse().map_err(|e| format!("{e}"))?);
            }
            "--out" => opts.out = PathBuf::from(value("--out")?),
            "--mutants" => opts.run_mutants = true,
            "--skip-diff" => opts.skip_diff = true,
            "--progress" => opts.progress = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if opts.check.caches == 0 || opts.check.blocks == 0 {
        return Err("--caches and --blocks must be at least 1".to_string());
    }
    Ok(opts)
}

fn dump_counterexample(out_dir: &Path, cx: &Counterexample) {
    let slug: String = cx
        .scheme
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '-' })
        .collect();
    let path = out_dir.join(format!("counterexample-{slug}.trace"));
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("  failed to create {}: {e}", out_dir.display());
        return;
    }
    match File::create(&path) {
        Ok(file) => {
            let mut w = BufWriter::new(file);
            match cx.write_trace(&mut w) {
                Ok(()) => eprintln!("  counterexample trace written to {}", path.display()),
                Err(e) => eprintln!("  failed to write {}: {e}", path.display()),
            }
        }
        Err(e) => eprintln!("  failed to create {}: {e}", path.display()),
    }
}

fn run(opts: &Options) -> bool {
    let mut ok = true;
    let schemes = if opts.schemes.is_empty() {
        dirsim_verify::gauntlet()
    } else {
        opts.schemes.clone()
    };

    println!(
        "exploring {} scheme(s) at caches={} blocks={} depth={}",
        schemes.len(),
        opts.check.caches,
        opts.check.blocks,
        opts.check.depth
    );
    let meter = |enabled: bool| {
        if enabled {
            ProgressMeter::stderr("states", std::time::Duration::from_millis(500))
        } else {
            ProgressMeter::disabled()
        }
    };
    for scheme in &schemes {
        let name = scheme.name();
        match explore_observed(
            &name,
            || scheme.build(opts.check.caches),
            &opts.check,
            &mut meter(opts.progress),
        ) {
            Ok(report) => println!(
                "  {name:<14} ok: {} states, {} transitions, frontier depth {}",
                report.states, report.transitions, report.frontier_depth
            ),
            Err(cx) => {
                ok = false;
                println!("  {name:<14} VIOLATION: {}", cx.failure);
                print!("{cx}");
                dump_counterexample(&opts.out, &cx);
            }
        }
    }

    if !opts.skip_diff {
        let diff_cfg = CheckConfig {
            depth: opts.diff_depth,
            ..opts.check
        };
        println!(
            "differential lockstep at caches={} blocks={} depth={}",
            diff_cfg.caches, diff_cfg.blocks, diff_cfg.depth
        );
        match differential(&diff_cfg) {
            Ok(report) => println!(
                "  all schemes agree: {} joint states, {} transitions, {} checks",
                report.states, report.transitions, report.checks
            ),
            Err(d) => {
                ok = false;
                print!("  DIVERGENCE: {d}");
            }
        }
    }

    if opts.run_mutants {
        println!("mutant self-test (each must be caught)");
        type MutantBuilder = fn(u32) -> Box<dyn CoherenceProtocol>;
        let mutant_builders: Vec<(&str, MutantBuilder)> = vec![
            ("DroppedInvalidate", |caches| {
                Box::new(mutants::DroppedInvalidate::new(caches))
            }),
            ("MisclassifiedHit", |caches| {
                Box::new(mutants::MisclassifiedHit::new(caches))
            }),
        ];
        for (name, build) in mutant_builders {
            match explore_observed(
                name,
                || build(opts.check.caches),
                &opts.check,
                &mut meter(opts.progress),
            ) {
                Ok(_) => {
                    ok = false;
                    println!("  {name:<18} NOT CAUGHT — the checker is blind to this bug");
                }
                Err(cx) => {
                    println!(
                        "  {name:<18} caught in {} step(s): {}",
                        cx.steps.len(),
                        cx.failure
                    );
                    dump_counterexample(&opts.out, &cx);
                }
            }
        }
    }
    ok
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if run(&opts) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
