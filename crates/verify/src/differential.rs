//! Lockstep differential checking across schemes.
//!
//! All directory organisations in the paper implement the *same*
//! multiple-readers/single-writer policy — they differ in how the
//! directory is organised and priced, not in what sharing states are
//! reachable. [`differential`] makes that claim mechanical: it replays
//! every bounded reference sequence through every scheme at once and
//! asserts, after each reference, that
//!
//! * **full-knowledge invalidation schemes** (full-map, broadcast,
//!   coarse-vector, duplicate-tag, snoopy invalidate) agree exactly with
//!   the `Dir_nNB` reference on the sharing set and dirty bit;
//! * **write-through** (`WTI`) agrees on the sharing set (its "dirty" bit
//!   means written-exclusive, so it is excluded from the dirty check);
//! * **limited no-broadcast schemes** (`Dir_iNB`) hold a *subset* of the
//!   reference sharing set that always contains the referencing cache,
//!   with the same dirty bit;
//! * **update schemes** (`Dragon`, `DirUpd`) agree with each other.
//!
//! Like [`crate::explore`](mod@crate::explore), joint states are deduplicated so the search
//! closes over the reachable joint state space.

use std::collections::{HashSet, VecDeque};

use dirsim_mem::{BlockAddr, CanonicalBlock, ShadowMemory};
use dirsim_protocol::directory::PointerCapacity;
use dirsim_protocol::{CoherenceProtocol, Scheme, StateSnapshot};

use crate::{apply_step, CheckConfig, Step};

/// Semantic class a scheme is compared under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    /// Exact agreement with the full-map reference (holders + dirty).
    FullInvalidate,
    /// Subset of the reference holders, containing the referencer.
    LimitedInvalidate,
    /// Exact holder agreement; dirty bit has write-through semantics.
    WriteThrough,
    /// Exact agreement with the update-family reference.
    Update,
}

fn classify(scheme: Scheme, caches: u32) -> Class {
    match scheme {
        Scheme::Wti => Class::WriteThrough,
        Scheme::Dragon | Scheme::DirUpdate => Class::Update,
        Scheme::Directory(spec) => {
            let limited = matches!(spec.pointers(), PointerCapacity::Limited(i) if i < caches);
            if limited && !spec.allows_broadcast() {
                Class::LimitedInvalidate
            } else {
                Class::FullInvalidate
            }
        }
        _ => Class::FullInvalidate,
    }
}

struct Entrant {
    name: String,
    class: Class,
    protocol: Box<dyn CoherenceProtocol>,
    oracle: ShadowMemory,
}

impl Entrant {
    fn fork(&self) -> Entrant {
        Entrant {
            name: self.name.clone(),
            class: self.class,
            protocol: self.protocol.boxed_clone(),
            oracle: self.oracle.clone(),
        }
    }
}

struct Node {
    entrants: Vec<Entrant>,
    path: Vec<Step>,
}

/// Statistics from one completed (divergence-free) differential run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiffReport {
    /// Distinct joint states reached.
    pub states: usize,
    /// Joint transitions taken.
    pub transitions: u64,
    /// Cross-scheme agreement checks performed.
    pub checks: u64,
}

/// A scheme disagreeing with its reference after a reference sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The scheme that diverged (or failed its own audit).
    pub scheme: String,
    /// The (minimised) sequence that exposes the divergence.
    pub steps: Vec<Step>,
    /// Human-readable description of the disagreement.
    pub reason: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} diverged: {}", self.scheme, self.reason)?;
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(f, "  {i}: {step}")?;
        }
        Ok(())
    }
}

fn fresh_entrants(caches: u32) -> Vec<Entrant> {
    crate::gauntlet()
        .into_iter()
        .map(|scheme| Entrant {
            name: scheme.name(),
            class: classify(scheme, caches),
            protocol: scheme.build(caches),
            oracle: ShadowMemory::new(),
        })
        .collect()
}

fn sorted_holders(protocol: &dyn CoherenceProtocol, block: BlockAddr) -> (Vec<usize>, bool) {
    match protocol.probe(block) {
        Some(probe) => {
            let mut holders: Vec<usize> = probe.holders.iter().map(|c| c.index()).collect();
            holders.sort_unstable();
            (holders, probe.dirty)
        }
        None => (Vec::new(), false),
    }
}

/// Applies `step` to every entrant and checks cross-scheme agreement on
/// the touched block. Returns a reason string on divergence.
fn step_and_compare(
    entrants: &mut [Entrant],
    step: Step,
    checks: &mut u64,
) -> Result<(), (String, String)> {
    for entrant in entrants.iter_mut() {
        if let Err(failure) = apply_step(entrant.protocol.as_mut(), &mut entrant.oracle, step) {
            return Err((entrant.name.clone(), format!("audit failure: {failure}")));
        }
    }
    let reference = entrants
        .iter()
        .find(|e| e.class == Class::FullInvalidate)
        .expect("gauntlet contains the full-map reference");
    let (ref_holders, ref_dirty) = sorted_holders(reference.protocol.as_ref(), step.block);
    let update_reference = entrants
        .iter()
        .find(|e| e.class == Class::Update)
        .expect("gauntlet contains an update-family reference");
    let (upd_holders, upd_dirty) = sorted_holders(update_reference.protocol.as_ref(), step.block);

    for entrant in entrants.iter() {
        let (holders, dirty) = sorted_holders(entrant.protocol.as_ref(), step.block);
        *checks += 1;
        let agrees = match entrant.class {
            Class::FullInvalidate => holders == ref_holders && dirty == ref_dirty,
            Class::WriteThrough => holders == ref_holders,
            Class::LimitedInvalidate => {
                holders.iter().all(|h| ref_holders.contains(h))
                    && holders.contains(&step.cache.index())
                    && dirty == ref_dirty
            }
            Class::Update => holders == upd_holders && dirty == upd_dirty,
        };
        if !agrees {
            let (exp_holders, exp_dirty) = if entrant.class == Class::Update {
                (&upd_holders, upd_dirty)
            } else {
                (&ref_holders, ref_dirty)
            };
            return Err((
                entrant.name.clone(),
                format!(
                    "after {step}: holders {holders:?} dirty {dirty} vs reference \
                     holders {exp_holders:?} dirty {exp_dirty} ({:?})",
                    entrant.class
                ),
            ));
        }
    }
    Ok(())
}

fn joint_key(entrants: &[Entrant]) -> Vec<(StateSnapshot, Vec<CanonicalBlock>)> {
    entrants
        .iter()
        .map(|e| (e.protocol.snapshot(), e.oracle.canonical()))
        .collect()
}

fn diff_replay(caches: u32, steps: &[Step]) -> Option<(usize, String, String)> {
    let mut entrants = fresh_entrants(caches);
    let mut checks = 0u64;
    for (i, &step) in steps.iter().enumerate() {
        if let Err((scheme, reason)) = step_and_compare(&mut entrants, step, &mut checks) {
            return Some((i, scheme, reason));
        }
    }
    None
}

fn minimize_divergence(caches: u32, steps: &[Step]) -> Divergence {
    let (idx, mut scheme, mut reason) =
        diff_replay(caches, steps).expect("minimisation requires a diverging sequence");
    let mut current: Vec<Step> = steps[..=idx].to_vec();
    loop {
        let mut shrunk = false;
        for i in 0..current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if let Some((j, s, r)) = diff_replay(caches, &candidate) {
                candidate.truncate(j + 1);
                current = candidate;
                scheme = s;
                reason = r;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return Divergence {
                scheme,
                steps: current,
                reason,
            };
        }
    }
}

/// Replays every bounded reference sequence through all gauntlet schemes
/// in lockstep, asserting cross-scheme sharing/dirty agreement after each
/// reference.
///
/// # Errors
///
/// Returns the minimised [`Divergence`] for the first disagreement (or
/// per-scheme audit failure) found.
pub fn differential(cfg: &CheckConfig) -> Result<DiffReport, Box<Divergence>> {
    let alphabet = cfg.alphabet();
    let mut report = DiffReport::default();
    let mut visited = HashSet::new();
    let mut queue: VecDeque<Node> = VecDeque::new();

    let root = Node {
        entrants: fresh_entrants(cfg.caches),
        path: Vec::new(),
    };
    visited.insert(joint_key(&root.entrants));
    queue.push_back(root);
    report.states = 1;

    while let Some(node) = queue.pop_front() {
        if node.path.len() as u32 >= cfg.depth {
            continue;
        }
        for &step in &alphabet {
            let mut entrants: Vec<Entrant> = node.entrants.iter().map(Entrant::fork).collect();
            report.transitions += 1;
            if step_and_compare(&mut entrants, step, &mut report.checks).is_err() {
                let mut failing = node.path.clone();
                failing.push(step);
                return Err(Box::new(minimize_divergence(cfg.caches, &failing)));
            }
            let key = joint_key(&entrants);
            if visited.insert(key) {
                report.states += 1;
                let mut path = node.path.clone();
                path.push(step);
                queue.push_back(Node { entrants, path });
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirsim_mem::CacheId;
    use dirsim_protocol::DirSpec;

    #[test]
    fn classifies_the_gauntlet() {
        assert_eq!(
            classify(Scheme::Directory(DirSpec::dir_n_nb()), 4),
            Class::FullInvalidate
        );
        assert_eq!(
            classify(Scheme::Directory(DirSpec::dir0_b()), 4),
            Class::FullInvalidate
        );
        assert_eq!(
            classify(Scheme::Directory(DirSpec::dir1_nb()), 4),
            Class::LimitedInvalidate
        );
        assert_eq!(classify(Scheme::Wti, 4), Class::WriteThrough);
        assert_eq!(classify(Scheme::Dragon, 4), Class::Update);
        assert_eq!(classify(Scheme::DirUpdate, 4), Class::Update);
    }

    #[test]
    fn all_schemes_agree_on_a_tiny_system() {
        let report = differential(&CheckConfig {
            caches: 2,
            blocks: 1,
            depth: 4,
        })
        .unwrap();
        assert!(report.checks > 0);
        assert!(report.states > 1);
    }

    #[test]
    fn a_diverging_sequence_is_reported_and_minimised() {
        // Manufacture a divergence by replaying a sequence against a
        // sabotaged entrant set: full-map reference vs. a mutant that
        // forgets invalidations.
        let steps = [
            Step {
                cache: CacheId::new(1),
                block: BlockAddr::new(0),
                write: false,
            },
            Step {
                cache: CacheId::new(0),
                block: BlockAddr::new(0),
                write: true,
            },
        ];
        let mut entrants = vec![
            Entrant {
                name: "DirnNB".to_string(),
                class: Class::FullInvalidate,
                protocol: Scheme::Directory(DirSpec::dir_n_nb()).build(2),
                oracle: ShadowMemory::new(),
            },
            Entrant {
                name: "Dragon".to_string(),
                class: Class::Update,
                protocol: Scheme::Dragon.build(2),
                oracle: ShadowMemory::new(),
            },
            Entrant {
                name: "Mutant".to_string(),
                class: Class::FullInvalidate,
                protocol: Box::new(crate::mutants::DroppedInvalidate::new(2)),
                oracle: ShadowMemory::new(),
            },
        ];
        let mut checks = 0;
        let mut diverged = None;
        for &step in &steps {
            if let Err(hit) = step_and_compare(&mut entrants, step, &mut checks) {
                diverged = Some(hit);
                break;
            }
        }
        let (scheme, _reason) = diverged.expect("the mutant must diverge");
        assert_eq!(scheme, "Mutant");
    }
}
