//! Exhaustive protocol model checking for the `Dir_iB`/`Dir_iNB` family.
//!
//! The simulation engine audits protocol invariants *along one trace*; this
//! crate closes the gap by checking them on **every reachable state** of a
//! small system. Three layers:
//!
//! * [`explore`](mod@explore) — breadth-first reachability over all interleavings of
//!   read/write references for a bounded configuration (caches × blocks ×
//!   depth), asserting the full invariant catalogue of
//!   [`dirsim::invariant`] plus shadow-memory oracle agreement on every
//!   transition.
//! * [`differential`](mod@differential) — lockstep replay of every bounded reference
//!   sequence through *all* schemes at once, asserting that the different
//!   directory organisations agree on sharing-set and dirty semantics
//!   (full-map, broadcast, and snoopy schemes exactly; limited-pointer
//!   schemes as a subset).
//! * [`mutants`] — deliberately broken protocols that the checker must
//!   catch, demonstrating each audit actually bites.
//!
//! A violation is minimised to the shortest failing reference sequence and
//! exported as a replayable [`dirsim-trace`](dirsim_trace) text trace; see
//! [`Counterexample`]. Committed counterexamples live in
//! `tests/regressions/` and are replayed against every scheme in CI.

use std::fmt;
use std::io::Write;

use dirsim::invariant::{self, InvariantViolation};
use dirsim_mem::{BlockAddr, BlockMap, CacheId, OracleViolation, ShadowMemory};
use dirsim_protocol::{CoherenceProtocol, DirSpec, Scheme};
use dirsim_trace::io::TraceIoError;
use dirsim_trace::{CpuId, MemRef, ProcessId};

pub mod differential;
pub mod explore;
pub mod mutants;

pub use differential::{differential, DiffReport, Divergence};
pub use explore::{explore, explore_observed, ExploreReport};

/// Bounds for one exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Number of caches in the modelled system.
    pub caches: u32,
    /// Number of distinct blocks references may touch.
    pub blocks: u64,
    /// Maximum reference-sequence length explored.
    pub depth: u32,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            caches: 3,
            blocks: 2,
            depth: 8,
        }
    }
}

impl CheckConfig {
    /// Every possible single reference under these bounds, in a fixed
    /// enumeration order (cache-major, then block, then read/write).
    pub fn alphabet(&self) -> Vec<Step> {
        let mut steps = Vec::with_capacity(self.caches as usize * self.blocks as usize * 2);
        for cache in 0..self.caches {
            for block in 0..self.blocks {
                for write in [false, true] {
                    steps.push(Step {
                        cache: CacheId::new(cache),
                        block: BlockAddr::new(block),
                        write,
                    });
                }
            }
        }
        steps
    }

    /// Every possible capacity eviction under these bounds, in the same
    /// cache-major, then block, enumeration order as [`Self::alphabet`].
    /// Static table extraction appends these to the reference alphabet so
    /// the finite-cache `evict` path is part of the extracted relation.
    pub fn eviction_alphabet(&self) -> Vec<(CacheId, BlockAddr)> {
        let mut evictions = Vec::with_capacity(self.caches as usize * self.blocks as usize);
        for cache in 0..self.caches {
            for block in 0..self.blocks {
                evictions.push((CacheId::new(cache), BlockAddr::new(block)));
            }
        }
        evictions
    }
}

/// One reference in a checked sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Step {
    /// The referencing cache.
    pub cache: CacheId,
    /// The referenced block.
    pub block: BlockAddr,
    /// Write (`true`) or read (`false`).
    pub write: bool,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}",
            if self.write { "write" } else { "read" },
            self.block,
            self.cache
        )
    }
}

/// Why a checked sequence failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Failure {
    /// A protocol invariant from the [`dirsim::invariant`] catalogue.
    Invariant(InvariantViolation),
    /// The shadow-memory oracle rejected a data movement or final read.
    Oracle(OracleViolation),
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Invariant(v) => write!(f, "invariant: {v}"),
            Failure::Oracle(v) => write!(f, "oracle: {v}"),
        }
    }
}

/// A minimised failing reference sequence for one scheme.
///
/// The last step of `steps` is the reference on which `failure` fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Name of the failing protocol.
    pub scheme: String,
    /// The shortest failing sequence found (minimised by greedy deltas).
    pub steps: Vec<Step>,
    /// The violation the final step triggers.
    pub failure: Failure,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {}", self.scheme, self.failure)?;
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(f, "  {i}: {step}")?;
        }
        Ok(())
    }
}

impl Counterexample {
    /// Renders the sequence as engine-replayable memory references.
    ///
    /// Cache *k* becomes CPU *k* / process *k* (so the trace replays
    /// identically under either sharing model), and each block maps to the
    /// base address of the paper's 16-byte block at the same index.
    pub fn to_refs(&self) -> Vec<MemRef> {
        let map = BlockMap::paper();
        self.steps
            .iter()
            .map(|s| {
                let cpu = CpuId::new(s.cache.index() as u16);
                let pid = ProcessId::new(s.cache.index() as u32);
                let addr = map.base_of(s.block);
                if s.write {
                    MemRef::write(cpu, pid, addr)
                } else {
                    MemRef::read(cpu, pid, addr)
                }
            })
            .collect()
    }

    /// Writes the counterexample as a text trace with a `#` comment header.
    ///
    /// The output re-parses through [`dirsim_trace::io::read_text`]; the
    /// comment lines are skipped by the reader.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the writer.
    pub fn write_trace<W: Write>(&self, w: &mut W) -> Result<(), TraceIoError> {
        writeln!(w, "# dirsim-verify counterexample")?;
        writeln!(w, "# scheme: {}", self.scheme)?;
        writeln!(w, "# failure: {}", self.failure)?;
        writeln!(w, "# cpu k = cache k; addr = block index * 16 bytes")?;
        dirsim_trace::io::write_text(w, self.to_refs())?;
        Ok(())
    }
}

/// Applies one reference to a protocol and its shadow oracle, running the
/// full per-reference audit.
///
/// This is a thin adapter over [`dirsim::engine::audit_step`] — the
/// checker and the simulation engine share one audited step, so a protocol
/// the engine accepts and one the model checker accepts are the same
/// thing.
///
/// # Errors
///
/// Returns the first [`Failure`] — an invariant violation, an oracle
/// rejection of a claimed data movement, or a stale final read.
pub fn apply_step(
    protocol: &mut dyn CoherenceProtocol,
    oracle: &mut ShadowMemory,
    step: Step,
) -> Result<(), Failure> {
    dirsim::engine::audit_step(protocol, oracle, step.cache, step.block, step.write).map_err(
        |failure| match failure {
            dirsim::StepFailure::Invariant { violation, .. } => Failure::Invariant(violation),
            dirsim::StepFailure::Oracle(violation) => Failure::Oracle(violation),
        },
    )
}

/// Replays `steps` from a fresh protocol instance, returning the first
/// failure (if any) together with the index of the failing step.
pub fn replay<F>(build: F, steps: &[Step]) -> Option<(usize, Failure)>
where
    F: Fn() -> Box<dyn CoherenceProtocol>,
{
    let mut protocol = build();
    let mut oracle = ShadowMemory::new();
    for (i, &step) in steps.iter().enumerate() {
        if let Err(failure) = apply_step(protocol.as_mut(), &mut oracle, step) {
            return Some((i, failure));
        }
        if let Err(v) = invariant::check_snapshot(
            protocol.style(),
            &protocol.snapshot(),
            protocol.cache_count(),
        ) {
            return Some((i, Failure::Invariant(v)));
        }
    }
    None
}

/// Greedily minimises a failing sequence: repeatedly drops any step whose
/// removal keeps the replay failing, until no single removal does.
///
/// The result still fails (on its last step) but may fail with a different
/// — earlier — violation than the original; the returned [`Failure`] is
/// the one the minimised sequence actually triggers.
pub fn minimize<F>(build: F, steps: &[Step]) -> (Vec<Step>, Failure)
where
    F: Fn() -> Box<dyn CoherenceProtocol>,
{
    let (idx, mut failure) = replay(&build, steps).expect("minimize requires a failing sequence");
    let mut current: Vec<Step> = steps[..=idx].to_vec();
    loop {
        let mut shrunk = false;
        for i in 0..current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if let Some((j, f)) = replay(&build, &candidate) {
                candidate.truncate(j + 1);
                current = candidate;
                failure = f;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return (current, failure);
        }
    }
}

/// Every scheme the checker exercises: the paper's Table 5 line-up plus
/// the remaining directory organisations and snoopy baselines.
pub fn gauntlet() -> Vec<Scheme> {
    vec![
        Scheme::Directory(DirSpec::dir_n_nb()),
        Scheme::Directory(DirSpec::dir0_b()),
        Scheme::Directory(DirSpec::dir1_b()),
        Scheme::Directory(DirSpec::dir_i_b(2)),
        Scheme::Directory(DirSpec::dir1_nb()),
        Scheme::Directory(DirSpec::dir_i_nb(2).expect("two pointers is a valid NB spec")),
        Scheme::CoarseVector,
        Scheme::Tang,
        Scheme::YenFu,
        Scheme::DirUpdate,
        Scheme::Wti,
        Scheme::Illinois,
        Scheme::Dragon,
        Scheme::Berkeley,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> CacheId {
        CacheId::new(i)
    }

    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(i)
    }

    #[test]
    fn alphabet_enumerates_every_reference() {
        let cfg = CheckConfig {
            caches: 2,
            blocks: 2,
            depth: 4,
        };
        let alpha = cfg.alphabet();
        assert_eq!(alpha.len(), 8);
        assert!(alpha.contains(&Step {
            cache: c(1),
            block: b(0),
            write: true
        }));
    }

    #[test]
    fn eviction_alphabet_covers_every_cache_block_pair() {
        let cfg = CheckConfig {
            caches: 3,
            blocks: 2,
            depth: 4,
        };
        let evictions = cfg.eviction_alphabet();
        assert_eq!(evictions.len(), 6);
        assert_eq!(evictions[0], (c(0), b(0)));
        assert_eq!(evictions[5], (c(2), b(1)));
    }

    #[test]
    fn replay_passes_a_legal_sequence_on_every_scheme() {
        let steps = [
            Step {
                cache: c(0),
                block: b(0),
                write: false,
            },
            Step {
                cache: c(1),
                block: b(0),
                write: true,
            },
            Step {
                cache: c(0),
                block: b(0),
                write: false,
            },
        ];
        for scheme in gauntlet() {
            assert_eq!(
                replay(|| scheme.build(3), &steps),
                None,
                "{}",
                scheme.name()
            );
        }
    }

    #[test]
    fn counterexample_trace_reparses() {
        let cx = Counterexample {
            scheme: "demo".to_string(),
            steps: vec![
                Step {
                    cache: c(1),
                    block: b(0),
                    write: false,
                },
                Step {
                    cache: c(0),
                    block: b(1),
                    write: true,
                },
            ],
            failure: Failure::Invariant(InvariantViolation::StateDropped { block: b(0) }),
        };
        let mut buf = Vec::new();
        cx.write_trace(&mut buf).unwrap();
        let parsed: Vec<MemRef> = dirsim_trace::io::read_text(&buf[..])
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(parsed, cx.to_refs());
        assert_eq!(parsed[1].addr.raw(), 16);
    }
}
