//! Breadth-first reachability checking.
//!
//! [`explore`] enumerates every interleaving of read/write references a
//! bounded system can issue (all caches × all blocks × read/write, up to a
//! depth), and audits every transition with the engine's invariant
//! catalogue plus the shadow-memory oracle. States are deduplicated on the
//! pair (protocol [`StateSnapshot`],
//! version-rank-canonical oracle image), so the search closes over the
//! reachable state space instead of the exponential sequence tree.

use std::collections::{HashMap, HashSet, VecDeque};

use dirsim::invariant;
use dirsim_mem::{CanonicalBlock, ShadowMemory};
use dirsim_protocol::{CoherenceProtocol, StateSnapshot};

use crate::{apply_step, minimize, CheckConfig, Counterexample, Failure, Step};

/// Statistics from one completed (violation-free) exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExploreReport {
    /// Distinct (protocol, oracle) states reached.
    pub states: usize,
    /// Transitions taken (references applied), counting duplicates.
    pub transitions: u64,
    /// Longest sequence length at which a *new* state was discovered.
    pub frontier_depth: u32,
}

type OracleImage = Vec<CanonicalBlock>;

struct Node {
    protocol: Box<dyn CoherenceProtocol>,
    oracle: ShadowMemory,
    path: Vec<Step>,
}

/// Exhaustively explores every reference interleaving of `build()`'s
/// protocol under `cfg`, auditing every transition.
///
/// On a violation the failing sequence is minimised and returned as a
/// replayable [`Counterexample`].
///
/// # Errors
///
/// Returns the minimised counterexample for the first violation found.
pub fn explore<F>(
    name: &str,
    build: F,
    cfg: &CheckConfig,
) -> Result<ExploreReport, Box<Counterexample>>
where
    F: Fn() -> Box<dyn CoherenceProtocol>,
{
    explore_observed(name, build, cfg, &mut dirsim_obs::ProgressMeter::disabled())
}

/// Like [`explore`], but reports progress (states discovered, the implied
/// states/sec rate, and the current frontier depth) through a throttled
/// [`ProgressMeter`](dirsim_obs::ProgressMeter). A disabled meter costs one
/// branch per dequeued state.
///
/// # Errors
///
/// Returns the minimised counterexample for the first violation found.
pub fn explore_observed<F>(
    name: &str,
    build: F,
    cfg: &CheckConfig,
    progress: &mut dirsim_obs::ProgressMeter,
) -> Result<ExploreReport, Box<Counterexample>>
where
    F: Fn() -> Box<dyn CoherenceProtocol>,
{
    let alphabet = cfg.alphabet();
    let mut report = ExploreReport::default();
    let mut visited: HashSet<(StateSnapshot, OracleImage)> = HashSet::new();
    let mut queue: VecDeque<Node> = VecDeque::new();

    let root = Node {
        protocol: build(),
        oracle: ShadowMemory::new(),
        path: Vec::new(),
    };
    visited.insert((root.protocol.snapshot(), root.oracle.canonical()));
    queue.push_back(root);
    report.states = 1;

    while let Some(node) = queue.pop_front() {
        progress.tick(report.states as u64, Some(u64::from(report.frontier_depth)));
        if node.path.len() as u32 >= cfg.depth {
            continue;
        }
        for &step in &alphabet {
            let mut protocol = node.protocol.boxed_clone();
            let mut oracle = node.oracle.clone();
            report.transitions += 1;

            let audit = apply_step(protocol.as_mut(), &mut oracle, step).and_then(|()| {
                // The per-reference audit covers the touched block; the
                // whole-snapshot pass also catches collateral damage to
                // *other* blocks.
                invariant::check_snapshot(
                    protocol.style(),
                    &protocol.snapshot(),
                    protocol.cache_count(),
                )
                .map_err(Failure::Invariant)
            });
            if audit.is_err() {
                let mut failing = node.path.clone();
                failing.push(step);
                let (steps, failure) = minimize(&build, &failing);
                return Err(Box::new(Counterexample {
                    scheme: name.to_string(),
                    steps,
                    failure,
                }));
            }

            let key = (protocol.snapshot(), oracle.canonical());
            if visited.insert(key) {
                report.states += 1;
                let mut path = node.path.clone();
                path.push(step);
                report.frontier_depth = report.frontier_depth.max(path.len() as u32);
                queue.push_back(Node {
                    protocol,
                    oracle,
                    path,
                });
            }
        }
    }
    progress.finish(report.states as u64, Some(u64::from(report.frontier_depth)));
    Ok(report)
}

/// Explores every scheme in [`crate::gauntlet`] under `cfg`, returning
/// per-scheme reports in gauntlet order.
///
/// # Errors
///
/// Stops at the first scheme with a violation and returns its minimised
/// counterexample.
pub fn explore_gauntlet(
    cfg: &CheckConfig,
) -> Result<Vec<(String, ExploreReport)>, Box<Counterexample>> {
    let mut reports = Vec::new();
    for scheme in crate::gauntlet() {
        let name = scheme.name();
        let report = explore(&name, || scheme.build(cfg.caches), cfg)?;
        reports.push((name, report));
    }
    Ok(reports)
}

/// Sanity histogram: how many distinct states each sequence length
/// contributes (diagnostic helper for tuning bounds).
pub fn state_depth_histogram<F>(build: F, cfg: &CheckConfig) -> HashMap<u32, usize>
where
    F: Fn() -> Box<dyn CoherenceProtocol>,
{
    let alphabet = cfg.alphabet();
    let mut visited: HashSet<(StateSnapshot, OracleImage)> = HashSet::new();
    let mut queue: VecDeque<Node> = VecDeque::new();
    let mut histogram: HashMap<u32, usize> = HashMap::new();

    let root = Node {
        protocol: build(),
        oracle: ShadowMemory::new(),
        path: Vec::new(),
    };
    visited.insert((root.protocol.snapshot(), root.oracle.canonical()));
    histogram.insert(0, 1);
    queue.push_back(root);

    while let Some(node) = queue.pop_front() {
        if node.path.len() as u32 >= cfg.depth {
            continue;
        }
        for &step in &alphabet {
            let mut protocol = node.protocol.boxed_clone();
            let mut oracle = node.oracle.clone();
            if apply_step(protocol.as_mut(), &mut oracle, step).is_err() {
                continue;
            }
            let key = (protocol.snapshot(), oracle.canonical());
            if visited.insert(key) {
                let mut path = node.path.clone();
                path.push(step);
                *histogram.entry(path.len() as u32).or_insert(0) += 1;
                queue.push_back(Node {
                    protocol,
                    oracle,
                    path,
                });
            }
        }
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirsim_protocol::{DirSpec, Scheme};

    #[test]
    fn full_map_is_clean_at_small_bounds() {
        let cfg = CheckConfig {
            caches: 2,
            blocks: 1,
            depth: 6,
        };
        let scheme = Scheme::Directory(DirSpec::dir_n_nb());
        let report = explore("DirnNB", || scheme.build(cfg.caches), &cfg).unwrap();
        assert!(report.states > 4, "expected a non-trivial state space");
        assert!(report.transitions >= report.states as u64 - 1);
    }

    #[test]
    fn state_space_closes_before_the_depth_bound() {
        // With dedup the reachable space of a 2-cache, 1-block full-map
        // system closes quickly: deepening the bound discovers no states.
        let scheme = Scheme::Directory(DirSpec::dir_n_nb());
        let shallow = explore(
            "DirnNB",
            || scheme.build(2),
            &CheckConfig {
                caches: 2,
                blocks: 1,
                depth: 6,
            },
        )
        .unwrap();
        let deep = explore(
            "DirnNB",
            || scheme.build(2),
            &CheckConfig {
                caches: 2,
                blocks: 1,
                depth: 10,
            },
        )
        .unwrap();
        assert_eq!(shallow.states, deep.states);
    }

    #[test]
    fn observed_exploration_reports_final_state_count() {
        use std::sync::{Arc, Mutex};
        use std::time::Duration;

        let cfg = CheckConfig {
            caches: 2,
            blocks: 1,
            depth: 6,
        };
        let scheme = Scheme::Directory(DirSpec::dir_n_nb());
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let mut meter = dirsim_obs::ProgressMeter::new(
            "states",
            Duration::ZERO,
            Box::new(move |p| sink.lock().unwrap().push((p.done, p.detail))),
        );
        let report =
            explore_observed("DirnNB", || scheme.build(cfg.caches), &cfg, &mut meter).unwrap();
        let seen = seen.lock().unwrap();
        // The forced finish report carries the exact totals.
        assert_eq!(
            *seen.last().unwrap(),
            (report.states as u64, Some(u64::from(report.frontier_depth)))
        );
        // Identical result to the unobserved entry point.
        let plain = explore("DirnNB", || scheme.build(cfg.caches), &cfg).unwrap();
        assert_eq!(plain, report);
    }

    #[test]
    fn histogram_accounts_for_every_state() {
        let cfg = CheckConfig {
            caches: 2,
            blocks: 1,
            depth: 6,
        };
        let scheme = Scheme::Directory(DirSpec::dir0_b());
        let report = explore("Dir0B", || scheme.build(cfg.caches), &cfg).unwrap();
        let histogram = state_depth_histogram(|| scheme.build(cfg.caches), &cfg);
        assert_eq!(histogram.values().sum::<usize>(), report.states);
    }
}
