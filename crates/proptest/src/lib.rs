//! Minimal vendored stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of proptest it uses: the [`proptest!`] macro, the
//! `prop_assert*` family, range/tuple/`any`/`collection::vec` strategies
//! with `prop_map`, and `ProptestConfig::with_cases`.
//!
//! Differences from upstream, deliberately accepted:
//! - no shrinking — a failing case reports the generated inputs verbatim;
//! - deterministic seeding derived from the test name and case index, so
//!   failures always reproduce (upstream's persistence files are unneeded);
//! - only the strategy combinators this workspace uses are implemented.

pub mod test_runner {
    //! Case execution: configuration, failure type, and the driver loop.

    /// Error raised by a failed `prop_assert*` inside a test case, or a
    /// `prop_assume!` rejection (which skips the case instead of failing).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
        rejected: bool,
    }

    impl TestCaseError {
        /// Creates a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
                rejected: false,
            }
        }

        /// Creates a rejection: the case is skipped, not failed.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
                rejected: true,
            }
        }

        /// Whether this is a `prop_assume!` rejection.
        pub fn is_rejection(&self) -> bool {
            self.rejected
        }

        /// Attaches the generated inputs to the failure report.
        pub fn with_inputs(mut self, inputs: &str) -> Self {
            self.message = format!("{}\n\tinputs: {}", self.message, inputs);
            self
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Result type each generated case evaluates to.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (upstream `Config`, re-exported in the prelude
    /// as `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `case` for each configured iteration with a per-case
    /// deterministic RNG; panics with a reproduction report on failure.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut crate::strategy::Gen) -> TestCaseResult,
    {
        for i in 0..config.cases {
            let seed = fnv1a(name.as_bytes()) ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = crate::strategy::Gen::new(seed);
            if let Err(err) = case(&mut rng) {
                if err.is_rejection() {
                    continue;
                }
                panic!(
                    "proptest case {i}/{} of `{name}` failed:\n\t{err}",
                    config.cases
                );
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use std::fmt::Debug;

    /// Deterministic random source handed to strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct Gen {
        state: u64,
    }

    impl Gen {
        /// Creates a generator from a 64-bit seed.
        pub fn new(seed: u64) -> Self {
            Gen { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// Type of value this strategy produces.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut Gen) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy adapter created by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut Gen) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Gen) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Gen) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64 + 1;
                    start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_uint_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut Gen) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut Gen) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::strategy::{Gen, Strategy};
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut Gen) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Gen) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut Gen) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut Gen) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut Gen) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::{Gen, Strategy};

    /// Length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut Gen) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with `size` elements (a length, range, or inclusive
    /// range) drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror so `prop::collection::vec` works as upstream.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// item becomes a test running `ProptestConfig::cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __strategies = ($($strategy,)+);
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                let __values =
                    $crate::strategy::Strategy::generate(&__strategies, __rng);
                let __inputs = format!("{:?}", __values);
                let ($($arg,)+) = __values;
                let __outcome: $crate::test_runner::TestCaseResult =
                    (|| { $body Ok(()) })();
                __outcome.map_err(|e| e.with_inputs(&__inputs))
            });
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (with
/// its inputs) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n\tleft:  {:?}\n\tright: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n\tleft:  {:?}\n\tright: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n\tboth: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`: {}\n\tboth: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 0u64..5, z in 0.5f64..1.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.5..1.5).contains(&z));
        }

        #[test]
        fn vec_and_map_compose(
            xs in prop::collection::vec((0u8..4, any::<bool>()).prop_map(|(a, b)| (a, b)), 1..30)
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 30);
            for (a, _) in xs {
                prop_assert!(a < 4, "a = {}", a);
            }
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
