//! Minimal vendored stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of criterion its benches use: `Criterion`,
//! `benchmark_group`, `Bencher::{iter, iter_batched}`, `Throughput`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple — wall-clock means over a bounded
//! number of iterations, printed to stdout — with no statistical analysis,
//! outlier rejection, or HTML reports. Numbers are indicative, not
//! criterion-grade; the workspace relies on it primarily so `cargo bench`
//! runs and bench targets stay compiling under `cargo test`.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark wall-clock budget. Kept small so full `cargo bench`
/// sweeps stay in seconds, not minutes.
const TARGET_TIME: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 10_000;

/// How batched inputs are sized (accepted for API compatibility; the shim
/// regenerates the input every iteration regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Units of work per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Times closures handed to [`Bencher::iter`] / [`Bencher::iter_batched`].
#[derive(Debug, Default)]
pub struct Bencher {
    measured: Option<MeasureResult>,
}

#[derive(Debug, Clone, Copy)]
struct MeasureResult {
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `routine` repeatedly and records the mean time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < TARGET_TIME && iters < MAX_ITERS {
            black_box(routine());
            iters += 1;
        }
        self.measured = Some(MeasureResult {
            mean: start.elapsed() / iters.max(1) as u32,
            iters,
        });
    }

    /// Measures `routine` over fresh inputs from `setup`; only the routine
    /// (not the setup) counts toward the measured time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        let wall = Instant::now();
        while spent < TARGET_TIME && wall.elapsed() < 4 * TARGET_TIME && iters < MAX_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            spent += start.elapsed();
            iters += 1;
        }
        self.measured = Some(MeasureResult {
            mean: spent / iters.max(1) as u32,
            iters,
        });
    }
}

fn report(name: &str, measured: Option<MeasureResult>, throughput: Option<Throughput>) {
    let Some(m) = measured else {
        println!("{name:<44} (no measurement)");
        return;
    };
    let rate = throughput.map(|t| {
        let secs = m.mean.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!("  {:.3} Melem/s", n as f64 / secs / 1e6),
            Throughput::Bytes(n) => format!("  {:.3} MiB/s", n as f64 / secs / (1 << 20) as f64),
        }
    });
    println!(
        "{name:<44} {:>12.3?}/iter  ({} iters){}",
        m.mean,
        m.iters,
        rate.unwrap_or_default()
    );
}

/// Collection of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work per iteration for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim's iteration budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's time budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(
            &format!("{}/{}", self.name, id),
            bencher.measured,
            self.throughput,
        );
        self.criterion.ran += 1;
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    ran: usize,
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(id, bencher.measured, None);
        self.ran += 1;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Number of benchmarks run so far.
    pub fn benchmarks_run(&self) -> usize {
        self.ran
    }
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups, mirroring criterion's macro of
/// the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_counts() {
        let mut c = Criterion::default();
        c.bench_function("smoke/add", |b| b.iter(|| black_box(2u64) + 2));
        assert_eq!(c.benchmarks_run(), 1);
    }

    #[test]
    fn groups_report_throughput() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(4)).sample_size(10);
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3, 4],
                |v| v.into_iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert_eq!(c.benchmarks_run(), 1);
    }
}
