//! The paper's concrete experiments, as runnable presets and derived
//! analyses.
//!
//! * [`paper_workloads`] — the POPS/THOR/PERO stand-ins (Table 3).
//! * [`headline_experiment`] — the §5 evaluation: `Dir1NB`, WTI, `Dir0B`,
//!   Dragon over the three traces (Tables 4–5, Figures 1–5).
//! * [`extended_experiment`] — adds §5/§6 schemes: Berkeley, `DirnNB`,
//!   `Dir1B`, `DiriB`/`DiriNB`, coarse vector.
//! * [`q_sensitivity`] — §5.1 fixed-overhead model.
//! * [`lock_impact`] — §5.2 spin-lock ablation.
//! * [`broadcast_sensitivity`] — §6 broadcast-cost model for `Dir1B`.
//! * [`pointer_sweep`] — §6 `Dir_i` scaling study over system sizes the
//!   original authors could not trace.
//! * [`finite_cache_study`] — the §4 finite-cache extension.
//! * [`network_scaling`] — §1/§7 snoopy-vs-directory interconnect traffic.
//! * [`utilization_study`] — §4.1 timing-level processor utilisation.
//! * [`sharing_sweep`] — workload sensitivity to sharing intensity.
//! * [`seed_sensitivity`] — dispersion of the headline metric across
//!   generator seeds.

use dirsim_cost::CostModel;
use dirsim_protocol::{DirSpec, Scheme};
use dirsim_trace::synth::{PaperTrace, WorkloadConfig};

use crate::engine::SimResult;
use crate::error::Error;
use crate::experiment::{Experiment, ExperimentResults, NamedWorkload};

/// The three paper-trace stand-ins, in Table 3 order.
///
/// Resolved from the bundled scenario registry (the `pops`/`thor`/`pero`
/// specs), keeping the paper's upper-case display names for table output.
pub fn paper_workloads() -> Vec<NamedWorkload> {
    PaperTrace::ALL
        .iter()
        .map(|t| NamedWorkload::new(t.name(), t.scenario().config().clone()))
        .collect()
}

/// Default reference count per trace for paper-scale runs. The ATUM traces
/// hold ~3.1–3.5 M references each; one million is enough for stable event
/// frequencies while keeping test time reasonable.
pub const DEFAULT_REFS: usize = 1_000_000;

/// The §5 headline evaluation: the paper's four schemes over the three
/// traces.
pub fn headline_experiment(refs_per_trace: usize) -> Experiment {
    Experiment::new()
        .workloads(paper_workloads())
        .schemes(Scheme::paper_lineup())
        .refs_per_trace(refs_per_trace)
}

/// Every scheme discussed in the paper, headline lineup first.
pub fn extended_schemes() -> Vec<Scheme> {
    let mut schemes = Scheme::paper_lineup();
    schemes.push(Scheme::Berkeley);
    schemes.push(Scheme::Directory(DirSpec::dir_n_nb()));
    schemes.push(Scheme::Directory(DirSpec::dir1_b()));
    schemes.push(Scheme::Directory(DirSpec::dir_i_b(2)));
    schemes.push(Scheme::Directory(
        DirSpec::dir_i_nb(2).expect("i=2 is valid"),
    ));
    schemes.push(Scheme::Directory(
        DirSpec::dir_i_nb(4).expect("i=4 is valid"),
    ));
    schemes.push(Scheme::CoarseVector);
    schemes.push(Scheme::Tang);
    schemes.push(Scheme::YenFu);
    schemes.push(Scheme::DirUpdate);
    schemes.push(Scheme::Illinois);
    schemes
}

/// The extended evaluation (§5 + §6 schemes) over the three traces.
pub fn extended_experiment(refs_per_trace: usize) -> Experiment {
    Experiment::new()
        .workloads(paper_workloads())
        .schemes(extended_schemes())
        .refs_per_trace(refs_per_trace)
}

/// §5.1: cycles per reference when each bus transaction carries `q` extra
/// fixed-overhead cycles. Returns `(q, cycles_per_ref)` pairs.
///
/// The paper's example: with `q = 1`, `Dir0B` needs only ~12 % more bus
/// cycles than Dragon, versus ~46 % at `q = 0`.
pub fn q_sensitivity(result: &SimResult, model: CostModel, qs: &[f64]) -> Vec<(f64, f64)> {
    let breakdown = result.breakdown(model);
    qs.iter()
        .map(|&q| (q, breakdown.cycles_per_ref_with_overhead(q)))
        .collect()
}

/// §6: cycles per reference as a function of the broadcast cost `b`.
/// Derived by *repricing* the recorded operations — no resimulation, which
/// is exactly the paper's event/cost split.
pub fn broadcast_sensitivity(result: &SimResult, bs: &[u32]) -> Vec<(u32, f64)> {
    bs.iter()
        .map(|&b| {
            let model = CostModel::pipelined().with_broadcast_cost(b);
            (b, result.cycles_per_ref(model))
        })
        .collect()
}

/// Outcome of the §5.2 spin-lock ablation for one scheme.
#[derive(Debug, Clone)]
pub struct LockImpact {
    /// Scheme name.
    pub scheme: String,
    /// Bus cycles per reference with lock-test reads included.
    pub with_locks: f64,
    /// Bus cycles per reference with lock-test reads excluded.
    pub without_locks: f64,
}

impl LockImpact {
    /// Relative improvement from removing lock tests.
    pub fn improvement(&self) -> f64 {
        if self.with_locks == 0.0 {
            0.0
        } else {
            (self.with_locks - self.without_locks) / self.with_locks
        }
    }
}

/// §5.2: reruns the given schemes over the paper workloads with and without
/// spin-lock test reads and compares pipelined-bus costs.
///
/// # Errors
///
/// Propagates simulation errors (only possible with oracle checking, which
/// this preset leaves off).
pub fn lock_impact(refs_per_trace: usize, schemes: Vec<Scheme>) -> Result<Vec<LockImpact>, Error> {
    let base = Experiment::new()
        .workloads(paper_workloads())
        .schemes(schemes.clone())
        .refs_per_trace(refs_per_trace);
    let with_locks = base.clone().run()?;
    let without_locks = base.exclude_lock_tests(true).run()?;
    let model = CostModel::pipelined();
    Ok(schemes
        .iter()
        .map(|&s| LockImpact {
            scheme: s.name(),
            with_locks: with_locks[s].combined.cycles_per_ref(model),
            without_locks: without_locks[s].combined.cycles_per_ref(model),
        })
        .collect())
}

/// A synthetic workload scaled to `n` processors for the §6 scaling study
/// (the paper: "an accurate evaluation of the tradeoffs will require traces
/// from a much larger number of processors").
pub fn scaled_workload(processors: u16, seed: u64) -> WorkloadConfig {
    WorkloadConfig::builder()
        .cpus(processors)
        .processes(u32::from(processors))
        .shared_frac(0.05)
        .seed(seed)
        .build()
        .expect("scaled workload configuration is valid")
}

/// One row of the §6 pointer sweep.
#[derive(Debug, Clone)]
pub struct PointerSweepRow {
    /// Scheme name (`Dir1B`, `Dir2NB`, …).
    pub scheme: String,
    /// Pipelined-bus cycles per reference.
    pub cycles_per_ref: f64,
    /// Coherence miss rate (NB schemes trade misses for broadcasts).
    pub miss_rate: f64,
    /// Broadcast invalidations per 1000 references.
    pub broadcasts_per_kiloref: f64,
}

/// §6: sweeps `Dir_i B` and `Dir_i NB` over pointer counts `is` on an
/// `n`-processor workload; also includes `Dir0B` and `DirnNB` anchors and
/// the coarse-vector scheme.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn pointer_sweep(
    processors: u16,
    refs: usize,
    is: &[u32],
) -> Result<Vec<PointerSweepRow>, Error> {
    let mut schemes = vec![Scheme::Directory(DirSpec::dir0_b())];
    for &i in is {
        schemes.push(Scheme::Directory(DirSpec::dir_i_b(i)));
        if let Ok(spec) = DirSpec::dir_i_nb(i) {
            schemes.push(Scheme::Directory(spec));
        }
    }
    schemes.push(Scheme::Directory(DirSpec::dir_n_nb()));
    schemes.push(Scheme::CoarseVector);

    let results = Experiment::new()
        .workload(NamedWorkload::new(
            format!("scaled-{processors}p"),
            scaled_workload(processors, 0x5ca1_ed00 + u64::from(processors)),
        ))
        .schemes(schemes)
        .refs_per_trace(refs)
        .run()?;

    let model = CostModel::pipelined();
    Ok(results
        .per_scheme
        .iter()
        .map(|s| {
            let r = &s.combined;
            let broadcasts = r.ops[dirsim_protocol::BusOp::BroadcastInvalidate];
            PointerSweepRow {
                scheme: s.scheme.name(),
                cycles_per_ref: r.cycles_per_ref(model),
                miss_rate: r.events.coherence_miss_rate(),
                broadcasts_per_kiloref: broadcasts as f64 * 1000.0 / r.refs as f64,
            }
        })
        .collect())
}

/// Convenience: runs the headline experiment and returns its results.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_headline(refs_per_trace: usize) -> Result<ExperimentResults, Error> {
    headline_experiment(refs_per_trace).run()
}

/// One row of the finite-cache study.
#[derive(Debug, Clone)]
pub struct FiniteCacheRow {
    /// Cache capacity in blocks (`None` = infinite, the paper's model).
    pub capacity_blocks: Option<u32>,
    /// Pipelined-bus cycles per reference.
    pub cycles_per_ref: f64,
    /// Data miss rate (cold + coherence + capacity).
    pub miss_rate: f64,
    /// Capacity replacements per 1000 references.
    pub evictions_per_kiloref: f64,
}

/// The paper's §4 finite-cache extension: reruns a scheme over the paper
/// workloads at several cache capacities (4-way set-associative LRU) and
/// reports how capacity misses add to the infinite-cache coherence cost.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn finite_cache_study(
    scheme: Scheme,
    refs_per_trace: usize,
    capacities_blocks: &[u32],
) -> Result<Vec<FiniteCacheRow>, Error> {
    use dirsim_mem::CacheGeometry;
    let model = CostModel::pipelined();
    let mut rows = Vec::with_capacity(capacities_blocks.len() + 1);
    let mut geometries: Vec<Option<CacheGeometry>> = vec![None];
    for &blocks in capacities_blocks {
        let ways = 4u32;
        let sets = (blocks / ways).max(1).next_power_of_two();
        geometries.push(Some(CacheGeometry { sets, ways }));
    }
    for geometry in geometries {
        let sim = crate::engine::SimConfig {
            geometry,
            ..crate::engine::SimConfig::default()
        };
        let results = Experiment::new()
            .workloads(paper_workloads())
            .scheme(scheme)
            .refs_per_trace(refs_per_trace)
            .sim_config(sim)
            .run()?;
        let r = &results.per_scheme[0].combined;
        rows.push(FiniteCacheRow {
            capacity_blocks: geometry.map(|g| g.sets * g.ways),
            cycles_per_ref: r.cycles_per_ref(model),
            miss_rate: r.events.data_miss_rate(),
            evictions_per_kiloref: r.capacity_evictions as f64 * 1000.0 / r.refs as f64,
        });
    }
    Ok(rows)
}

/// One row of the network-scaling study (§7's "better suited to building
/// large-scale multiprocessors" claim, quantified).
#[derive(Debug, Clone)]
pub struct NetworkScalingRow {
    /// Scheme name.
    pub scheme: String,
    /// Node count.
    pub nodes: u32,
    /// Topology.
    pub topology: dirsim_cost::Topology,
    /// Link-cycles of network traffic per memory reference.
    pub traffic_per_ref: f64,
    /// Processors sustainable before the network saturates, assuming each
    /// issues one reference per network cycle.
    pub saturation_processors: f64,
}

/// Prices each scheme's recorded operations on every topology at `nodes`
/// nodes. Snoopy schemes pay address flooding (they must snoop every
/// transaction); directory schemes send directed messages.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn network_scaling(
    nodes: u16,
    refs: usize,
    schemes: Vec<Scheme>,
) -> Result<Vec<NetworkScalingRow>, Error> {
    use dirsim_cost::{NetworkModel, Placement, Topology};
    let results = Experiment::new()
        .workload(NamedWorkload::new(
            format!("scaled-{nodes}p"),
            scaled_workload(nodes, 0x0e70_0000 + u64::from(nodes)),
        ))
        .schemes(schemes)
        .refs_per_trace(refs)
        .run()?;
    let mut rows = Vec::new();
    for s in &results.per_scheme {
        let placement = if s.scheme.is_snoopy() {
            Placement::Snoopy
        } else {
            Placement::Directory
        };
        for topology in Topology::ALL {
            let model = NetworkModel::new(topology, u32::from(nodes));
            let traffic = model.traffic_per_ref(&s.combined.ops, s.combined.refs, placement);
            rows.push(NetworkScalingRow {
                scheme: s.scheme.name(),
                nodes: u32::from(nodes),
                topology,
                traffic_per_ref: traffic,
                saturation_processors: model.saturation_processors(traffic, 1.0),
            });
        }
    }
    Ok(rows)
}

/// One row of the sharing-intensity sweep.
#[derive(Debug, Clone)]
pub struct SharingSweepRow {
    /// Fraction of data references targeting shared pools.
    pub shared_frac: f64,
    /// Pipelined cycles/ref per scheme, in scheme order.
    pub cycles_per_ref: Vec<(String, f64)>,
}

/// Workload-sensitivity sweep: how each scheme's cost responds to the
/// intensity of data sharing (Figure 3's POPS/THOR vs PERO contrast,
/// generalised to a controlled dial). Write-through costs are flat in
/// sharing; coherence-driven costs grow with it.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn sharing_sweep(
    refs: usize,
    fractions: &[f64],
    schemes: Vec<Scheme>,
) -> Result<Vec<SharingSweepRow>, Error> {
    let model = CostModel::pipelined();
    let mut rows = Vec::with_capacity(fractions.len());
    for &frac in fractions {
        let cfg = WorkloadConfig {
            shared_frac: frac,
            seed: 0x0005_eed0 + (frac * 1000.0) as u64,
            ..WorkloadConfig::default()
        };
        let results = Experiment::new()
            .workload(NamedWorkload::new(format!("shared-{frac}"), cfg))
            .schemes(schemes.clone())
            .refs_per_trace(refs)
            .run()?;
        rows.push(SharingSweepRow {
            shared_frac: frac,
            cycles_per_ref: results
                .per_scheme
                .iter()
                .map(|s| (s.scheme.name(), s.combined.cycles_per_ref(model)))
                .collect(),
        });
    }
    Ok(rows)
}

/// One row of the timing-level utilisation study.
#[derive(Debug, Clone)]
pub struct UtilizationRow {
    /// Scheme name.
    pub scheme: String,
    /// Processor count.
    pub processors: u16,
    /// Mean per-processor utilisation.
    pub utilization: f64,
    /// Aggregate throughput in references per cycle.
    pub effective_processors: f64,
    /// Bus utilisation.
    pub bus_utilization: f64,
}

/// Timing-level utilisation study (§4.1's "total processor utilizations"
/// methodology, which the paper set aside): runs each scheme through the
/// cycle-level [`crate::timing::TimingSimulator`] at several machine sizes
/// and reports measured utilisation and speedup.
///
/// # Panics
///
/// Panics if `processors` is empty.
pub fn utilization_study(
    refs: usize,
    processors: &[u16],
    schemes: Vec<Scheme>,
) -> Vec<UtilizationRow> {
    use crate::timing::TimingSimulator;
    assert!(!processors.is_empty(), "need at least one machine size");
    let mut rows = Vec::new();
    for &n in processors {
        let cfg = scaled_workload(n, 0x71e0_0000 + u64::from(n));
        let refs_vec: Vec<dirsim_trace::MemRef> =
            dirsim_trace::synth::Workload::new(cfg).take(refs).collect();
        for &scheme in &schemes {
            let mut protocol = scheme.build(u32::from(n));
            let result = TimingSimulator::default().run_interleaved(
                protocol.as_mut(),
                refs_vec.iter().copied(),
                usize::from(n),
            );
            rows.push(UtilizationRow {
                scheme: scheme.name(),
                processors: n,
                utilization: result.processor_utilization(),
                effective_processors: result.effective_processors(),
                bus_utilization: result.bus_utilization(),
            });
        }
    }
    rows
}

/// Dispersion of a scheme's headline metric across generator seeds.
#[derive(Debug, Clone)]
pub struct SeedSensitivityRow {
    /// Scheme name.
    pub scheme: String,
    /// Mean pipelined cycles/ref across seeds.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Minimum across seeds.
    pub min: f64,
    /// Maximum across seeds.
    pub max: f64,
}

impl SeedSensitivityRow {
    /// Coefficient of variation (stddev / mean).
    pub fn relative_spread(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// Reruns the headline evaluation under `seeds` different generator seeds
/// and reports the dispersion of each scheme's cycles/ref — evidence that
/// the reproduced shape is a property of the workload model, not of one
/// random stream.
///
/// # Errors
///
/// Propagates simulation errors.
///
/// # Panics
///
/// Panics if `seeds == 0`.
pub fn seed_sensitivity(
    refs_per_trace: usize,
    seeds: u64,
) -> Result<Vec<SeedSensitivityRow>, Error> {
    assert!(seeds > 0, "need at least one seed");
    let model = CostModel::pipelined();
    let schemes = Scheme::paper_lineup();
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for seed_offset in 0..seeds {
        let workloads: Vec<NamedWorkload> = paper_workloads()
            .into_iter()
            .map(|mut w| {
                w.config.seed = w.config.seed.wrapping_add(seed_offset * 0x9e37_79b9);
                w
            })
            .collect();
        let results = Experiment::new()
            .workloads(workloads)
            .schemes(schemes.clone())
            .refs_per_trace(refs_per_trace)
            .run_parallel()?;
        for (i, s) in results.per_scheme.iter().enumerate() {
            samples[i].push(s.combined.cycles_per_ref(model));
        }
    }
    Ok(schemes
        .iter()
        .zip(samples)
        .map(|(scheme, xs)| {
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = if xs.len() > 1 {
                xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
            } else {
                0.0
            };
            SeedSensitivityRow {
                scheme: scheme.name(),
                mean,
                stddev: var.sqrt(),
                min: xs.iter().copied().fold(f64::INFINITY, f64::min),
                max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirsim_protocol::OpCounts;

    #[test]
    fn workloads_are_the_three_traces() {
        let names: Vec<String> = paper_workloads().into_iter().map(|w| w.name).collect();
        assert_eq!(names, vec!["POPS", "THOR", "PERO"]);
    }

    #[test]
    fn extended_schemes_superset_of_headline() {
        let ext = extended_schemes();
        for s in Scheme::paper_lineup() {
            assert!(ext.contains(&s));
        }
        assert!(ext.len() > 4);
    }

    #[test]
    fn q_sensitivity_is_affine() {
        let mut ops = OpCounts::new();
        ops.record(dirsim_protocol::BusOp::MemRead, 10);
        let result = SimResult {
            scheme: "x".into(),
            events: Default::default(),
            ops,
            transactions: 10,
            refs: 1000,
            fanout: Default::default(),
            distinct_blocks: 0,
            capacity_evictions: 0,
        };
        let pts = q_sensitivity(&result, CostModel::pipelined(), &[0.0, 1.0, 2.0]);
        let slope01 = pts[1].1 - pts[0].1;
        let slope12 = pts[2].1 - pts[1].1;
        assert!((slope01 - slope12).abs() < 1e-12);
        assert!((slope01 - 0.01).abs() < 1e-12, "slope = txns/ref");
    }

    #[test]
    fn broadcast_sensitivity_grows_with_b() {
        let mut ops = OpCounts::new();
        ops.record(dirsim_protocol::BusOp::BroadcastInvalidate, 5);
        let result = SimResult {
            scheme: "x".into(),
            events: Default::default(),
            ops,
            transactions: 5,
            refs: 1000,
            fanout: Default::default(),
            distinct_blocks: 0,
            capacity_evictions: 0,
        };
        let pts = broadcast_sensitivity(&result, &[1, 8, 32]);
        assert!(pts[0].1 < pts[1].1 && pts[1].1 < pts[2].1);
        // Slope per unit b is broadcasts/ref.
        let slope = (pts[1].1 - pts[0].1) / 7.0;
        assert!((slope - 0.005).abs() < 1e-12);
    }

    #[test]
    fn lock_impact_small_run() {
        let impacts = lock_impact(
            20_000,
            vec![
                Scheme::Directory(DirSpec::dir1_nb()),
                Scheme::Directory(DirSpec::dir0_b()),
            ],
        )
        .unwrap();
        assert_eq!(impacts.len(), 2);
        let dir1nb = &impacts[0];
        assert_eq!(dir1nb.scheme, "Dir1NB");
        assert!(dir1nb.with_locks > 0.0);
        assert!(dir1nb.improvement() >= 0.0);
    }

    #[test]
    fn scaled_workload_is_valid_for_many_sizes() {
        for n in [4u16, 16, 64] {
            scaled_workload(n, 1).validate().unwrap();
        }
    }

    #[test]
    fn sharing_sweep_shapes() {
        let rows = sharing_sweep(
            20_000,
            &[0.0, 0.10],
            vec![Scheme::Wti, Scheme::Directory(DirSpec::dir0_b())],
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        let cost = |row: &SharingSweepRow, name: &str| {
            row.cycles_per_ref
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        // Coherence cost grows with sharing for the copy-back scheme...
        assert!(cost(&rows[1], "Dir0B") > cost(&rows[0], "Dir0B"));
        // ...while WTI's write-through floor moves much less, relatively.
        let wti_growth = cost(&rows[1], "WTI") / cost(&rows[0], "WTI");
        let dir_growth = cost(&rows[1], "Dir0B") / cost(&rows[0], "Dir0B");
        assert!(
            dir_growth > wti_growth,
            "dir {dir_growth:.2} vs wti {wti_growth:.2}"
        );
    }

    #[test]
    fn seed_sensitivity_is_modest() {
        let rows = seed_sensitivity(30_000, 3).unwrap();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.mean > 0.0, "{}", row.scheme);
            assert!(row.min <= row.mean && row.mean <= row.max);
            assert!(
                row.relative_spread() < 0.35,
                "{}: spread {:.2}",
                row.scheme,
                row.relative_spread()
            );
        }
        // The scheme ordering survives across every seed (min/max bands of
        // adjacent schemes in the ordering do not cross).
        let by_name = |n: &str| rows.iter().find(|r| r.scheme == n).unwrap();
        assert!(by_name("Dir1NB").min > by_name("WTI").max);
        assert!(by_name("WTI").min > by_name("Dir0B").max);
    }

    #[test]
    fn network_scaling_shows_directory_advantage() {
        let rows = network_scaling(
            64,
            20_000,
            vec![
                Scheme::Directory(DirSpec::dir1_b()),
                Scheme::Wti,
                Scheme::Dragon,
            ],
        )
        .unwrap();
        assert_eq!(rows.len(), 9); // 3 schemes x 3 topologies
        let get = |scheme: &str, topo: dirsim_cost::Topology| {
            rows.iter()
                .find(|r| r.scheme == scheme && r.topology == topo)
                .unwrap()
        };
        use dirsim_cost::Topology;
        // On the bus Dragon wins (the paper's §5 result)...
        let bus_dragon = get("Dragon", Topology::Bus);
        let bus_dir1b = get("Dir1B", Topology::Bus);
        assert!(bus_dragon.traffic_per_ref < bus_dir1b.traffic_per_ref * 1.5);
        // ...but off the bus, snoopy address flooding dominates and the
        // directory scales (the paper's §1/§7 argument). WTI, which puts
        // every write on the medium, collapses hardest.
        for topo in [Topology::Crossbar, Topology::Mesh2D] {
            let dir1b = get("Dir1B", topo).saturation_processors;
            let wti = get("WTI", topo).saturation_processors;
            let dragon = get("Dragon", topo).saturation_processors;
            assert!(
                dir1b > 3.0 * wti,
                "{topo}: directory {dir1b} !> 3x WTI {wti}"
            );
            assert!(
                dir1b > dragon,
                "{topo}: directory {dir1b} !> Dragon {dragon}"
            );
        }
        // And the directory's saturation point grows with the richer
        // topology while the bus stays flat.
        assert!(
            get("Dir1B", Topology::Crossbar).saturation_processors
                > 5.0 * get("Dir1B", Topology::Bus).saturation_processors
        );
    }

    #[test]
    fn finite_cache_study_shows_capacity_penalty() {
        let rows =
            finite_cache_study(Scheme::Directory(DirSpec::dir0_b()), 20_000, &[64, 4096]).unwrap();
        assert_eq!(rows.len(), 3);
        let infinite = &rows[0];
        let tiny = &rows[1];
        let large = &rows[2];
        assert_eq!(infinite.capacity_blocks, None);
        assert_eq!(infinite.evictions_per_kiloref, 0.0);
        assert!(
            tiny.miss_rate > infinite.miss_rate,
            "small caches miss more"
        );
        assert!(tiny.cycles_per_ref > infinite.cycles_per_ref);
        assert!(tiny.evictions_per_kiloref > large.evictions_per_kiloref);
        // Large caches approach the infinite-cache bound (§4).
        assert!(large.cycles_per_ref < 2.0 * infinite.cycles_per_ref);
    }

    #[test]
    fn pointer_sweep_smoke() {
        let rows = pointer_sweep(8, 20_000, &[1, 2]).unwrap();
        // Dir0B, Dir1B, Dir1NB, Dir2B, Dir2NB, DirnNB, CoarseVector
        assert_eq!(rows.len(), 7);
        let names: Vec<&str> = rows.iter().map(|r| r.scheme.as_str()).collect();
        assert!(names.contains(&"Dir0B"));
        assert!(names.contains(&"DirnNB"));
        assert!(names.contains(&"CoarseVector"));
        for row in &rows {
            assert!(row.cycles_per_ref > 0.0, "{}", row.scheme);
        }
        // NB schemes never broadcast.
        for row in rows.iter().filter(|r| r.scheme.ends_with("NB")) {
            assert_eq!(row.broadcasts_per_kiloref, 0.0, "{}", row.scheme);
        }
    }
}
