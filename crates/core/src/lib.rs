//! # dirsim
//!
//! A trace-driven evaluation framework for **directory cache-coherence
//! schemes**, reproducing Agarwal, Simoni, Hennessy & Horowitz, *"An
//! Evaluation of Directory Schemes for Cache Coherence"* (ISCA 1988).
//!
//! The paper classifies directory schemes as `Dir_i X` — `i` cache pointers
//! per directory entry, `X ∈ {B, NB}` for broadcast / no-broadcast — and
//! compares them against snoopy protocols (WTI, Dragon) by simulating
//! infinite caches over interleaved multiprocessor address traces and
//! pricing the resulting bus operations under pipelined and non-pipelined
//! bus models. This crate ties together the substrates:
//!
//! * [`dirsim_trace`] — trace model, file formats, synthetic POPS / THOR /
//!   PERO workload stand-ins;
//! * [`dirsim_mem`] — blocks, infinite/finite caches, sharing attribution,
//!   and a coherence-correctness oracle;
//! * [`dirsim_protocol`] — the `Dir_i{B,NB}` family, coarse-vector
//!   directories, and the snoopy baselines;
//! * [`dirsim_cost`] — the Table 1/2 bus cost models;
//!
//! and adds the [`engine`] (event counting + oracle replay), the
//! single-pass multi-protocol [`broadcast`] engine (every execution mode
//! is a placement of one staged `decode → route → step → merge`
//! pipeline, optionally with decode overlapped on a producer thread),
//! the [`experiment`] matrix harness, the paper's experiment presets
//! ([`paper`]), and text renderers for every table and figure
//! ([`report`]).
//!
//! ## Quick start
//!
//! ```
//! use dirsim::prelude::*;
//!
//! # fn main() -> Result<(), dirsim::Error> {
//! // Simulate the paper's four schemes over a small POPS-like workload
//! // (one trace pass, all schemes in lockstep):
//! let results = dirsim::paper::headline_experiment(20_000).run()?;
//! let dir0b = &results[Scheme::dir0_b()];
//! let dragon = &results[Scheme::Dragon];
//! let model = CostModel::pipelined();
//! // The paper's headline: Dir0B approaches Dragon's performance.
//! assert!(dir0b.combined.cycles_per_ref(model) < 3.0 * dragon.combined.cycles_per_ref(model));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod broadcast;
pub mod engine;
pub mod error;
pub mod experiment;
pub mod histogram;
pub mod invariant;
pub mod kernel;
pub mod paper;
mod pipeline;
pub mod reference;
pub mod report;
pub mod timing;

pub use broadcast::BroadcastSimulator;
pub use dirsim_obs as obs;
pub use engine::{
    audit_step, ShardKey, SimConfig, SimConfigBuilder, SimConfigError, SimError, SimResult,
    Simulator, StepFailure,
};
pub use error::{Error, InvariantError};
pub use experiment::{ExecutionMode, Experiment, ExperimentResults, NamedWorkload, SchemeResult};
pub use histogram::FanoutHistogram;
pub use invariant::InvariantViolation;
pub use kernel::KernelPolicy;
pub use timing::{TimingConfig, TimingResult, TimingSimulator};

/// Convenient re-exports for examples and downstream users.
pub mod prelude {
    pub use crate::broadcast::BroadcastSimulator;
    pub use crate::engine::{SimConfig, SimResult, Simulator};
    pub use crate::error::Error;
    pub use crate::experiment::{ExecutionMode, Experiment, ExperimentResults, NamedWorkload};
    pub use crate::histogram::FanoutHistogram;
    pub use crate::kernel::KernelPolicy;
    pub use dirsim_cost::{BusKind, CostBreakdown, CostCategory, CostModel};
    pub use dirsim_mem::{BlockAddr, BlockMap, CacheId, SharingModel};
    pub use dirsim_protocol::{BusOp, CoherenceProtocol, DirSpec, EventCounts, EventKind, Scheme};
    pub use dirsim_trace::synth::{PaperTrace, Workload, WorkloadConfig};
    pub use dirsim_trace::{
        AccessKind, Addr, CpuId, IterSource, MemRef, ProcessId, Scenario, ScenarioError,
        TraceSource, TraceStats,
    };
}
