//! Invalidation fan-out histogram (the paper's Figure 1).
//!
//! On every write to a previously-clean block, an invalidation protocol
//! must invalidate the block in each other cache holding a copy.
//! [`FanoutHistogram`] counts how many other caches held the block at those
//! events; the paper's headline observation is that **over 85 % of such
//! writes invalidate at most one cache**, which is what motivates
//! limited-pointer directories.

use std::fmt;

/// Histogram over "number of other caches to invalidate" per clean-write.
///
/// # Examples
///
/// ```
/// use dirsim::FanoutHistogram;
///
/// let mut h = FanoutHistogram::new();
/// h.record(0);
/// h.record(1);
/// h.record(1);
/// h.record(3);
/// assert_eq!(h.total(), 4);
/// assert!((h.fraction_at_most(1) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FanoutHistogram {
    counts: Vec<u64>,
}

impl FanoutHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one clean-write with `fanout` other caches holding the block.
    pub fn record(&mut self, fanout: u32) {
        let idx = fanout as usize;
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Records `n` clean-writes at the same `fanout` (batched accumulation).
    pub fn record_n(&mut self, fanout: u32, n: u64) {
        let idx = fanout as usize;
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
    }

    /// Number of clean-writes with exactly `fanout` remote copies.
    pub fn count(&self, fanout: u32) -> u64 {
        self.counts.get(fanout as usize).copied().unwrap_or(0)
    }

    /// Total clean-writes recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Largest fan-out observed, or `None` when empty.
    pub fn max_fanout(&self) -> Option<u32> {
        // Scan for the last non-zero bucket rather than trusting
        // `counts.len()`: trailing zero buckets (e.g. after merging a
        // histogram that only populated low fan-outs into a longer one)
        // must not inflate the maximum.
        self.counts.iter().rposition(|&c| c != 0).map(|i| i as u32)
    }

    /// Fraction of clean-writes with fan-out exactly `fanout`.
    pub fn fraction(&self, fanout: u32) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(fanout) as f64 / total as f64
        }
    }

    /// Fraction of clean-writes with fan-out `≤ fanout` — the paper's
    /// ">85 % require no more than one invalidation" statistic.
    pub fn fraction_at_most(&self, fanout: u32) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let sum: u64 = self.counts.iter().take(fanout as usize + 1).sum();
        sum as f64 / total as f64
    }

    /// Mean fan-out.
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(k, &c)| k as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }

    /// Iterates `(fanout, count)` pairs from 0 to the maximum observed.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().enumerate().map(|(k, &c)| (k as u32, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &FanoutHistogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        // Keep the representation canonical (no trailing zero buckets) so
        // the derived equality stays structural: a merged histogram must
        // compare equal to one built by recording the same samples
        // directly, and `iter()`/`Display` must stop at the true maximum.
        while self.counts.last() == Some(&0) {
            self.counts.pop();
        }
    }
}

impl fmt::Display for FanoutHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fanout histogram (total {}):", self.total())?;
        for (k, c) in self.iter() {
            write!(f, " {k}:{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut h = FanoutHistogram::new();
        h.record(2);
        h.record(2);
        h.record(0);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(7), 0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.max_fanout(), Some(2));
    }

    #[test]
    fn empty_histogram() {
        let h = FanoutHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.max_fanout(), None);
        assert_eq!(h.fraction(0), 0.0);
        assert_eq!(h.fraction_at_most(5), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn fractions() {
        let mut h = FanoutHistogram::new();
        for _ in 0..9 {
            h.record(1);
        }
        h.record(3);
        assert!((h.fraction(1) - 0.9).abs() < 1e-12);
        assert!((h.fraction_at_most(1) - 0.9).abs() < 1e-12);
        assert!((h.fraction_at_most(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_is_weighted() {
        let mut h = FanoutHistogram::new();
        h.record(0);
        h.record(2);
        h.record(4);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_aligns_lengths() {
        let mut a = FanoutHistogram::new();
        a.record(0);
        let mut b = FanoutHistogram::new();
        b.record(5);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.count(5), 1);
        assert_eq!(a.max_fanout(), Some(5));
    }

    #[test]
    fn iter_covers_gaps() {
        let mut h = FanoutHistogram::new();
        h.record(3);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(0, 0), (1, 0), (2, 0), (3, 1)]);
    }

    #[test]
    fn display_nonempty() {
        let mut h = FanoutHistogram::new();
        h.record(1);
        assert!(h.to_string().contains("total 1"));
    }

    #[test]
    fn max_fanout_ignores_trailing_zero_buckets() {
        // Regression: max_fanout used to report `counts.len() - 1`, which
        // over-reports when the representation carries trailing zeros.
        let h = FanoutHistogram {
            counts: vec![2, 1, 0, 0],
        };
        assert_eq!(h.max_fanout(), Some(1));
        let all_zero = FanoutHistogram {
            counts: vec![0, 0, 0],
        };
        assert_eq!(all_zero.max_fanout(), None);
    }

    #[test]
    fn merge_trims_to_canonical_form() {
        // Merging a degenerate histogram with trailing zeros must produce
        // the same value (and compare equal to) one recorded directly.
        let mut a = FanoutHistogram {
            counts: vec![0, 0, 0, 0],
        };
        let mut b = FanoutHistogram::new();
        b.record(1);
        a.merge(&b);
        let mut direct = FanoutHistogram::new();
        direct.record(1);
        assert_eq!(a, direct);
        assert_eq!(a.max_fanout(), Some(1));
        assert_eq!(a.iter().count(), 2);
    }

    #[test]
    fn merge_of_two_empties_is_empty() {
        let mut a = FanoutHistogram::new();
        a.merge(&FanoutHistogram::new());
        assert_eq!(a, FanoutHistogram::new());
        assert_eq!(a.max_fanout(), None);
    }
}
