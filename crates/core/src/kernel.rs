//! Table-driven step kernels: dense `(state, event) → (state, counters)`
//! transition rows memoized per scheme, so the steady-state step loop is a
//! map lookup plus counter merges instead of a full protocol-machine match.
//!
//! ## How rows are produced
//!
//! This reuses the idea behind `dirsim-analyze`'s audited BFS
//! `ProtocolTable` extraction: every protocol factorizes per block (the
//! analyze gate's product-factorization check pins this), and the rendered
//! [`BlockState`](dirsim_protocol::BlockState) content is a sufficient
//! abstraction of one block's
//! machine state (the analyze golden tables and confluence lints pin
//! *that*). So the kernel interns each distinct block-state *content*
//! (holders in insertion order, dirty bit, pointers, broadcast bit, aux
//! words — everything except the block address) as a dense `u32` id, and
//! fills transition rows lazily: to compute `(state, event)` it rebuilds a
//! fresh machine, replays the recorded discovery path of `state` onto one
//! probe block, applies the event, and records the outcome's counters plus
//! the successor state. Each row is computed once and hit forever after.
//!
//! ## What the kernel cannot do
//!
//! Rows carry only what the unaudited accumulation path needs (event kind,
//! bus-op counts, fan-out, transaction flag). Data movements and probes —
//! consumed only by the oracle and invariant audits — are not tabled, so
//! kernels engage exclusively when both audits are off; audited runs
//! always take the match-based machines. The match machines stay the
//! oracle: `tests/equivalence.rs` pins kernel-on ≡ kernel-off bit-identical
//! for every scheme, and the `dirsim-verify`/`dirsim-analyze` gates keep
//! auditing the machines themselves.
//!
//! ## Overflow safety valve
//!
//! State spaces are tiny at the paper's scale (4 caches), but an
//! adversarial workload at 64 caches could keep minting fresh states. Past
//! a fixed row budget the kernel reports [`KernelOverflow`]; the lane then
//! *materializes* a real protocol instance (replaying every block's
//! discovery path) and continues on the match-based path, bit-identically.

use dirsim_mem::{BlockAddr, CacheId, FxHashMap};
use dirsim_protocol::{CoherenceProtocol, EventKind, OpCounts, Scheme};

/// Whether lanes may use table-driven kernels (see [`crate::kernel`]).
///
/// The compile-time switches win over the per-run value: building with the
/// `no-kernels` feature forces [`Disabled`](KernelPolicy::Disabled)
/// everywhere (every lane steps the match-based machines), while
/// `force-kernels` upgrades [`Auto`](KernelPolicy::Auto) to
/// [`Required`](KernelPolicy::Required). Both exist so CI can pin the two
/// paths bit-identical without touching run configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPolicy {
    /// Use kernels whenever a lane is eligible (audits off, cache count
    /// within [`MAX_KERNEL_CACHES`]); fall back to the match machines
    /// otherwise. The default.
    #[default]
    Auto,
    /// Never use kernels: every lane steps its match-based machine.
    Disabled,
    /// Kernels must engage on every audit-free lane; an ineligible cache
    /// count panics instead of silently falling back. Audited lanes still
    /// take the match path (the audits need movements and probes that
    /// rows do not carry). Meant for tests that pin the kernel path.
    Required,
}

impl KernelPolicy {
    /// The policy after applying the crate's compile-time overrides.
    pub fn effective(self) -> KernelPolicy {
        if cfg!(feature = "no-kernels") {
            return KernelPolicy::Disabled;
        }
        if cfg!(feature = "force-kernels") && self == KernelPolicy::Auto {
            return KernelPolicy::Required;
        }
        self
    }
}

/// Widest system a kernel will table. Beyond this the event alphabet and
/// state space stop paying for themselves; the sharer-set spill path and
/// match machines handle it.
pub const MAX_KERNEL_CACHES: u32 = 64;

/// Total transition-row budget per kernel (states × events). Bounds lazy
/// table growth to a few MB; overflow falls back to the match machines.
const ROW_BUDGET: usize = 1 << 18;

/// The id of the "absent" state: the machine holds no entry for the block
/// (next reference is a first-reference cold miss).
pub(crate) const ABSENT: u32 = 0;

/// Marker that a row slot has not been computed yet.
const UNFILLED: u32 = u32::MAX;

/// The kernel ran out of state/row budget; the lane must materialize a
/// protocol instance and continue on the match-based path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelOverflow;

/// `block_idx` value marking an instruction fetch (no block involved).
pub(crate) const INSTR_REF: u32 = u32::MAX;

/// `victim_idx` value when a reference displaces no finite-cache victim.
pub(crate) const NO_VICTIM: u32 = u32::MAX;

/// One decoded data reference, shared by every kernel lane of a bank.
///
/// The bank decodes each reference exactly once: block-map lookup,
/// cache attribution, dense block-index interning, and — under a finite
/// geometry — the residency probe and LRU victim choice, all of which
/// are scheme-independent (every lane's finite cache sees the same
/// reference stream, so their contents are bit-identical replicas).
/// Per-lane stepping is then pure array indexing, with no hashing and
/// no cache probing, no matter how many lanes replay the record.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DecodedRef {
    /// Dense bank-wide block index, or [`INSTR_REF`].
    pub(crate) block_idx: u32,
    /// Block index of the LRU victim this reference displaces, or
    /// [`NO_VICTIM`] (always the latter when `resident`).
    pub(crate) victim_idx: u32,
    pub(crate) cache: CacheId,
    pub(crate) write: bool,
    /// Whether the block was resident in the attributed finite cache
    /// (`true` under the infinite-cache model).
    pub(crate) resident: bool,
}

impl DecodedRef {
    /// An instruction fetch (classified and counted, no protocol work).
    pub(crate) fn instr() -> DecodedRef {
        DecodedRef {
            block_idx: INSTR_REF,
            victim_idx: NO_VICTIM,
            cache: CacheId::new(0),
            write: false,
            resident: true,
        }
    }
}

/// Block-state content, minus the block address: the interning key.
type StateKey = (Vec<CacheId>, bool, Vec<CacheId>, bool, Vec<u64>);

/// One computed transition: everything the unaudited accumulation path
/// records for a step from the keyed state under the keyed event.
#[derive(Debug, Clone)]
pub(crate) struct Row {
    /// Event classification (`None` for capacity-eviction rows, which the
    /// engine counts as ops only).
    kind: Option<EventKind>,
    /// Whether the step used the bus (`RefOutcome::is_bus_transaction`).
    used_bus: bool,
    /// Clean-write invalidation fan-out, if the event records one.
    fanout: Option<u32>,
    /// +1 when the step creates the block's directory entry, -1 when it
    /// drops it; keeps the lane's distinct-block count exact.
    tracked_delta: i8,
    /// Whether `ops` has any non-zero count: lets the hot path skip the
    /// merge entirely on hit rows (most transitions move no bus traffic).
    has_ops: bool,
    /// Bus-operation count deltas.
    ops: OpCounts,
}

impl Row {
    fn empty() -> Self {
        Row {
            kind: None,
            used_bus: false,
            fanout: None,
            tracked_delta: 0,
            has_ops: false,
            ops: OpCounts::new(),
        }
    }

    #[inline]
    pub(crate) fn kind(&self) -> Option<EventKind> {
        self.kind
    }

    #[inline]
    pub(crate) fn used_bus(&self) -> bool {
        self.used_bus
    }

    #[inline]
    pub(crate) fn fanout(&self) -> Option<u32> {
        self.fanout
    }

    #[inline]
    pub(crate) fn has_ops(&self) -> bool {
        self.has_ops
    }

    #[inline]
    pub(crate) fn ops(&self) -> &OpCounts {
        &self.ops
    }
}

/// How an interned state was first discovered: the edge from its parent.
/// Chaining parents back to [`ABSENT`] yields a replayable recipe.
#[derive(Debug, Clone, Copy)]
struct StateMeta {
    parent: u32,
    via: u16,
    /// Whether the machine holds a directory entry in this state.
    tracked: bool,
}

/// The memoized transition tables of one lane: interned states and their
/// dense `(state, event) → Row` storage. Split from [`LaneKernel`] so the
/// stepping hot path can hold a `&mut` slot into the block map while
/// filling rows (disjoint-field borrows — one hash probe per step).
pub(crate) struct KernelTable {
    scheme: Scheme,
    caches: u32,
    /// Events per state: `3 * caches` (read, write, evict per cache).
    events: usize,
    ids: FxHashMap<StateKey, u32>,
    meta: Vec<StateMeta>,
    /// Dense row storage, `meta.len() * events` slots, filled lazily.
    rows: Vec<Row>,
    /// Successor state ids, parallel to `rows` ([`UNFILLED`] while a slot
    /// is empty). Split out of [`Row`] so the steady-state hot loop walks
    /// a dense `u32` array that stays cache-resident instead of striding
    /// across the fat row records.
    pub(crate) nexts: Vec<u32>,
    /// Batched hit counts, parallel to `rows`: the fast path records a
    /// step as one `hits[idx] += 1` and the row's counters are multiplied
    /// out once at drain time (sums are commutative, so totals are
    /// bit-identical to per-step accumulation).
    pub(crate) hits: Vec<u64>,
}

/// Memoized transition tables plus the per-block state ids of one lane.
///
/// See the module docs for the design; the stepping contract is:
/// *ensure* every row a step needs first (fallible, mutates only the
/// table), then *commit* them (infallible, mutates block state) — so an
/// overflow can always abandon the step with the simulation untouched.
pub(crate) struct LaneKernel {
    /// The transition tables (fallible side of a step).
    pub(crate) table: KernelTable,
    /// Current interned state per bank block index (grown on demand;
    /// [`ABSENT`] until the block's first data reference).
    pub(crate) states: Vec<u32>,
    /// Blocks whose current state holds a directory entry — the lane's
    /// `distinct_blocks` (equals `tracked_blocks()` on the match path).
    pub(crate) tracked: u64,
}

/// Any address works: state keys strip the block, so the probe machine's
/// transitions are address-independent.
const PROBE_BLOCK: BlockAddr = BlockAddr::new(0);

/// Event index layout: `cache * 3 + {0: read, 1: write, 2: evict}`.
#[inline]
pub(crate) fn data_event(cache: CacheId, write: bool) -> usize {
    cache.index() * 3 + usize::from(write)
}

#[inline]
pub(crate) fn evict_event(cache: CacheId) -> usize {
    cache.index() * 3 + 2
}

fn apply_event(
    m: &mut dyn CoherenceProtocol,
    block: BlockAddr,
    event: usize,
) -> dirsim_protocol::RefOutcome {
    let cache = CacheId::new((event / 3) as u32);
    match event % 3 {
        0 => m.on_data_ref(cache, block, false),
        1 => m.on_data_ref(cache, block, true),
        _ => m.evict(cache, block),
    }
}

fn state_key(state: dirsim_protocol::BlockState) -> StateKey {
    (
        state.holders,
        state.dirty,
        state.pointers,
        state.broadcast_bit,
        state.aux,
    )
}

impl KernelTable {
    /// Returns the row index for `(state, event)`, computing and caching
    /// the row if this is its first use. Mutates only the table — never
    /// block assignments — so failing here leaves the simulation pristine.
    ///
    /// # Errors
    ///
    /// [`KernelOverflow`] when computing the row would exceed the budget.
    #[inline]
    pub(crate) fn ensure_row(&mut self, state: u32, event: usize) -> Result<usize, KernelOverflow> {
        debug_assert!(event < self.events);
        let idx = state as usize * self.events + event;
        if self.nexts[idx] != UNFILLED {
            return Ok(idx);
        }
        self.fill_row(state, event, idx)
    }

    /// The cold half of [`Self::ensure_row`]: replay the state's discovery
    /// recipe onto a fresh machine, apply the queried event, and read back
    /// the successor.
    #[cold]
    fn fill_row(&mut self, state: u32, event: usize, idx: usize) -> Result<usize, KernelOverflow> {
        let mut machine = self.scheme.build(self.caches);
        for &e in &self.path_to(state) {
            apply_event(machine.as_mut(), PROBE_BLOCK, e);
        }
        let outcome = apply_event(machine.as_mut(), PROBE_BLOCK, event);
        let successor = machine.block_state(PROBE_BLOCK).map(state_key);
        let next = self.intern(successor, state, event as u16)?;
        let mut ops = OpCounts::new();
        for &op in &outcome.ops {
            ops.record(op, 1);
        }
        let row = Row {
            kind: outcome.event,
            used_bus: outcome.is_bus_transaction(),
            fanout: outcome.clean_write_fanout,
            tracked_delta: i8::from(self.meta[next as usize].tracked)
                - i8::from(self.meta[state as usize].tracked),
            has_ops: !outcome.ops.is_empty(),
            ops,
        };
        self.rows[idx] = row;
        self.nexts[idx] = next;
        Ok(idx)
    }

    /// The row at `idx` (must have been returned by [`Self::ensure_row`]).
    #[inline]
    pub(crate) fn row(&self, idx: usize) -> &Row {
        &self.rows[idx]
    }

    /// The event recipe that reaches `state` from an untouched machine.
    fn path_to(&self, state: u32) -> Vec<usize> {
        let mut path = Vec::new();
        let mut at = state;
        while at != ABSENT {
            let m = self.meta[at as usize];
            path.push(m.via as usize);
            at = m.parent;
        }
        path.reverse();
        path
    }

    /// Interns a successor state's content key, recording its discovery
    /// edge on first sight.
    fn intern(
        &mut self,
        key: Option<StateKey>,
        parent: u32,
        via: u16,
    ) -> Result<u32, KernelOverflow> {
        let Some(key) = key else {
            // The machine dropped the entry: behaviourally the block is
            // back to the untouched state.
            return Ok(ABSENT);
        };
        if let Some(&id) = self.ids.get(&key) {
            return Ok(id);
        }
        if (self.meta.len() + 1) * self.events > ROW_BUDGET {
            return Err(KernelOverflow);
        }
        let id = u32::try_from(self.meta.len()).map_err(|_| KernelOverflow)?;
        self.ids.insert(key, id);
        self.meta.push(StateMeta {
            parent,
            via,
            tracked: true,
        });
        self.rows
            .resize_with(self.rows.len() + self.events, Row::empty);
        self.nexts.resize(self.rows.len(), UNFILLED);
        self.hits.resize(self.rows.len(), 0);
        Ok(id)
    }
}

impl LaneKernel {
    /// A kernel for `scheme` at `caches`, or `None` when the system is too
    /// wide to table ([`MAX_KERNEL_CACHES`]).
    pub(crate) fn new(scheme: Scheme, caches: u32) -> Option<LaneKernel> {
        if caches == 0 || caches > MAX_KERNEL_CACHES {
            return None;
        }
        let events = caches as usize * 3;
        let mut table = KernelTable {
            scheme,
            caches,
            events,
            ids: FxHashMap::default(),
            meta: Vec::new(),
            rows: Vec::new(),
            nexts: Vec::new(),
            hits: Vec::new(),
        };
        // State 0 is "absent": no entry, reached by an empty recipe.
        table.meta.push(StateMeta {
            parent: ABSENT,
            via: u16::MAX,
            tracked: false,
        });
        table.rows.resize_with(events, Row::empty);
        table.nexts.resize(events, UNFILLED);
        table.hits.resize(events, 0);
        Some(LaneKernel {
            table,
            states: Vec::new(),
            tracked: 0,
        })
    }

    /// Current interned state at bank block index `block_idx` ([`ABSENT`]
    /// if the lane has never grown that far).
    #[inline]
    pub(crate) fn state_of(&self, block_idx: u32) -> u32 {
        self.states
            .get(block_idx as usize)
            .copied()
            .unwrap_or(ABSENT)
    }

    /// The lane's distinct-block count (blocks with a directory entry).
    pub(crate) fn tracked(&self) -> u64 {
        self.tracked
    }

    /// Delegates to [`KernelTable::ensure_row`].
    #[inline]
    pub(crate) fn ensure_row(&mut self, state: u32, event: usize) -> Result<usize, KernelOverflow> {
        self.table.ensure_row(state, event)
    }

    /// Delegates to [`KernelTable::row`].
    #[inline]
    pub(crate) fn row(&self, idx: usize) -> &Row {
        self.table.row(idx)
    }

    /// Commits a prepared transition: moves the block at `block_idx` into
    /// the row's successor state and updates the distinct-block count.
    /// Infallible.
    #[inline]
    pub(crate) fn commit(&mut self, block_idx: u32, idx: usize) {
        let next = self.table.nexts[idx];
        let delta = self.table.rows[idx].tracked_delta;
        let i = block_idx as usize;
        if self.states.len() <= i {
            self.states.resize(i + 1, ABSENT);
        }
        self.states[i] = next;
        self.tracked = self.tracked.wrapping_add(delta as i64 as u64);
    }

    /// Drains the batched row-hit counts: calls `f(row, n)` for every row
    /// with a non-zero count, zeroing the counts and settling the
    /// tracked-block ledger (`Σ n × tracked_delta`). Must run before the
    /// lane's results or `tracked()` are read — i.e. at finish and before
    /// an overflow abandons the kernel.
    pub(crate) fn drain_hits(&mut self, mut f: impl FnMut(&Row, u64)) {
        let LaneKernel { table, tracked, .. } = self;
        for (row, n) in table.rows.iter().zip(table.hits.iter_mut()) {
            let n = std::mem::take(n);
            if n == 0 {
                continue;
            }
            f(row, n);
            *tracked = tracked.wrapping_add((i64::from(row.tracked_delta) as u64).wrapping_mul(n));
        }
    }

    /// Replays every block's discovery recipe onto a fresh protocol
    /// instance — the bit-identical machine a match-based lane would hold
    /// after the same reference stream. Used when the kernel overflows.
    /// `addrs` is the bank's dense-index → block-address table.
    pub(crate) fn materialize(&self, addrs: &[BlockAddr]) -> Box<dyn CoherenceProtocol> {
        let mut machine = self.table.scheme.build(self.table.caches);
        for (i, &state) in self.states.iter().enumerate() {
            if state == ABSENT {
                continue;
            }
            for &e in &self.table.path_to(state) {
                apply_event(machine.as_mut(), addrs[i], e);
            }
        }
        machine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirsim_protocol::DirSpec;

    #[test]
    fn absent_state_transitions_to_tracked() {
        let mut k = LaneKernel::new(Scheme::Directory(DirSpec::dir0_b()), 4).unwrap();
        let block_idx = 7u32;
        assert_eq!(k.state_of(block_idx), ABSENT);
        let ev = data_event(CacheId::new(1), false);
        let idx = k.ensure_row(ABSENT, ev).unwrap();
        assert_eq!(k.row(idx).kind(), Some(EventKind::RmFirstRef));
        k.commit(block_idx, idx);
        assert_ne!(k.state_of(block_idx), ABSENT);
        assert_eq!(k.tracked(), 1);
    }

    #[test]
    fn rows_are_memoized() {
        let mut k = LaneKernel::new(Scheme::Wti, 2).unwrap();
        let ev = data_event(CacheId::new(0), true);
        let a = k.ensure_row(ABSENT, ev).unwrap();
        let states = k.table.meta.len();
        let b = k.ensure_row(ABSENT, ev).unwrap();
        assert_eq!(a, b);
        assert_eq!(states, k.table.meta.len(), "second lookup mints no state");
    }

    #[test]
    fn too_wide_systems_are_rejected() {
        assert!(LaneKernel::new(Scheme::Wti, MAX_KERNEL_CACHES + 1).is_none());
        assert!(LaneKernel::new(Scheme::Wti, 0).is_none());
    }

    #[test]
    fn materialize_reproduces_block_state() {
        let scheme = Scheme::Directory(DirSpec::dir_i_nb(2).expect("valid spec"));
        let mut k = LaneKernel::new(scheme, 3).unwrap();
        let block = BlockAddr::new(42);
        let block_idx = 0u32;
        // read by 0, read by 1, write by 2 — exercises pointer eviction.
        for ev in [
            data_event(CacheId::new(0), false),
            data_event(CacheId::new(1), false),
            data_event(CacheId::new(2), true),
        ] {
            let idx = k.ensure_row(k.state_of(block_idx), ev).unwrap();
            k.commit(block_idx, idx);
        }
        let materialized = k.materialize(&[block]);

        let mut direct = scheme.build(3);
        direct.on_data_ref(CacheId::new(0), block, false);
        direct.on_data_ref(CacheId::new(1), block, false);
        direct.on_data_ref(CacheId::new(2), block, true);

        assert_eq!(materialized.snapshot(), direct.snapshot());
        assert_eq!(k.tracked(), 1);
    }

    #[test]
    fn overflow_materializes_a_consistent_machine() {
        // 64 caches shrink the state budget to `ROW_BUDGET / 192` interned
        // states, and a different per-block read order mints a distinct
        // (insertion-ordered) holder chain per block, so the budget trips
        // quickly. After the overflow the kernel must still materialize a
        // machine whose state matches a direct replay of every reference
        // that was actually committed.
        let scheme = Scheme::dir_n_nb();
        let caches = MAX_KERNEL_CACHES;
        let mut k = LaneKernel::new(scheme, caches).unwrap();
        let addrs: Vec<BlockAddr> = (0..256u64).map(BlockAddr::new).collect();
        let mut log: Vec<(BlockAddr, CacheId)> = Vec::new();
        let mut overflowed = false;
        'blocks: for b in 0..256u32 {
            let block = addrs[b as usize];
            // Stride 2b+1 is odd, hence coprime to the power-of-two cache
            // count: each block reads all 64 caches in a distinct order.
            let stride = (2 * b + 1) % caches;
            for i in 0..caches {
                let cache = CacheId::new((i * stride + b) % caches);
                let ev = data_event(cache, false);
                match k.ensure_row(k.state_of(b), ev) {
                    Ok(idx) => {
                        k.commit(b, idx);
                        log.push((block, cache));
                    }
                    Err(KernelOverflow) => {
                        overflowed = true;
                        break 'blocks;
                    }
                }
            }
        }
        assert!(overflowed, "64-cache DirnNB must trip the row budget");

        let materialized = k.materialize(&addrs);
        let mut direct = scheme.build(caches);
        for &(block, cache) in &log {
            direct.on_data_ref(cache, block, false);
        }
        assert_eq!(materialized.snapshot(), direct.snapshot());
        assert_eq!(k.tracked(), materialized.tracked_blocks() as u64);
    }

    #[test]
    fn policy_effective_respects_features() {
        // Without the override features, effective() is the identity.
        if cfg!(not(any(feature = "no-kernels", feature = "force-kernels"))) {
            assert_eq!(KernelPolicy::Auto.effective(), KernelPolicy::Auto);
            assert_eq!(KernelPolicy::Disabled.effective(), KernelPolicy::Disabled);
            assert_eq!(KernelPolicy::Required.effective(), KernelPolicy::Required);
        }
        if cfg!(feature = "no-kernels") {
            assert_eq!(KernelPolicy::Required.effective(), KernelPolicy::Disabled);
        }
    }
}
