//! Report rendering: regenerates the paper's tables and figures as text.
//!
//! Every table/figure of the evaluation section has a `render_*` function
//! here; the `dirsim-bench` crate's `repro` binary assembles them into the
//! full reproduction report recorded in `EXPERIMENTS.md`.

use std::fmt::Write as _;

use dirsim_cost::{BusTiming, CostCategory, CostModel};
use dirsim_protocol::{BusOp, EventKind, Scheme};

use crate::analysis::SystemModel;
use crate::engine::SimResult;
use crate::experiment::ExperimentResults;
use crate::paper::{FiniteCacheRow, LockImpact, PointerSweepRow};

/// A minimal fixed-width text table.
///
/// # Examples
///
/// ```
/// use dirsim::report::TextTable;
///
/// let mut t = TextTable::new("Demo");
/// t.headers(["name", "value"]);
/// t.row(["x", "1"]);
/// let s = t.render();
/// assert!(s.contains("Demo"));
/// assert!(s.contains("x"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        TextTable {
            title: title.into(),
            ..Self::default()
        }
    }

    /// Sets the header row.
    pub fn headers<I, S>(&mut self, headers: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    pub fn row<I, S>(&mut self, row: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(row.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let all_rows = std::iter::once(&self.headers).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let render_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    let _ = write!(line, "{cell:<w$}");
                } else {
                    let _ = write!(line, "  {cell:>w$}");
                }
            }
            line.trim_end().to_string()
        };
        if !self.headers.is_empty() {
            let _ = writeln!(out, "{}", render_row(&self.headers));
            let underline: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
            let _ = writeln!(out, "{}", "-".repeat(underline));
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row));
        }
        out
    }
}

fn pct(value: f64) -> String {
    format!("{:.2}", value * 100.0)
}

fn bar(value: f64, max: f64, width: usize) -> String {
    // A NaN/infinite/non-positive max or value renders as an empty bar
    // rather than relying on the saturating float→usize cast to do
    // something sensible.
    if !max.is_finite() || max <= 0.0 || !value.is_finite() || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max).clamp(0.0, 1.0) * width as f64).round() as usize;
    "#".repeat(n)
}

/// Table 1: primitive bus-operation timings.
pub fn render_table1() -> String {
    let t = BusTiming::PAPER;
    let mut table = TextTable::new("Table 1: Timing for fundamental bus operations (cycles)");
    table.headers(["operation", "cycles"]);
    table.row(["transfer 1 data word", &t.transfer_word.to_string()]);
    table.row(["invalidate", &t.invalidate.to_string()]);
    table.row(["wait for directory", &t.wait_directory.to_string()]);
    table.row(["wait for memory", &t.wait_memory.to_string()]);
    table.row(["wait for cache", &t.wait_cache.to_string()]);
    table.row(["send address", &t.send_address.to_string()]);
    table.render()
}

/// Table 2: per-operation bus-cycle costs under both bus models.
pub fn render_table2() -> String {
    let pipe = CostModel::pipelined();
    let nonpipe = CostModel::non_pipelined();
    let mut table = TextTable::new("Table 2: Summary of bus cycle costs");
    table.headers(["access type", "pipelined", "non-pipelined"]);
    let rows: [(&str, BusOp); 7] = [
        ("memory access", BusOp::MemRead),
        ("cache access", BusOp::CacheSupply),
        ("write-back", BusOp::WriteBack),
        ("write-through", BusOp::WriteThrough),
        ("write update", BusOp::WriteUpdate),
        ("directory check", BusOp::DirLookup),
        ("invalidate", BusOp::Invalidate),
    ];
    for (name, op) in rows {
        table.row([
            name.to_string(),
            pipe.op_cost(op).to_string(),
            nonpipe.op_cost(op).to_string(),
        ]);
    }
    table.render()
}

/// Table 3: trace characteristics.
pub fn render_table3(results: &ExperimentResults) -> String {
    let mut table = TextTable::new("Table 3: Summary of trace characteristics (thousands)");
    table.headers([
        "trace", "refs", "instr", "drd", "dwrt", "user", "sys", "lockrd",
    ]);
    for (name, stats) in &results.trace_stats {
        let k = |v: u64| format!("{:.0}", v as f64 / 1000.0);
        table.row([
            name.clone(),
            k(stats.total()),
            k(stats.instructions()),
            k(stats.data_reads()),
            k(stats.data_writes()),
            k(stats.user()),
            k(stats.system()),
            k(stats.lock_reads()),
        ]);
    }
    table.render()
}

/// Table 4: event frequencies as a percentage of all references.
pub fn render_table4(results: &ExperimentResults) -> String {
    let mut table = TextTable::new("Table 4: Event frequencies (% of all references)");
    let mut headers = vec!["event".to_string()];
    headers.extend(results.per_scheme.iter().map(|s| s.scheme.name()));
    table.headers(headers);
    // Aggregate rows first, then the Table 4 sub-categories.
    let mut push_derived = |label: &str, f: &dyn Fn(&SimResult) -> f64| {
        let mut row = vec![label.to_string()];
        for s in &results.per_scheme {
            row.push(pct(f(&s.combined)));
        }
        table.row(row);
    };
    push_derived("read", &|r| r.events.reads() as f64 / r.refs as f64);
    push_derived("write", &|r| r.events.writes() as f64 / r.refs as f64);
    for kind in EventKind::ALL {
        let mut row = vec![kind.name().to_string()];
        for s in &results.per_scheme {
            let count = s.combined.events[kind];
            if count == 0 {
                row.push("-".to_string());
            } else {
                row.push(pct(s.combined.events.frequency(kind)));
            }
        }
        table.row(row);
    }
    table.render()
}

/// Table 5: bus-cycle breakdown per category (given bus model).
pub fn render_table5(results: &ExperimentResults, model: CostModel) -> String {
    let mut table = TextTable::new(format!(
        "Table 5: Breakdown of bus cycles per reference ({} bus)",
        model.kind()
    ));
    let mut headers = vec!["access type".to_string()];
    headers.extend(results.per_scheme.iter().map(|s| s.scheme.name()));
    table.headers(headers);
    for cat in CostCategory::ALL {
        let mut row = vec![cat.name().to_string()];
        for s in &results.per_scheme {
            let v = s.combined.breakdown(model)[cat];
            row.push(if v == 0.0 {
                "-".to_string()
            } else {
                format!("{v:.4}")
            });
        }
        table.row(row);
    }
    let mut row = vec!["cumulative".to_string()];
    for s in &results.per_scheme {
        row.push(format!("{:.4}", s.combined.cycles_per_ref(model)));
    }
    table.row(row);
    table.render()
}

/// Table 4, paper vs. measured side by side for the headline schemes.
pub fn render_table4_comparison(results: &ExperimentResults) -> String {
    let paper = crate::reference::paper_table4();
    let mut table = TextTable::new("Table 4 comparison: paper / measured (% of all references)");
    let mut headers = vec!["event".to_string()];
    headers.extend(paper.iter().map(|c| c.scheme.to_string()));
    table.headers(headers);
    for (i, kind) in EventKind::ALL.iter().enumerate() {
        let mut row = vec![kind.name().to_string()];
        for col in &paper {
            let paper_cell = col.rows[i]
                .1
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "-".to_string());
            let measured_cell = col
                .scheme
                .parse::<Scheme>()
                .ok()
                .and_then(|scheme| results.get(scheme))
                .map(|s| {
                    let count = s.combined.events[*kind];
                    if count == 0 {
                        "-".to_string()
                    } else {
                        pct(s.combined.events.frequency(*kind))
                    }
                })
                .unwrap_or_else(|| "?".to_string());
            row.push(format!("{paper_cell} / {measured_cell}"));
        }
        table.row(row);
    }
    table.render()
}

/// Table 5 cumulative cost, paper vs. measured (pipelined bus).
pub fn render_table5_comparison(results: &ExperimentResults) -> String {
    let model = CostModel::pipelined();
    let mut table = TextTable::new(
        "Table 5 comparison: cumulative bus cycles/ref, paper vs measured (pipelined)",
    );
    table.headers(["scheme", "paper", "measured", "measured/paper"]);
    for s in &results.per_scheme {
        let name = s.scheme.name();
        let measured = s.combined.cycles_per_ref(model);
        match crate::reference::paper_table5_cumulative(&name) {
            Some(paper) => table.row([
                name,
                format!("{paper:.4}"),
                format!("{measured:.4}"),
                format!("{:.2}x", measured / paper),
            ]),
            None => table.row([
                name,
                "-".to_string(),
                format!("{measured:.4}"),
                "-".to_string(),
            ]),
        };
    }
    table.render()
}

/// Figure 1: histogram of caches invalidated on writes to previously-clean
/// blocks, for `scheme` (the paper uses the `Dir0B` state model).
pub fn render_figure1(results: &ExperimentResults, scheme: Scheme) -> String {
    let Some(s) = results.get(scheme) else {
        return format!("figure 1: scheme {scheme} not simulated\n");
    };
    let hist = &s.combined.fanout;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Figure 1: caches invalidated on a write to a previously-clean block ({scheme}) =="
    );
    let max_frac = hist
        .iter()
        .map(|(k, _)| hist.fraction(k))
        .fold(0.0f64, f64::max);
    for (k, count) in hist.iter() {
        let frac = hist.fraction(k);
        let _ = writeln!(
            out,
            "{k:>2} caches: {:>6.2}%  {:<40} ({count})",
            frac * 100.0,
            bar(frac, max_frac, 40)
        );
    }
    let _ = writeln!(
        out,
        "cumulative ≤1: {:.1}%  (paper: over 85%)",
        hist.fraction_at_most(1) * 100.0
    );
    out
}

/// Figure 2: range of bus cycles per reference (pipelined → non-pipelined),
/// averaged over traces.
pub fn render_figure2(results: &ExperimentResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Figure 2: bus cycles per reference (pipelined → non-pipelined, all traces) =="
    );
    let max = results
        .per_scheme
        .iter()
        .map(|s| s.combined.cycles_per_ref(CostModel::non_pipelined()))
        .fold(0.0f64, f64::max);
    for s in &results.per_scheme {
        let lo = s.combined.cycles_per_ref(CostModel::pipelined());
        let hi = s.combined.cycles_per_ref(CostModel::non_pipelined());
        let _ = writeln!(
            out,
            "{:>12}: {lo:.4} – {hi:.4}  {}",
            s.scheme.name(),
            bar(hi, max, 40)
        );
    }
    out
}

/// Figure 3: the same per individual trace.
pub fn render_figure3(results: &ExperimentResults) -> String {
    let mut table =
        TextTable::new("Figure 3: bus cycles per reference per trace (pipelined / non-pipelined)");
    let mut headers = vec!["trace".to_string()];
    headers.extend(results.per_scheme.iter().map(|s| s.scheme.name()));
    table.headers(headers);
    for (i, (trace, _)) in results.trace_stats.iter().enumerate() {
        let mut row = vec![trace.clone()];
        for s in &results.per_scheme {
            let (_, r) = &s.per_trace[i];
            row.push(format!(
                "{:.4}/{:.4}",
                r.cycles_per_ref(CostModel::pipelined()),
                r.cycles_per_ref(CostModel::non_pipelined())
            ));
        }
        table.row(row);
    }
    table.render()
}

/// Figure 4: per-scheme cost breakdown as a fraction of its own total.
pub fn render_figure4(results: &ExperimentResults, model: CostModel) -> String {
    let mut table = TextTable::new(format!(
        "Figure 4: bus-cycle breakdown as fraction of each scheme's total ({} bus)",
        model.kind()
    ));
    let mut headers = vec!["category".to_string()];
    headers.extend(results.per_scheme.iter().map(|s| s.scheme.name()));
    table.headers(headers);
    for cat in CostCategory::ALL {
        let mut row = vec![cat.name().to_string()];
        for s in &results.per_scheme {
            let fracs = s.combined.breakdown(model).fractions();
            let f = fracs
                .iter()
                .find(|(c, _)| *c == cat)
                .map(|(_, f)| *f)
                .unwrap_or(0.0);
            row.push(if f == 0.0 {
                "-".to_string()
            } else {
                format!("{:.1}%", f * 100.0)
            });
        }
        table.row(row);
    }
    table.render()
}

/// Figure 5: average bus cycles per bus transaction.
pub fn render_figure5(results: &ExperimentResults, model: CostModel) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Figure 5: average bus cycles per bus transaction ({} bus) ==",
        model.kind()
    );
    let max = results
        .per_scheme
        .iter()
        .map(|s| s.combined.breakdown(model).cycles_per_transaction())
        .fold(0.0f64, f64::max);
    for s in &results.per_scheme {
        let v = s.combined.breakdown(model).cycles_per_transaction();
        let _ = writeln!(out, "{:>12}: {v:.2}  {}", s.scheme.name(), bar(v, max, 40));
    }
    out
}

/// §5.1: the fixed-overhead sensitivity lines.
pub fn render_q_sweep(lines: &[(String, Vec<(f64, f64)>)]) -> String {
    let mut table = TextTable::new(
        "Section 5.1: cycles/ref with q extra cycles per bus transaction (pipelined)",
    );
    let qs: Vec<String> = lines
        .first()
        .map(|(_, pts)| pts.iter().map(|(q, _)| format!("q={q}")).collect())
        .unwrap_or_default();
    let mut headers = vec!["scheme".to_string()];
    headers.extend(qs);
    table.headers(headers);
    for (name, pts) in lines {
        let mut row = vec![name.clone()];
        row.extend(pts.iter().map(|(_, v)| format!("{v:.4}")));
        table.row(row);
    }
    table.render()
}

/// §5.2: the spin-lock ablation.
pub fn render_lock_impact(impacts: &[LockImpact]) -> String {
    let mut table =
        TextTable::new("Section 5.2: impact of spin-lock test reads (pipelined bus cycles/ref)");
    table.headers(["scheme", "with locks", "without locks", "improvement"]);
    for i in impacts {
        table.row([
            i.scheme.clone(),
            format!("{:.4}", i.with_locks),
            format!("{:.4}", i.without_locks),
            format!("{:.1}%", i.improvement() * 100.0),
        ]);
    }
    table.render()
}

/// §6: the broadcast-cost sensitivity for a scheme.
pub fn render_broadcast_sweep(scheme: &str, points: &[(u32, f64)]) -> String {
    let mut table = TextTable::new(format!(
        "Section 6: {scheme} cycles/ref vs broadcast cost b (pipelined)"
    ));
    table.headers(["b (cycles)", "cycles/ref"]);
    for (b, v) in points {
        table.row([b.to_string(), format!("{v:.4}")]);
    }
    table.render()
}

/// §4 extension: the finite-cache study for one scheme.
pub fn render_finite_cache(scheme: &str, rows: &[FiniteCacheRow]) -> String {
    let mut table = TextTable::new(format!(
        "Section 4 extension: {scheme} under finite caches (pipelined)"
    ));
    table.headers([
        "capacity (blocks)",
        "cycles/ref",
        "miss rate",
        "evict/kiloref",
    ]);
    for r in rows {
        table.row([
            r.capacity_blocks
                .map(|b| b.to_string())
                .unwrap_or_else(|| "infinite".to_string()),
            format!("{:.4}", r.cycles_per_ref),
            format!("{:.3}%", r.miss_rate * 100.0),
            format!("{:.2}", r.evictions_per_kiloref),
        ]);
    }
    table.render()
}

/// §5 end: effective-processor upper bounds under a system model.
pub fn render_effective_processors(bounds: &[(String, f64)], system: SystemModel) -> String {
    let mut table = TextTable::new(format!(
        "Section 5: effective-processor bound ({} MIPS cpus, {} ns bus)",
        system.processor_mips, system.bus_cycle_ns
    ));
    table.headers(["scheme", "max effective processors"]);
    for (name, eff) in bounds {
        table.row([name.clone(), format!("{eff:.1}")]);
    }
    table.render()
}

/// §7 extension: network-scaling study rows.
pub fn render_network_scaling(rows: &[crate::paper::NetworkScalingRow]) -> String {
    let nodes = rows.first().map(|r| r.nodes).unwrap_or(0);
    let mut table = TextTable::new(format!(
        "Section 7 extension: network traffic at {nodes} nodes (link-cycles/ref)"
    ));
    table.headers(["scheme", "topology", "traffic/ref", "saturation procs"]);
    for r in rows {
        table.row([
            r.scheme.clone(),
            r.topology.to_string(),
            format!("{:.3}", r.traffic_per_ref),
            if r.saturation_processors.is_finite() {
                format!("{:.1}", r.saturation_processors)
            } else {
                "∞".to_string()
            },
        ]);
    }
    table.render()
}

/// Sharing-intensity sweep table.
pub fn render_sharing_sweep(rows: &[crate::paper::SharingSweepRow]) -> String {
    let mut table =
        TextTable::new("Workload sensitivity: cycles/ref vs shared-data fraction (pipelined)");
    let mut headers = vec!["shared frac".to_string()];
    if let Some(first) = rows.first() {
        headers.extend(first.cycles_per_ref.iter().map(|(n, _)| n.clone()));
    }
    table.headers(headers);
    for r in rows {
        let mut row = vec![format!("{:.3}", r.shared_frac)];
        row.extend(r.cycles_per_ref.iter().map(|(_, v)| format!("{v:.4}")));
        table.row(row);
    }
    table.render()
}

/// Timing-level utilisation table.
pub fn render_utilization(rows: &[crate::paper::UtilizationRow]) -> String {
    let mut table = TextTable::new(
        "Timing simulation: processor utilisation vs machine size (q=1, pipelined costs)",
    );
    table.headers(["scheme", "procs", "cpu util", "effective procs", "bus util"]);
    for r in rows {
        table.row([
            r.scheme.clone(),
            r.processors.to_string(),
            format!("{:.0}%", r.utilization * 100.0),
            format!("{:.2}", r.effective_processors),
            format!("{:.0}%", r.bus_utilization * 100.0),
        ]);
    }
    table.render()
}

/// Seed-sensitivity dispersion table.
pub fn render_seed_sensitivity(rows: &[crate::paper::SeedSensitivityRow]) -> String {
    let mut table =
        TextTable::new("Robustness: cycles/ref dispersion across generator seeds (pipelined)");
    table.headers(["scheme", "mean", "stddev", "min", "max", "cv"]);
    for r in rows {
        table.row([
            r.scheme.clone(),
            format!("{:.4}", r.mean),
            format!("{:.4}", r.stddev),
            format!("{:.4}", r.min),
            format!("{:.4}", r.max),
            format!("{:.1}%", r.relative_spread() * 100.0),
        ]);
    }
    table.render()
}

/// §6: the pointer sweep / scaling study.
pub fn render_pointer_sweep(processors: u16, rows: &[PointerSweepRow]) -> String {
    let mut table = TextTable::new(format!(
        "Section 6: Dir_i design space at {processors} processors (pipelined)"
    ));
    table.headers(["scheme", "cycles/ref", "coh. miss rate", "bcast/kiloref"]);
    for r in rows {
        table.row([
            r.scheme.clone(),
            format!("{:.4}", r.cycles_per_ref),
            format!("{:.3}%", r.miss_rate * 100.0),
            format!("{:.2}", r.broadcasts_per_kiloref),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, NamedWorkload};
    use dirsim_protocol::Scheme;
    use dirsim_trace::synth::WorkloadConfig;

    fn small_results() -> ExperimentResults {
        Experiment::new()
            .workload(NamedWorkload::new(
                "T",
                WorkloadConfig::builder().seed(5).build().unwrap(),
            ))
            .schemes(Scheme::paper_lineup())
            .refs_per_trace(20_000)
            .run()
            .unwrap()
    }

    #[test]
    fn text_table_alignment() {
        let mut t = TextTable::new("X");
        t.headers(["a", "bbbb"]);
        t.row(["lorem", "1"]);
        let s = t.render();
        assert!(s.starts_with("== X =="));
        assert!(s.contains("lorem"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn static_tables_render() {
        let t1 = render_table1();
        assert!(t1.contains("invalidate"));
        let t2 = render_table2();
        assert!(t2.contains("memory access"));
        assert!(t2.contains("7"), "non-pipelined memory access cost");
    }

    #[test]
    fn dynamic_tables_render() {
        let results = small_results();
        let t3 = render_table3(&results);
        assert!(t3.contains("T"));
        let t4 = render_table4(&results);
        assert!(t4.contains("rm-blk-cln"));
        assert!(t4.contains("Dragon"));
        let t5 = render_table5(&results, CostModel::pipelined());
        assert!(t5.contains("cumulative"));
    }

    #[test]
    fn comparison_tables_render() {
        let results = small_results();
        let t4 = render_table4_comparison(&results);
        assert!(t4.contains("paper / measured"));
        assert!(t4.contains("4.78"), "paper Dir1NB rm-blk-cln value shown");
        let t5 = render_table5_comparison(&results);
        assert!(t5.contains("0.0491"), "paper Dir0B cumulative shown");
        assert!(t5.contains('x'));
    }

    #[test]
    fn figures_render() {
        let results = small_results();
        assert!(render_figure1(&results, Scheme::dir0_b()).contains("cumulative ≤1"));
        assert!(render_figure1(&results, Scheme::Berkeley).contains("not simulated"));
        assert!(render_figure2(&results).contains("Dir1NB"));
        assert!(render_figure3(&results).contains("T"));
        assert!(render_figure4(&results, CostModel::pipelined()).contains("mem access"));
        assert!(render_figure5(&results, CostModel::pipelined()).contains("Dragon"));
    }

    #[test]
    fn sweep_renders() {
        let lines = vec![("Dir0B".to_string(), vec![(0.0, 0.05), (1.0, 0.06)])];
        let s = render_q_sweep(&lines);
        assert!(s.contains("q=0"));
        assert!(s.contains("0.0600"));

        let s = render_broadcast_sweep("Dir1B", &[(1, 0.05), (8, 0.051)]);
        assert!(s.contains("Dir1B"));

        let impacts = vec![LockImpact {
            scheme: "Dir1NB".into(),
            with_locks: 0.32,
            without_locks: 0.12,
        }];
        let s = render_lock_impact(&impacts);
        assert!(s.contains("62.5%"));

        let rows = vec![PointerSweepRow {
            scheme: "Dir1B".into(),
            cycles_per_ref: 0.05,
            miss_rate: 0.01,
            broadcasts_per_kiloref: 0.5,
        }];
        let s = render_pointer_sweep(16, &rows);
        assert!(s.contains("16 processors"));
    }

    #[test]
    fn bar_handles_float_edge_cases() {
        assert_eq!(bar(0.5, 1.0, 10), "#####");
        assert_eq!(bar(1.0, 1.0, 10), "##########");
        // Values past the maximum clamp to a full bar instead of relying
        // on the saturating cast.
        assert_eq!(bar(3.0, 1.0, 10), "##########");
        // Degenerate inputs all render as an empty bar.
        assert_eq!(bar(f64::NAN, 1.0, 10), "");
        assert_eq!(bar(-0.5, 1.0, 10), "");
        assert_eq!(bar(f64::INFINITY, 1.0, 10), "");
        assert_eq!(bar(0.5, f64::NAN, 10), "");
        assert_eq!(bar(0.5, 0.0, 10), "");
        assert_eq!(bar(0.5, -1.0, 10), "");
        assert_eq!(bar(0.0, 1.0, 10), "");
    }
}
