//! Runtime protocol-invariant audit.
//!
//! Every [`CoherenceProtocol`] must
//! uphold a small catalogue of invariants regardless of scheme:
//!
//! 1. **SWMR** — a dirty block has exactly one holder (invalidation
//!    families); an update-family block's owner is among the holders.
//! 2. **Structural sanity** — holders are distinct, in range, and
//!    directory pointer knowledge never names a cache without a copy.
//! 3. **Event classification** — the Table 4 event a protocol reports for
//!    a reference is fully determined by the pre-reference probe and the
//!    protocol's [`ProtocolStyle`]; a mismatch means the state machine
//!    mis-classified.
//! 4. **Fan-out accounting** — `clean_write_fanout` is present exactly on
//!    clean-write events (invalidation families) and equals the number of
//!    remote copies the write displaced.
//! 5. **Residency** — after a data reference the referencing cache holds
//!    the block; after an eviction it does not.
//!
//! The checks are pure functions over the public protocol API (probe +
//! snapshot), so the exhaustive model checker (`dirsim-verify`) reuses
//! them verbatim on every reachable state. The simulation engine runs them
//! per reference when [`SimConfig::check_invariants`](crate::SimConfig)
//! is set — the default in debug builds, and in release builds under the
//! `invariants` feature.

use std::fmt;

use dirsim_mem::{BlockAddr, CacheId, OracleViolation, ShadowMemory};
use dirsim_protocol::{
    BlockProbe, BlockState, CoherenceProtocol, DataMovement, EventKind, ProtocolStyle, RefOutcome,
    StateSnapshot,
};

/// A violated protocol invariant (see module docs for the catalogue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// A data reference left the block with no protocol state at all.
    StateDropped {
        /// The referenced block.
        block: BlockAddr,
    },
    /// The referencing cache does not hold the block after the reference.
    ReferencerNotResident {
        /// The referencing cache.
        cache: CacheId,
        /// The referenced block.
        block: BlockAddr,
    },
    /// A cache still holds a block it was told to evict.
    EvicteeStillResident {
        /// The evicted cache.
        cache: CacheId,
        /// The evicted block.
        block: BlockAddr,
    },
    /// An eviction outcome carried a Table 4 event (evictions are not
    /// memory references and must not be classified).
    EvictionClassified {
        /// The evicted block.
        block: BlockAddr,
        /// The event the protocol wrongly attached.
        event: EventKind,
    },
    /// A holder list contains the same cache twice.
    DuplicateHolder {
        /// The affected block.
        block: BlockAddr,
        /// The duplicated cache.
        cache: CacheId,
    },
    /// A holder or pointer names a cache index outside the system.
    CacheOutOfRange {
        /// The affected block.
        block: BlockAddr,
        /// The out-of-range cache.
        cache: CacheId,
        /// The number of caches in the system.
        caches: u32,
    },
    /// Single-writer violation: a dirty block with zero or several holders.
    DirtyNotExclusive {
        /// The dirty block.
        block: BlockAddr,
        /// All caches holding it.
        holders: Vec<CacheId>,
    },
    /// Directory knowledge names a cache that holds no copy — the
    /// signature of a lost invalidation.
    PointerWithoutCopy {
        /// The affected block.
        block: BlockAddr,
        /// The pointer target without a copy.
        cache: CacheId,
    },
    /// An update-family block whose recorded owner holds no copy.
    OwnerWithoutCopy {
        /// The affected block.
        block: BlockAddr,
        /// The owner without a copy.
        cache: CacheId,
    },
    /// The protocol classified a reference differently from what its
    /// pre-reference state dictates.
    EventMismatch {
        /// The referenced block.
        block: BlockAddr,
        /// The referencing cache.
        cache: CacheId,
        /// The event the pre-state dictates.
        expected: EventKind,
        /// The event the protocol reported.
        got: EventKind,
    },
    /// `clean_write_fanout` missing, spurious, or wrong.
    FanoutMismatch {
        /// The referenced block.
        block: BlockAddr,
        /// The fan-out the pre-state dictates (`None` = must be absent).
        expected: Option<u32>,
        /// The fan-out the protocol reported.
        got: Option<u32>,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::StateDropped { block } => {
                write!(f, "block {block:?}: state dropped by a data reference")
            }
            InvariantViolation::ReferencerNotResident { cache, block } => {
                write!(
                    f,
                    "block {block:?}: referencing {cache:?} holds no copy afterwards"
                )
            }
            InvariantViolation::EvicteeStillResident { cache, block } => {
                write!(
                    f,
                    "block {block:?}: {cache:?} still resident after eviction"
                )
            }
            InvariantViolation::EvictionClassified { block, event } => {
                write!(f, "block {block:?}: eviction classified as {event:?}")
            }
            InvariantViolation::DuplicateHolder { block, cache } => {
                write!(f, "block {block:?}: {cache:?} appears twice among holders")
            }
            InvariantViolation::CacheOutOfRange {
                block,
                cache,
                caches,
            } => {
                write!(
                    f,
                    "block {block:?}: {cache:?} out of range for {caches} caches"
                )
            }
            InvariantViolation::DirtyNotExclusive { block, holders } => {
                write!(
                    f,
                    "block {block:?}: dirty with holders {holders:?} (must be exactly one)"
                )
            }
            InvariantViolation::PointerWithoutCopy { block, cache } => {
                write!(
                    f,
                    "block {block:?}: directory points at {cache:?} which holds no copy \
                     (lost invalidation?)"
                )
            }
            InvariantViolation::OwnerWithoutCopy { block, cache } => {
                write!(f, "block {block:?}: owner {cache:?} holds no copy")
            }
            InvariantViolation::EventMismatch {
                block,
                cache,
                expected,
                got,
            } => {
                write!(
                    f,
                    "block {block:?}, {cache:?}: classified {got:?}, pre-state dictates {expected:?}"
                )
            }
            InvariantViolation::FanoutMismatch {
                block,
                expected,
                got,
            } => {
                write!(
                    f,
                    "block {block:?}: clean-write fanout {got:?}, expected {expected:?}"
                )
            }
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// The Table 4 event a reference must classify as, given the
/// pre-reference probe and the protocol family.
///
/// This is the invariant-checker's independent re-derivation of the
/// paper's event taxonomy: first references are detected by absent state,
/// hits by residency, and the clean/dirty (or local/distrib) split by the
/// probe's dirty bit (or sharing).
pub fn predicted_event(
    style: ProtocolStyle,
    pre: Option<&BlockProbe>,
    cache: CacheId,
    write: bool,
) -> EventKind {
    let Some(pre) = pre else {
        return if write {
            EventKind::WmFirstRef
        } else {
            EventKind::RmFirstRef
        };
    };
    let resident = pre.holders.contains(&cache);
    match (write, resident) {
        (false, true) => EventKind::RdHit,
        (false, false) => {
            if pre.dirty {
                EventKind::RmBlkDrty
            } else {
                EventKind::RmBlkCln
            }
        }
        (true, true) => match style {
            ProtocolStyle::Update => {
                if pre.holders.len() > 1 {
                    EventKind::WhDistrib
                } else {
                    EventKind::WhLocal
                }
            }
            _ => {
                if pre.dirty {
                    EventKind::WhBlkDrty
                } else {
                    EventKind::WhBlkCln
                }
            }
        },
        (true, false) => {
            if pre.dirty {
                EventKind::WmBlkDrty
            } else {
                EventKind::WmBlkCln
            }
        }
    }
}

/// Structural audit of one block's canonical state: distinct in-range
/// holders, SWMR, and directory/ownership agreement with the holder set.
pub fn check_block(
    style: ProtocolStyle,
    b: &BlockState,
    caches: u32,
) -> Result<(), InvariantViolation> {
    let mut seen = vec![false; caches as usize];
    for &h in &b.holders {
        if h.index() >= caches as usize {
            return Err(InvariantViolation::CacheOutOfRange {
                block: b.block,
                cache: h,
                caches,
            });
        }
        if seen[h.index()] {
            return Err(InvariantViolation::DuplicateHolder {
                block: b.block,
                cache: h,
            });
        }
        seen[h.index()] = true;
    }
    for &p in &b.pointers {
        if p.index() >= caches as usize {
            return Err(InvariantViolation::CacheOutOfRange {
                block: b.block,
                cache: p,
                caches,
            });
        }
        if !seen[p.index()] {
            return Err(InvariantViolation::PointerWithoutCopy {
                block: b.block,
                cache: p,
            });
        }
    }
    match style {
        ProtocolStyle::Update => {
            // Owner identity rides in aux[0] as index + 1 (0 = memory
            // current) for both update protocols.
            if b.dirty {
                if let Some(&enc) = b.aux.first() {
                    if enc > 0 {
                        let owner = CacheId::new((enc - 1) as u32);
                        if owner.index() >= caches as usize || !seen[owner.index()] {
                            return Err(InvariantViolation::OwnerWithoutCopy {
                                block: b.block,
                                cache: owner,
                            });
                        }
                    }
                }
            }
        }
        ProtocolStyle::CopyBackInvalidate | ProtocolStyle::WriteThrough => {
            if b.dirty && b.holders.len() != 1 {
                return Err(InvariantViolation::DirtyNotExclusive {
                    block: b.block,
                    holders: b.holders.clone(),
                });
            }
        }
    }
    Ok(())
}

/// Structural audit of a complete snapshot: [`check_block`] over every
/// tracked block. The exhaustive checker runs this on each reachable
/// state; the per-reference engine hook audits only the touched block.
pub fn check_snapshot(
    style: ProtocolStyle,
    snapshot: &StateSnapshot,
    caches: u32,
) -> Result<(), InvariantViolation> {
    for b in snapshot.blocks() {
        check_block(style, b, caches)?;
    }
    Ok(())
}

/// Full audit of one data reference: the structural snapshot checks plus
/// residency, event-classification, and fan-out agreement with the
/// pre-reference probe.
pub fn check_data_ref(
    protocol: &dyn CoherenceProtocol,
    pre: Option<&BlockProbe>,
    cache: CacheId,
    block: BlockAddr,
    write: bool,
    outcome: &RefOutcome,
) -> Result<(), InvariantViolation> {
    let style = protocol.style();
    let Some(post) = protocol.probe(block) else {
        return Err(InvariantViolation::StateDropped { block });
    };
    if !post.holders.contains(&cache) {
        return Err(InvariantViolation::ReferencerNotResident { cache, block });
    }

    let expected = predicted_event(style, pre, cache, write);
    let got = outcome.kind();
    if got != expected {
        return Err(InvariantViolation::EventMismatch {
            block,
            cache,
            expected,
            got,
        });
    }

    // Invalidation families report the Figure 1 fan-out datum on exactly
    // the clean-write events; update families displace nothing.
    let expected_fanout = match style {
        ProtocolStyle::Update => None,
        _ if matches!(expected, EventKind::WhBlkCln | EventKind::WmBlkCln) => {
            let others = pre.map_or(0, |p| p.holders.iter().filter(|&&h| h != cache).count());
            Some(others as u32)
        }
        _ => None,
    };
    if outcome.clean_write_fanout != expected_fanout {
        return Err(InvariantViolation::FanoutMismatch {
            block,
            expected: expected_fanout,
            got: outcome.clean_write_fanout,
        });
    }

    match protocol.block_state(block) {
        Some(state) => check_block(style, &state, protocol.cache_count()),
        None => Err(InvariantViolation::StateDropped { block }),
    }
}

/// Audit of one capacity eviction: the evictee no longer holds the block,
/// no event was classified, and the remaining state is structurally sound.
pub fn check_eviction(
    protocol: &dyn CoherenceProtocol,
    cache: CacheId,
    block: BlockAddr,
    outcome: &RefOutcome,
) -> Result<(), InvariantViolation> {
    if let Some(event) = outcome.event {
        return Err(InvariantViolation::EvictionClassified { block, event });
    }
    if let Some(post) = protocol.probe(block) {
        if post.holders.contains(&cache) {
            return Err(InvariantViolation::EvicteeStillResident { cache, block });
        }
    }
    match protocol.block_state(block) {
        Some(state) => check_block(protocol.style(), &state, protocol.cache_count()),
        None => Ok(()),
    }
}

/// Replays a protocol's claimed data movements against the shadow-memory
/// oracle, stopping at the first movement the oracle rejects.
///
/// This is the single definition of how
/// [`DataMovement`]s map onto
/// [`ShadowMemory`] operations; both the simulation engine and the
/// `dirsim-verify` model checker drive the oracle through it.
///
/// # Errors
///
/// Propagates the first [`OracleViolation`] raised by the oracle.
pub fn replay_movements(
    oracle: &mut ShadowMemory,
    movements: &[DataMovement],
    block: BlockAddr,
) -> Result<(), OracleViolation> {
    for movement in movements {
        match *movement {
            DataMovement::FillFromMemory { cache } => oracle.fill_from_memory(cache, block)?,
            DataMovement::FillFromCache { cache, supplier } => {
                oracle.fill_from_cache(cache, supplier, block)?;
            }
            DataMovement::CacheWrite { cache } => oracle.write(cache, block)?,
            DataMovement::WriteThrough { cache } => oracle.write_through(cache, block)?,
            DataMovement::WriteUpdate { cache } => oracle.write_update(cache, block)?,
            DataMovement::WriteBack { cache } => oracle.write_back(cache, block)?,
            DataMovement::Invalidate { cache } => oracle.invalidate(cache, block)?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirsim_protocol::{DirSpec, Scheme};

    fn c(i: u32) -> CacheId {
        CacheId::new(i)
    }
    const B: BlockAddr = BlockAddr::new(7);

    #[test]
    fn predicts_the_invalidate_family_table() {
        let style = ProtocolStyle::CopyBackInvalidate;
        assert_eq!(
            predicted_event(style, None, c(0), false),
            EventKind::RmFirstRef
        );
        assert_eq!(
            predicted_event(style, None, c(0), true),
            EventKind::WmFirstRef
        );
        let clean_shared = BlockProbe {
            holders: vec![c(0), c(1)],
            dirty: false,
        };
        assert_eq!(
            predicted_event(style, Some(&clean_shared), c(0), false),
            EventKind::RdHit
        );
        assert_eq!(
            predicted_event(style, Some(&clean_shared), c(2), false),
            EventKind::RmBlkCln
        );
        assert_eq!(
            predicted_event(style, Some(&clean_shared), c(0), true),
            EventKind::WhBlkCln
        );
        let dirty = BlockProbe {
            holders: vec![c(1)],
            dirty: true,
        };
        assert_eq!(
            predicted_event(style, Some(&dirty), c(0), false),
            EventKind::RmBlkDrty
        );
        assert_eq!(
            predicted_event(style, Some(&dirty), c(0), true),
            EventKind::WmBlkDrty
        );
        assert_eq!(
            predicted_event(style, Some(&dirty), c(1), true),
            EventKind::WhBlkDrty
        );
    }

    #[test]
    fn predicts_the_update_family_split() {
        let style = ProtocolStyle::Update;
        let shared = BlockProbe {
            holders: vec![c(0), c(1)],
            dirty: false,
        };
        assert_eq!(
            predicted_event(style, Some(&shared), c(0), true),
            EventKind::WhDistrib
        );
        let sole = BlockProbe {
            holders: vec![c(0)],
            dirty: false,
        };
        assert_eq!(
            predicted_event(style, Some(&sole), c(0), true),
            EventKind::WhLocal
        );
    }

    #[test]
    fn live_protocols_pass_per_reference() {
        for scheme in Scheme::paper_lineup() {
            let mut p = scheme.build(4);
            let script = [
                (0, false),
                (1, false),
                (2, false),
                (1, true),
                (0, false),
                (0, true),
                (3, true),
            ];
            for (i, &(cache, write)) in script.iter().enumerate() {
                let pre = p.probe(B);
                let out = p.on_data_ref(c(cache), B, write);
                check_data_ref(p.as_ref(), pre.as_ref(), c(cache), B, write, &out)
                    .unwrap_or_else(|v| panic!("{} step {i}: {v}", p.name()));
            }
        }
    }

    #[test]
    fn catches_a_dirty_shared_snapshot() {
        use dirsim_protocol::BlockState;
        let snap = StateSnapshot::from_blocks(vec![BlockState::basic(B, vec![c(0), c(1)], true)]);
        let err = check_snapshot(ProtocolStyle::CopyBackInvalidate, &snap, 4).unwrap_err();
        assert!(matches!(err, InvariantViolation::DirtyNotExclusive { .. }));
    }

    #[test]
    fn catches_a_pointer_without_a_copy() {
        use dirsim_protocol::BlockState;
        let snap = StateSnapshot::from_blocks(vec![BlockState {
            block: B,
            holders: vec![c(0)],
            dirty: false,
            pointers: vec![c(0), c(2)],
            broadcast_bit: false,
            aux: Vec::new(),
        }]);
        let err = check_snapshot(ProtocolStyle::CopyBackInvalidate, &snap, 4).unwrap_err();
        assert_eq!(
            err,
            InvariantViolation::PointerWithoutCopy {
                block: B,
                cache: c(2)
            }
        );
    }

    #[test]
    fn catches_a_misclassified_event() {
        let mut p = Scheme::Directory(DirSpec::dir0_b()).build(2);
        let pre = p.probe(B);
        let mut out = p.on_data_ref(c(0), B, false);
        out.event = Some(EventKind::RdHit); // lie: this was a first reference
        let err = check_data_ref(p.as_ref(), pre.as_ref(), c(0), B, false, &out).unwrap_err();
        assert!(matches!(err, InvariantViolation::EventMismatch { .. }));
    }
}
