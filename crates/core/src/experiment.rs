//! The experiment harness: a (workloads × schemes) simulation matrix.
//!
//! [`Experiment`] regenerates each (deterministic) synthetic workload once
//! per scheme — the paper's methodology of one simulation run per protocol,
//! with costs applied afterwards — and collects per-trace and combined
//! [`SimResult`]s. The paper-specific experiment presets live in
//! [`crate::paper`].

use dirsim_mem::SharingModel;
use dirsim_protocol::Scheme;
use dirsim_trace::filter::without_lock_tests;
use dirsim_trace::synth::{Workload, WorkloadConfig};
use dirsim_trace::{MemRef, TraceStats};

use crate::engine::{SimConfig, SimError, SimResult, Simulator};

/// One named workload in an experiment.
#[derive(Debug, Clone)]
pub struct NamedWorkload {
    /// Display name (`POPS`, `THOR`, …).
    pub name: String,
    /// Generator configuration.
    pub config: WorkloadConfig,
}

impl NamedWorkload {
    /// Creates a named workload.
    pub fn new(name: impl Into<String>, config: WorkloadConfig) -> Self {
        NamedWorkload {
            name: name.into(),
            config,
        }
    }
}

/// A simulation matrix over workloads and schemes.
///
/// # Examples
///
/// ```
/// use dirsim::{Experiment, NamedWorkload};
/// use dirsim_protocol::Scheme;
/// use dirsim_trace::synth::WorkloadConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = WorkloadConfig::builder().seed(7).build()?;
/// let results = Experiment::new()
///     .workload(NamedWorkload::new("demo", cfg))
///     .schemes(Scheme::paper_lineup())
///     .refs_per_trace(20_000)
///     .run()?;
/// assert_eq!(results.per_scheme.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    workloads: Vec<NamedWorkload>,
    schemes: Vec<Scheme>,
    refs_per_trace: usize,
    sim: SimConfig,
    exclude_lock_tests: bool,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment {
            workloads: Vec::new(),
            schemes: Vec::new(),
            refs_per_trace: 100_000,
            sim: SimConfig::default(),
            exclude_lock_tests: false,
        }
    }
}

impl Experiment {
    /// Starts an empty experiment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one workload.
    pub fn workload(mut self, workload: NamedWorkload) -> Self {
        self.workloads.push(workload);
        self
    }

    /// Adds several workloads.
    pub fn workloads<I>(mut self, workloads: I) -> Self
    where
        I: IntoIterator<Item = NamedWorkload>,
    {
        self.workloads.extend(workloads);
        self
    }

    /// Adds one scheme.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.schemes.push(scheme);
        self
    }

    /// Adds several schemes.
    pub fn schemes<I>(mut self, schemes: I) -> Self
    where
        I: IntoIterator<Item = Scheme>,
    {
        self.schemes.extend(schemes);
        self
    }

    /// References simulated per workload (default 100 000).
    pub fn refs_per_trace(mut self, refs: usize) -> Self {
        self.refs_per_trace = refs;
        self
    }

    /// Overrides the engine configuration.
    pub fn sim_config(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Enables oracle checking for every run.
    pub fn check_oracle(mut self, check: bool) -> Self {
        self.sim.check_oracle = check;
        self
    }

    /// Removes spin-lock test reads from every workload before simulation
    /// (the §5.2 ablation).
    pub fn exclude_lock_tests(mut self, exclude: bool) -> Self {
        self.exclude_lock_tests = exclude;
        self
    }

    fn cache_count(&self, config: &WorkloadConfig) -> u32 {
        match self.sim.sharing {
            SharingModel::PerProcess => config.processes,
            SharingModel::PerProcessor => u32::from(config.cpus),
        }
    }

    fn generate(&self, config: &WorkloadConfig) -> Vec<MemRef> {
        let stream = Workload::new(config.clone()).take(self.refs_per_trace);
        if self.exclude_lock_tests {
            without_lock_tests(stream).collect()
        } else {
            stream.collect()
        }
    }

    /// Runs the full matrix sequentially.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] if oracle checking is enabled and
    /// a protocol misbehaves.
    ///
    /// # Panics
    ///
    /// Panics if no workloads or no schemes were configured.
    pub fn run(&self) -> Result<ExperimentResults, SimError> {
        self.run_inner(false)
    }

    /// Runs the full matrix with one thread per scheme. Results are
    /// bit-identical to [`Self::run`]: each scheme's simulation is an
    /// independent pass over the same materialised traces.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] (by scheme order) if oracle
    /// checking is enabled and a protocol misbehaves.
    ///
    /// # Panics
    ///
    /// Panics if no workloads or no schemes were configured.
    pub fn run_parallel(&self) -> Result<ExperimentResults, SimError> {
        self.run_inner(true)
    }

    fn run_inner(&self, parallel: bool) -> Result<ExperimentResults, SimError> {
        assert!(!self.workloads.is_empty(), "experiment needs workloads");
        assert!(!self.schemes.is_empty(), "experiment needs schemes");

        let mut trace_stats = Vec::with_capacity(self.workloads.len());
        let mut trace_refs: Vec<Vec<MemRef>> = Vec::with_capacity(self.workloads.len());
        for w in &self.workloads {
            let refs = self.generate(&w.config);
            trace_stats.push((w.name.clone(), TraceStats::from_refs(refs.iter().copied())));
            trace_refs.push(refs);
        }

        let run_scheme = |scheme: Scheme| -> Result<SchemeResult, SimError> {
            let simulator = Simulator::new(self.sim);
            let mut per_trace = Vec::with_capacity(self.workloads.len());
            let mut combined: Option<SimResult> = None;
            for (w, refs) in self.workloads.iter().zip(trace_refs.iter()) {
                let mut protocol = scheme.build(self.cache_count(&w.config));
                let result = simulator.run(protocol.as_mut(), refs.iter().copied())?;
                match combined.as_mut() {
                    Some(c) => c.merge(&result),
                    None => combined = Some(result.clone()),
                }
                per_trace.push((w.name.clone(), result));
            }
            Ok(SchemeResult {
                scheme,
                per_trace,
                combined: combined.expect("at least one workload"),
            })
        };

        let per_scheme = if parallel {
            let results: Vec<Result<SchemeResult, SimError>> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .schemes
                    .iter()
                    .map(|&scheme| scope.spawn(move || run_scheme(scheme)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scheme simulation thread panicked"))
                    .collect()
            });
            results.into_iter().collect::<Result<Vec<_>, _>>()?
        } else {
            self.schemes
                .iter()
                .map(|&scheme| run_scheme(scheme))
                .collect::<Result<Vec<_>, _>>()?
        };

        Ok(ExperimentResults {
            trace_stats,
            per_scheme,
        })
    }
}

/// Results for one scheme across all workloads.
#[derive(Debug, Clone)]
pub struct SchemeResult {
    /// The scheme simulated.
    pub scheme: Scheme,
    /// Per-workload results, in workload order.
    pub per_trace: Vec<(String, SimResult)>,
    /// All workloads merged (reference-weighted average).
    pub combined: SimResult,
}

/// Results of a full experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResults {
    /// Table 3-style statistics per workload.
    pub trace_stats: Vec<(String, TraceStats)>,
    /// Per-scheme results, in scheme order.
    pub per_scheme: Vec<SchemeResult>,
}

impl ExperimentResults {
    /// Finds a scheme's results by display name.
    pub fn scheme(&self, name: &str) -> Option<&SchemeResult> {
        self.per_scheme.iter().find(|s| s.scheme.name() == name)
    }

    /// Names of the simulated workloads, in order.
    pub fn trace_names(&self) -> Vec<&str> {
        self.trace_stats.iter().map(|(n, _)| n.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirsim_protocol::DirSpec;

    fn small_config(seed: u64) -> WorkloadConfig {
        WorkloadConfig::builder().seed(seed).build().unwrap()
    }

    fn tiny_experiment() -> Experiment {
        Experiment::new()
            .workload(NamedWorkload::new("a", small_config(1)))
            .workload(NamedWorkload::new("b", small_config(2)))
            .schemes([Scheme::Directory(DirSpec::dir0_b()), Scheme::Dragon])
            .refs_per_trace(5_000)
    }

    #[test]
    fn runs_full_matrix() {
        let results = tiny_experiment().run().unwrap();
        assert_eq!(results.trace_stats.len(), 2);
        assert_eq!(results.per_scheme.len(), 2);
        for s in &results.per_scheme {
            assert_eq!(s.per_trace.len(), 2);
            assert_eq!(s.combined.refs, 10_000);
        }
    }

    #[test]
    fn scheme_lookup_by_name() {
        let results = tiny_experiment().run().unwrap();
        assert!(results.scheme("Dir0B").is_some());
        assert!(results.scheme("Dragon").is_some());
        assert!(results.scheme("WTI").is_none());
        assert_eq!(results.trace_names(), vec!["a", "b"]);
    }

    #[test]
    fn oracle_checked_run_succeeds() {
        tiny_experiment().check_oracle(true).run().unwrap();
    }

    #[test]
    fn lock_exclusion_reduces_refs() {
        let with_locks = tiny_experiment().run().unwrap();
        let without = tiny_experiment().exclude_lock_tests(true).run().unwrap();
        let a = with_locks.per_scheme[0].combined.refs;
        let b = without.per_scheme[0].combined.refs;
        assert!(b < a, "lock filtering removed references ({b} !< {a})");
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let sequential = tiny_experiment().run().unwrap();
        let parallel = tiny_experiment().run_parallel().unwrap();
        assert_eq!(sequential.trace_stats, parallel.trace_stats);
        for (a, b) in sequential.per_scheme.iter().zip(parallel.per_scheme.iter()) {
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.combined, b.combined);
            assert_eq!(a.per_trace, b.per_trace);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = tiny_experiment().run().unwrap();
        let b = tiny_experiment().run().unwrap();
        assert_eq!(
            a.per_scheme[0].combined.events,
            b.per_scheme[0].combined.events
        );
        assert_eq!(a.per_scheme[0].combined.ops, b.per_scheme[0].combined.ops);
    }

    #[test]
    #[should_panic(expected = "needs workloads")]
    fn empty_workloads_panics() {
        let _ = Experiment::new().scheme(Scheme::Wti).run();
    }

    #[test]
    #[should_panic(expected = "needs schemes")]
    fn empty_schemes_panics() {
        let _ = Experiment::new()
            .workload(NamedWorkload::new("a", small_config(1)))
            .run();
    }
}
