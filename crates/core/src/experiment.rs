//! The experiment harness: a (workloads × schemes) simulation matrix.
//!
//! [`Experiment`] drives every configured workload through every configured
//! scheme and collects per-trace and combined [`SimResult`]s. By default it
//! runs **single-pass**: each workload is generated once and broadcast
//! through all schemes in lockstep via
//! [`BroadcastSimulator`], instead of
//! regenerating the trace once per scheme. [`ExecutionMode`] selects
//! between that, the legacy one-pass-per-scheme serial mode, sharded
//! parallel execution (by block address for infinite caches, by cache
//! set index for finite geometries), and pipelined execution with trace
//! decode overlapped on a producer thread — all of which are placements
//! of the same staged `decode → route → step → merge` pipeline and
//! produce bit-identical results. The paper-specific experiment presets
//! live in [`crate::paper`].

use std::ops::Index;
use std::sync::{Arc, Mutex};

use dirsim_mem::SharingModel;
use dirsim_obs::{NoopRecorder, ProgressMeter, Recorder};
use dirsim_protocol::Scheme;
use dirsim_trace::filter::without_lock_tests;
use dirsim_trace::source::{IterSource, WithoutLockTests};
use dirsim_trace::synth::{Workload, WorkloadConfig};
use dirsim_trace::{MemRef, Scenario, TraceStats};

use crate::broadcast::BroadcastSimulator;
use crate::engine::{SimConfig, SimResult};
use crate::error::Error;

/// One named workload in an experiment.
#[derive(Debug, Clone)]
pub struct NamedWorkload {
    /// Display name (`POPS`, `THOR`, …).
    pub name: String,
    /// Generator configuration.
    pub config: WorkloadConfig,
}

impl NamedWorkload {
    /// Creates a named workload.
    pub fn new(name: impl Into<String>, config: WorkloadConfig) -> Self {
        NamedWorkload {
            name: name.into(),
            config,
        }
    }
}

impl From<&Scenario> for NamedWorkload {
    /// Adopts a scenario (bundled or parsed from a spec file) as an
    /// experiment workload, keeping its registry name.
    fn from(scenario: &Scenario) -> Self {
        NamedWorkload::new(scenario.name(), scenario.config().clone())
    }
}

/// How an [`Experiment`] executes its matrix.
///
/// Every mode produces bit-identical [`ExperimentResults`]; they differ
/// only in how many trace-generation passes run and how work is spread
/// over threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// One full pass over each trace per scheme (the paper's literal
    /// methodology). N schemes pay for N trace generations.
    Serial,
    /// Generate each trace once and broadcast every chunk through all
    /// schemes in lockstep (the default).
    SinglePass,
    /// Single-pass, additionally sharded over `workers` threads under
    /// the configuration's [`ShardKey`](crate::engine::ShardKey): by
    /// block address for infinite caches, by cache set index for finite
    /// geometries. Exact for both.
    Sharded {
        /// Number of worker threads.
        workers: usize,
    },
    /// Like [`Sharded`](Self::Sharded) (or [`SinglePass`](Self::SinglePass)
    /// when `workers == 1`), but with trace decode overlapped on a
    /// dedicated producer thread: chunk *N+1* is generated/decoded while
    /// chunk *N* is stepped, through recycled double-buffered chunk
    /// buffers. Still bit-identical — only decode *work* moves threads,
    /// never chunk order.
    Pipelined {
        /// Number of step worker threads (not counting the decode
        /// producer).
        workers: usize,
    },
}

/// A simulation matrix over workloads and schemes.
///
/// # Examples
///
/// ```
/// use dirsim::{Experiment, NamedWorkload};
/// use dirsim_protocol::Scheme;
/// use dirsim_trace::synth::WorkloadConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = WorkloadConfig::builder().seed(7).build()?;
/// let results = Experiment::new()
///     .workload(NamedWorkload::new("demo", cfg))
///     .schemes(Scheme::paper_lineup())
///     .refs_per_trace(20_000)
///     .run()?;
/// assert_eq!(results.per_scheme.len(), 4);
/// assert!(results[Scheme::dir0_b()].combined.refs > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    workloads: Vec<NamedWorkload>,
    schemes: Vec<Scheme>,
    refs_per_trace: usize,
    sim: SimConfig,
    exclude_lock_tests: bool,
    mode: ExecutionMode,
    recorder: Arc<dyn Recorder>,
    progress: Option<Arc<Mutex<ProgressMeter>>>,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment {
            workloads: Vec::new(),
            schemes: Vec::new(),
            refs_per_trace: 100_000,
            sim: SimConfig::default(),
            exclude_lock_tests: false,
            mode: ExecutionMode::SinglePass,
            recorder: Arc::new(NoopRecorder),
            progress: None,
        }
    }
}

impl Experiment {
    /// Starts an empty experiment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one workload.
    pub fn workload(mut self, workload: NamedWorkload) -> Self {
        self.workloads.push(workload);
        self
    }

    /// Adds several workloads.
    pub fn workloads<I>(mut self, workloads: I) -> Self
    where
        I: IntoIterator<Item = NamedWorkload>,
    {
        self.workloads.extend(workloads);
        self
    }

    /// Adds one scheme.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.schemes.push(scheme);
        self
    }

    /// Adds several schemes.
    pub fn schemes<I>(mut self, schemes: I) -> Self
    where
        I: IntoIterator<Item = Scheme>,
    {
        self.schemes.extend(schemes);
        self
    }

    /// References simulated per workload (default 100 000).
    pub fn refs_per_trace(mut self, refs: usize) -> Self {
        self.refs_per_trace = refs;
        self
    }

    /// Overrides the engine configuration.
    pub fn sim_config(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Enables oracle checking for every run.
    pub fn check_oracle(mut self, check: bool) -> Self {
        self.sim.check_oracle = check;
        self
    }

    /// Removes spin-lock test reads from every workload before simulation
    /// (the §5.2 ablation).
    pub fn exclude_lock_tests(mut self, exclude: bool) -> Self {
        self.exclude_lock_tests = exclude;
        self
    }

    /// Sets the execution mode used by [`Self::run`].
    pub fn execution(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the metrics [`Recorder`] passed to the underlying engine (see
    /// [`BroadcastSimulator::recorder`]). Defaults to the no-op recorder.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attaches a throttled [`ProgressMeter`] reporting cumulative
    /// references observed across the whole matrix.
    pub fn progress(mut self, progress: Arc<Mutex<ProgressMeter>>) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Number of workloads configured so far.
    pub fn workload_count(&self) -> usize {
        self.workloads.len()
    }

    /// Number of schemes configured so far.
    pub fn scheme_count(&self) -> usize {
        self.schemes.len()
    }

    /// Whether sizing the system needs the materialised trace: open-system
    /// traces mint fresh process ids past the initial population, and
    /// per-process attribution needs one cache per id that appears.
    fn needs_trace_for_bound(&self, config: &WorkloadConfig) -> bool {
        self.sim.sharing == SharingModel::PerProcess && config.open.is_enabled()
    }

    /// Caches the simulated system needs for `config`, given the
    /// **unfiltered** reference stream `raw` when
    /// [`Self::needs_trace_for_bound`] says it is required. Lock-test
    /// filtering never widens the id space, so the unfiltered bound also
    /// covers the filtered stream.
    ///
    /// This used to run a *dry generation pass* over the workload just to
    /// find max-pid+1, silently doubling trace-generation cost for every
    /// open-system per-process run; the bound now comes from the same
    /// materialised pass the run itself consumes
    /// (`trace_generations` pins the pass count).
    fn cache_bound(&self, config: &WorkloadConfig, raw: &[MemRef]) -> u32 {
        match self.sim.sharing {
            SharingModel::PerProcess if config.open.is_enabled() => raw
                .iter()
                .map(|r| r.pid.index() as u32 + 1)
                .max()
                .unwrap_or(config.processes),
            SharingModel::PerProcess => config.processes,
            SharingModel::PerProcessor => u32::from(config.cpus),
        }
    }

    /// Materialises one workload's unfiltered reference stream — exactly
    /// one generation pass, counted in the `trace_generations` metric so
    /// tests can pin that no code path regenerates a trace behind the
    /// experiment's back.
    fn generate_raw(&self, w: &NamedWorkload) -> Vec<MemRef> {
        self.note_generation(&w.name);
        Workload::new(w.config.clone())
            .take(self.refs_per_trace)
            .collect()
    }

    /// Records one trace-generation pass for `name`.
    fn note_generation(&self, name: &str) {
        self.recorder
            .counter("trace_generations", &[("trace", name)], 1);
    }

    /// Runs the full matrix in the configured [`ExecutionMode`]
    /// (single-pass unless overridden via [`Self::execution`]).
    ///
    /// # Errors
    ///
    /// Propagates the first [`Error`] — an oracle or invariant violation
    /// when checking is enabled, or an invalid mode/configuration
    /// combination.
    ///
    /// # Panics
    ///
    /// Panics if no workloads or no schemes were configured.
    pub fn run(&self) -> Result<ExperimentResults, Error> {
        self.run_with(self.mode)
    }

    /// Runs the full matrix pipelined and sharded over all available
    /// cores: trace decode overlapped on a producer thread, stepping
    /// sharded across workers. Results are bit-identical to
    /// [`Self::run`]: the shard key (block address for infinite caches,
    /// cache set index for finite geometries) preserves each block's
    /// reference subsequence and all counters merge commutatively. Falls
    /// back to single-pass execution when only one core is available.
    ///
    /// # Errors
    ///
    /// See [`Self::run`].
    ///
    /// # Panics
    ///
    /// Panics if no workloads or no schemes were configured.
    pub fn run_parallel(&self) -> Result<ExperimentResults, Error> {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mode = if workers <= 1 {
            ExecutionMode::SinglePass
        } else {
            ExecutionMode::Pipelined { workers }
        };
        self.run_with(mode)
    }

    /// Runs the full matrix in an explicit [`ExecutionMode`].
    ///
    /// # Errors
    ///
    /// See [`Self::run`].
    ///
    /// # Panics
    ///
    /// Panics if no workloads or no schemes were configured.
    pub fn run_with(&self, mode: ExecutionMode) -> Result<ExperimentResults, Error> {
        assert!(!self.workloads.is_empty(), "experiment needs workloads");
        assert!(!self.schemes.is_empty(), "experiment needs schemes");
        match mode {
            ExecutionMode::Serial => self.run_serial(),
            ExecutionMode::SinglePass => self.run_broadcast(1, false),
            ExecutionMode::Sharded { workers } => self.run_broadcast(workers, false),
            ExecutionMode::Pipelined { workers } => self.run_broadcast(workers, true),
        }
    }

    /// The legacy path: materialise each trace, then one independent
    /// pipeline pass per (scheme, workload) cell — the paper's literal
    /// N-passes methodology, expressed on the same staged pipeline as
    /// every other mode.
    fn run_serial(&self) -> Result<ExperimentResults, Error> {
        let mut trace_stats = Vec::with_capacity(self.workloads.len());
        let mut trace_refs: Vec<Vec<MemRef>> = Vec::with_capacity(self.workloads.len());
        let mut trace_caches = Vec::with_capacity(self.workloads.len());
        for w in &self.workloads {
            let raw = self.generate_raw(w);
            trace_caches.push(self.cache_bound(&w.config, &raw));
            let refs: Vec<MemRef> = if self.exclude_lock_tests {
                without_lock_tests(raw).collect()
            } else {
                raw
            };
            trace_stats.push((w.name.clone(), TraceStats::from_refs(refs.iter().copied())));
            trace_refs.push(refs);
        }

        // The engine keeps its default no-op recorder here: per-chunk
        // metrics would count every trace `schemes` times in this mode,
        // so only the per-scheme totals are recorded, as before.
        let engine = BroadcastSimulator::new(self.sim);
        let mut per_scheme = Vec::with_capacity(self.schemes.len());
        let mut simulated_refs = 0u64;
        for &scheme in &self.schemes {
            let mut per_trace = Vec::with_capacity(self.workloads.len());
            let mut combined: Option<SimResult> = None;
            for ((w, refs), &caches) in self
                .workloads
                .iter()
                .zip(trace_refs.iter())
                .zip(trace_caches.iter())
            {
                let mut results =
                    engine.run(&[scheme], caches, IterSource::new(refs.iter().copied()))?;
                let result = results.pop().expect("one scheme in, one result out");
                simulated_refs += result.refs;
                if let Some(p) = &self.progress {
                    p.lock()
                        .expect("progress meter poisoned")
                        .tick_now(simulated_refs, None);
                }
                match combined.as_mut() {
                    Some(c) => c.merge(&result),
                    None => combined = Some(result.clone()),
                }
                per_trace.push((w.name.clone(), result));
            }
            let combined = combined.expect("at least one workload");
            crate::pipeline::record_scheme_totals(&*self.recorder, std::slice::from_ref(&combined));
            per_scheme.push(SchemeResult {
                scheme,
                per_trace,
                combined,
            });
        }

        Ok(ExperimentResults {
            trace_stats,
            per_scheme,
        })
    }

    /// The single-pass path: each workload is generated once, streamed in
    /// chunks, and broadcast through every scheme (optionally sharded;
    /// with `overlap`, generation runs on a producer thread overlapped
    /// against stepping).
    fn run_broadcast(&self, workers: usize, overlap: bool) -> Result<ExperimentResults, Error> {
        let broadcaster = BroadcastSimulator::new(self.sim)
            .workers(workers.max(1))
            .recorder(Arc::clone(&self.recorder));
        let mut trace_stats = Vec::with_capacity(self.workloads.len());
        let mut per_workload: Vec<Vec<SimResult>> = Vec::with_capacity(self.workloads.len());
        let mut observed = 0u64;
        for w in &self.workloads {
            let mut stats = TraceStats::new();
            let mut observe = |r: &MemRef| {
                stats.observe(r);
                observed += 1;
                if let Some(p) = &self.progress {
                    p.lock()
                        .expect("progress meter poisoned")
                        .tick(observed, None);
                }
            };
            // Closed systems stream straight out of the generator; open
            // per-process systems materialise the trace once and derive
            // the cache bound from that same pass (never a second, dry
            // generation pass — see `cache_bound`).
            let results = if self.needs_trace_for_bound(&w.config) {
                let raw = self.generate_raw(w);
                let caches = self.cache_bound(&w.config, &raw);
                self.run_stream(&broadcaster, caches, raw.into_iter(), overlap, &mut observe)?
            } else {
                let caches = self.cache_bound(&w.config, &[]);
                self.note_generation(&w.name);
                let stream = Workload::new(w.config.clone()).take(self.refs_per_trace);
                self.run_stream(&broadcaster, caches, stream, overlap, &mut observe)?
            };
            trace_stats.push((w.name.clone(), stats));
            per_workload.push(results);
        }

        let per_scheme = self
            .schemes
            .iter()
            .enumerate()
            .map(|(i, &scheme)| {
                let mut per_trace = Vec::with_capacity(self.workloads.len());
                let mut combined: Option<SimResult> = None;
                for (w, results) in self.workloads.iter().zip(per_workload.iter()) {
                    let result = results[i].clone();
                    match combined.as_mut() {
                        Some(c) => c.merge(&result),
                        None => combined = Some(result.clone()),
                    }
                    per_trace.push((w.name.clone(), result));
                }
                SchemeResult {
                    scheme,
                    per_trace,
                    combined: combined.expect("at least one workload"),
                }
            })
            .collect();

        Ok(ExperimentResults {
            trace_stats,
            per_scheme,
        })
    }

    /// Drives one workload's reference stream through the broadcaster in
    /// the requested placement, applying lock-test filtering at the
    /// source so `observe` (and therefore [`TraceStats`]) sees exactly
    /// the filtered stream, as in serial mode.
    fn run_stream<I>(
        &self,
        broadcaster: &BroadcastSimulator,
        caches: u32,
        stream: I,
        overlap: bool,
        observe: &mut dyn FnMut(&MemRef),
    ) -> Result<Vec<SimResult>, Error>
    where
        I: Iterator<Item = MemRef> + Send,
    {
        match (self.exclude_lock_tests, overlap) {
            (true, true) => broadcaster.run_observed_pipelined(
                &self.schemes,
                caches,
                WithoutLockTests::new(IterSource::new(stream)),
                observe,
            ),
            (true, false) => broadcaster.run_observed(
                &self.schemes,
                caches,
                WithoutLockTests::new(IterSource::new(stream)),
                observe,
            ),
            (false, true) => broadcaster.run_observed_pipelined(
                &self.schemes,
                caches,
                IterSource::new(stream),
                observe,
            ),
            (false, false) => {
                broadcaster.run_observed(&self.schemes, caches, IterSource::new(stream), observe)
            }
        }
    }
}

/// Results for one scheme across all workloads.
#[derive(Debug, Clone)]
pub struct SchemeResult {
    /// The scheme simulated.
    pub scheme: Scheme,
    /// Per-workload results, in workload order.
    pub per_trace: Vec<(String, SimResult)>,
    /// All workloads merged (reference-weighted average).
    pub combined: SimResult,
}

/// Results of a full experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResults {
    /// Table 3-style statistics per workload.
    pub trace_stats: Vec<(String, TraceStats)>,
    /// Per-scheme results, in scheme order.
    pub per_scheme: Vec<SchemeResult>,
}

impl ExperimentResults {
    /// Finds a scheme's results.
    ///
    /// ```
    /// # use dirsim::{Experiment, NamedWorkload};
    /// # use dirsim_protocol::Scheme;
    /// # use dirsim_trace::synth::WorkloadConfig;
    /// # let cfg = WorkloadConfig::builder().seed(1).build().unwrap();
    /// # let results = Experiment::new()
    /// #     .workload(NamedWorkload::new("demo", cfg))
    /// #     .scheme(Scheme::Dragon)
    /// #     .refs_per_trace(1_000)
    /// #     .run()
    /// #     .unwrap();
    /// assert!(results.get(Scheme::Dragon).is_some());
    /// assert!(results.get(Scheme::dir_n_nb()).is_none());
    /// ```
    pub fn get(&self, scheme: Scheme) -> Option<&SchemeResult> {
        self.per_scheme.iter().find(|s| s.scheme == scheme)
    }

    /// Names of the simulated workloads, in order.
    pub fn trace_names(&self) -> Vec<&str> {
        self.trace_stats.iter().map(|(n, _)| n.as_str()).collect()
    }
}

impl Index<Scheme> for ExperimentResults {
    type Output = SchemeResult;

    /// `results[scheme]` — like [`ExperimentResults::get`], but panics
    /// with a descriptive message when the scheme was not part of the
    /// experiment.
    fn index(&self, scheme: Scheme) -> &SchemeResult {
        self.get(scheme)
            .unwrap_or_else(|| panic!("scheme {scheme} was not simulated"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64) -> WorkloadConfig {
        WorkloadConfig::builder().seed(seed).build().unwrap()
    }

    fn tiny_experiment() -> Experiment {
        Experiment::new()
            .workload(NamedWorkload::new("a", small_config(1)))
            .workload(NamedWorkload::new("b", small_config(2)))
            .schemes([Scheme::dir0_b(), Scheme::Dragon])
            .refs_per_trace(5_000)
    }

    #[test]
    fn runs_full_matrix() {
        let results = tiny_experiment().run().unwrap();
        assert_eq!(results.trace_stats.len(), 2);
        assert_eq!(results.per_scheme.len(), 2);
        for s in &results.per_scheme {
            assert_eq!(s.per_trace.len(), 2);
            assert_eq!(s.combined.refs, 10_000);
        }
    }

    #[test]
    fn typed_scheme_lookup() {
        let results = tiny_experiment().run().unwrap();
        assert!(results.get(Scheme::dir0_b()).is_some());
        assert!(results.get(Scheme::Dragon).is_some());
        assert!(results.get(Scheme::Wti).is_none());
        assert_eq!(results[Scheme::Dragon].scheme, Scheme::Dragon);
        assert_eq!(results.trace_names(), vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "was not simulated")]
    fn index_panics_on_missing_scheme() {
        let results = tiny_experiment().run().unwrap();
        let _ = &results[Scheme::Wti];
    }

    #[test]
    fn oracle_checked_run_succeeds() {
        tiny_experiment().check_oracle(true).run().unwrap();
    }

    #[test]
    fn lock_exclusion_reduces_refs() {
        let with_locks = tiny_experiment().run().unwrap();
        let without = tiny_experiment().exclude_lock_tests(true).run().unwrap();
        let a = with_locks.per_scheme[0].combined.refs;
        let b = without.per_scheme[0].combined.refs;
        assert!(b < a, "lock filtering removed references ({b} !< {a})");
    }

    #[test]
    fn all_execution_modes_match() {
        let serial = tiny_experiment().run_with(ExecutionMode::Serial).unwrap();
        for mode in [
            ExecutionMode::SinglePass,
            ExecutionMode::Sharded { workers: 3 },
            ExecutionMode::Pipelined { workers: 1 },
            ExecutionMode::Pipelined { workers: 3 },
        ] {
            let other = tiny_experiment().run_with(mode).unwrap();
            assert_eq!(serial.trace_stats, other.trace_stats, "{mode:?}");
            for (a, b) in serial.per_scheme.iter().zip(other.per_scheme.iter()) {
                assert_eq!(a.scheme, b.scheme);
                assert_eq!(a.combined, b.combined, "{mode:?}");
                assert_eq!(a.per_trace, b.per_trace, "{mode:?}");
            }
        }
    }

    #[test]
    fn modes_match_with_lock_exclusion() {
        let serial = tiny_experiment()
            .exclude_lock_tests(true)
            .run_with(ExecutionMode::Serial)
            .unwrap();
        let single = tiny_experiment()
            .exclude_lock_tests(true)
            .run_with(ExecutionMode::SinglePass)
            .unwrap();
        assert_eq!(serial.trace_stats, single.trace_stats);
        for (a, b) in serial.per_scheme.iter().zip(single.per_scheme.iter()) {
            assert_eq!(a.combined, b.combined);
        }
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let sequential = tiny_experiment().run().unwrap();
        let parallel = tiny_experiment().run_parallel().unwrap();
        assert_eq!(sequential.trace_stats, parallel.trace_stats);
        for (a, b) in sequential.per_scheme.iter().zip(parallel.per_scheme.iter()) {
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.combined, b.combined);
            assert_eq!(a.per_trace, b.per_trace);
        }
    }

    #[test]
    fn sharded_finite_cache_matches_serial() {
        // Regression: sharded finite-cache experiments used to be
        // rejected with a typed `ShardedFiniteCache` error; set sharding
        // made them exact. `run_parallel` shards finite geometries too.
        use dirsim_mem::CacheGeometry;
        let config = SimConfig::builder()
            .geometry(CacheGeometry { sets: 16, ways: 2 })
            .build()
            .unwrap();
        let serial = tiny_experiment()
            .sim_config(config)
            .run_with(ExecutionMode::Serial)
            .unwrap();
        for results in [
            tiny_experiment()
                .sim_config(config)
                .run_with(ExecutionMode::Sharded { workers: 4 })
                .unwrap(),
            tiny_experiment().sim_config(config).run_parallel().unwrap(),
        ] {
            for (a, b) in serial.per_scheme.iter().zip(results.per_scheme.iter()) {
                assert_eq!(a.scheme, b.scheme);
                assert_eq!(a.combined, b.combined);
                assert_eq!(a.per_trace, b.per_trace);
            }
        }
    }

    #[test]
    fn run_generates_each_trace_exactly_once() {
        use dirsim_obs::{MetricValue, MetricsRegistry};
        // Regression for the dry-pass double generation: sizing an
        // open-system per-process run used to regenerate the *entire*
        // workload just to compute max-pid+1, so every such run paid for
        // two generation passes per trace. The bound now comes from the
        // run's own materialised pass; `trace_generations` counts every
        // `Workload` stream the experiment constructs.
        let open = Scenario::named("open-system").unwrap();
        assert!(open.config().open.is_enabled(), "scenario must be open");
        for mode in [
            ExecutionMode::Serial,
            ExecutionMode::SinglePass,
            ExecutionMode::Pipelined { workers: 2 },
        ] {
            let reg = Arc::new(MetricsRegistry::new());
            let results = Experiment::new()
                .workload(NamedWorkload::from(open))
                .workload(NamedWorkload::new("closed", small_config(3)))
                .schemes([Scheme::dir0_b(), Scheme::Dragon])
                .refs_per_trace(4_000)
                .recorder(Arc::clone(&reg) as Arc<dyn Recorder>)
                .run_with(mode)
                .unwrap();
            assert_eq!(results.per_scheme.len(), 2);
            for name in ["open-system", "closed"] {
                let passes: u64 = reg
                    .snapshot()
                    .iter()
                    .filter(|r| {
                        r.name == "trace_generations"
                            && r.labels == [("trace".to_string(), name.to_string())]
                    })
                    .map(|r| match r.value {
                        MetricValue::Counter(c) => c,
                        _ => 0,
                    })
                    .sum();
                assert_eq!(passes, 1, "{mode:?}: trace {name} generated {passes} times");
            }
        }
    }

    #[test]
    fn open_system_modes_agree_on_cache_bound() {
        // The materialised bound must match what the old dry pass
        // computed: every execution mode still sizes the system
        // identically and produces bit-identical results.
        let open = Scenario::named("open-system").unwrap();
        let experiment = || {
            Experiment::new()
                .workload(NamedWorkload::from(open))
                .scheme(Scheme::dir0_b())
                .refs_per_trace(4_000)
        };
        let serial = experiment().run_with(ExecutionMode::Serial).unwrap();
        for mode in [
            ExecutionMode::SinglePass,
            ExecutionMode::Pipelined { workers: 2 },
        ] {
            let other = experiment().run_with(mode).unwrap();
            assert_eq!(serial.trace_stats, other.trace_stats, "{mode:?}");
            assert_eq!(
                serial.per_scheme[0].combined, other.per_scheme[0].combined,
                "{mode:?}"
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = tiny_experiment().run().unwrap();
        let b = tiny_experiment().run().unwrap();
        assert_eq!(
            a.per_scheme[0].combined.events,
            b.per_scheme[0].combined.events
        );
        assert_eq!(a.per_scheme[0].combined.ops, b.per_scheme[0].combined.ops);
    }

    #[test]
    #[should_panic(expected = "needs workloads")]
    fn empty_workloads_panics() {
        let _ = Experiment::new().scheme(Scheme::Wti).run();
    }

    #[test]
    #[should_panic(expected = "needs schemes")]
    fn empty_schemes_panics() {
        let _ = Experiment::new()
            .workload(NamedWorkload::new("a", small_config(1)))
            .run();
    }
}
