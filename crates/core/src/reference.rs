//! The paper's published numbers, as data.
//!
//! Embedding the original Table 4/Table 5/Figure 1 values lets the
//! reporting layer print paper-vs-measured side by side and lets tests
//! compare shapes programmatically. Values are transcribed from the ISCA
//! 1988 paper; Table 4 numbers are percentages of all references averaged
//! over the three traces.

use dirsim_protocol::EventKind;

/// The four headline schemes, in the paper's column order.
pub const PAPER_SCHEMES: [&str; 4] = ["Dir1NB", "WTI", "Dir0B", "Dragon"];

/// One scheme's Table 4 column (percent of all references; `None` where
/// the paper prints a dash).
#[derive(Debug, Clone, Copy)]
pub struct Table4Column {
    /// Scheme name.
    pub scheme: &'static str,
    /// `(event, percent)` pairs for the rows the paper reports.
    pub rows: [(EventKind, Option<f64>); 12],
}

/// The paper's Table 4, transcribed.
pub fn paper_table4() -> [Table4Column; 4] {
    use EventKind::*;
    [
        Table4Column {
            scheme: "Dir1NB",
            rows: [
                (Instr, Some(49.72)),
                (RdHit, Some(34.32)),
                (RmBlkCln, Some(4.78)),
                (RmBlkDrty, Some(0.40)),
                (RmFirstRef, Some(0.32)),
                (WhBlkCln, None),
                (WhBlkDrty, None),
                (WhDistrib, None),
                (WhLocal, None),
                (WmBlkCln, Some(0.08)),
                (WmBlkDrty, Some(0.09)),
                (WmFirstRef, Some(0.08)),
            ],
        },
        Table4Column {
            scheme: "WTI",
            rows: [
                (Instr, Some(49.72)),
                (RdHit, Some(38.88)),
                (RmBlkCln, None),
                (RmBlkDrty, None),
                (RmFirstRef, Some(0.32)),
                (WhBlkCln, None),
                (WhBlkDrty, None),
                (WhDistrib, None),
                (WhLocal, None),
                (WmBlkCln, None),
                (WmBlkDrty, None),
                (WmFirstRef, Some(0.08)),
            ],
        },
        Table4Column {
            scheme: "Dir0B",
            rows: [
                (Instr, Some(49.72)),
                (RdHit, Some(38.88)),
                (RmBlkCln, Some(0.23)),
                (RmBlkDrty, Some(0.40)),
                (RmFirstRef, Some(0.32)),
                (WhBlkCln, Some(0.41)),
                (WhBlkDrty, Some(9.84)),
                (WhDistrib, None),
                (WhLocal, None),
                (WmBlkCln, Some(0.02)),
                (WmBlkDrty, Some(0.09)),
                (WmFirstRef, Some(0.08)),
            ],
        },
        Table4Column {
            scheme: "Dragon",
            rows: [
                (Instr, Some(49.72)),
                (RdHit, Some(39.20)),
                (RmBlkCln, Some(0.14)),
                (RmBlkDrty, Some(0.17)),
                (RmFirstRef, Some(0.32)),
                (WhBlkCln, None),
                (WhBlkDrty, None),
                (WhDistrib, Some(1.74)),
                (WhLocal, Some(8.62)),
                (WmBlkCln, Some(0.01)),
                (WmBlkDrty, Some(0.01)),
                (WmFirstRef, Some(0.08)),
            ],
        },
    ]
}

/// Table 5 cumulative bus cycles per reference (pipelined bus).
pub fn paper_table5_cumulative(scheme: &str) -> Option<f64> {
    match scheme {
        "Dir1NB" => Some(0.3210),
        "WTI" => Some(0.1466),
        "Dir0B" => Some(0.0491),
        "Dragon" => Some(0.0336),
        // §5 aside and §6 results.
        "Berkeley" => Some(0.0450),
        "DirnNB" => Some(0.0499),
        "Dir1B" => Some(0.0485),
        _ => None,
    }
}

/// Table 5: the unoverlapped directory-access component of `Dir0B`.
pub const PAPER_DIR0B_DIR_ACCESS: f64 = 0.0041;

/// Figure 1: fraction of clean-block writes invalidating at most one
/// other cache.
pub const PAPER_FIG1_AT_MOST_ONE: f64 = 0.85;

/// §5.1: per-transaction slopes (bus transactions per reference).
pub fn paper_transactions_per_ref(scheme: &str) -> Option<f64> {
    match scheme {
        "Dir0B" => Some(0.0114),
        "Dragon" => Some(0.0206),
        _ => None,
    }
}

/// §5.2: Dir1NB cycles/ref with and without lock-test reads.
pub const PAPER_DIR1NB_LOCK_IMPACT: (f64, f64) = (0.32, 0.12);

/// §5: effective-processor bound for the best scheme (10 MIPS, 100 ns).
pub const PAPER_EFFECTIVE_PROCESSORS: f64 = 15.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_columns_cover_the_four_schemes() {
        let t = paper_table4();
        let names: Vec<&str> = t.iter().map(|c| c.scheme).collect();
        assert_eq!(names, PAPER_SCHEMES);
    }

    #[test]
    fn table4_rows_are_in_taxonomy_order() {
        for col in paper_table4() {
            for (row, kind) in col.rows.iter().zip(EventKind::ALL.iter()) {
                assert_eq!(row.0, *kind, "{}", col.scheme);
            }
        }
    }

    #[test]
    fn table4_subcategories_add_up_to_paper_reads() {
        // Paper: reads are 39.82% for every scheme; check the columns that
        // report full splits.
        use EventKind::*;
        for col in paper_table4() {
            let get = |k: EventKind| {
                col.rows
                    .iter()
                    .find(|(kind, _)| *kind == k)
                    .and_then(|(_, v)| *v)
            };
            if let (Some(hit), Some(cln), Some(drty), Some(first)) =
                (get(RdHit), get(RmBlkCln), get(RmBlkDrty), get(RmFirstRef))
            {
                let reads = hit + cln + drty + first;
                assert!(
                    (reads - 39.82).abs() < 0.02,
                    "{}: reads add to {reads}",
                    col.scheme
                );
            }
        }
    }

    #[test]
    fn table5_values_match_the_paper() {
        assert_eq!(paper_table5_cumulative("Dir0B"), Some(0.0491));
        assert_eq!(paper_table5_cumulative("Dragon"), Some(0.0336));
        assert_eq!(paper_table5_cumulative("Nope"), None);
        // Dir0B ≈ 1.46x Dragon — "close to 50% more bus cycles".
        let ratio: f64 = 0.0491 / 0.0336;
        assert!((ratio - 1.46).abs() < 0.01);
    }

    #[test]
    fn section_5_1_example_reproduces_from_slopes() {
        // "with q = 1 Dir0B needs only 12% more bus cycles than Dragon".
        let dir0b = 0.0491 + paper_transactions_per_ref("Dir0B").unwrap();
        let dragon = 0.0336 + paper_transactions_per_ref("Dragon").unwrap();
        let gap = dir0b / dragon - 1.0;
        assert!((gap - 0.12).abs() < 0.02, "gap {gap}");
    }
}
