//! Timing-level simulation: processor utilisation under bus contention.
//!
//! The paper's §4.1 deliberately abstracts time away — event frequencies
//! are priced after the fact — and notes that "to determine the absolute
//! performance of a multiprocessor system using total processor
//! utilizations, a simulation must be carried out for every hardware model
//! desired". [`TimingSimulator`] is that simulation: each processor
//! consumes its own reference stream at one reference per cycle, every
//! reference that needs the bus arbitrates for it (first-come
//! first-served) and stalls its processor for the transaction's service
//! time (the §4.3 op costs, plus the §5.1 fixed overhead `q`), and the run
//! reports per-processor utilisation, bus utilisation, and speedup.
//!
//! Because the interleaving now *depends on timing*, coherence state is
//! updated in simulated service order rather than trace order — precisely
//! the feedback effect the paper says trace-driven simulation cannot
//! capture (§4). The analytic M/D/1 bound of [`crate::analysis`] is
//! cross-validated against this simulator in the test suite.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dirsim_cost::CostModel;
use dirsim_mem::BlockMap;
use dirsim_mem::CacheId;
use dirsim_protocol::CoherenceProtocol;
use dirsim_trace::{AccessKind, MemRef};

/// Timing-model configuration.
#[derive(Debug, Clone, Copy)]
pub struct TimingConfig {
    /// Byte-address to block mapping.
    pub block_map: BlockMap,
    /// Service costs per bus operation.
    pub cost: CostModel,
    /// Fixed overhead cycles added to every bus transaction (arbitration,
    /// controller propagation — the §5.1 `q`).
    pub fixed_overhead: u32,
    /// Processor cycles per bus cycle. The paper's worked example pairs
    /// fast processors with a slower bus; a multiplier of 4 means every
    /// bus cycle stalls the processor for four of its own cycles.
    pub bus_clock_multiplier: u32,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            block_map: BlockMap::paper(),
            cost: CostModel::pipelined(),
            fixed_overhead: 1,
            bus_clock_multiplier: 1,
        }
    }
}

/// Results of a timed run.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingResult {
    /// Total simulated cycles until the last processor finished.
    pub total_cycles: u64,
    /// References executed per processor.
    pub per_cpu_refs: Vec<u64>,
    /// Cycles each processor spent stalled on the bus.
    pub per_cpu_stall: Vec<u64>,
    /// Cycles the bus was busy serving transactions.
    pub bus_busy_cycles: u64,
    /// Bus transactions served.
    pub transactions: u64,
}

impl TimingResult {
    /// Mean processor utilisation: the fraction of each processor's
    /// lifetime spent executing references rather than stalled.
    pub fn processor_utilization(&self) -> f64 {
        // An empty run has no processors to average over; without this
        // guard the sum-over-n below would be 0.0 / 0.0 = NaN.
        if self.total_cycles == 0 || self.per_cpu_refs.is_empty() {
            return 0.0;
        }
        let n = self.per_cpu_refs.len() as f64;
        self.per_cpu_refs
            .iter()
            .zip(&self.per_cpu_stall)
            .map(|(&refs, &stall)| {
                let busy = refs as f64;
                let lifetime = busy + stall as f64;
                if lifetime == 0.0 {
                    0.0
                } else {
                    busy / lifetime
                }
            })
            .sum::<f64>()
            / n
    }

    /// Bus utilisation over the run.
    pub fn bus_utilization(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.bus_busy_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Aggregate throughput in references per cycle (the machine's
    /// "effective processors" since one processor retires one reference
    /// per cycle uncontended).
    pub fn effective_processors(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.per_cpu_refs.iter().sum::<u64>() as f64 / self.total_cycles as f64
        }
    }
}

/// The timing-level simulator (see module docs).
#[derive(Debug, Clone, Default)]
pub struct TimingSimulator {
    config: TimingConfig,
}

impl TimingSimulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: TimingConfig) -> Self {
        TimingSimulator { config }
    }

    /// Runs `protocol` with one processor per stream in `per_cpu`.
    ///
    /// Each processor retires one reference per cycle while unstalled;
    /// references whose protocol outcome carries bus operations stall the
    /// processor behind a FCFS bus for `fixed_overhead + Σ op costs`
    /// cycles. Returns when every stream is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `per_cpu` is empty.
    pub fn run(
        &self,
        protocol: &mut dyn CoherenceProtocol,
        per_cpu: Vec<Vec<MemRef>>,
    ) -> TimingResult {
        self.run_with_progress(
            protocol,
            per_cpu,
            &mut dirsim_obs::ProgressMeter::disabled(),
        )
    }

    /// Like [`run`](Self::run), but reports retired references (and the
    /// implied references/sec rate) through a throttled
    /// [`ProgressMeter`](dirsim_obs::ProgressMeter). A disabled meter costs
    /// one branch per reference.
    ///
    /// # Panics
    ///
    /// Panics if `per_cpu` is empty.
    pub fn run_with_progress(
        &self,
        protocol: &mut dyn CoherenceProtocol,
        per_cpu: Vec<Vec<MemRef>>,
        progress: &mut dirsim_obs::ProgressMeter,
    ) -> TimingResult {
        assert!(!per_cpu.is_empty(), "need at least one processor stream");
        let n = per_cpu.len();
        let mut result = TimingResult {
            total_cycles: 0,
            per_cpu_refs: vec![0; n],
            per_cpu_stall: vec![0; n],
            bus_busy_cycles: 0,
            transactions: 0,
        };
        // (next-free-time, cpu, position) — min-heap by time then cpu for
        // deterministic tie-breaking.
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
            (0..n).map(|cpu| Reverse((0u64, cpu))).collect();
        let mut position = vec![0usize; n];
        let mut bus_free_at = 0u64;
        let mut retired = 0u64;

        while let Some(Reverse((now, cpu))) = heap.pop() {
            let stream = &per_cpu[cpu];
            let Some(r) = stream.get(position[cpu]) else {
                continue; // stream exhausted
            };
            position[cpu] += 1;
            result.per_cpu_refs[cpu] += 1;
            retired += 1;
            progress.tick(retired, None);
            // The reference itself takes one processor cycle.
            let mut next_free = now + 1;
            if r.kind != AccessKind::InstrFetch {
                let block = self.config.block_map.block_of(r.addr);
                let outcome = protocol.on_data_ref(
                    CacheId::new(cpu as u32),
                    block,
                    r.kind == AccessKind::Write,
                );
                if !outcome.ops.is_empty() {
                    let bus_cycles: u64 = u64::from(self.config.fixed_overhead)
                        + outcome
                            .ops
                            .iter()
                            .map(|&op| u64::from(self.config.cost.op_cost(op)))
                            .sum::<u64>();
                    let service = bus_cycles * u64::from(self.config.bus_clock_multiplier.max(1));
                    let start = bus_free_at.max(next_free);
                    let done = start + service;
                    result.per_cpu_stall[cpu] += done - next_free;
                    result.bus_busy_cycles += service;
                    result.transactions += 1;
                    bus_free_at = done;
                    next_free = done;
                }
            }
            result.total_cycles = result.total_cycles.max(next_free);
            heap.push(Reverse((next_free, cpu)));
            // Exhausted streams simply never re-execute; drain the heap of
            // finished processors lazily.
            while let Some(&Reverse((_, c))) = heap.peek() {
                if position[c] < per_cpu[c].len() {
                    break;
                }
                heap.pop();
            }
        }
        progress.finish(retired, None);
        result
    }

    /// Convenience: splits an interleaved stream by CPU and runs it.
    ///
    /// # Panics
    ///
    /// Panics if `cpus == 0`.
    pub fn run_interleaved(
        &self,
        protocol: &mut dyn CoherenceProtocol,
        refs: impl IntoIterator<Item = MemRef>,
        cpus: usize,
    ) -> TimingResult {
        assert!(cpus > 0, "need at least one processor");
        let mut per_cpu = vec![Vec::new(); cpus];
        for r in refs {
            let idx = r.cpu.index() % cpus;
            per_cpu[idx].push(r);
        }
        self.run(protocol, per_cpu)
    }

    /// Like [`run_interleaved`](Self::run_interleaved), but pulling the
    /// stream from any [`TraceSource`](dirsim_trace::TraceSource) in
    /// chunks — the same decode stage the frequency engine's pipeline
    /// uses (see [`crate::broadcast`]), so a trace file or filtered
    /// source feeds the timing model without being collected first.
    ///
    /// Unlike the frequency engine, the timing model's event loop
    /// consumes per-CPU streams whole (arbitration looks ahead across
    /// the full run), so the split streams are still materialised; only
    /// the decode is chunked.
    ///
    /// # Errors
    ///
    /// Propagates the first decode error from the source.
    ///
    /// # Panics
    ///
    /// Panics if `cpus == 0`.
    pub fn run_source<S: dirsim_trace::TraceSource>(
        &self,
        protocol: &mut dyn CoherenceProtocol,
        mut source: S,
        cpus: usize,
    ) -> Result<TimingResult, crate::error::Error> {
        assert!(cpus > 0, "need at least one processor");
        let mut per_cpu = vec![Vec::new(); cpus];
        let mut buf = Vec::new();
        loop {
            buf = source.read_chunk_owned(buf, crate::broadcast::DEFAULT_CHUNK)?;
            if buf.is_empty() {
                break;
            }
            for r in &buf {
                per_cpu[r.cpu.index() % cpus].push(*r);
            }
        }
        Ok(self.run(protocol, per_cpu))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirsim_protocol::{DirSpec, Scheme};
    use dirsim_trace::synth::{Workload, WorkloadConfig};
    use dirsim_trace::{Addr, CpuId, ProcessId, Scenario};

    #[test]
    fn lone_processor_private_stream_never_stalls_after_warmup() {
        // One cpu re-reading one block: a single cold miss (free under the
        // paper's exclusion) then pure hits.
        let refs: Vec<MemRef> = (0..1000)
            .map(|_| MemRef::read(CpuId::new(0), ProcessId::new(0), Addr::new(0x40)))
            .collect();
        let mut p = Scheme::Directory(DirSpec::dir0_b()).build(1);
        let result = TimingSimulator::default().run(p.as_mut(), vec![refs]);
        assert_eq!(result.per_cpu_refs[0], 1000);
        assert_eq!(result.per_cpu_stall[0], 0);
        assert_eq!(result.transactions, 0);
        assert!((result.processor_utilization() - 1.0).abs() < 1e-9);
        assert_eq!(result.total_cycles, 1000);
    }

    #[test]
    fn misses_stall_for_service_plus_overhead() {
        // Two cpus ping-ponging a dirty block: every access after the first
        // is a 1(req)+4(wb) = 5-cycle transaction plus overhead 1.
        let mk = |cpu: u16, w: bool| {
            MemRef::new(
                CpuId::new(cpu),
                ProcessId::new(u32::from(cpu)),
                Addr::new(0x80),
                if w {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            )
        };
        let a = vec![mk(0, true), mk(0, true)];
        let b = vec![mk(1, true), mk(1, true)];
        let mut p = Scheme::Directory(DirSpec::dir0_b()).build(2);
        let result = TimingSimulator::default().run(p.as_mut(), vec![a, b]);
        assert_eq!(result.transactions, 3, "all but the cold write transact");
        assert_eq!(result.bus_busy_cycles, 3 * 6);
        assert!(result.per_cpu_stall.iter().sum::<u64>() >= 18);
    }

    #[test]
    fn run_source_matches_run_interleaved() {
        // Chunked decode through a TraceSource must not change the timing
        // model's view of the stream.
        use dirsim_trace::source::IterSource;
        let refs: Vec<MemRef> = Scenario::named("pops")
            .unwrap()
            .workload()
            .take(20_000)
            .collect();
        let mut a = Scheme::Directory(DirSpec::dir0_b()).build(4);
        let from_vec = TimingSimulator::default().run_interleaved(a.as_mut(), refs.clone(), 4);
        let mut b = Scheme::Directory(DirSpec::dir0_b()).build(4);
        let from_source = TimingSimulator::default()
            .run_source(b.as_mut(), IterSource::new(refs.into_iter()), 4)
            .unwrap();
        assert_eq!(from_vec.total_cycles, from_source.total_cycles);
        assert_eq!(from_vec.per_cpu_refs, from_source.per_cpu_refs);
        assert_eq!(from_vec.per_cpu_stall, from_source.per_cpu_stall);
        assert_eq!(from_vec.bus_busy_cycles, from_source.bus_busy_cycles);
        assert_eq!(from_vec.transactions, from_source.transactions);
    }

    #[test]
    fn utilization_degrades_with_processor_count() {
        let util = |cpus: u16| {
            let cfg = WorkloadConfig::builder()
                .cpus(cpus)
                .processes(u32::from(cpus))
                .shared_frac(0.05)
                .seed(77)
                .build()
                .unwrap();
            let refs: Vec<MemRef> = Workload::new(cfg).take(40_000).collect();
            let mut p = Scheme::Directory(DirSpec::dir0_b()).build(u32::from(cpus));
            TimingSimulator::default()
                .run_interleaved(p.as_mut(), refs, cpus as usize)
                .processor_utilization()
        };
        let u2 = util(2);
        let u8 = util(8);
        let u32v = util(32);
        assert!(u2 > u8, "u2={u2} u8={u8}");
        assert!(u8 > u32v, "u8={u8} u32={u32v}");
    }

    #[test]
    fn throughput_saturates_at_the_bus_bound() {
        // With many processors the machine retires at most
        // 1/cycles-per-ref references per cycle, no matter how many cpus.
        let cfg = WorkloadConfig::builder()
            .cpus(32)
            .processes(32)
            .shared_frac(0.05)
            .seed(99)
            .build()
            .unwrap();
        let refs: Vec<MemRef> = Workload::new(cfg).take(60_000).collect();
        let mut p = Scheme::Directory(DirSpec::dir0_b()).build(32);
        let result = TimingSimulator::default().run_interleaved(p.as_mut(), refs, 32);
        assert!(
            result.bus_utilization() > 0.85,
            "a 32-way machine should saturate the bus: {}",
            result.bus_utilization()
        );
        assert!(result.effective_processors() < 32.0 * 0.9);
    }

    #[test]
    fn dragon_sustains_more_effective_processors_than_wti() {
        let run = |scheme: Scheme| {
            let refs: Vec<MemRef> = Scenario::named("pops")
                .unwrap()
                .workload()
                .take(60_000)
                .collect();
            let mut p = scheme.build(4);
            TimingSimulator::default().run_interleaved(p.as_mut(), refs, 4)
        };
        let dragon = run(Scheme::Dragon);
        let wti = run(Scheme::Wti);
        assert!(
            dragon.processor_utilization() > wti.processor_utilization(),
            "dragon {} vs wti {}",
            dragon.processor_utilization(),
            wti.processor_utilization()
        );
    }

    #[test]
    fn analytic_bound_brackets_the_simulated_machine() {
        // Cross-validation: the timing simulator's effective-processor
        // count at heavy load approaches (and never exceeds) the §5
        // bandwidth bound computed from the same scheme's average cost.
        use crate::engine::Simulator;
        let cfg = WorkloadConfig::builder()
            .cpus(16)
            .processes(16)
            .shared_frac(0.05)
            .seed(123)
            .build()
            .unwrap();
        let refs: Vec<MemRef> = Workload::new(cfg).take(60_000).collect();

        // Average cost per reference (with q=1 overhead), from the
        // frequency-based engine.
        let mut p = Scheme::Directory(DirSpec::dir0_b()).build(16);
        let freq = Simulator::paper()
            .run(p.as_mut(), refs.iter().copied())
            .unwrap();
        let bd = freq.breakdown(CostModel::pipelined());
        let cycles_per_ref = bd.cycles_per_ref_with_overhead(1.0);
        let analytic_bound = 1.0 / cycles_per_ref;

        // The timed machine.
        let mut p = Scheme::Directory(DirSpec::dir0_b()).build(16);
        let timed = TimingSimulator::default().run_interleaved(p.as_mut(), refs, 16);
        let simulated = timed.effective_processors();
        assert!(
            simulated <= analytic_bound * 1.10,
            "simulated {simulated} exceeds analytic bound {analytic_bound}"
        );
        assert!(
            simulated > analytic_bound * 0.5,
            "simulated {simulated} far below bound {analytic_bound} — load should saturate"
        );
    }

    #[test]
    fn slower_bus_hurts_utilization() {
        let run = |multiplier: u32| {
            let refs: Vec<MemRef> = Scenario::named("thor")
                .unwrap()
                .workload()
                .take(40_000)
                .collect();
            let mut p = Scheme::Directory(DirSpec::dir0_b()).build(4);
            let config = TimingConfig {
                bus_clock_multiplier: multiplier,
                ..TimingConfig::default()
            };
            TimingSimulator::new(config).run_interleaved(p.as_mut(), refs, 4)
        };
        let fast = run(1);
        let slow = run(4);
        assert!(
            slow.processor_utilization() < fast.processor_utilization(),
            "slow {} !< fast {}",
            slow.processor_utilization(),
            fast.processor_utilization()
        );
    }

    #[test]
    #[should_panic(expected = "at least one processor stream")]
    fn empty_streams_rejected() {
        let mut p = Scheme::Dragon.build(1);
        let _ = TimingSimulator::default().run(p.as_mut(), Vec::new());
    }

    #[test]
    fn empty_timing_result_reports_zero_utilization_not_nan() {
        // Regression: a hand-built (or degenerate) result with no
        // processors used to return 0.0/0.0 = NaN from
        // processor_utilization when total_cycles was non-zero.
        let empty = TimingResult {
            total_cycles: 10,
            per_cpu_refs: Vec::new(),
            per_cpu_stall: Vec::new(),
            bus_busy_cycles: 0,
            transactions: 0,
        };
        assert_eq!(empty.processor_utilization(), 0.0);
        assert!(empty.processor_utilization().is_finite());
        assert_eq!(empty.effective_processors(), 0.0);
        let zero = TimingResult {
            total_cycles: 0,
            per_cpu_refs: Vec::new(),
            per_cpu_stall: Vec::new(),
            bus_busy_cycles: 0,
            transactions: 0,
        };
        assert_eq!(zero.processor_utilization(), 0.0);
        assert_eq!(zero.bus_utilization(), 0.0);
    }

    #[test]
    fn progress_meter_sees_every_retired_reference() {
        use std::sync::{Arc, Mutex};
        use std::time::Duration;

        let refs: Vec<MemRef> = Scenario::named("pops")
            .unwrap()
            .workload()
            .take(5_000)
            .collect();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let mut meter = dirsim_obs::ProgressMeter::new(
            "refs",
            Duration::ZERO,
            Box::new(move |p| sink.lock().unwrap().push(p.done)),
        );
        let mut p = Scheme::Wti.build(4);
        let result =
            TimingSimulator::default().run_with_progress(p.as_mut(), split(refs, 4), &mut meter);
        let seen = seen.lock().unwrap();
        assert!(!seen.is_empty());
        // The forced finish report carries the exact retired total.
        assert_eq!(
            *seen.last().unwrap(),
            result.per_cpu_refs.iter().sum::<u64>()
        );
    }

    fn split(refs: Vec<MemRef>, cpus: usize) -> Vec<Vec<MemRef>> {
        let mut per_cpu = vec![Vec::new(); cpus];
        for r in refs {
            per_cpu[r.cpu.index() % cpus].push(r);
        }
        per_cpu
    }
}
