//! System-level performance analysis (end of §5).
//!
//! The bus-cycles-per-reference metric bounds whole-system scalability: the
//! paper works the example of a 10-MIPS processor issuing two references
//! per instruction against a 100 ns bus — the best scheme (≈ 0.033 cycles
//! per reference) then supports "a maximum performance of 15 effective
//! processors", an optimistic upper bound that ignores instruction misses,
//! finite caches, and contention. [`SystemModel`] reproduces that
//! arithmetic for any measured scheme.

use dirsim_cost::CostModel;

use crate::experiment::ExperimentResults;

/// Processor/bus parameters for the §5 effective-processor bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemModel {
    /// Processor speed in millions of instructions per second.
    pub processor_mips: f64,
    /// Bus cycle time in nanoseconds.
    pub bus_cycle_ns: f64,
    /// Memory references per instruction (the paper's traces average one
    /// data reference per instruction, i.e. two references counting the
    /// fetch).
    pub refs_per_instruction: f64,
}

impl SystemModel {
    /// The paper's worked example: 10 MIPS, 100 ns bus, 2 refs/instruction.
    pub const PAPER: SystemModel = SystemModel {
        processor_mips: 10.0,
        bus_cycle_ns: 100.0,
        refs_per_instruction: 2.0,
    };

    /// Bus cycles demanded per second by one processor running a scheme
    /// that costs `cycles_per_ref` bus cycles per reference.
    pub fn demand_cycles_per_second(&self, cycles_per_ref: f64) -> f64 {
        self.processor_mips * 1e6 * self.refs_per_instruction * cycles_per_ref
    }

    /// Bus cycles available per second.
    pub fn bus_capacity_cycles_per_second(&self) -> f64 {
        1e9 / self.bus_cycle_ns
    }

    /// The maximum number of processors the bus can feed before saturating
    /// — the paper's "effective processors" upper bound.
    ///
    /// Returns infinity when the scheme needs no bus cycles.
    pub fn effective_processors(&self, cycles_per_ref: f64) -> f64 {
        let demand = self.demand_cycles_per_second(cycles_per_ref);
        if demand == 0.0 {
            f64::INFINITY
        } else {
            self.bus_capacity_cycles_per_second() / demand
        }
    }

    /// Bus utilisation (0–1+) with `processors` processors; values above 1
    /// mean the bus is saturated.
    pub fn bus_utilization(&self, cycles_per_ref: f64, processors: u32) -> f64 {
        f64::from(processors) * self.demand_cycles_per_second(cycles_per_ref)
            / self.bus_capacity_cycles_per_second()
    }

    /// Mean queueing delay per bus transaction, in multiples of the
    /// transaction's own service time, under an M/D/1 approximation:
    /// `U / (2·(1 − U))` for utilisation `U`. Returns `None` at or beyond
    /// saturation.
    ///
    /// The paper stops at the bandwidth bound ("this limit is an
    /// optimistic upper bound because we have not included ... the effects
    /// of bus contention"); this supplies the first-order contention
    /// estimate.
    pub fn queueing_delay_factor(&self, cycles_per_ref: f64, processors: u32) -> Option<f64> {
        let u = self.bus_utilization(cycles_per_ref, processors);
        if u >= 1.0 {
            None
        } else {
            Some(u / (2.0 * (1.0 - u)))
        }
    }

    /// Effective per-processor throughput (fraction of its uncontended
    /// speed) with `processors` processors sharing the bus: each bus
    /// transaction of `cycles_per_txn` cycles is stretched by queueing.
    /// `txns_per_ref` transactions occur per reference. Returns 0 at or
    /// beyond saturation (the bus, not the processor, sets throughput).
    pub fn contended_throughput(
        &self,
        cycles_per_ref: f64,
        cycles_per_txn: f64,
        txns_per_ref: f64,
        processors: u32,
    ) -> f64 {
        let Some(delay) = self.queueing_delay_factor(cycles_per_ref, processors) else {
            return 0.0;
        };
        // Extra stall cycles per reference from waiting behind others.
        let wait_cycles_per_ref = txns_per_ref * cycles_per_txn * delay;
        // A reference occupies 1/refs-per-cycle processor time uncontended.
        let cpu_cycles_per_ref =
            1e9 / (self.bus_cycle_ns * self.processor_mips * 1e6 * self.refs_per_instruction);
        cpu_cycles_per_ref / (cpu_cycles_per_ref + wait_cycles_per_ref)
    }
}

impl Default for SystemModel {
    fn default() -> Self {
        SystemModel::PAPER
    }
}

/// Effective-processor bounds for every scheme in an experiment.
pub fn effective_processor_bounds(
    results: &ExperimentResults,
    cost_model: CostModel,
    system: SystemModel,
) -> Vec<(String, f64)> {
    results
        .per_scheme
        .iter()
        .map(|s| {
            let cycles = s.combined.cycles_per_ref(cost_model);
            (s.scheme.name(), system.effective_processors(cycles))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // 0.0333 cycles/ref → a bus cycle every 30 refs → 15 processors.
        let sys = SystemModel::PAPER;
        let eff = sys.effective_processors(1.0 / 30.0);
        assert!((eff - 15.0).abs() < 0.01, "effective = {eff}");
    }

    #[test]
    fn zero_cost_is_unbounded() {
        assert!(SystemModel::PAPER.effective_processors(0.0).is_infinite());
    }

    #[test]
    fn utilization_scales_linearly_with_processors() {
        let sys = SystemModel::PAPER;
        let one = sys.bus_utilization(0.05, 1);
        let four = sys.bus_utilization(0.05, 4);
        assert!((four - 4.0 * one).abs() < 1e-12);
    }

    #[test]
    fn utilization_of_one_at_the_bound() {
        let sys = SystemModel::PAPER;
        let cycles = 0.04;
        let bound = sys.effective_processors(cycles);
        let u = sys.bus_utilization(cycles, bound.round() as u32);
        assert!((u - 1.0).abs() < 0.05);
    }

    #[test]
    fn faster_bus_supports_more_processors() {
        let slow = SystemModel {
            bus_cycle_ns: 100.0,
            ..SystemModel::PAPER
        };
        let fast = SystemModel {
            bus_cycle_ns: 50.0,
            ..SystemModel::PAPER
        };
        assert!(fast.effective_processors(0.05) > slow.effective_processors(0.05));
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(SystemModel::default(), SystemModel::PAPER);
    }

    #[test]
    fn queueing_delay_grows_then_saturates() {
        let sys = SystemModel::PAPER;
        let cycles = 0.04;
        let d4 = sys.queueing_delay_factor(cycles, 4).unwrap();
        let d8 = sys.queueing_delay_factor(cycles, 8).unwrap();
        assert!(d8 > d4, "more processors, more waiting");
        // At ~12.5 processors the bus saturates (utilisation 1).
        assert!(sys.queueing_delay_factor(cycles, 13).is_none());
    }

    #[test]
    fn queueing_delay_is_zero_when_idle() {
        let sys = SystemModel::PAPER;
        let d = sys.queueing_delay_factor(0.0, 64).unwrap();
        assert_eq!(d, 0.0);
    }

    #[test]
    fn contended_throughput_degrades_monotonically() {
        let sys = SystemModel::PAPER;
        let (cpr, cpt, tpr) = (0.04, 4.0, 0.01);
        let t1 = sys.contended_throughput(cpr, cpt, tpr, 1);
        let t8 = sys.contended_throughput(cpr, cpt, tpr, 8);
        let t12 = sys.contended_throughput(cpr, cpt, tpr, 12);
        assert!(t1 > t8 && t8 > t12, "{t1} {t8} {t12}");
        assert!(t1 <= 1.0 && t1 > 0.9, "lone processor barely waits: {t1}");
        assert_eq!(
            sys.contended_throughput(cpr, cpt, tpr, 100),
            0.0,
            "saturated"
        );
    }
}
