//! The trace-driven simulation engine (§4 of the paper).
//!
//! [`Simulator::run`] drives an interleaved reference stream through one
//! protocol over a system of infinite caches: instruction fetches are
//! counted but cause no coherence traffic, data references are mapped to
//! 16-byte blocks and attributed to a cache (per-process by default, §4.4),
//! and the protocol's [`RefOutcome`](dirsim_protocol::RefOutcome)s are accumulated into event
//! frequencies, bus-operation counts, and the Figure 1 invalidation
//! histogram.
//!
//! With [`SimConfig::check_oracle`] enabled, every data movement the
//! protocol claims is replayed against the protocol-independent
//! [`ShadowMemory`] oracle, and every load/store is checked to observe the
//! globally latest value — a full coherence-correctness audit of the
//! protocol state machine.

use std::fmt;

use dirsim_cost::{CostBreakdown, CostModel};
use dirsim_mem::{
    BlockAddr, BlockMap, CacheGeometry, CacheStorage, FiniteCache, OracleViolation, ShadowMemory,
    SharingModel,
};
use dirsim_protocol::{CoherenceProtocol, DataMovement, EventCounts, EventKind, OpCounts};
use dirsim_trace::{AccessKind, MemRef};

use crate::histogram::FanoutHistogram;
use crate::invariant;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Byte-address to block mapping (16-byte blocks by default).
    pub block_map: BlockMap,
    /// Cache attribution: per-process (paper default) or per-processor.
    pub sharing: SharingModel,
    /// Replay data movements against the coherence oracle and fail on any
    /// violation. Costs extra time and memory; used pervasively in tests.
    pub check_oracle: bool,
    /// Finite per-cache geometry. `None` (the paper's model) simulates
    /// infinite caches; `Some` adds LRU capacity replacement, whose
    /// re-fetches and write-backs are the paper's §4 "costs due to the
    /// finite cache size".
    pub geometry: Option<CacheGeometry>,
    /// Audit every reference against the [`crate::invariant`] catalogue
    /// (SWMR, event classification, fan-out, directory agreement) and
    /// panic on the first violation. Defaults to on in debug builds and,
    /// in release builds, under the crate's `invariants` feature.
    pub check_invariants: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            block_map: BlockMap::paper(),
            sharing: SharingModel::PerProcess,
            check_oracle: false,
            geometry: None,
            check_invariants: cfg!(any(debug_assertions, feature = "invariants")),
        }
    }
}

/// Error produced when the oracle catches a protocol misbehaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// Protocol that misbehaved.
    pub scheme: String,
    /// Zero-based index of the reference that exposed the violation.
    pub ref_index: u64,
    /// The violation.
    pub violation: OracleViolation,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "coherence violation in {} at reference {}: {}",
            self.scheme, self.ref_index, self.violation
        )
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.violation)
    }
}

/// Accumulated results of one protocol over one reference stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Protocol name (`Dir0B`, `Dragon`, …).
    pub scheme: String,
    /// Table 4 event counts.
    pub events: EventCounts,
    /// Bus-operation counts for cost models.
    pub ops: OpCounts,
    /// References that caused at least one bus operation.
    pub transactions: u64,
    /// Total references processed (instructions included).
    pub refs: u64,
    /// Figure 1 invalidation fan-out histogram.
    pub fanout: FanoutHistogram,
    /// Distinct blocks touched (= cold misses).
    pub distinct_blocks: u64,
    /// Capacity replacements performed (finite-cache mode only).
    pub capacity_evictions: u64,
}

impl SimResult {
    fn new(scheme: String) -> Self {
        SimResult {
            scheme,
            events: EventCounts::new(),
            ops: OpCounts::new(),
            transactions: 0,
            refs: 0,
            fanout: FanoutHistogram::new(),
            distinct_blocks: 0,
            capacity_evictions: 0,
        }
    }

    /// Prices this run under a cost model.
    ///
    /// # Panics
    ///
    /// Panics if the run processed zero references.
    pub fn breakdown(&self, model: CostModel) -> CostBreakdown {
        CostBreakdown::price(&self.ops, self.refs, self.transactions, model)
    }

    /// Bus cycles per memory reference under a cost model — the paper's
    /// headline metric.
    pub fn cycles_per_ref(&self, model: CostModel) -> f64 {
        self.breakdown(model).cycles_per_ref()
    }

    /// Merges another run (e.g. a different trace) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the schemes differ.
    pub fn merge(&mut self, other: &SimResult) {
        assert_eq!(self.scheme, other.scheme, "cannot merge different schemes");
        self.events.merge(&other.events);
        self.ops.merge(&other.ops);
        self.transactions += other.transactions;
        self.refs += other.refs;
        self.fanout.merge(&other.fanout);
        self.distinct_blocks += other.distinct_blocks;
        self.capacity_evictions += other.capacity_evictions;
    }
}

/// The trace-driven simulator (see module docs).
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// Creates a simulator with the paper's defaults (16-byte blocks,
    /// per-process sharing, oracle off).
    pub fn paper() -> Self {
        Simulator::default()
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs `protocol` over every reference of `refs`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if oracle checking is enabled and the
    /// protocol commits a coherence violation.
    pub fn run<I>(
        &self,
        protocol: &mut dyn CoherenceProtocol,
        refs: I,
    ) -> Result<SimResult, SimError>
    where
        I: IntoIterator<Item = MemRef>,
    {
        let mut result = SimResult::new(protocol.name());
        let mut oracle = self.config.check_oracle.then(ShadowMemory::new);
        let mut finite: Vec<FiniteCache<()>> = Vec::new();

        for r in refs {
            let index = result.refs;
            result.refs += 1;
            if r.kind == AccessKind::InstrFetch {
                result.events.record(EventKind::Instr);
                continue;
            }
            let block = self.config.block_map.block_of(r.addr);
            let cache = self.config.sharing.cache_of(&r);
            let write = r.kind == AccessKind::Write;

            // Finite-cache mode: update residency first so that a capacity
            // victim is evicted from the protocol state *before* the access
            // is classified.
            let mut eviction_used_bus = false;
            if let Some(geometry) = self.config.geometry {
                while finite.len() <= cache.index() {
                    finite.push(
                        FiniteCache::new(geometry)
                            .expect("geometry validated at configuration time"),
                    );
                }
                let fc = &mut finite[cache.index()];
                if fc.touch(block).is_none() {
                    if let Some((victim, ())) = fc.insert(block, ()) {
                        result.capacity_evictions += 1;
                        let ev = protocol.evict(cache, victim);
                        for &op in &ev.ops {
                            result.ops.record(op, 1);
                        }
                        eviction_used_bus = !ev.ops.is_empty();
                        if self.config.check_invariants {
                            if let Err(v) = invariant::check_eviction(protocol, cache, victim, &ev)
                            {
                                panic!(
                                    "protocol invariant violated in {} at reference {index} \
                                     (eviction): {v}",
                                    protocol.name()
                                );
                            }
                        }
                        Self::replay_movements(
                            protocol,
                            oracle.as_mut(),
                            &ev.movements,
                            victim,
                            index,
                        )?;
                    }
                }
            }

            let pre = self
                .config
                .check_invariants
                .then(|| protocol.probe(block))
                .flatten();
            let outcome = protocol.on_data_ref(cache, block, write);
            if self.config.check_invariants {
                if let Err(v) =
                    invariant::check_data_ref(protocol, pre.as_ref(), cache, block, write, &outcome)
                {
                    panic!(
                        "protocol invariant violated in {} at reference {index}: {v}",
                        protocol.name()
                    );
                }
            }
            let kind = outcome.kind();
            result.events.record(kind);
            for &op in &outcome.ops {
                result.ops.record(op, 1);
            }
            if outcome.is_bus_transaction() || eviction_used_bus {
                result.transactions += 1;
            }
            if let Some(fanout) = outcome.clean_write_fanout {
                result.fanout.record(fanout);
            }
            Self::replay_movements(protocol, oracle.as_mut(), &outcome.movements, block, index)?;
            if let Some(oracle) = oracle.as_mut() {
                // The fundamental check: the referencing cache must now
                // hold the globally latest version of the block.
                oracle
                    .check_read(cache, block)
                    .map_err(|violation| SimError {
                        scheme: protocol.name(),
                        ref_index: index,
                        violation,
                    })?;
            }
        }
        result.distinct_blocks = protocol.tracked_blocks() as u64;
        Ok(result)
    }

    /// Replays a protocol's claimed data movements against the oracle.
    fn replay_movements(
        protocol: &dyn CoherenceProtocol,
        oracle: Option<&mut ShadowMemory>,
        movements: &[DataMovement],
        block: BlockAddr,
        ref_index: u64,
    ) -> Result<(), SimError> {
        let Some(oracle) = oracle else {
            return Ok(());
        };
        invariant::replay_movements(oracle, movements, block).map_err(|violation| SimError {
            scheme: protocol.name(),
            ref_index,
            violation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirsim_protocol::{DirSpec, Scheme};
    use dirsim_trace::{Addr, CpuId, ProcessId};

    fn refs_two_cpus() -> Vec<MemRef> {
        let c0 = CpuId::new(0);
        let c1 = CpuId::new(1);
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        vec![
            MemRef::instr(c0, p0, Addr::new(0x9000)),
            MemRef::read(c0, p0, Addr::new(0x100)),
            MemRef::read(c1, p1, Addr::new(0x100)),
            MemRef::write(c0, p0, Addr::new(0x100)),
            MemRef::read(c1, p1, Addr::new(0x100)),
        ]
    }

    #[test]
    fn counts_instructions_without_protocol_traffic() {
        let mut p = Scheme::Directory(DirSpec::dir0_b()).build(2);
        let result = Simulator::paper().run(p.as_mut(), refs_two_cpus()).unwrap();
        assert_eq!(result.refs, 5);
        assert_eq!(result.events[EventKind::Instr], 1);
    }

    #[test]
    fn classifies_the_standard_sequence() {
        let mut p = Scheme::Directory(DirSpec::dir0_b()).build(2);
        let result = Simulator::paper().run(p.as_mut(), refs_two_cpus()).unwrap();
        assert_eq!(result.events[EventKind::RmFirstRef], 1);
        assert_eq!(result.events[EventKind::RmBlkCln], 1);
        assert_eq!(result.events[EventKind::WhBlkCln], 1);
        assert_eq!(result.events[EventKind::RmBlkDrty], 1);
    }

    #[test]
    fn oracle_passes_for_correct_protocols() {
        let config = SimConfig {
            check_oracle: true,
            ..SimConfig::default()
        };
        for scheme in Scheme::paper_lineup() {
            let mut p = scheme.build(2);
            Simulator::new(config)
                .run(p.as_mut(), refs_two_cpus())
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn transactions_count_bus_using_refs() {
        let mut p = Scheme::Directory(DirSpec::dir0_b()).build(2);
        let result = Simulator::paper().run(p.as_mut(), refs_two_cpus()).unwrap();
        // rm-blk-cln, wh-blk-cln, rm-blk-drty use the bus; instr, cold miss
        // and nothing else do.
        assert_eq!(result.transactions, 3);
    }

    #[test]
    fn fanout_recorded_on_clean_writes() {
        let mut p = Scheme::Directory(DirSpec::dir0_b()).build(2);
        let result = Simulator::paper().run(p.as_mut(), refs_two_cpus()).unwrap();
        assert_eq!(result.fanout.total(), 1);
        assert_eq!(result.fanout.count(1), 1);
    }

    #[test]
    fn per_processor_sharing_uses_cpu_ids() {
        // One process bouncing between two CPUs: per-process sees one
        // cache (all hits), per-processor sees two (coherence traffic).
        let p0 = ProcessId::new(0);
        let refs = vec![
            MemRef::read(CpuId::new(0), p0, Addr::new(0x40)),
            MemRef::read(CpuId::new(1), p0, Addr::new(0x40)),
        ];
        let mut per_process = Scheme::Directory(DirSpec::dir0_b()).build(2);
        let result = Simulator::paper()
            .run(per_process.as_mut(), refs.clone())
            .unwrap();
        assert_eq!(result.events[EventKind::RdHit], 1);

        let mut per_cpu = Scheme::Directory(DirSpec::dir0_b()).build(2);
        let config = SimConfig {
            sharing: SharingModel::PerProcessor,
            ..SimConfig::default()
        };
        let result = Simulator::new(config).run(per_cpu.as_mut(), refs).unwrap();
        assert_eq!(result.events[EventKind::RdHit], 0);
        assert_eq!(result.events[EventKind::RmBlkCln], 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut p = Scheme::Wti.build(2);
        let sim = Simulator::paper();
        let mut a = sim.run(p.as_mut(), refs_two_cpus()).unwrap();
        let mut q = Scheme::Wti.build(2);
        let b = sim.run(q.as_mut(), refs_two_cpus()).unwrap();
        let refs_before = a.refs;
        a.merge(&b);
        assert_eq!(a.refs, refs_before * 2);
        assert_eq!(a.events.total(), a.refs);
    }

    #[test]
    #[should_panic(expected = "different schemes")]
    fn merge_rejects_mixed_schemes() {
        let sim = Simulator::paper();
        let mut p = Scheme::Wti.build(2);
        let mut a = sim.run(p.as_mut(), refs_two_cpus()).unwrap();
        let mut q = Scheme::Dragon.build(2);
        let b = sim.run(q.as_mut(), refs_two_cpus()).unwrap();
        a.merge(&b);
    }

    #[test]
    fn event_counts_partition_references() {
        let mut p = Scheme::Dragon.build(2);
        let result = Simulator::paper().run(p.as_mut(), refs_two_cpus()).unwrap();
        assert_eq!(result.events.total(), result.refs);
    }

    #[test]
    fn finite_cache_mode_adds_capacity_misses() {
        use dirsim_mem::CacheGeometry;
        // One process streaming over many blocks with a tiny cache.
        let p0 = ProcessId::new(0);
        let c0 = CpuId::new(0);
        let refs: Vec<MemRef> = (0..64u64)
            .cycle()
            .take(256)
            .map(|i| MemRef::read(c0, p0, Addr::new(i * 16)))
            .collect();

        let infinite = {
            let mut p = Scheme::Directory(DirSpec::dir0_b()).build(1);
            Simulator::paper()
                .run(p.as_mut(), refs.iter().copied())
                .unwrap()
        };
        assert_eq!(
            infinite.events.read_misses(),
            0,
            "64 cold misses, then hits"
        );
        assert_eq!(infinite.capacity_evictions, 0);

        let finite = {
            let mut p = Scheme::Directory(DirSpec::dir0_b()).build(1);
            let config = SimConfig {
                geometry: Some(CacheGeometry { sets: 4, ways: 2 }),
                check_oracle: true,
                ..SimConfig::default()
            };
            Simulator::new(config)
                .run(p.as_mut(), refs.iter().copied())
                .unwrap()
        };
        assert!(finite.capacity_evictions > 0);
        assert!(
            finite.events.read_misses() > 0,
            "re-fetches after capacity eviction are coherence-visible misses"
        );
    }

    #[test]
    fn finite_cache_mode_writes_back_dirty_victims() {
        use dirsim_mem::CacheGeometry;
        let p0 = ProcessId::new(0);
        let c0 = CpuId::new(0);
        // Write each block once: dirty lines must be flushed on eviction.
        let refs: Vec<MemRef> = (0..32u64)
            .map(|i| MemRef::write(c0, p0, Addr::new(i * 16)))
            .collect();
        let mut p = Scheme::Directory(DirSpec::dir0_b()).build(1);
        let config = SimConfig {
            geometry: Some(CacheGeometry { sets: 2, ways: 2 }),
            check_oracle: true,
            ..SimConfig::default()
        };
        let result = Simulator::new(config).run(p.as_mut(), refs).unwrap();
        assert!(result.ops[dirsim_protocol::BusOp::WriteBack] > 0);
        assert_eq!(
            result.ops[dirsim_protocol::BusOp::WriteBack],
            result.capacity_evictions,
            "every evicted line was dirty here"
        );
    }

    #[test]
    fn sim_error_display() {
        let e = SimError {
            scheme: "Dir0B".into(),
            ref_index: 7,
            violation: OracleViolation::WriterHasNoCopy {
                cache: dirsim_mem::CacheId::new(1),
                block: dirsim_mem::BlockAddr::new(2),
            },
        };
        let msg = e.to_string();
        assert!(msg.contains("Dir0B"));
        assert!(msg.contains("reference 7"));
    }
}
