//! The trace-driven simulation engine (§4 of the paper).
//!
//! [`Simulator::run`] drives an interleaved reference stream through one
//! protocol over a system of infinite caches: instruction fetches are
//! counted but cause no coherence traffic, data references are mapped to
//! 16-byte blocks and attributed to a cache (per-process by default, §4.4),
//! and the protocol's [`RefOutcome`](dirsim_protocol::RefOutcome)s are accumulated into event
//! frequencies, bus-operation counts, and the Figure 1 invalidation
//! histogram.
//!
//! With [`SimConfig::check_oracle`] enabled, every data movement the
//! protocol claims is replayed against the protocol-independent
//! [`ShadowMemory`] oracle, and every load/store is checked to observe the
//! globally latest value — a full coherence-correctness audit of the
//! protocol state machine.

use std::fmt;

use dirsim_cost::{CostBreakdown, CostModel};
use dirsim_mem::{
    BlockAddr, BlockMap, CacheGeometry, CacheId, CacheStorage, FiniteCache, InvalidGeometry,
    OracleViolation, ShadowMemory, SharingModel,
};
use dirsim_protocol::{CoherenceProtocol, EventCounts, EventKind, OpCounts};
use dirsim_trace::{AccessKind, MemRef};

use crate::histogram::FanoutHistogram;
use crate::invariant;
use crate::invariant::InvariantViolation;
use crate::kernel::{self, KernelOverflow, KernelPolicy, LaneKernel};

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Byte-address to block mapping (16-byte blocks by default).
    pub block_map: BlockMap,
    /// Cache attribution: per-process (paper default) or per-processor.
    pub sharing: SharingModel,
    /// Replay data movements against the coherence oracle and fail on any
    /// violation. Costs extra time and memory; used pervasively in tests.
    pub check_oracle: bool,
    /// Finite per-cache geometry. `None` (the paper's model) simulates
    /// infinite caches; `Some` adds LRU capacity replacement, whose
    /// re-fetches and write-backs are the paper's §4 "costs due to the
    /// finite cache size".
    pub geometry: Option<CacheGeometry>,
    /// Audit every reference against the [`crate::invariant`] catalogue
    /// (SWMR, event classification, fan-out, directory agreement) and
    /// panic on the first violation. Defaults to on in debug builds and,
    /// in release builds, under the crate's `invariants` feature.
    pub check_invariants: bool,
    /// Whether lanes may step through memoized transition-table kernels
    /// instead of the match-based protocol machines (see
    /// [`crate::kernel`]). Results are bit-identical either way; audited
    /// runs (oracle or invariants) always take the match path.
    pub kernels: KernelPolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            block_map: BlockMap::paper(),
            sharing: SharingModel::PerProcess,
            check_oracle: false,
            geometry: None,
            check_invariants: cfg!(any(debug_assertions, feature = "invariants")),
            kernels: KernelPolicy::default(),
        }
    }
}

impl SimConfig {
    /// Starts a validating builder with the paper's defaults, mirroring
    /// [`WorkloadConfig::builder`](dirsim_trace::synth::WorkloadConfig::builder).
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            config: SimConfig::default(),
        }
    }

    /// Checks the configuration for combinations that would otherwise fail
    /// mid-run (today: an unusable finite-cache geometry).
    ///
    /// # Errors
    ///
    /// Returns the first [`SimConfigError`] found.
    pub fn validate(&self) -> Result<(), SimConfigError> {
        if let Some(geometry) = self.geometry {
            geometry.validate().map_err(SimConfigError::Geometry)?;
        }
        Ok(())
    }

    /// Whether lanes under this configuration may step through table
    /// kernels: both audits must be off (rows carry no movements or
    /// probes) and the policy must allow it.
    pub(crate) fn kernel_eligible(&self) -> bool {
        !self.check_oracle
            && !self.check_invariants
            && self.kernels.effective() != KernelPolicy::Disabled
    }
}

/// An invalid [`SimConfig`] combination, caught at construction time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimConfigError {
    /// The finite-cache geometry is unusable (zero sets/ways or a
    /// non-power-of-two set count).
    Geometry(InvalidGeometry),
    /// The engine was asked to decode zero references per chunk.
    ZeroChunk,
    /// The engine was asked to run with zero shard workers.
    ZeroWorkers,
}

impl fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimConfigError::Geometry(e) => write!(f, "invalid simulation config: {e}"),
            SimConfigError::ZeroChunk => {
                write!(f, "invalid simulation config: chunk size must be positive")
            }
            SimConfigError::ZeroWorkers => {
                write!(
                    f,
                    "invalid simulation config: worker count must be positive"
                )
            }
        }
    }
}

impl std::error::Error for SimConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimConfigError::Geometry(e) => Some(e),
            SimConfigError::ZeroChunk | SimConfigError::ZeroWorkers => None,
        }
    }
}

/// How the sharded engine partitions a reference stream across workers.
///
/// A shard key maps every block to one worker such that *all* state the
/// engine mutates while stepping a reference stays inside that worker:
/// protocol state (directory entry, sharer set, dirty bit) is per block
/// under every key, and finite-cache LRU state is per set. Infinite
/// caches therefore shard on the raw block address; finite caches shard
/// on the set index — a pure function of the address — so replacement
/// decisions inside a set see exactly the serial access order and the
/// partition stays exact, never approximate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardKey {
    /// Partition by raw block address (`block % workers`): the paper's
    /// infinite-cache model, where no engine state couples distinct
    /// blocks.
    Block,
    /// Partition by cache set index (`(block & set_mask) % workers`):
    /// finite caches, where LRU replacement couples blocks within a set
    /// but never across sets.
    Set {
        /// `sets - 1` — the same power-of-two mask
        /// [`FiniteCache`] derives from the geometry, so the key and the
        /// cache always agree on which set a block lives in.
        set_mask: u64,
    },
}

impl ShardKey {
    /// The key that makes sharded execution exact for `config`: blocks
    /// for infinite caches, sets for finite ones.
    ///
    /// The caller is expected to have validated the configuration (see
    /// [`SimConfig::validate`]); an unvalidated non-power-of-two set
    /// count would yield a mask that disagrees with [`FiniteCache`].
    pub fn for_config(config: &SimConfig) -> ShardKey {
        match config.geometry {
            None => ShardKey::Block,
            Some(geometry) => ShardKey::Set {
                set_mask: u64::from(geometry.sets) - 1,
            },
        }
    }

    /// The worker that owns `block` among `workers` shards.
    #[inline]
    pub fn shard_of(self, block: BlockAddr, workers: usize) -> usize {
        let key = match self {
            ShardKey::Block => block.raw(),
            ShardKey::Set { set_mask } => block.raw() & set_mask,
        };
        (key % workers as u64) as usize
    }
}

/// Builder for [`SimConfig`] whose [`build`](SimConfigBuilder::build)
/// validates the configuration, so bad geometry surfaces as a typed error
/// at construction instead of a panic mid-run.
///
/// ```
/// use dirsim::SimConfig;
/// use dirsim_mem::CacheGeometry;
///
/// let config = SimConfig::builder()
///     .check_oracle(true)
///     .geometry(CacheGeometry { sets: 64, ways: 4 })
///     .build()
///     .unwrap();
/// assert!(config.check_oracle);
///
/// // Non-power-of-two set counts are rejected up front:
/// let err = SimConfig::builder()
///     .geometry(CacheGeometry { sets: 3, ways: 4 })
///     .build()
///     .unwrap_err();
/// assert!(err.to_string().contains("invalid"));
/// ```
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the byte-address to block mapping.
    pub fn block_map(mut self, block_map: BlockMap) -> Self {
        self.config.block_map = block_map;
        self
    }

    /// Sets the cache-attribution model.
    pub fn sharing(mut self, sharing: SharingModel) -> Self {
        self.config.sharing = sharing;
        self
    }

    /// Enables or disables the coherence oracle.
    pub fn check_oracle(mut self, check: bool) -> Self {
        self.config.check_oracle = check;
        self
    }

    /// Simulates finite caches of the given geometry (LRU replacement).
    pub fn geometry(mut self, geometry: CacheGeometry) -> Self {
        self.config.geometry = Some(geometry);
        self
    }

    /// Restores the paper's infinite-cache model.
    pub fn infinite_caches(mut self) -> Self {
        self.config.geometry = None;
        self
    }

    /// Enables or disables the per-reference invariant audit.
    pub fn check_invariants(mut self, check: bool) -> Self {
        self.config.check_invariants = check;
        self
    }

    /// Sets the table-kernel policy (see [`crate::kernel`]).
    pub fn kernels(mut self, policy: KernelPolicy) -> Self {
        self.config.kernels = policy;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`SimConfigError`] for invalid combinations (see
    /// [`SimConfig::validate`]).
    pub fn build(self) -> Result<SimConfig, SimConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Error produced when the oracle catches a protocol misbehaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// Protocol that misbehaved.
    pub scheme: String,
    /// Zero-based index of the reference that exposed the violation.
    pub ref_index: u64,
    /// The violation.
    pub violation: OracleViolation,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "coherence violation in {} at reference {}: {}",
            self.scheme, self.ref_index, self.violation
        )
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.violation)
    }
}

/// Accumulated results of one protocol over one reference stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Protocol name (`Dir0B`, `Dragon`, …).
    pub scheme: String,
    /// Table 4 event counts.
    pub events: EventCounts,
    /// Bus-operation counts for cost models.
    pub ops: OpCounts,
    /// References that caused at least one bus operation.
    pub transactions: u64,
    /// Total references processed (instructions included).
    pub refs: u64,
    /// Figure 1 invalidation fan-out histogram.
    pub fanout: FanoutHistogram,
    /// Distinct blocks touched (= cold misses).
    pub distinct_blocks: u64,
    /// Capacity replacements performed (finite-cache mode only).
    pub capacity_evictions: u64,
}

impl SimResult {
    fn new(scheme: String) -> Self {
        SimResult {
            scheme,
            events: EventCounts::new(),
            ops: OpCounts::new(),
            transactions: 0,
            refs: 0,
            fanout: FanoutHistogram::new(),
            distinct_blocks: 0,
            capacity_evictions: 0,
        }
    }

    /// Prices this run under a cost model.
    ///
    /// # Panics
    ///
    /// Panics if the run processed zero references.
    pub fn breakdown(&self, model: CostModel) -> CostBreakdown {
        CostBreakdown::price(&self.ops, self.refs, self.transactions, model)
    }

    /// Bus cycles per memory reference under a cost model — the paper's
    /// headline metric.
    pub fn cycles_per_ref(&self, model: CostModel) -> f64 {
        self.breakdown(model).cycles_per_ref()
    }

    /// Merges another run (e.g. a different trace) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the schemes differ.
    pub fn merge(&mut self, other: &SimResult) {
        assert_eq!(self.scheme, other.scheme, "cannot merge different schemes");
        self.events.merge(&other.events);
        self.ops.merge(&other.ops);
        self.transactions += other.transactions;
        self.refs += other.refs;
        self.fanout.merge(&other.fanout);
        self.distinct_blocks += other.distinct_blocks;
        self.capacity_evictions += other.capacity_evictions;
    }
}

/// Why one audited reference step failed.
///
/// This is the typed form of the engine's per-reference failure modes,
/// shared by [`Simulator`], the multi-protocol
/// [`BroadcastSimulator`](crate::broadcast::BroadcastSimulator), and the
/// `dirsim-verify` lockstep checkers (via [`audit_step`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepFailure {
    /// A protocol invariant from the [`crate::invariant`] catalogue.
    Invariant {
        /// The violation.
        violation: InvariantViolation,
        /// Whether it fired while auditing a capacity eviction.
        during_eviction: bool,
    },
    /// The shadow-memory oracle rejected a claimed data movement or caught
    /// a stale read.
    Oracle(OracleViolation),
}

/// One protocol's accumulation state over a reference stream: its optional
/// shadow oracle, finite-cache residency, and running [`SimResult`].
///
/// `Lane` is the unit both engines are built from: [`Simulator::run`]
/// drives one lane, the broadcast engine drives one per scheme (and, when
/// sharded, one per scheme per worker).
pub(crate) struct Lane {
    oracle: Option<ShadowMemory>,
    finite: Vec<FiniteCache<()>>,
    result: SimResult,
}

impl Lane {
    pub(crate) fn new(config: &SimConfig, scheme: String) -> Self {
        Lane {
            oracle: config.check_oracle.then(ShadowMemory::new),
            finite: Vec::new(),
            result: SimResult::new(scheme),
        }
    }

    /// Zero-based index of the next reference this lane will process.
    pub(crate) fn next_index(&self) -> u64 {
        self.result.refs
    }

    /// Advances the lane by one reference: the full engine step, including
    /// finite-cache residency, event/op accounting, and (when configured)
    /// the invariant and oracle audits.
    pub(crate) fn step(
        &mut self,
        config: &SimConfig,
        protocol: &mut dyn CoherenceProtocol,
        r: MemRef,
    ) -> Result<(), StepFailure> {
        self.result.refs += 1;
        if r.kind == AccessKind::InstrFetch {
            self.result.events.record(EventKind::Instr);
            return Ok(());
        }
        let block = config.block_map.block_of(r.addr);
        let cache = config.sharing.cache_of(&r);
        let write = r.kind == AccessKind::Write;

        // Finite-cache mode: update residency first so that a capacity
        // victim is evicted from the protocol state *before* the access
        // is classified.
        let mut eviction_used_bus = false;
        if let Some(geometry) = config.geometry {
            while self.finite.len() <= cache.index() {
                self.finite.push(
                    FiniteCache::new(geometry).expect("geometry validated at configuration time"),
                );
            }
            let fc = &mut self.finite[cache.index()];
            if fc.touch(block).is_none() {
                if let Some((victim, ())) = fc.insert(block, ()) {
                    self.result.capacity_evictions += 1;
                    let ev = protocol.evict(cache, victim);
                    for &op in &ev.ops {
                        self.result.ops.record(op, 1);
                    }
                    eviction_used_bus = !ev.ops.is_empty();
                    if config.check_invariants {
                        if let Err(violation) =
                            invariant::check_eviction(protocol, cache, victim, &ev)
                        {
                            return Err(StepFailure::Invariant {
                                violation,
                                during_eviction: true,
                            });
                        }
                    }
                    if let Some(oracle) = self.oracle.as_mut() {
                        invariant::replay_movements(oracle, &ev.movements, victim)
                            .map_err(StepFailure::Oracle)?;
                    }
                }
            }
        }

        step_data_ref(
            config,
            protocol,
            self.oracle.as_mut(),
            &mut self.result,
            cache,
            block,
            write,
            eviction_used_bus,
        )
    }

    /// Advances the lane by one pre-decoded reference through a table
    /// kernel: the same accumulation as [`Lane::step`] with both audits
    /// off, driven by memoized transition rows instead of the protocol
    /// machine. The bank decodes each reference once — block mapping,
    /// cache attribution, block-index interning, and (under a finite
    /// geometry) the shared residency probe and LRU victim choice — and
    /// every lane replays the [`kernel::DecodedRef`], so the per-lane hot
    /// path is pure array indexing with no hashing and no cache probing.
    ///
    /// Row lookups happen *before* any state mutation, so on
    /// [`KernelOverflow`] the lane is exactly as it was before the call
    /// and the reference can be re-stepped on the match path after
    /// materializing the protocol (the bank reconstructs the lane's
    /// finite-cache replica from its chunk-start snapshot).
    pub(crate) fn step_with_kernel(
        &mut self,
        kernel: &mut LaneKernel,
        d: kernel::DecodedRef,
    ) -> Result<(), KernelOverflow> {
        if d.block_idx == kernel::INSTR_REF {
            self.result.refs += 1;
            self.result.events.record(EventKind::Instr);
            return Ok(());
        }
        let data_event = kernel::data_event(d.cache, d.write);

        // Hot path: the bank interned the block to a dense index and
        // resolved residency up front, so the state lookup, the row
        // lookup, and the hit count are all array indexing. Per-row
        // counter effects are not accumulated here: the step is recorded
        // as `hits[idx] += 1` and multiplied out once at drain time (see
        // `LaneKernel::drain_hits`), which is bit-identical because every
        // counter is a commutative sum. The fallible row lookup comes
        // first, so on overflow the lane is exactly as it was before the
        // call.
        let LaneKernel {
            table,
            states,
            tracked: _,
        } = kernel;
        let i = d.block_idx as usize;
        if states.len() <= i {
            states.resize(i + 1, kernel::ABSENT);
        }
        let idx = table.ensure_row(states[i], data_event)?;
        if !d.resident {
            // Residency miss: may need two block slots at once (data +
            // victim), so it takes the cold path. Nothing has been
            // mutated yet; the prepared data row is passed along.
            return self.kernel_step_miss(kernel, d, idx);
        }
        self.result.refs += 1;
        let LaneKernel { table, states, .. } = kernel;
        table.hits[idx] += 1;
        states[i] = table.nexts[idx];
        Ok(())
    }

    /// The finite-geometry residency-miss half of [`Self::step_with_kernel`]:
    /// prepares the (possible) eviction row before any commit (the data
    /// row arrives pre-ensured from the caller), so [`KernelOverflow`]
    /// still leaves the lane pristine. The LRU bookkeeping itself lives in
    /// the bank's shared residency cache (every lane's replica is
    /// bit-identical), so only the accounting happens here — per-step,
    /// because the bus-transaction count folds the data and eviction rows
    /// into one flag, which a per-row hit count cannot express.
    #[cold]
    fn kernel_step_miss(
        &mut self,
        kernel: &mut LaneKernel,
        d: kernel::DecodedRef,
        data_idx: usize,
    ) -> Result<(), KernelOverflow> {
        // Prepare: fallible, mutates only the kernel's table.
        let prepared = if d.victim_idx != kernel::NO_VICTIM {
            let row =
                kernel.ensure_row(kernel.state_of(d.victim_idx), kernel::evict_event(d.cache))?;
            Some((d.victim_idx, row))
        } else {
            None
        };

        // Commit: infallible, mirrors `step` field for field.
        self.result.refs += 1;
        let mut eviction_used_bus = false;
        if let Some((v_idx, idx)) = prepared {
            self.result.capacity_evictions += 1;
            let row = kernel.row(idx);
            self.result.ops.merge(row.ops());
            eviction_used_bus = row.used_bus();
            kernel.commit(v_idx, idx);
        }
        let row = kernel.row(data_idx);
        if let Some(kind) = row.kind() {
            self.result.events.record(kind);
        }
        self.result.ops.merge(row.ops());
        if row.used_bus() || eviction_used_bus {
            self.result.transactions += 1;
        }
        if let Some(fanout) = row.fanout() {
            self.result.fanout.record(fanout);
        }
        kernel.commit(d.block_idx, data_idx);
        Ok(())
    }

    /// Installs a reconstructed finite-cache replica — used when a kernel
    /// lane overflows and must continue on the match path: kernel lanes
    /// never touch their own `finite` (the bank's shared replica carries
    /// the LRU state), so the bank replays the chunk prefix onto its
    /// chunk-start snapshot and hands the result over here.
    pub(crate) fn restore_finite(&mut self, finite: Vec<FiniteCache<()>>) {
        self.finite = finite;
    }

    /// Finalises the lane into its [`SimResult`].
    pub(crate) fn finish(mut self, protocol: &dyn CoherenceProtocol) -> SimResult {
        self.result.distinct_blocks = protocol.tracked_blocks() as u64;
        self.result
    }

    /// Settles the kernel's batched row-hit counts into this lane's
    /// result (events, ops, transactions, fan-out, tracked ledger). Must
    /// run before the result or `kernel.tracked()` are read.
    pub(crate) fn absorb_kernel_hits(&mut self, kernel: &mut LaneKernel) {
        let result = &mut self.result;
        kernel.drain_hits(|row, n| {
            if let Some(kind) = row.kind() {
                result.events.record_n(kind, n);
            }
            if row.has_ops() {
                for (op, count) in row.ops().iter() {
                    if count > 0 {
                        result.ops.record(op, count * n);
                    }
                }
            }
            if row.used_bus() {
                result.transactions += n;
            }
            if let Some(fanout) = row.fanout() {
                result.fanout.record_n(fanout, n);
            }
        });
    }

    /// Finalises a kernel-stepped lane: the distinct-block count comes
    /// from the kernel's tracked-state ledger instead of a machine.
    pub(crate) fn finish_with_kernel(mut self, kernel: &mut LaneKernel) -> SimResult {
        self.absorb_kernel_hits(kernel);
        self.result.distinct_blocks = kernel.tracked();
        self.result
    }
}

/// The audited data-reference body shared by every execution path.
#[allow(clippy::too_many_arguments)]
fn step_data_ref(
    config: &SimConfig,
    protocol: &mut dyn CoherenceProtocol,
    oracle: Option<&mut ShadowMemory>,
    result: &mut SimResult,
    cache: CacheId,
    block: BlockAddr,
    write: bool,
    eviction_used_bus: bool,
) -> Result<(), StepFailure> {
    let pre = config
        .check_invariants
        .then(|| protocol.probe(block))
        .flatten();
    let outcome = protocol.on_data_ref(cache, block, write);
    if config.check_invariants {
        invariant::check_data_ref(protocol, pre.as_ref(), cache, block, write, &outcome).map_err(
            |violation| StepFailure::Invariant {
                violation,
                during_eviction: false,
            },
        )?;
    }
    result.events.record(outcome.kind());
    for &op in &outcome.ops {
        result.ops.record(op, 1);
    }
    if outcome.is_bus_transaction() || eviction_used_bus {
        result.transactions += 1;
    }
    if let Some(fanout) = outcome.clean_write_fanout {
        result.fanout.record(fanout);
    }
    if let Some(oracle) = oracle {
        invariant::replay_movements(oracle, &outcome.movements, block)
            .map_err(StepFailure::Oracle)?;
        // The fundamental check: the referencing cache must now hold the
        // globally latest version of the block.
        oracle
            .check_read(cache, block)
            .map_err(StepFailure::Oracle)?;
    }
    Ok(())
}

/// Applies one data reference to `protocol` with the full invariant and
/// oracle audit — the per-reference primitive the engine and the
/// `dirsim-verify` lockstep/exploration checkers share.
///
/// # Errors
///
/// Returns the first [`StepFailure`] — an invariant violation, an oracle
/// rejection of a claimed data movement, or a stale final read.
pub fn audit_step(
    protocol: &mut dyn CoherenceProtocol,
    oracle: &mut ShadowMemory,
    cache: CacheId,
    block: BlockAddr,
    write: bool,
) -> Result<(), StepFailure> {
    let config = SimConfig {
        check_oracle: true,
        check_invariants: true,
        ..SimConfig::default()
    };
    let mut scratch = SimResult::new(String::new());
    step_data_ref(
        &config,
        protocol,
        Some(oracle),
        &mut scratch,
        cache,
        block,
        write,
        false,
    )
}

/// The trace-driven simulator (see module docs).
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// Creates a simulator with the paper's defaults (16-byte blocks,
    /// per-process sharing, oracle off).
    pub fn paper() -> Self {
        Simulator::default()
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs `protocol` over every reference of `refs`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if oracle checking is enabled and the
    /// protocol commits a coherence violation.
    pub fn run<I>(
        &self,
        protocol: &mut dyn CoherenceProtocol,
        refs: I,
    ) -> Result<SimResult, SimError>
    where
        I: IntoIterator<Item = MemRef>,
    {
        let mut lane = Lane::new(&self.config, protocol.name());
        for r in refs {
            let index = lane.next_index();
            if let Err(failure) = lane.step(&self.config, protocol, r) {
                match failure {
                    StepFailure::Invariant {
                        violation,
                        during_eviction: true,
                    } => panic!(
                        "protocol invariant violated in {} at reference {index} \
                         (eviction): {violation}",
                        protocol.name()
                    ),
                    StepFailure::Invariant {
                        violation,
                        during_eviction: false,
                    } => panic!(
                        "protocol invariant violated in {} at reference {index}: {violation}",
                        protocol.name()
                    ),
                    StepFailure::Oracle(violation) => {
                        return Err(SimError {
                            scheme: protocol.name(),
                            ref_index: index,
                            violation,
                        })
                    }
                }
            }
        }
        Ok(lane.finish(protocol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirsim_protocol::{DirSpec, Scheme};
    use dirsim_trace::{Addr, CpuId, ProcessId};

    fn refs_two_cpus() -> Vec<MemRef> {
        let c0 = CpuId::new(0);
        let c1 = CpuId::new(1);
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        vec![
            MemRef::instr(c0, p0, Addr::new(0x9000)),
            MemRef::read(c0, p0, Addr::new(0x100)),
            MemRef::read(c1, p1, Addr::new(0x100)),
            MemRef::write(c0, p0, Addr::new(0x100)),
            MemRef::read(c1, p1, Addr::new(0x100)),
        ]
    }

    #[test]
    fn counts_instructions_without_protocol_traffic() {
        let mut p = Scheme::Directory(DirSpec::dir0_b()).build(2);
        let result = Simulator::paper().run(p.as_mut(), refs_two_cpus()).unwrap();
        assert_eq!(result.refs, 5);
        assert_eq!(result.events[EventKind::Instr], 1);
    }

    #[test]
    fn classifies_the_standard_sequence() {
        let mut p = Scheme::Directory(DirSpec::dir0_b()).build(2);
        let result = Simulator::paper().run(p.as_mut(), refs_two_cpus()).unwrap();
        assert_eq!(result.events[EventKind::RmFirstRef], 1);
        assert_eq!(result.events[EventKind::RmBlkCln], 1);
        assert_eq!(result.events[EventKind::WhBlkCln], 1);
        assert_eq!(result.events[EventKind::RmBlkDrty], 1);
    }

    #[test]
    fn oracle_passes_for_correct_protocols() {
        let config = SimConfig {
            check_oracle: true,
            ..SimConfig::default()
        };
        for scheme in Scheme::paper_lineup() {
            let mut p = scheme.build(2);
            Simulator::new(config)
                .run(p.as_mut(), refs_two_cpus())
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn transactions_count_bus_using_refs() {
        let mut p = Scheme::Directory(DirSpec::dir0_b()).build(2);
        let result = Simulator::paper().run(p.as_mut(), refs_two_cpus()).unwrap();
        // rm-blk-cln, wh-blk-cln, rm-blk-drty use the bus; instr, cold miss
        // and nothing else do.
        assert_eq!(result.transactions, 3);
    }

    #[test]
    fn fanout_recorded_on_clean_writes() {
        let mut p = Scheme::Directory(DirSpec::dir0_b()).build(2);
        let result = Simulator::paper().run(p.as_mut(), refs_two_cpus()).unwrap();
        assert_eq!(result.fanout.total(), 1);
        assert_eq!(result.fanout.count(1), 1);
    }

    #[test]
    fn per_processor_sharing_uses_cpu_ids() {
        // One process bouncing between two CPUs: per-process sees one
        // cache (all hits), per-processor sees two (coherence traffic).
        let p0 = ProcessId::new(0);
        let refs = vec![
            MemRef::read(CpuId::new(0), p0, Addr::new(0x40)),
            MemRef::read(CpuId::new(1), p0, Addr::new(0x40)),
        ];
        let mut per_process = Scheme::Directory(DirSpec::dir0_b()).build(2);
        let result = Simulator::paper()
            .run(per_process.as_mut(), refs.clone())
            .unwrap();
        assert_eq!(result.events[EventKind::RdHit], 1);

        let mut per_cpu = Scheme::Directory(DirSpec::dir0_b()).build(2);
        let config = SimConfig {
            sharing: SharingModel::PerProcessor,
            ..SimConfig::default()
        };
        let result = Simulator::new(config).run(per_cpu.as_mut(), refs).unwrap();
        assert_eq!(result.events[EventKind::RdHit], 0);
        assert_eq!(result.events[EventKind::RmBlkCln], 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut p = Scheme::Wti.build(2);
        let sim = Simulator::paper();
        let mut a = sim.run(p.as_mut(), refs_two_cpus()).unwrap();
        let mut q = Scheme::Wti.build(2);
        let b = sim.run(q.as_mut(), refs_two_cpus()).unwrap();
        let refs_before = a.refs;
        a.merge(&b);
        assert_eq!(a.refs, refs_before * 2);
        assert_eq!(a.events.total(), a.refs);
    }

    #[test]
    #[should_panic(expected = "different schemes")]
    fn merge_rejects_mixed_schemes() {
        let sim = Simulator::paper();
        let mut p = Scheme::Wti.build(2);
        let mut a = sim.run(p.as_mut(), refs_two_cpus()).unwrap();
        let mut q = Scheme::Dragon.build(2);
        let b = sim.run(q.as_mut(), refs_two_cpus()).unwrap();
        a.merge(&b);
    }

    #[test]
    fn event_counts_partition_references() {
        let mut p = Scheme::Dragon.build(2);
        let result = Simulator::paper().run(p.as_mut(), refs_two_cpus()).unwrap();
        assert_eq!(result.events.total(), result.refs);
    }

    #[test]
    fn finite_cache_mode_adds_capacity_misses() {
        use dirsim_mem::CacheGeometry;
        // One process streaming over many blocks with a tiny cache.
        let p0 = ProcessId::new(0);
        let c0 = CpuId::new(0);
        let refs: Vec<MemRef> = (0..64u64)
            .cycle()
            .take(256)
            .map(|i| MemRef::read(c0, p0, Addr::new(i * 16)))
            .collect();

        let infinite = {
            let mut p = Scheme::Directory(DirSpec::dir0_b()).build(1);
            Simulator::paper()
                .run(p.as_mut(), refs.iter().copied())
                .unwrap()
        };
        assert_eq!(
            infinite.events.read_misses(),
            0,
            "64 cold misses, then hits"
        );
        assert_eq!(infinite.capacity_evictions, 0);

        let finite = {
            let mut p = Scheme::Directory(DirSpec::dir0_b()).build(1);
            let config = SimConfig {
                geometry: Some(CacheGeometry { sets: 4, ways: 2 }),
                check_oracle: true,
                ..SimConfig::default()
            };
            Simulator::new(config)
                .run(p.as_mut(), refs.iter().copied())
                .unwrap()
        };
        assert!(finite.capacity_evictions > 0);
        assert!(
            finite.events.read_misses() > 0,
            "re-fetches after capacity eviction are coherence-visible misses"
        );
    }

    #[test]
    fn finite_cache_mode_writes_back_dirty_victims() {
        use dirsim_mem::CacheGeometry;
        let p0 = ProcessId::new(0);
        let c0 = CpuId::new(0);
        // Write each block once: dirty lines must be flushed on eviction.
        let refs: Vec<MemRef> = (0..32u64)
            .map(|i| MemRef::write(c0, p0, Addr::new(i * 16)))
            .collect();
        let mut p = Scheme::Directory(DirSpec::dir0_b()).build(1);
        let config = SimConfig {
            geometry: Some(CacheGeometry { sets: 2, ways: 2 }),
            check_oracle: true,
            ..SimConfig::default()
        };
        let result = Simulator::new(config).run(p.as_mut(), refs).unwrap();
        assert!(result.ops[dirsim_protocol::BusOp::WriteBack] > 0);
        assert_eq!(
            result.ops[dirsim_protocol::BusOp::WriteBack],
            result.capacity_evictions,
            "every evicted line was dirty here"
        );
    }

    #[test]
    fn shard_key_follows_geometry() {
        use dirsim_mem::CacheGeometry;
        let infinite = SimConfig::default();
        assert_eq!(ShardKey::for_config(&infinite), ShardKey::Block);
        let finite = SimConfig {
            geometry: Some(CacheGeometry { sets: 8, ways: 2 }),
            ..SimConfig::default()
        };
        assert_eq!(ShardKey::for_config(&finite), ShardKey::Set { set_mask: 7 });
    }

    #[test]
    fn set_key_keeps_a_set_on_one_shard() {
        // Blocks 5 and 13 share set 5 of 8; the block key may split them,
        // the set key never does, for any worker count.
        let key = ShardKey::Set { set_mask: 7 };
        for workers in 1..=16 {
            assert_eq!(
                key.shard_of(BlockAddr::new(5), workers),
                key.shard_of(BlockAddr::new(13), workers),
                "workers = {workers}"
            );
        }
        assert_ne!(
            ShardKey::Block.shard_of(BlockAddr::new(5), 3),
            ShardKey::Block.shard_of(BlockAddr::new(13), 3),
        );
    }

    #[test]
    fn single_set_key_maps_everything_to_shard_zero() {
        let key = ShardKey::Set { set_mask: 0 };
        for block in [0u64, 1, 7, 1 << 40] {
            assert_eq!(key.shard_of(BlockAddr::new(block), 6), 0);
        }
    }

    #[test]
    fn sim_error_display() {
        let e = SimError {
            scheme: "Dir0B".into(),
            ref_index: 7,
            violation: OracleViolation::WriterHasNoCopy {
                cache: dirsim_mem::CacheId::new(1),
                block: dirsim_mem::BlockAddr::new(2),
            },
        };
        let msg = e.to_string();
        assert!(msg.contains("Dir0B"));
        assert!(msg.contains("reference 7"));
    }
}
