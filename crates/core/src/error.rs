//! The crate-wide error type.
//!
//! Every failure a simulation can produce — a coherence-oracle violation,
//! a protocol-invariant violation, a trace decode error, an invalid
//! configuration — unifies under one [`Error`] enum with full
//! [`std::error::Error::source`] chaining, so binaries can print a cause
//! chain instead of stringifying each layer ad hoc.

use std::fmt;

use dirsim_trace::TraceIoError;

use crate::engine::{SimConfigError, SimError};
use crate::invariant::InvariantViolation;

/// A protocol-invariant violation attributed to a scheme and reference.
///
/// This is the typed counterpart of the panic [`crate::Simulator::run`]
/// raises: the broadcast engine reports invariant violations as values so
/// multi-scheme runs fail cleanly instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantError {
    /// Protocol whose invariant fired.
    pub scheme: String,
    /// Zero-based index of the reference that exposed the violation
    /// (stream-local: under sharded execution, relative to the shard).
    pub ref_index: u64,
    /// The violation.
    pub violation: InvariantViolation,
}

impl fmt::Display for InvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "protocol invariant violated in {} at reference {}: {}",
            self.scheme, self.ref_index, self.violation
        )
    }
}

impl std::error::Error for InvariantError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.violation)
    }
}

/// Any failure a `dirsim` simulation can produce.
#[derive(Debug)]
pub enum Error {
    /// The coherence oracle caught a protocol misbehaving.
    Sim(SimError),
    /// The per-reference invariant audit caught a protocol misbehaving.
    Invariant(InvariantError),
    /// The reference stream failed to decode.
    TraceIo(TraceIoError),
    /// The simulation configuration is invalid.
    Config(SimConfigError),
    /// The synthetic-workload configuration is invalid.
    Workload(dirsim_trace::synth::ConfigError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Sim(e) => e.fmt(f),
            Error::Invariant(e) => e.fmt(f),
            Error::TraceIo(e) => e.fmt(f),
            Error::Config(e) => e.fmt(f),
            Error::Workload(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Sim(e) => Some(e),
            Error::Invariant(e) => Some(e),
            Error::TraceIo(e) => Some(e),
            Error::Config(e) => Some(e),
            Error::Workload(e) => Some(e),
        }
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Self {
        Error::Sim(e)
    }
}

impl From<InvariantError> for Error {
    fn from(e: InvariantError) -> Self {
        Error::Invariant(e)
    }
}

impl From<TraceIoError> for Error {
    fn from(e: TraceIoError) -> Self {
        Error::TraceIo(e)
    }
}

impl From<SimConfigError> for Error {
    fn from(e: SimConfigError) -> Self {
        Error::Config(e)
    }
}

impl From<dirsim_trace::synth::ConfigError> for Error {
    fn from(e: dirsim_trace::synth::ConfigError) -> Self {
        Error::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirsim_mem::{BlockAddr, CacheId, OracleViolation};
    use std::error::Error as _;

    #[test]
    fn source_chain_reaches_the_violation() {
        let e = Error::Sim(SimError {
            scheme: "Dir0B".into(),
            ref_index: 7,
            violation: OracleViolation::WriterHasNoCopy {
                cache: CacheId::new(1),
                block: BlockAddr::new(2),
            },
        });
        // Error -> SimError -> OracleViolation.
        let sim = e.source().expect("SimError");
        assert!(sim.to_string().contains("reference 7"));
        let violation = sim.source().expect("OracleViolation");
        assert!(violation.to_string().contains("without holding a copy"));
    }

    #[test]
    fn invariant_error_displays_scheme_and_index() {
        let e = InvariantError {
            scheme: "Dragon".into(),
            ref_index: 3,
            violation: InvariantViolation::StateDropped {
                block: BlockAddr::new(1),
            },
        };
        let msg = e.to_string();
        assert!(msg.contains("Dragon"));
        assert!(msg.contains("reference 3"));
        assert!(e.source().is_some());
    }

    #[test]
    fn from_impls_wrap_every_layer() {
        let trace: Error = TraceIoError::TruncatedRecord.into();
        assert!(matches!(trace, Error::TraceIo(_)));
        let config: Error =
            SimConfigError::Geometry(dirsim_mem::InvalidGeometry(dirsim_mem::CacheGeometry {
                sets: 3,
                ways: 0,
            }))
            .into();
        assert!(matches!(config, Error::Config(_)));
        let workload: Error = dirsim_trace::synth::WorkloadConfig::builder()
            .cpus(0)
            .build()
            .unwrap_err()
            .into();
        assert!(matches!(workload, Error::Workload(_)));
    }
}
