//! The single-pass, sharded multi-protocol engine.
//!
//! The paper's methodology (§4) measures protocol-independent event
//! frequencies by replaying the *same* interleaved trace under every
//! scheme. [`BroadcastSimulator`] does that in one pass: a
//! [`TraceSource`] is decoded (or generated) chunk by chunk exactly once,
//! and every chunk is fanned out to one protocol state machine per
//! requested scheme. Memory stays bounded by the chunk size regardless of
//! trace length, and an N-scheme matrix pays for one trace generation
//! instead of N.
//!
//! All execution paths are placements of the one staged pipeline in
//! `crate::pipeline` (`decode → route → step → merge`); this type only
//! holds configuration and picks a placement.
//!
//! ## Sharding
//!
//! With `workers > 1` the reference stream is additionally partitioned
//! under a [`ShardKey`](crate::engine::ShardKey) and each partition is
//! simulated on its own
//! `std::thread` worker. This is *exact*, not approximate: every
//! protocol here keeps its coherence state strictly per block (a
//! directory entry, a sharer set, a dirty bit), so the events, bus
//! operations, and fan-outs produced by references to block `b` depend
//! only on the subsequence of references to `b` — which sharding
//! preserves in order. Under the paper's infinite-cache model the key is
//! the raw block address (`block % workers`). Finite caches add LRU
//! state that couples blocks sharing a set, so they shard on the cache
//! **set index** instead — a block's set is a pure function of its
//! address and replacement never crosses sets, so set-partitioned shards
//! see exactly the serial access order of every set they own. Per-shard
//! counters are then summed, and since every counter is a commutative
//! sum the merged totals are bit-identical to a serial run under either
//! key.
//!
//! ## Overlapped decode
//!
//! [`run_pipelined`](BroadcastSimulator::run_pipelined) additionally
//! moves the decode stage onto a dedicated producer thread, so chunk
//! *N+1* is decoded while chunk *N* is stepped. Chunk buffers are
//! recycled through a bounded two-channel handshake (see
//! `crate::pipeline`), so the overlap allocates nothing in steady state
//! and — because only *work* moves threads, never *order* — results stay
//! bit-identical to the non-overlapped paths.
//!
//! ```
//! use dirsim::broadcast::BroadcastSimulator;
//! use dirsim::SimConfig;
//! use dirsim_protocol::Scheme;
//! use dirsim_trace::source::IterSource;
//! use dirsim_trace::Scenario;
//!
//! # fn main() -> Result<(), dirsim::Error> {
//! let schemes = Scheme::paper_lineup();
//! let pops = Scenario::named("pops").expect("bundled scenario");
//! let source = IterSource::new(pops.workload().take(20_000));
//! let results = BroadcastSimulator::new(SimConfig::default())
//!     .workers(2)
//!     .run(&schemes, 4, source)?;
//! assert_eq!(results.len(), 4);
//! assert!(results.iter().all(|r| r.refs == 20_000));
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use dirsim_obs::{NoopRecorder, Recorder};
use dirsim_protocol::Scheme;
use dirsim_trace::source::TraceSource;
use dirsim_trace::MemRef;

use crate::engine::{SimConfig, SimConfigError, SimResult};
use crate::error::Error;
use crate::pipeline;

/// Default number of references decoded per chunk.
///
/// Large enough that cycling every lane's protocol state once per chunk
/// amortises (each switch re-warms that protocol's per-block tables from
/// cache); small enough that the chunk buffer stays well bounded
/// (32k × 16-byte records = 512 KiB).
pub const DEFAULT_CHUNK: usize = 32_768;

/// Drives one reference stream through many protocols in lockstep (see
/// module docs).
#[derive(Debug, Clone)]
pub struct BroadcastSimulator {
    config: SimConfig,
    chunk: usize,
    workers: usize,
    recorder: Arc<dyn Recorder>,
}

impl Default for BroadcastSimulator {
    fn default() -> Self {
        BroadcastSimulator::new(SimConfig::default())
    }
}

impl BroadcastSimulator {
    /// Creates a single-worker broadcast engine with the given
    /// configuration and the default chunk size.
    pub fn new(config: SimConfig) -> Self {
        BroadcastSimulator {
            config,
            chunk: DEFAULT_CHUNK,
            workers: 1,
            recorder: Arc::new(NoopRecorder),
        }
    }

    /// Creates an engine with the paper's default configuration.
    pub fn paper() -> Self {
        BroadcastSimulator::default()
    }

    /// Sets the number of references decoded per chunk.
    ///
    /// A zero chunk size is rejected with a typed
    /// [`SimConfigError::ZeroChunk`] when the engine runs, consistent
    /// with every other configuration error.
    pub fn chunk_size(mut self, refs: usize) -> Self {
        self.chunk = refs;
        self
    }

    /// Sets the number of shard workers. `1` (the default) runs
    /// single-pass on the calling thread; more shards the stream under
    /// the configuration's [`ShardKey`](crate::engine::ShardKey) — by
    /// block address for infinite caches, by cache set index for finite
    /// ones.
    ///
    /// A zero worker count is rejected with a typed
    /// [`SimConfigError::ZeroWorkers`] when the engine runs.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the metrics [`Recorder`] the engine reports into. The default
    /// is [`NoopRecorder`]: instrumented sites cost one always-false
    /// `enabled()` check and nothing else.
    ///
    /// The engine records:
    ///
    /// * `phase_seconds{phase=decode|route|step|merge}` — histogram of
    ///   per-chunk phase wall-clock (sharded step spans carry a `shard`
    ///   label);
    /// * `engine_refs` — counter of references decoded from the source;
    /// * `scheme_refs/scheme_transactions{scheme}` and
    ///   `scheme_ops{scheme,op}` — per-scheme result totals;
    /// * `shard_refs/shard_ops{shard}` — per-shard totals (sharded runs);
    /// * pipeline-overlap metrics on the
    ///   [`run_pipelined`](Self::run_pipelined) path:
    ///   `decode_stall_seconds`, `step_stall_seconds`,
    ///   `pipeline_queue_depth{stage[,shard]}`, and the
    ///   `pipeline_occupancy` gauge.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// The active engine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Validates everything shared by all run paths. Kept out of the
    /// builders so misconfiguration is a typed error, not a panic.
    fn validate_run(&self, schemes: &[Scheme]) -> Result<(), Error> {
        assert!(!schemes.is_empty(), "broadcast run needs schemes");
        // Sharded finite-cache runs derive the set mask from the
        // geometry, and every finite run builds `FiniteCache`s from it,
        // so an unusable sets/ways combination surfaces here as a typed
        // error instead of a mid-run panic.
        self.config.validate().map_err(Error::Config)?;
        if self.chunk == 0 {
            return Err(Error::Config(SimConfigError::ZeroChunk));
        }
        if self.workers == 0 {
            return Err(Error::Config(SimConfigError::ZeroWorkers));
        }
        Ok(())
    }

    /// Runs every scheme over the stream, returning one [`SimResult`] per
    /// scheme in `schemes` order.
    ///
    /// # Errors
    ///
    /// Returns a typed [`Error`] for trace decode failures, oracle
    /// violations, invariant violations, or an unusable configuration
    /// (finite-cache geometry, zero chunk size, zero workers). Under
    /// sharded execution, `ref_index` in an error is relative to the
    /// failing shard's subsequence, not the global stream.
    ///
    /// # Panics
    ///
    /// Panics if `schemes` is empty.
    pub fn run<S>(
        &self,
        schemes: &[Scheme],
        caches: u32,
        source: S,
    ) -> Result<Vec<SimResult>, Error>
    where
        S: TraceSource,
    {
        self.run_observed(schemes, caches, source, |_| {})
    }

    /// Like [`run`](Self::run), but additionally calls `observe` for every
    /// reference, in stream order, on the calling thread — the hook the
    /// experiment harness uses to accumulate
    /// [`TraceStats`](dirsim_trace::TraceStats) without a second pass.
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if `schemes` is empty.
    pub fn run_observed<S, F>(
        &self,
        schemes: &[Scheme],
        caches: u32,
        mut source: S,
        mut observe: F,
    ) -> Result<Vec<SimResult>, Error>
    where
        S: TraceSource,
        F: FnMut(&MemRef),
    {
        self.validate_run(schemes)?;
        pipeline::run_inline(
            self.config,
            self.chunk,
            self.workers,
            &*self.recorder,
            schemes,
            caches,
            &mut source,
            &mut observe,
        )
    }

    /// Like [`run`](Self::run), but decodes the source on a dedicated
    /// producer thread, overlapped with stepping (double-buffered,
    /// recycled chunk buffers over a bounded channel). Results are
    /// bit-identical to [`run`](Self::run): only the decode *work* moves
    /// to another thread, never the chunk *order*.
    ///
    /// Requires `S: Send` because the source itself moves to the producer
    /// thread.
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if `schemes` is empty.
    pub fn run_pipelined<S>(
        &self,
        schemes: &[Scheme],
        caches: u32,
        source: S,
    ) -> Result<Vec<SimResult>, Error>
    where
        S: TraceSource + Send,
    {
        self.run_observed_pipelined(schemes, caches, source, |_| {})
    }

    /// Like [`run_pipelined`](Self::run_pipelined) with an observer hook.
    /// Even with decode overlapped, `observe` still runs on the calling
    /// thread in stream order.
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if `schemes` is empty.
    pub fn run_observed_pipelined<S, F>(
        &self,
        schemes: &[Scheme],
        caches: u32,
        source: S,
        mut observe: F,
    ) -> Result<Vec<SimResult>, Error>
    where
        S: TraceSource + Send,
        F: FnMut(&MemRef),
    {
        self.validate_run(schemes)?;
        pipeline::run_overlapped(
            self.config,
            self.chunk,
            self.workers,
            &*self.recorder,
            schemes,
            caches,
            source,
            &mut observe,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use dirsim_mem::CacheGeometry;
    use dirsim_trace::source::IterSource;
    use dirsim_trace::Scenario;

    const REFS: usize = 20_000;

    fn trace() -> Vec<MemRef> {
        Scenario::named("pops")
            .unwrap()
            .workload()
            .take(REFS)
            .collect()
    }

    fn serial_baseline(config: SimConfig, schemes: &[Scheme], refs: &[MemRef]) -> Vec<SimResult> {
        schemes
            .iter()
            .map(|&s| {
                let mut p = s.build(4);
                Simulator::new(config)
                    .run(p.as_mut(), refs.iter().copied())
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn single_pass_matches_serial() {
        let refs = trace();
        let schemes = Scheme::paper_lineup();
        let config = SimConfig::default();
        let serial = serial_baseline(config, &schemes, &refs);
        let broadcast = BroadcastSimulator::new(config)
            .run(&schemes, 4, IterSource::new(refs.iter().copied()))
            .unwrap();
        assert_eq!(serial, broadcast);
    }

    #[test]
    fn sharded_matches_serial_with_oracle() {
        let refs = trace();
        let schemes = Scheme::paper_lineup();
        let config = SimConfig {
            check_oracle: true,
            ..SimConfig::default()
        };
        let serial = serial_baseline(config, &schemes, &refs);
        for workers in [2, 3, 7] {
            let sharded = BroadcastSimulator::new(config)
                .workers(workers)
                .chunk_size(512)
                .run(&schemes, 4, IterSource::new(refs.iter().copied()))
                .unwrap();
            assert_eq!(serial, sharded, "workers = {workers}");
        }
    }

    #[test]
    fn sharded_supports_finite_caches() {
        // Regression: this exact configuration used to be rejected with
        // the (now removed) `SimConfigError::ShardedFiniteCache`. Set
        // sharding makes it both legal and exact.
        let config = SimConfig {
            geometry: Some(CacheGeometry { sets: 4, ways: 2 }),
            check_oracle: true,
            ..SimConfig::default()
        };
        let refs = trace();
        let schemes = Scheme::paper_lineup();
        let serial = serial_baseline(config, &schemes, &refs);
        for workers in [2, 3, 8] {
            let sharded = BroadcastSimulator::new(config)
                .workers(workers)
                .chunk_size(512)
                .run(&schemes, 4, IterSource::new(refs.iter().copied()))
                .unwrap();
            assert_eq!(serial, sharded, "workers = {workers}");
        }
        assert!(
            serial[0].capacity_evictions > 0,
            "geometry small enough to evict"
        );
    }

    #[test]
    fn unusable_geometry_is_a_typed_error() {
        // Bypass the builder (which would catch this) to prove the
        // engine validates too, on every execution path.
        let config = SimConfig {
            geometry: Some(CacheGeometry { sets: 3, ways: 2 }),
            ..SimConfig::default()
        };
        for workers in [1, 2] {
            let err = BroadcastSimulator::new(config)
                .workers(workers)
                .run(&[Scheme::Dragon], 4, IterSource::new(trace().into_iter()))
                .unwrap_err();
            assert!(
                matches!(err, Error::Config(SimConfigError::Geometry(_))),
                "workers = {workers}: {err}"
            );
        }
    }

    #[test]
    fn zero_chunk_size_is_a_typed_error() {
        // Regression: `chunk_size(0)` used to panic in the builder; it is
        // now a typed configuration error at run time, on every path.
        let engine = BroadcastSimulator::paper().chunk_size(0);
        let err = engine
            .run(&[Scheme::Wti], 4, IterSource::new(trace().into_iter()))
            .unwrap_err();
        assert!(
            matches!(err, Error::Config(SimConfigError::ZeroChunk)),
            "{err}"
        );
        assert!(err.to_string().contains("chunk"), "{err}");
        let err = engine
            .run_pipelined(&[Scheme::Wti], 4, IterSource::new(trace().into_iter()))
            .unwrap_err();
        assert!(
            matches!(err, Error::Config(SimConfigError::ZeroChunk)),
            "{err}"
        );
    }

    #[test]
    fn zero_workers_is_a_typed_error() {
        let err = BroadcastSimulator::paper()
            .workers(0)
            .run(&[Scheme::Wti], 4, IterSource::new(trace().into_iter()))
            .unwrap_err();
        assert!(
            matches!(err, Error::Config(SimConfigError::ZeroWorkers)),
            "{err}"
        );
    }

    #[test]
    fn single_pass_supports_finite_caches() {
        let config = SimConfig {
            geometry: Some(CacheGeometry { sets: 16, ways: 2 }),
            check_oracle: true,
            ..SimConfig::default()
        };
        let refs = trace();
        let schemes = [Scheme::Dragon, Scheme::Wti];
        let serial = serial_baseline(config, &schemes, &refs);
        let broadcast = BroadcastSimulator::new(config)
            .run(&schemes, 4, IterSource::new(refs.iter().copied()))
            .unwrap();
        assert_eq!(serial, broadcast);
        assert!(broadcast[0].capacity_evictions > 0);
    }

    #[test]
    fn observer_sees_every_reference_in_order() {
        let refs = trace();
        let mut seen = Vec::new();
        BroadcastSimulator::paper()
            .workers(2)
            .run_observed(
                &[Scheme::Wti],
                4,
                IterSource::new(refs.iter().copied()),
                |r| seen.push(*r),
            )
            .unwrap();
        assert_eq!(seen, refs);
    }

    #[test]
    fn trace_errors_surface_as_typed_errors() {
        let encoded = b"NOPE0000".to_vec();
        let err = BroadcastSimulator::paper()
            .run(
                &[Scheme::Wti],
                2,
                dirsim_trace::io::read_binary(&encoded[..]),
            )
            .unwrap_err();
        assert!(matches!(err, Error::TraceIo(_)));
        // The chain bottoms out at the decode error.
        use std::error::Error as _;
        assert!(err.source().unwrap().to_string().contains("magic"));
    }

    #[test]
    fn more_workers_than_blocks_is_fine() {
        // Two blocks, eight workers: six shards stay empty.
        let refs: Vec<MemRef> = trace()
            .into_iter()
            .map(|mut r| {
                r.addr = dirsim_trace::Addr::new(r.addr.raw() % 32);
                r
            })
            .collect();
        let schemes = [Scheme::Directory(dirsim_protocol::DirSpec::dir0_b())];
        let serial = serial_baseline(SimConfig::default(), &schemes, &refs);
        let sharded = BroadcastSimulator::paper()
            .workers(8)
            .run(&schemes, 4, IterSource::new(refs.iter().copied()))
            .unwrap();
        assert_eq!(serial, sharded);
    }

    #[test]
    #[should_panic(expected = "needs schemes")]
    fn empty_schemes_panics() {
        let _ = BroadcastSimulator::paper().run(&[], 4, IterSource::new(std::iter::empty()));
    }

    #[test]
    fn instrumented_run_records_phases_and_totals() {
        use dirsim_obs::MetricsRegistry;

        let refs = trace();
        let registry = Arc::new(MetricsRegistry::new());
        let results = BroadcastSimulator::paper()
            .recorder(registry.clone())
            .run(
                &[Scheme::Wti, Scheme::Dragon],
                4,
                IterSource::new(refs.iter().copied()),
            )
            .unwrap();
        assert_eq!(
            registry.counter_value("engine_refs", &[]),
            Some(REFS as u64)
        );
        for r in &results {
            assert_eq!(
                registry.counter_value("scheme_refs", &[("scheme", &r.scheme)]),
                Some(r.refs)
            );
            assert_eq!(
                registry.counter_value("scheme_transactions", &[("scheme", &r.scheme)]),
                Some(r.transactions)
            );
        }
        for phase in ["decode", "step"] {
            let h = registry
                .histogram_summary("phase_seconds", &[("phase", phase)])
                .unwrap_or_else(|| panic!("missing {phase} phase timings"));
            assert!(h.count > 0 && h.sum >= 0.0);
        }
    }

    #[test]
    fn sharded_shard_counters_sum_to_total() {
        use dirsim_obs::MetricsRegistry;

        let refs = trace();
        let workers = 3;
        let registry = Arc::new(MetricsRegistry::new());
        let results = BroadcastSimulator::paper()
            .workers(workers)
            .recorder(registry.clone())
            .run(&[Scheme::Wti], 4, IterSource::new(refs.iter().copied()))
            .unwrap();
        let shard_refs: u64 = (0..workers)
            .map(|s| {
                registry
                    .counter_value("shard_refs", &[("shard", &s.to_string())])
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(shard_refs, REFS as u64);
        let shard_ops: u64 = (0..workers)
            .map(|s| {
                registry
                    .counter_value("shard_ops", &[("shard", &s.to_string())])
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(shard_ops, results[0].ops.total());
        let merge = registry
            .histogram_summary("phase_seconds", &[("phase", "merge")])
            .expect("missing merge phase timing");
        assert_eq!(merge.count, 1);
    }
}
