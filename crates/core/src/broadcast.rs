//! The single-pass, sharded multi-protocol engine.
//!
//! The paper's methodology (§4) measures protocol-independent event
//! frequencies by replaying the *same* interleaved trace under every
//! scheme. [`BroadcastSimulator`] does that in one pass: a
//! [`TraceSource`] is decoded (or generated) chunk by chunk exactly once,
//! and every chunk is fanned out to one protocol state machine per
//! requested scheme. Memory stays bounded by the chunk size regardless of
//! trace length, and an N-scheme matrix pays for one trace generation
//! instead of N.
//!
//! ## Sharding
//!
//! With `workers > 1` the reference stream is additionally partitioned
//! under a [`ShardKey`] and each partition is simulated on its own
//! `std::thread` worker. This is *exact*, not approximate: every
//! protocol here keeps its coherence state strictly per block (a
//! directory entry, a sharer set, a dirty bit), so the events, bus
//! operations, and fan-outs produced by references to block `b` depend
//! only on the subsequence of references to `b` — which sharding
//! preserves in order. Under the paper's infinite-cache model the key is
//! the raw block address (`block % workers`). Finite caches add LRU
//! state that couples blocks sharing a set, so they shard on the cache
//! **set index** instead — a block's set is a pure function of its
//! address and replacement never crosses sets, so set-partitioned shards
//! see exactly the serial access order of every set they own. Per-shard
//! counters are then summed, and since every counter is a commutative
//! sum the merged totals are bit-identical to a serial run under either
//! key.
//!
//! ```
//! use dirsim::broadcast::BroadcastSimulator;
//! use dirsim::SimConfig;
//! use dirsim_protocol::Scheme;
//! use dirsim_trace::source::IterSource;
//! use dirsim_trace::synth::PaperTrace;
//!
//! # fn main() -> Result<(), dirsim::Error> {
//! let schemes = Scheme::paper_lineup();
//! let source = IterSource::new(PaperTrace::Pops.workload().take(20_000));
//! let results = BroadcastSimulator::new(SimConfig::default())
//!     .workers(2)
//!     .run(&schemes, 4, source)?;
//! assert_eq!(results.len(), 4);
//! assert!(results.iter().all(|r| r.refs == 20_000));
//! # Ok(())
//! # }
//! ```

use std::sync::{mpsc, Arc};

use dirsim_obs::{NoopRecorder, Recorder, Span};
use dirsim_protocol::{CoherenceProtocol, Scheme};
use dirsim_trace::source::TraceSource;
use dirsim_trace::MemRef;

use crate::engine::{Lane, ShardKey, SimConfig, SimError, SimResult, StepFailure};
use crate::error::{Error, InvariantError};

/// Default number of references decoded per chunk.
///
/// Large enough that cycling every lane's protocol state once per chunk
/// amortises (each switch re-warms that protocol's per-block tables from
/// cache); small enough that the chunk buffer stays well bounded
/// (32k × 16-byte records = 512 KiB).
pub const DEFAULT_CHUNK: usize = 32_768;

/// Capacity (in batches) of each shard's bounded channel.
const SHARD_CHANNEL_DEPTH: usize = 4;

/// One protocol instance plus its accumulation lane.
struct SchemeLane {
    protocol: Box<dyn CoherenceProtocol>,
    lane: Lane,
}

impl SchemeLane {
    fn new(config: &SimConfig, scheme: Scheme, caches: u32) -> Self {
        let protocol = scheme.build(caches);
        let lane = Lane::new(config, protocol.name());
        SchemeLane { protocol, lane }
    }

    #[inline]
    fn step(&mut self, config: &SimConfig, r: MemRef) -> Result<(), Error> {
        let index = self.lane.next_index();
        match self.lane.step(config, self.protocol.as_mut(), r) {
            Ok(()) => Ok(()),
            Err(failure) => Err(step_error(self.protocol.name(), index, failure)),
        }
    }

    fn finish(self) -> SimResult {
        self.lane.finish(self.protocol.as_ref())
    }
}

#[cold]
fn step_error(scheme: String, ref_index: u64, failure: StepFailure) -> Error {
    match failure {
        StepFailure::Invariant { violation, .. } => Error::Invariant(InvariantError {
            scheme,
            ref_index,
            violation,
        }),
        StepFailure::Oracle(violation) => Error::Sim(SimError {
            scheme,
            ref_index,
            violation,
        }),
    }
}

/// Drives one reference stream through many protocols in lockstep (see
/// module docs).
#[derive(Debug, Clone)]
pub struct BroadcastSimulator {
    config: SimConfig,
    chunk: usize,
    workers: usize,
    recorder: Arc<dyn Recorder>,
}

impl Default for BroadcastSimulator {
    fn default() -> Self {
        BroadcastSimulator::new(SimConfig::default())
    }
}

impl BroadcastSimulator {
    /// Creates a single-worker broadcast engine with the given
    /// configuration and the default chunk size.
    pub fn new(config: SimConfig) -> Self {
        BroadcastSimulator {
            config,
            chunk: DEFAULT_CHUNK,
            workers: 1,
            recorder: Arc::new(NoopRecorder),
        }
    }

    /// Creates an engine with the paper's default configuration.
    pub fn paper() -> Self {
        BroadcastSimulator::default()
    }

    /// Sets the number of references decoded per chunk.
    ///
    /// # Panics
    ///
    /// Panics if `refs == 0`.
    pub fn chunk_size(mut self, refs: usize) -> Self {
        assert!(refs > 0, "chunk size must be positive");
        self.chunk = refs;
        self
    }

    /// Sets the number of shard workers. `1` (the default) runs
    /// single-pass on the calling thread; more shards the stream under
    /// the configuration's [`ShardKey`] — by block address for infinite
    /// caches, by cache set index for finite ones.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        self.workers = workers;
        self
    }

    /// Sets the metrics [`Recorder`] the engine reports into. The default
    /// is [`NoopRecorder`]: instrumented sites cost one always-false
    /// `enabled()` check and nothing else.
    ///
    /// The engine records:
    ///
    /// * `phase_seconds{phase=decode|step|merge}` — histogram of per-chunk
    ///   phase wall-clock (sharded step spans carry a `shard` label);
    /// * `engine_refs` — counter of references decoded from the source;
    /// * `scheme_refs/scheme_transactions{scheme}` and
    ///   `scheme_ops{scheme,op}` — per-scheme result totals;
    /// * `shard_refs/shard_ops{shard}` — per-shard totals (sharded runs).
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// The active engine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs every scheme over the stream, returning one [`SimResult`] per
    /// scheme in `schemes` order.
    ///
    /// # Errors
    ///
    /// Returns a typed [`Error`] for trace decode failures, oracle
    /// violations, invariant violations, or an unusable finite-cache
    /// geometry. Under sharded execution, `ref_index` in an error is
    /// relative to the failing shard's subsequence, not the global
    /// stream.
    ///
    /// # Panics
    ///
    /// Panics if `schemes` is empty.
    pub fn run<S>(
        &self,
        schemes: &[Scheme],
        caches: u32,
        source: S,
    ) -> Result<Vec<SimResult>, Error>
    where
        S: TraceSource,
    {
        self.run_observed(schemes, caches, source, |_| {})
    }

    /// Like [`run`](Self::run), but additionally calls `observe` for every
    /// reference, in stream order, on the calling thread — the hook the
    /// experiment harness uses to accumulate
    /// [`TraceStats`](dirsim_trace::TraceStats) without a second pass.
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if `schemes` is empty.
    pub fn run_observed<S, F>(
        &self,
        schemes: &[Scheme],
        caches: u32,
        mut source: S,
        mut observe: F,
    ) -> Result<Vec<SimResult>, Error>
    where
        S: TraceSource,
        F: FnMut(&MemRef),
    {
        assert!(!schemes.is_empty(), "broadcast run needs schemes");
        // Sharded finite-cache runs derive the set mask from the
        // geometry, and every finite run builds `FiniteCache`s from it,
        // so an unusable sets/ways combination surfaces here as a typed
        // error instead of a mid-run panic.
        self.config.validate().map_err(Error::Config)?;
        if self.workers <= 1 {
            self.run_single(schemes, caches, &mut source, &mut observe)
        } else {
            self.run_sharded(schemes, caches, &mut source, &mut observe)
        }
    }

    fn run_single(
        &self,
        schemes: &[Scheme],
        caches: u32,
        source: &mut dyn TraceSource,
        observe: &mut dyn FnMut(&MemRef),
    ) -> Result<Vec<SimResult>, Error> {
        let rec = &*self.recorder;
        let mut lanes: Vec<SchemeLane> = schemes
            .iter()
            .map(|&s| SchemeLane::new(&self.config, s, caches))
            .collect();
        let mut buf = Vec::with_capacity(self.chunk);
        loop {
            let decode = Span::with_labels(rec, "phase_seconds", &[("phase", "decode")]);
            let n = source.read_chunk(&mut buf, self.chunk)?;
            drop(decode);
            if n == 0 {
                break;
            }
            rec.counter("engine_refs", &[], n as u64);
            for r in &buf {
                observe(r);
            }
            let _step = Span::with_labels(rec, "phase_seconds", &[("phase", "step")]);
            for lane in lanes.iter_mut() {
                for &r in &buf {
                    lane.step(&self.config, r)?;
                }
            }
        }
        let results: Vec<SimResult> = lanes.into_iter().map(SchemeLane::finish).collect();
        record_scheme_totals(rec, &results);
        Ok(results)
    }

    fn run_sharded(
        &self,
        schemes: &[Scheme],
        caches: u32,
        source: &mut dyn TraceSource,
        observe: &mut dyn FnMut(&MemRef),
    ) -> Result<Vec<SimResult>, Error> {
        let workers = self.workers;
        let config = self.config;
        let chunk = self.chunk;
        let shard_key = ShardKey::for_config(&config);
        let rec = &*self.recorder;

        let per_worker: Result<Vec<Vec<SimResult>>, Error> = std::thread::scope(|scope| {
            let mut txs = Vec::with_capacity(workers);
            let mut handles = Vec::with_capacity(workers);
            for shard in 0..workers {
                let (tx, rx) = mpsc::sync_channel::<Vec<MemRef>>(SHARD_CHANNEL_DEPTH);
                txs.push(tx);
                handles.push(scope.spawn(move || -> Result<Vec<SimResult>, Error> {
                    let shard_label = shard.to_string();
                    let mut lanes: Vec<SchemeLane> = schemes
                        .iter()
                        .map(|&s| SchemeLane::new(&config, s, caches))
                        .collect();
                    for batch in rx {
                        let _step = Span::with_labels(
                            rec,
                            "phase_seconds",
                            &[("phase", "step"), ("shard", &shard_label)],
                        );
                        for lane in lanes.iter_mut() {
                            for &r in &batch {
                                lane.step(&config, r)?;
                            }
                        }
                    }
                    Ok(lanes.into_iter().map(SchemeLane::finish).collect())
                }));
            }

            // The main thread decodes each chunk exactly once and routes
            // every reference to its shard under the configuration's
            // shard key (block address for infinite caches, set index
            // for finite ones). Routing by key (not by hash) keeps the
            // assignment deterministic, so per-shard subsequences — and
            // therefore merged counters — are reproducible run to run.
            let mut buf = Vec::with_capacity(chunk);
            let mut staging: Vec<Vec<MemRef>> =
                (0..workers).map(|_| Vec::with_capacity(chunk)).collect();
            let mut source_err: Option<Error> = None;
            loop {
                let decode = Span::with_labels(rec, "phase_seconds", &[("phase", "decode")]);
                let read = source.read_chunk(&mut buf, chunk);
                drop(decode);
                match read {
                    Ok(0) => break,
                    Ok(_) => {}
                    Err(e) => {
                        source_err = Some(Error::TraceIo(e));
                        break;
                    }
                }
                rec.counter("engine_refs", &[], buf.len() as u64);
                for r in &buf {
                    observe(r);
                    let block = config.block_map.block_of(r.addr);
                    let shard = shard_key.shard_of(block, workers);
                    staging[shard].push(*r);
                }
                for (shard, pending) in staging.iter_mut().enumerate() {
                    if pending.len() >= chunk {
                        let batch = std::mem::replace(pending, Vec::with_capacity(chunk));
                        // A closed channel means the worker already failed;
                        // its error surfaces at join.
                        let _ = txs[shard].send(batch);
                    }
                }
            }
            for (pending, tx) in staging.into_iter().zip(&txs) {
                if !pending.is_empty() {
                    let _ = tx.send(pending);
                }
            }
            drop(txs);

            let mut results = Vec::with_capacity(workers);
            let mut worker_err: Option<Error> = None;
            for handle in handles {
                match handle.join().expect("shard worker panicked") {
                    Ok(shard_results) => results.push(shard_results),
                    Err(e) => {
                        if worker_err.is_none() {
                            worker_err = Some(e);
                        }
                    }
                }
            }
            if let Some(e) = source_err {
                return Err(e);
            }
            if let Some(e) = worker_err {
                return Err(e);
            }
            Ok(results)
        });

        let per_worker = per_worker?;
        if rec.enabled() {
            for (shard, shard_results) in per_worker.iter().enumerate() {
                let shard_label = shard.to_string();
                let labels = [("shard", shard_label.as_str())];
                // All lanes in one shard see the same subsequence, so any
                // lane's `refs` is the shard's reference count.
                rec.counter("shard_refs", &labels, shard_results[0].refs);
                let ops: u64 = shard_results.iter().map(|r| r.ops.total()).sum();
                rec.counter("shard_ops", &labels, ops);
            }
        }

        // Merge shard results per scheme. Every SimResult field is a
        // commutative sum (or a histogram of sums), so the totals equal a
        // serial run's bit for bit.
        let merge = Span::with_labels(rec, "phase_seconds", &[("phase", "merge")]);
        let mut shards = per_worker.into_iter();
        let mut merged = shards.next().expect("at least one worker");
        for shard_results in shards {
            for (acc, r) in merged.iter_mut().zip(shard_results.iter()) {
                acc.merge(r);
            }
        }
        drop(merge);
        record_scheme_totals(rec, &merged);
        Ok(merged)
    }
}

/// Record per-scheme result totals into `recorder`: `scheme_refs`,
/// `scheme_transactions`, and a `scheme_ops` counter per non-zero bus
/// operation. Shared by every execution mode so the exported totals do not
/// depend on how the run was parallelised.
pub(crate) fn record_scheme_totals(recorder: &dyn Recorder, results: &[SimResult]) {
    if !recorder.enabled() {
        return;
    }
    for r in results {
        let labels = [("scheme", r.scheme.as_str())];
        recorder.counter("scheme_refs", &labels, r.refs);
        recorder.counter("scheme_transactions", &labels, r.transactions);
        for (op, count) in r.ops.iter() {
            if count > 0 {
                recorder.counter(
                    "scheme_ops",
                    &[("op", op.name()), ("scheme", r.scheme.as_str())],
                    count,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use dirsim_mem::CacheGeometry;
    use dirsim_trace::source::IterSource;
    use dirsim_trace::synth::PaperTrace;

    const REFS: usize = 20_000;

    fn trace() -> Vec<MemRef> {
        PaperTrace::Pops.workload().take(REFS).collect()
    }

    fn serial_baseline(config: SimConfig, schemes: &[Scheme], refs: &[MemRef]) -> Vec<SimResult> {
        schemes
            .iter()
            .map(|&s| {
                let mut p = s.build(4);
                Simulator::new(config)
                    .run(p.as_mut(), refs.iter().copied())
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn single_pass_matches_serial() {
        let refs = trace();
        let schemes = Scheme::paper_lineup();
        let config = SimConfig::default();
        let serial = serial_baseline(config, &schemes, &refs);
        let broadcast = BroadcastSimulator::new(config)
            .run(&schemes, 4, IterSource::new(refs.iter().copied()))
            .unwrap();
        assert_eq!(serial, broadcast);
    }

    #[test]
    fn sharded_matches_serial_with_oracle() {
        let refs = trace();
        let schemes = Scheme::paper_lineup();
        let config = SimConfig {
            check_oracle: true,
            ..SimConfig::default()
        };
        let serial = serial_baseline(config, &schemes, &refs);
        for workers in [2, 3, 7] {
            let sharded = BroadcastSimulator::new(config)
                .workers(workers)
                .chunk_size(512)
                .run(&schemes, 4, IterSource::new(refs.iter().copied()))
                .unwrap();
            assert_eq!(serial, sharded, "workers = {workers}");
        }
    }

    #[test]
    fn sharded_supports_finite_caches() {
        // Regression: this exact configuration used to be rejected with
        // the (now removed) `SimConfigError::ShardedFiniteCache`. Set
        // sharding makes it both legal and exact.
        let config = SimConfig {
            geometry: Some(CacheGeometry { sets: 4, ways: 2 }),
            check_oracle: true,
            ..SimConfig::default()
        };
        let refs = trace();
        let schemes = Scheme::paper_lineup();
        let serial = serial_baseline(config, &schemes, &refs);
        for workers in [2, 3, 8] {
            let sharded = BroadcastSimulator::new(config)
                .workers(workers)
                .chunk_size(512)
                .run(&schemes, 4, IterSource::new(refs.iter().copied()))
                .unwrap();
            assert_eq!(serial, sharded, "workers = {workers}");
        }
        assert!(
            serial[0].capacity_evictions > 0,
            "geometry small enough to evict"
        );
    }

    #[test]
    fn unusable_geometry_is_a_typed_error() {
        use crate::engine::SimConfigError;
        // Bypass the builder (which would catch this) to prove the
        // engine validates too, on every execution path.
        let config = SimConfig {
            geometry: Some(CacheGeometry { sets: 3, ways: 2 }),
            ..SimConfig::default()
        };
        for workers in [1, 2] {
            let err = BroadcastSimulator::new(config)
                .workers(workers)
                .run(&[Scheme::Dragon], 4, IterSource::new(trace().into_iter()))
                .unwrap_err();
            assert!(
                matches!(err, Error::Config(SimConfigError::Geometry(_))),
                "workers = {workers}: {err}"
            );
        }
    }

    #[test]
    fn single_pass_supports_finite_caches() {
        let config = SimConfig {
            geometry: Some(CacheGeometry { sets: 16, ways: 2 }),
            check_oracle: true,
            ..SimConfig::default()
        };
        let refs = trace();
        let schemes = [Scheme::Dragon, Scheme::Wti];
        let serial = serial_baseline(config, &schemes, &refs);
        let broadcast = BroadcastSimulator::new(config)
            .run(&schemes, 4, IterSource::new(refs.iter().copied()))
            .unwrap();
        assert_eq!(serial, broadcast);
        assert!(broadcast[0].capacity_evictions > 0);
    }

    #[test]
    fn observer_sees_every_reference_in_order() {
        let refs = trace();
        let mut seen = Vec::new();
        BroadcastSimulator::paper()
            .workers(2)
            .run_observed(
                &[Scheme::Wti],
                4,
                IterSource::new(refs.iter().copied()),
                |r| seen.push(*r),
            )
            .unwrap();
        assert_eq!(seen, refs);
    }

    #[test]
    fn trace_errors_surface_as_typed_errors() {
        let encoded = b"NOPE0000".to_vec();
        let err = BroadcastSimulator::paper()
            .run(
                &[Scheme::Wti],
                2,
                dirsim_trace::io::read_binary(&encoded[..]),
            )
            .unwrap_err();
        assert!(matches!(err, Error::TraceIo(_)));
        // The chain bottoms out at the decode error.
        use std::error::Error as _;
        assert!(err.source().unwrap().to_string().contains("magic"));
    }

    #[test]
    fn more_workers_than_blocks_is_fine() {
        // Two blocks, eight workers: six shards stay empty.
        let refs: Vec<MemRef> = trace()
            .into_iter()
            .map(|mut r| {
                r.addr = dirsim_trace::Addr::new(r.addr.raw() % 32);
                r
            })
            .collect();
        let schemes = [Scheme::Directory(dirsim_protocol::DirSpec::dir0_b())];
        let serial = serial_baseline(SimConfig::default(), &schemes, &refs);
        let sharded = BroadcastSimulator::paper()
            .workers(8)
            .run(&schemes, 4, IterSource::new(refs.iter().copied()))
            .unwrap();
        assert_eq!(serial, sharded);
    }

    #[test]
    #[should_panic(expected = "needs schemes")]
    fn empty_schemes_panics() {
        let _ = BroadcastSimulator::paper().run(&[], 4, IterSource::new(std::iter::empty()));
    }

    #[test]
    fn instrumented_run_records_phases_and_totals() {
        use dirsim_obs::MetricsRegistry;

        let refs = trace();
        let registry = Arc::new(MetricsRegistry::new());
        let results = BroadcastSimulator::paper()
            .recorder(registry.clone())
            .run(
                &[Scheme::Wti, Scheme::Dragon],
                4,
                IterSource::new(refs.iter().copied()),
            )
            .unwrap();
        assert_eq!(
            registry.counter_value("engine_refs", &[]),
            Some(REFS as u64)
        );
        for r in &results {
            assert_eq!(
                registry.counter_value("scheme_refs", &[("scheme", &r.scheme)]),
                Some(r.refs)
            );
            assert_eq!(
                registry.counter_value("scheme_transactions", &[("scheme", &r.scheme)]),
                Some(r.transactions)
            );
        }
        for phase in ["decode", "step"] {
            let h = registry
                .histogram_summary("phase_seconds", &[("phase", phase)])
                .unwrap_or_else(|| panic!("missing {phase} phase timings"));
            assert!(h.count > 0 && h.sum >= 0.0);
        }
    }

    #[test]
    fn sharded_shard_counters_sum_to_total() {
        use dirsim_obs::MetricsRegistry;

        let refs = trace();
        let workers = 3;
        let registry = Arc::new(MetricsRegistry::new());
        let results = BroadcastSimulator::paper()
            .workers(workers)
            .recorder(registry.clone())
            .run(&[Scheme::Wti], 4, IterSource::new(refs.iter().copied()))
            .unwrap();
        let shard_refs: u64 = (0..workers)
            .map(|s| {
                registry
                    .counter_value("shard_refs", &[("shard", &s.to_string())])
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(shard_refs, REFS as u64);
        let shard_ops: u64 = (0..workers)
            .map(|s| {
                registry
                    .counter_value("shard_ops", &[("shard", &s.to_string())])
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(shard_ops, results[0].ops.total());
        let merge = registry
            .histogram_summary("phase_seconds", &[("phase", "merge")])
            .expect("missing merge phase timing");
        assert_eq!(merge.count, 1);
    }
}
