//! The staged execution pipeline shared by every execution mode.
//!
//! Every way of running the engine is the same four stages:
//!
//! ```text
//!   decode ──► route ──► step ──► merge
//!   (trace     (shard     (one lane   (commutative
//!    source)    key)       per scheme) counter sums)
//! ```
//!
//! This module implements the stages exactly once; the public
//! [`BroadcastSimulator`](crate::broadcast::BroadcastSimulator) and the
//! [`Experiment`](crate::experiment::Experiment) harness only choose how
//! the stages are *placed*:
//!
//! * **inline** (`run_inline`) — decode happens on the calling thread,
//!   between chunks. With one worker the route stage is the identity and
//!   stepping happens in-thread; with several, references are routed by
//!   [`ShardKey`] into per-shard bounded queues. Sources exposing a
//!   borrowed-chunk view (`TraceSource::borrowed`, e.g. mmap-backed
//!   corpus files) lend their decode buffer straight to the step side,
//!   skipping the owned-buffer copy entirely.
//! * **overlapped** (`run_overlapped`) — a dedicated producer thread
//!   decodes chunk *N+1* from the [`TraceSource`] while the step side is
//!   still working on chunk *N*.
//!
//! ## Chunk leases
//!
//! The decode → step boundary is a lending one: each `ChunkFeed::next`
//! call returns a borrowed slice that stays valid until the next call.
//! The step side never owns chunk storage, so where buffers live is
//! each feed's private business — a single inline spare, the mmap
//! source's reusable decode buffer, or the overlapped recycle pool.
//!
//! ## Buffer recycling
//!
//! The overlapped feed is a two-channel handshake built on
//! [`TraceSource::read_chunk_owned`]: filled chunk buffers travel
//! producer → consumer over a bounded data channel of depth
//! [`PIPELINE_DEPTH`], and emptied buffers travel back over a recycle
//! channel. Exactly `PIPELINE_DEPTH + 2` buffers exist for the lifetime of
//! a run (the data queue, plus one in each side's hands), so the steady
//! state allocates nothing and memory stays bounded no matter how long
//! the trace is. The recycle channel's capacity equals the total buffer
//! count, so returning a buffer never blocks the step side.
//!
//! ## Why overlap cannot perturb results
//!
//! The producer moves *work*, never *order*: chunk boundaries carry no
//! simulation state (every lane's protocol state persists across chunks),
//! the consumer receives chunks in exactly the order they were decoded
//! (one bounded FIFO), and the observer hook still runs on the consumer
//! thread in stream order. The step and merge stages are byte-for-byte
//! the ones the inline path uses, so results are bit-identical across
//! all placements — `tests/equivalence.rs` pins this for every scheme.
//!
//! ## Pipeline metrics
//!
//! On top of the `phase_seconds{phase=decode|route|step|merge}` spans the
//! overlapped feed records how well the overlap is doing:
//!
//! * `decode_stall_seconds` — histogram of time the step side waited for
//!   a decoded chunk (per chunk);
//! * `step_stall_seconds` — histogram of time the producer waited for the
//!   step side (for a free buffer, or for space in the data queue);
//! * `pipeline_queue_depth{stage=decode}` and
//!   `pipeline_queue_depth{shard, stage=step}` — decoded chunks in flight
//!   at each dequeue, and per-shard batches in flight at each worker
//!   dequeue;
//! * `pipeline_occupancy` — gauge in `[0, 1]`: the fraction of the run
//!   the step side spent stepping rather than stalled on decode.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use dirsim_mem::{BlockAddr, CacheStorage, FiniteCache, FxHashMap};
use dirsim_obs::{Recorder, Span};
use dirsim_protocol::{CoherenceProtocol, Scheme};
use dirsim_trace::source::{BorrowedChunkSource, TraceSource};
use dirsim_trace::{AccessKind, MemRef, TraceIoError};

use crate::engine::{Lane, ShardKey, SimConfig, SimError, SimResult, StepFailure};
use crate::error::{Error, InvariantError};
use crate::kernel::{DecodedRef, KernelPolicy, LaneKernel, NO_VICTIM};

/// Depth (in chunks) of the overlapped decode queue. Two is enough for
/// full overlap — one chunk being stepped, one decoded ahead — without
/// letting a fast producer run away with memory.
pub(crate) const PIPELINE_DEPTH: usize = 2;

/// Capacity (in batches) of each shard's bounded channel.
const SHARD_CHANNEL_DEPTH: usize = 4;

/// The step stage's lane state, struct-of-arrays: one entry per scheme in
/// each parallel vector, so the inner loop walks contiguous accumulation
/// state instead of chasing one boxed bundle per scheme.
///
/// `kernels[i]` is `Some` when lane `i` steps through a memoized
/// transition table (see [`crate::kernel`]); its protocol instance then
/// stays untouched until the kernel either finishes (the instance is
/// dropped) or overflows (the instance is replaced by a materialized
/// machine and the lane continues on the match path, bit-identically).
/// While any kernel lane is live the bank also keeps a shared decode
/// table: every distinct block address is interned to a dense index
/// exactly once (`intern`/`addrs`), and each chunk is decoded once into
/// `decoded` before the lanes step it — so the block-map hash probe and
/// cache attribution are paid per *reference*, not per reference × lane.
///
/// Under a finite geometry the decode pass also owns the LRU bookkeeping:
/// a lane's finite-cache contents depend only on the reference stream and
/// the geometry — never the scheme — so every lane's replica is
/// bit-identical, and the bank keeps exactly one (`shared_finite`),
/// probed and updated once per reference. Kernel lanes receive the
/// residency verdict and victim choice inside the [`DecodedRef`]. When a
/// kernel lane overflows mid-chunk, its private replica (needed by the
/// match-path continuation) is reconstructed by replaying the chunk
/// prefix onto `finite_snapshot`, the clone taken at chunk start.
struct LaneBank {
    protocols: Vec<Box<dyn CoherenceProtocol>>,
    kernels: Vec<Option<LaneKernel>>,
    lanes: Vec<Lane>,
    /// Block address → dense index shared by every kernel lane.
    intern: FxHashMap<BlockAddr, u32>,
    /// Reverse table: dense index → block address, for materializing.
    addrs: Vec<BlockAddr>,
    /// Per-chunk decoded references, recycled across chunks.
    decoded: Vec<DecodedRef>,
    /// The one finite-cache replica shared by every kernel lane.
    shared_finite: Vec<FiniteCache<()>>,
    /// Chunk-start clone of `shared_finite`, for overflow reconstruction.
    finite_snapshot: Vec<FiniteCache<()>>,
}

impl LaneBank {
    fn new(config: &SimConfig, schemes: &[Scheme], caches: u32) -> Self {
        let protocols: Vec<Box<dyn CoherenceProtocol>> =
            schemes.iter().map(|&s| s.build(caches)).collect();
        let lanes: Vec<Lane> = protocols
            .iter()
            .map(|p| Lane::new(config, p.name()))
            .collect();
        let kernels: Vec<Option<LaneKernel>> = schemes
            .iter()
            .map(|&s| {
                if !config.kernel_eligible() {
                    return None;
                }
                let kernel = LaneKernel::new(s, caches);
                if kernel.is_none() && config.kernels.effective() == KernelPolicy::Required {
                    panic!(
                        "KernelPolicy::Required, but {caches} caches exceed the \
                         table-kernel cap for {s:?}"
                    );
                }
                kernel
            })
            .collect();
        LaneBank {
            protocols,
            kernels,
            lanes,
            intern: FxHashMap::default(),
            addrs: Vec::new(),
            decoded: Vec::new(),
            shared_finite: Vec::new(),
            finite_snapshot: Vec::new(),
        }
    }

    /// Number of lanes currently stepping through table kernels.
    fn kernel_lanes(&self) -> usize {
        self.kernels.iter().filter(|k| k.is_some()).count()
    }

    /// Steps every lane over one chunk. The kernel/match dispatch is
    /// hoisted out of the per-reference loop, and when any kernel lane is
    /// live the chunk is decoded exactly once for all of them. A single
    /// kernel lane (the serial mode's shape) fuses decode and step into
    /// one pass instead of staging through the decode buffer.
    fn step_chunk(&mut self, config: &SimConfig, refs: &[MemRef]) -> Result<(), Error> {
        let LaneBank {
            protocols,
            kernels,
            lanes,
            intern,
            addrs,
            decoded,
            shared_finite,
            finite_snapshot,
        } = self;
        let live_kernels = kernels.iter().filter(|k| k.is_some()).count();
        if live_kernels > 0 && config.geometry.is_some() {
            // Keep the chunk-start LRU state around so an overflowing
            // lane can reconstruct its own replica as of the failed
            // reference (the shared replica will have advanced past it).
            finite_snapshot.clear();
            finite_snapshot.extend(shared_finite.iter().cloned());
        }
        if live_kernels > 1 {
            decoded.clear();
            decoded.reserve(refs.len());
            for r in refs {
                decoded.push(decode_ref(config, intern, addrs, shared_finite, r));
            }
        }
        for i in 0..lanes.len() {
            // Take the kernel out so the overflow path can replace the
            // protocol instance without aliasing; put it back on success.
            if let Some(mut kernel) = kernels[i].take() {
                let lane = &mut lanes[i];
                let mut overflowed_at = None;
                if live_kernels > 1 {
                    for (j, &d) in decoded.iter().enumerate() {
                        if lane.step_with_kernel(&mut kernel, d).is_err() {
                            overflowed_at = Some(j);
                            break;
                        }
                    }
                } else {
                    for (j, r) in refs.iter().enumerate() {
                        let d = decode_ref(config, intern, addrs, shared_finite, r);
                        if lane.step_with_kernel(&mut kernel, d).is_err() {
                            overflowed_at = Some(j);
                            break;
                        }
                    }
                }
                match overflowed_at {
                    None => kernels[i] = Some(kernel),
                    // Overflow: the failed reference mutated nothing in
                    // the lane, so settle the batched counts, materialize
                    // the machine, rebuild the lane's finite replica as
                    // of the failed reference, and re-step from it on the
                    // match path. The kernel stays dropped.
                    Some(j) => {
                        lanes[i].absorb_kernel_hits(&mut kernel);
                        protocols[i] = kernel.materialize(addrs);
                        if config.geometry.is_some() {
                            lanes[i].restore_finite(replay_finite(
                                config,
                                finite_snapshot,
                                &refs[..j],
                            ));
                        }
                        step_direct(config, &mut lanes[i], protocols[i].as_mut(), &refs[j..])?;
                    }
                }
            } else {
                step_direct(config, &mut lanes[i], protocols[i].as_mut(), refs)?;
            }
        }
        Ok(())
    }

    fn finish(self) -> Vec<SimResult> {
        self.lanes
            .into_iter()
            .zip(self.kernels)
            .zip(self.protocols)
            .map(|((lane, kernel), protocol)| match kernel {
                Some(mut kernel) => lane.finish_with_kernel(&mut kernel),
                None => lane.finish(protocol.as_ref()),
            })
            .collect()
    }
}

/// Decodes one reference for the kernel lanes: block mapping, cache
/// attribution, bank-wide block-index interning, and — under a finite
/// geometry — the shared residency probe, LRU victim choice, and LRU
/// commit, each paid once per reference no matter how many lanes replay
/// the result. The LRU op sequence on the shared replica (fused probe on
/// a hit; `touch` then `insert` on a miss) matches `Lane::step`'s
/// tick-for-tick, so the replica stays bit-identical to what every
/// match-based lane would hold.
#[inline]
fn decode_ref(
    config: &SimConfig,
    intern: &mut FxHashMap<BlockAddr, u32>,
    addrs: &mut Vec<BlockAddr>,
    shared_finite: &mut Vec<FiniteCache<()>>,
    r: &MemRef,
) -> DecodedRef {
    if r.kind == AccessKind::InstrFetch {
        return DecodedRef::instr();
    }
    let block = config.block_map.block_of(r.addr);
    let block_idx = *intern.entry(block).or_insert_with(|| {
        let idx = u32::try_from(addrs.len()).expect("fewer than 2^32 blocks");
        addrs.push(block);
        idx
    });
    let cache = config.sharing.cache_of(r);
    let mut resident = true;
    let mut victim_idx = NO_VICTIM;
    if let Some(geometry) = config.geometry {
        while shared_finite.len() <= cache.index() {
            shared_finite.push(
                FiniteCache::new(geometry).expect("geometry validated at configuration time"),
            );
        }
        let fc = &mut shared_finite[cache.index()];
        if fc.touch_if_resident(block).is_none() {
            resident = false;
            if let Some(v) = fc.would_evict(block) {
                victim_idx = *intern
                    .get(&v)
                    .expect("victim blocks were interned by their own data refs");
            }
            let touched = fc.touch(block);
            debug_assert!(touched.is_none(), "the fused probe proved a miss");
            fc.insert(block, ());
        }
    }
    DecodedRef {
        block_idx,
        victim_idx,
        cache,
        write: r.kind == AccessKind::Write,
        resident,
    }
}

/// Reconstructs the finite-cache replica a match-based lane would hold
/// after the chunk prefix `refs`: a clone of the chunk-start snapshot
/// advanced by each data reference's touch/insert LRU ops — the exact op
/// sequence `Lane::step` performs. Used when a kernel lane overflows
/// mid-chunk: kernel lanes carry no finite state of their own (the
/// bank's shared replica does), so the match-path continuation needs a
/// private copy as of the failed reference.
fn replay_finite(
    config: &SimConfig,
    snapshot: &[FiniteCache<()>],
    refs: &[MemRef],
) -> Vec<FiniteCache<()>> {
    let Some(geometry) = config.geometry else {
        return Vec::new();
    };
    let mut finite: Vec<FiniteCache<()>> = snapshot.to_vec();
    for r in refs {
        if r.kind == AccessKind::InstrFetch {
            continue;
        }
        let block = config.block_map.block_of(r.addr);
        let cache = config.sharing.cache_of(r);
        while finite.len() <= cache.index() {
            finite.push(
                FiniteCache::new(geometry).expect("geometry validated at configuration time"),
            );
        }
        let fc = &mut finite[cache.index()];
        if fc.touch(block).is_none() {
            fc.insert(block, ());
        }
    }
    finite
}

/// Steps one lane over a slice on the match-based path.
fn step_direct(
    config: &SimConfig,
    lane: &mut Lane,
    protocol: &mut dyn CoherenceProtocol,
    refs: &[MemRef],
) -> Result<(), Error> {
    for &r in refs {
        let index = lane.next_index();
        if let Err(failure) = lane.step(config, protocol, r) {
            return Err(step_error(protocol.name(), index, failure));
        }
    }
    Ok(())
}

#[cold]
fn step_error(scheme: String, ref_index: u64, failure: StepFailure) -> Error {
    match failure {
        StepFailure::Invariant { violation, .. } => Error::Invariant(InvariantError {
            scheme,
            ref_index,
            violation,
        }),
        StepFailure::Oracle(violation) => Error::Sim(SimError {
            scheme,
            ref_index,
            violation,
        }),
    }
}

/// The decode-stage boundary: lends each decoded chunk to the step side.
/// `next` returning `Ok(None)` means end of stream; the returned slice
/// is valid until the next call, so the step side never owns (or
/// copies) chunk storage. Where the buffers live — a single inline
/// spare, the mmap source's reusable decode buffer, or the overlapped
/// recycle pool — is each feed's private business.
trait ChunkFeed {
    fn next(&mut self) -> Result<Option<&[MemRef]>, Error>;
}

/// Non-overlapped decode: reads the source on the calling thread, between
/// chunks, with a single recycled buffer.
struct InlineFeed<'a> {
    source: &'a mut dyn TraceSource,
    chunk: usize,
    spare: Vec<MemRef>,
    rec: &'a dyn Recorder,
}

impl ChunkFeed for InlineFeed<'_> {
    fn next(&mut self) -> Result<Option<&[MemRef]>, Error> {
        let decode = Span::with_labels(self.rec, "phase_seconds", &[("phase", "decode")]);
        let n = self.source.read_chunk(&mut self.spare, self.chunk)?;
        drop(decode);
        if n == 0 {
            return Ok(None);
        }
        Ok(Some(&self.spare))
    }
}

/// Zero-copy decode for sources with a borrowed-chunk view (see
/// [`TraceSource::borrowed`]): each chunk is decoded once into storage
/// the source owns and lent straight through to the step side — no
/// owned-buffer recycle round-trip, no copy into a feed-side spare.
struct BorrowedFeed<'a> {
    source: &'a mut dyn BorrowedChunkSource,
    chunk: usize,
    rec: &'a dyn Recorder,
}

impl ChunkFeed for BorrowedFeed<'_> {
    fn next(&mut self) -> Result<Option<&[MemRef]>, Error> {
        let decode = Span::with_labels(self.rec, "phase_seconds", &[("phase", "decode")]);
        let chunk = self.source.next_chunk(self.chunk)?;
        drop(decode);
        if chunk.is_empty() {
            return Ok(None);
        }
        Ok(Some(chunk))
    }
}

/// Overlapped decode: receives chunks a dedicated producer thread filled
/// ahead of time (see [`producer_loop`]) and sends emptied buffers back.
/// The lent chunk is held in `current`; the next call to [`ChunkFeed::next`]
/// recycles it to the producer before blocking on the data channel.
struct ChannelFeed<'a> {
    rx: mpsc::Receiver<Result<Vec<MemRef>, TraceIoError>>,
    recycle_tx: mpsc::SyncSender<Vec<MemRef>>,
    depth: &'a AtomicUsize,
    rec: &'a dyn Recorder,
    /// The chunk currently lent to the step side.
    current: Option<Vec<MemRef>>,
    /// `Some` iff the recorder is enabled: total consumer stall so far and
    /// when the feed started, for the closing occupancy gauge.
    clock: Option<(f64, Instant)>,
}

impl<'a> ChannelFeed<'a> {
    fn new(
        rx: mpsc::Receiver<Result<Vec<MemRef>, TraceIoError>>,
        recycle_tx: mpsc::SyncSender<Vec<MemRef>>,
        depth: &'a AtomicUsize,
        rec: &'a dyn Recorder,
    ) -> Self {
        ChannelFeed {
            rx,
            recycle_tx,
            depth,
            rec,
            current: None,
            clock: rec.enabled().then(|| (0.0, Instant::now())),
        }
    }

    /// Records the occupancy gauge and drops both channel ends, which
    /// makes the producer exit even when stepping failed mid-stream.
    fn finish(self) {
        if let Some((stall, started)) = self.clock {
            let elapsed = started.elapsed().as_secs_f64();
            let occupancy = if elapsed > 0.0 {
                (1.0 - stall / elapsed).clamp(0.0, 1.0)
            } else {
                1.0
            };
            self.rec.gauge("pipeline_occupancy", &[], occupancy);
        }
    }
}

impl ChunkFeed for ChannelFeed<'_> {
    fn next(&mut self) -> Result<Option<&[MemRef]>, Error> {
        // The previous lease just expired: hand the emptied buffer back.
        // The recycle channel's capacity equals the total buffer count,
        // so this never blocks; an error just means the producer exited.
        if let Some(spent) = self.current.take() {
            let _ = self.recycle_tx.send(spent);
        }
        let wait = self.clock.as_ref().map(|_| Instant::now());
        let received = self.rx.recv();
        if let Some(wait) = wait {
            let stalled = wait.elapsed().as_secs_f64();
            if let Some((stall, _)) = self.clock.as_mut() {
                *stall += stalled;
            }
            self.rec.observe("decode_stall_seconds", &[], stalled);
        }
        match received {
            Ok(Ok(buf)) => {
                let queued = self.depth.fetch_sub(1, Ordering::Relaxed);
                if self.clock.is_some() {
                    self.rec.observe(
                        "pipeline_queue_depth",
                        &[("stage", "decode")],
                        queued as f64,
                    );
                }
                Ok(Some(self.current.insert(buf).as_slice()))
            }
            Ok(Err(e)) => Err(Error::TraceIo(e)),
            // The producer dropped its sender: end of stream.
            Err(mpsc::RecvError) => Ok(None),
        }
    }
}

/// The overlapped-decode producer: waits for an emptied buffer, refills
/// it from the source, and sends it forward. Runs until end of stream, a
/// decode error, or the consumer hangs up.
fn producer_loop(
    source: &mut dyn TraceSource,
    chunk: usize,
    tx: mpsc::SyncSender<Result<Vec<MemRef>, TraceIoError>>,
    recycle_rx: mpsc::Receiver<Vec<MemRef>>,
    depth: &AtomicUsize,
    rec: &dyn Recorder,
) {
    let enabled = rec.enabled();
    loop {
        // An emptied buffer coming back doubles as the consumer's
        // liveness signal: a closed recycle channel means the step side
        // is gone (finished or failed), so stop decoding.
        let wait = enabled.then(Instant::now);
        let Ok(buf) = recycle_rx.recv() else { return };
        if let Some(wait) = wait {
            rec.observe("step_stall_seconds", &[], wait.elapsed().as_secs_f64());
        }
        let decode = Span::with_labels(rec, "phase_seconds", &[("phase", "decode")]);
        let read = source.read_chunk_owned(buf, chunk);
        drop(decode);
        match read {
            // End of stream: dropping `tx` tells the consumer.
            Ok(buf) if buf.is_empty() => return,
            Ok(buf) => {
                depth.fetch_add(1, Ordering::Relaxed);
                let wait = enabled.then(Instant::now);
                if tx.send(Ok(buf)).is_err() {
                    return;
                }
                if let Some(wait) = wait {
                    rec.observe("step_stall_seconds", &[], wait.elapsed().as_secs_f64());
                }
            }
            Err(e) => {
                let _ = tx.send(Err(e));
                return;
            }
        }
    }
}

/// The consumer half of the decode stage: pulls lent chunks from the
/// feed, runs the observer hook in stream order on the calling thread,
/// and hands each chunk to `sink` (the route/step side). Chunk storage
/// stays with the feed — the lease ends when the next chunk is pulled.
fn drive(
    rec: &dyn Recorder,
    feed: &mut dyn ChunkFeed,
    observe: &mut dyn FnMut(&MemRef),
    sink: &mut dyn FnMut(&[MemRef]) -> Result<(), Error>,
) -> Result<(), Error> {
    while let Some(buf) = feed.next()? {
        rec.counter("engine_refs", &[], buf.len() as u64);
        for r in buf {
            observe(r);
        }
        sink(buf)?;
    }
    Ok(())
}

/// Single-worker placement: the route stage is the identity and every
/// lane steps on the calling thread.
fn drive_in_thread(
    config: SimConfig,
    rec: &dyn Recorder,
    schemes: &[Scheme],
    caches: u32,
    feed: &mut dyn ChunkFeed,
    observe: &mut dyn FnMut(&MemRef),
) -> Result<Vec<SimResult>, Error> {
    let mut bank = LaneBank::new(&config, schemes, caches);
    rec.counter("kernel_lanes", &[], bank.kernel_lanes() as u64);
    let mut sink = |refs: &[MemRef]| -> Result<(), Error> {
        let _step = Span::with_labels(rec, "phase_seconds", &[("phase", "step")]);
        bank.step_chunk(&config, refs)
    };
    drive(rec, feed, observe, &mut sink)?;
    Ok(bank.finish())
}

/// Sharded placement: the route stage partitions each chunk under the
/// configuration's [`ShardKey`] into per-shard bounded queues, one worker
/// thread steps each shard, and the merge stage sums the per-shard
/// counters (all commutative, so totals are bit-identical to serial).
#[allow(clippy::too_many_arguments)]
fn drive_sharded(
    config: SimConfig,
    chunk: usize,
    workers: usize,
    rec: &dyn Recorder,
    schemes: &[Scheme],
    caches: u32,
    feed: &mut dyn ChunkFeed,
    observe: &mut dyn FnMut(&MemRef),
) -> Result<Vec<SimResult>, Error> {
    let shard_key = ShardKey::for_config(&config);
    let enabled = rec.enabled();
    let queue_depth: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();
    let queue_depth = &queue_depth;

    let per_worker: Result<Vec<Vec<SimResult>>, Error> = std::thread::scope(|scope| {
        let mut txs = Vec::with_capacity(workers);
        let mut recycle_rxs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for (shard, depth) in queue_depth.iter().enumerate() {
            let (tx, rx) = mpsc::sync_channel::<Vec<MemRef>>(SHARD_CHANNEL_DEPTH);
            // Return channel for spent batch buffers: workers hand the
            // emptied Vec back so the router reuses its capacity instead
            // of allocating a fresh staging buffer per batch.
            let (recycle_tx, recycle_rx) =
                mpsc::sync_channel::<Vec<MemRef>>(SHARD_CHANNEL_DEPTH + 2);
            txs.push(tx);
            recycle_rxs.push(recycle_rx);
            handles.push(scope.spawn(move || -> Result<Vec<SimResult>, Error> {
                let shard_label = shard.to_string();
                let mut bank = LaneBank::new(&config, schemes, caches);
                for mut batch in rx {
                    if enabled {
                        let queued = depth.fetch_sub(1, Ordering::Relaxed);
                        rec.observe(
                            "pipeline_queue_depth",
                            &[("shard", &shard_label), ("stage", "step")],
                            queued as f64,
                        );
                    }
                    let step = Span::with_labels(
                        rec,
                        "phase_seconds",
                        &[("phase", "step"), ("shard", &shard_label)],
                    );
                    bank.step_chunk(&config, &batch)?;
                    drop(step);
                    batch.clear();
                    // A full (or closed) return queue just means this
                    // buffer isn't reused; dropping it is harmless.
                    let _ = recycle_tx.try_send(batch);
                }
                Ok(bank.finish())
            }));
        }

        // Routing by key (not by hash) keeps the assignment
        // deterministic, so per-shard subsequences — and therefore merged
        // counters — are reproducible run to run.
        let mut staging: Vec<Vec<MemRef>> =
            (0..workers).map(|_| Vec::with_capacity(chunk)).collect();
        let mut sink = |refs: &[MemRef]| -> Result<(), Error> {
            let route = Span::with_labels(rec, "phase_seconds", &[("phase", "route")]);
            for r in refs {
                let block = config.block_map.block_of(r.addr);
                let shard = shard_key.shard_of(block, workers);
                staging[shard].push(*r);
            }
            drop(route);
            for (shard, pending) in staging.iter_mut().enumerate() {
                if pending.len() >= chunk {
                    let fresh = recycle_rxs[shard]
                        .try_recv()
                        .unwrap_or_else(|_| Vec::with_capacity(chunk));
                    let batch = std::mem::replace(pending, fresh);
                    if enabled {
                        queue_depth[shard].fetch_add(1, Ordering::Relaxed);
                    }
                    // A closed channel means the worker already failed;
                    // its error surfaces at join.
                    let _ = txs[shard].send(batch);
                }
            }
            Ok(())
        };
        let driven = drive(rec, feed, observe, &mut sink);
        for (shard, pending) in staging.into_iter().enumerate() {
            if !pending.is_empty() {
                if enabled {
                    queue_depth[shard].fetch_add(1, Ordering::Relaxed);
                }
                let _ = txs[shard].send(pending);
            }
        }
        drop(txs);

        let mut results = Vec::with_capacity(workers);
        let mut worker_err: Option<Error> = None;
        for handle in handles {
            match handle.join().expect("shard worker panicked") {
                Ok(shard_results) => results.push(shard_results),
                Err(e) => {
                    if worker_err.is_none() {
                        worker_err = Some(e);
                    }
                }
            }
        }
        // A decode (or route) failure takes precedence over whatever the
        // starved workers reported.
        driven?;
        if let Some(e) = worker_err {
            return Err(e);
        }
        Ok(results)
    });

    let per_worker = per_worker?;
    if enabled {
        for (shard, shard_results) in per_worker.iter().enumerate() {
            let shard_label = shard.to_string();
            let labels = [("shard", shard_label.as_str())];
            // All lanes in one shard see the same subsequence, so any
            // lane's `refs` is the shard's reference count.
            rec.counter("shard_refs", &labels, shard_results[0].refs);
            let ops: u64 = shard_results.iter().map(|r| r.ops.total()).sum();
            rec.counter("shard_ops", &labels, ops);
        }
    }

    // Merge shard results per scheme. Every SimResult field is a
    // commutative sum (or a histogram of sums), so the totals equal a
    // serial run's bit for bit.
    let merge = Span::with_labels(rec, "phase_seconds", &[("phase", "merge")]);
    let mut shards = per_worker.into_iter();
    let mut merged = shards.next().expect("at least one worker");
    for shard_results in shards {
        for (acc, r) in merged.iter_mut().zip(shard_results.iter()) {
            acc.merge(r);
        }
    }
    drop(merge);
    Ok(merged)
}

/// Runs the pipeline with decode inline on the calling thread (the
/// classic placement: serial, single-pass, and sharded modes). Sources
/// with a borrowed-chunk view (mmap-backed files) feed the step side
/// zero-copy; everything else goes through the owned-buffer
/// [`InlineFeed`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_inline(
    config: SimConfig,
    chunk: usize,
    workers: usize,
    rec: &dyn Recorder,
    schemes: &[Scheme],
    caches: u32,
    source: &mut dyn TraceSource,
    observe: &mut dyn FnMut(&MemRef),
) -> Result<Vec<SimResult>, Error> {
    let results = match source.borrowed() {
        Some(borrowed) => {
            let mut feed = BorrowedFeed {
                source: borrowed,
                chunk,
                rec,
            };
            drive_placed(
                config, chunk, workers, rec, schemes, caches, &mut feed, observe,
            )?
        }
        None => {
            let mut feed = InlineFeed {
                source,
                chunk,
                spare: Vec::with_capacity(chunk),
                rec,
            };
            drive_placed(
                config, chunk, workers, rec, schemes, caches, &mut feed, observe,
            )?
        }
    };
    record_scheme_totals(rec, &results);
    Ok(results)
}

/// Chooses the step-stage placement (in-thread vs sharded) for a feed.
#[allow(clippy::too_many_arguments)]
fn drive_placed(
    config: SimConfig,
    chunk: usize,
    workers: usize,
    rec: &dyn Recorder,
    schemes: &[Scheme],
    caches: u32,
    feed: &mut dyn ChunkFeed,
    observe: &mut dyn FnMut(&MemRef),
) -> Result<Vec<SimResult>, Error> {
    if workers <= 1 {
        drive_in_thread(config, rec, schemes, caches, feed, observe)
    } else {
        drive_sharded(config, chunk, workers, rec, schemes, caches, feed, observe)
    }
}

/// Runs the pipeline with decode overlapped on a dedicated producer
/// thread (see the module docs for the buffer-recycling handshake).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_overlapped<S>(
    config: SimConfig,
    chunk: usize,
    workers: usize,
    rec: &dyn Recorder,
    schemes: &[Scheme],
    caches: u32,
    mut source: S,
    observe: &mut dyn FnMut(&MemRef),
) -> Result<Vec<SimResult>, Error>
where
    S: TraceSource + Send,
{
    let depth = AtomicUsize::new(0);
    let depth = &depth;
    let (data_tx, data_rx) =
        mpsc::sync_channel::<Result<Vec<MemRef>, TraceIoError>>(PIPELINE_DEPTH);
    let (recycle_tx, recycle_rx) = mpsc::sync_channel::<Vec<MemRef>>(PIPELINE_DEPTH + 2);
    for _ in 0..PIPELINE_DEPTH + 2 {
        recycle_tx
            .send(Vec::with_capacity(chunk))
            .expect("recycle channel holds every buffer");
    }

    let results = std::thread::scope(|scope| {
        let producer =
            scope.spawn(move || producer_loop(&mut source, chunk, data_tx, recycle_rx, depth, rec));
        let mut feed = ChannelFeed::new(data_rx, recycle_tx, depth, rec);
        let results = drive_placed(
            config, chunk, workers, rec, schemes, caches, &mut feed, observe,
        );
        // Closes both channel directions so the producer always exits,
        // even when stepping failed mid-stream.
        feed.finish();
        producer.join().expect("pipeline decode thread panicked");
        results
    })?;
    record_scheme_totals(rec, &results);
    Ok(results)
}

/// Record per-scheme result totals into `recorder`: `scheme_refs`,
/// `scheme_transactions`, and a `scheme_ops` counter per non-zero bus
/// operation. Shared by every execution mode so the exported totals do not
/// depend on how the run was parallelised.
pub(crate) fn record_scheme_totals(recorder: &dyn Recorder, results: &[SimResult]) {
    if !recorder.enabled() {
        return;
    }
    for r in results {
        let labels = [("scheme", r.scheme.as_str())];
        recorder.counter("scheme_refs", &labels, r.refs);
        recorder.counter("scheme_transactions", &labels, r.transactions);
        for (op, count) in r.ops.iter() {
            if count > 0 {
                recorder.counter(
                    "scheme_ops",
                    &[("op", op.name()), ("scheme", r.scheme.as_str())],
                    count,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadcast::BroadcastSimulator;
    use dirsim_trace::source::IterSource;
    use dirsim_trace::Scenario;

    const REFS: usize = 12_000;

    fn trace() -> Vec<MemRef> {
        Scenario::named("pops")
            .unwrap()
            .workload()
            .take(REFS)
            .collect()
    }

    #[test]
    fn overlapped_matches_inline_for_every_worker_count() {
        let refs = trace();
        let schemes = Scheme::paper_lineup();
        for workers in [1, 3] {
            let engine = BroadcastSimulator::paper().workers(workers).chunk_size(512);
            let inline = engine
                .run(&schemes, 4, IterSource::new(refs.iter().copied()))
                .unwrap();
            let overlapped = engine
                .run_pipelined(&schemes, 4, IterSource::new(refs.iter().copied()))
                .unwrap();
            assert_eq!(inline, overlapped, "workers = {workers}");
        }
    }

    #[test]
    fn borrowed_decode_path_matches_owned_for_every_worker_count() {
        // An mmap-backed source takes the zero-copy BorrowedFeed path
        // through run_inline; results must be bit-identical to the
        // owned-buffer IterSource path.
        let refs = trace();
        let path = std::env::temp_dir().join(format!(
            "dirsim-pipeline-borrowed-{}.dtr",
            std::process::id()
        ));
        let mut file = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
        dirsim_trace::io::write_binary(&mut file, refs.iter().copied()).unwrap();
        std::io::Write::flush(&mut file).unwrap();
        drop(file);

        let schemes = Scheme::paper_lineup();
        for workers in [1, 3] {
            let engine = BroadcastSimulator::paper().workers(workers).chunk_size(512);
            let owned = engine
                .run(&schemes, 4, IterSource::new(refs.iter().copied()))
                .unwrap();
            let mmap = engine
                .run(
                    &schemes,
                    4,
                    dirsim_trace::MmapTraceSource::open(&path).unwrap(),
                )
                .unwrap();
            assert_eq!(owned, mmap, "workers = {workers}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn overlapped_observer_sees_every_reference_in_order() {
        let refs = trace();
        let mut seen = Vec::new();
        BroadcastSimulator::paper()
            .workers(2)
            .chunk_size(256)
            .run_observed_pipelined(
                &[Scheme::Wti],
                4,
                IterSource::new(refs.iter().copied()),
                |r| seen.push(*r),
            )
            .unwrap();
        assert_eq!(seen, refs);
    }

    #[test]
    fn overlapped_surfaces_decode_errors() {
        let encoded = b"NOPE0000".to_vec();
        let err = BroadcastSimulator::paper()
            .run_pipelined(
                &[Scheme::Wti],
                2,
                dirsim_trace::io::read_binary(std::io::Cursor::new(encoded)),
            )
            .unwrap_err();
        assert!(matches!(err, Error::TraceIo(_)));
    }

    #[test]
    fn overlapped_records_pipeline_metrics() {
        use dirsim_obs::MetricsRegistry;
        use std::sync::Arc;

        let refs = trace();
        let registry = Arc::new(MetricsRegistry::new());
        BroadcastSimulator::paper()
            .workers(2)
            .chunk_size(512)
            .recorder(registry.clone())
            .run_pipelined(&[Scheme::Wti], 4, IterSource::new(refs.iter().copied()))
            .unwrap();
        let stall = registry
            .histogram_summary("decode_stall_seconds", &[])
            .expect("decode stall histogram");
        assert!(stall.count > 0 && stall.sum >= 0.0);
        assert!(registry
            .histogram_summary("step_stall_seconds", &[])
            .is_some());
        let depth = registry
            .histogram_summary("pipeline_queue_depth", &[("stage", "decode")])
            .expect("decode queue depth");
        assert!(depth.count > 0);
        assert!(registry
            .histogram_summary("pipeline_queue_depth", &[("shard", "0"), ("stage", "step")])
            .is_some());
        let occupancy = registry
            .gauge_value("pipeline_occupancy", &[])
            .expect("occupancy gauge");
        assert!((0.0..=1.0).contains(&occupancy), "occupancy = {occupancy}");
    }
}
