//! Pluggable trace-format frontends and `open_trace` path sniffing.
//!
//! Every consumer of trace files (`simulate`, `trace_tool`,
//! `dirsim-sweep`) used to carry its own extension-based dispatch; this
//! module centralises the decision behind a [`TraceFrontend`] registry in
//! the style large-scale cluster simulators use for their per-provider
//! trace readers (one adapter per foreign schema, all producing the same
//! internal record stream). A frontend *sniffs* a file — magic bytes
//! first, extension as a fallback for headerless text formats — and
//! *opens* it as a boxed [`TraceSource`], so adding a new external format
//! touches exactly one place.
//!
//! Built-in frontends:
//!
//! | name | claims | source |
//! |------|--------|--------|
//! | `corpus` | `DTR3` magic, `.dtrz` | [`crate::corpus::CorpusReader`] |
//! | `compressed` | `DTR2` magic, `.dtr2` | [`crate::compress::CompressedReader`] |
//! | `binary` | `DTR1` magic, `.dtr`/`.dtr1`/`.bin` | [`crate::mmap::MmapTraceSource`] (zero-copy) |
//! | `text` | `.txt`, `.trace` | [`crate::io::TextReader`] |
//! | `csv` | `.csv` | [`CsvReader`] (foreign `timestamp,cpu,op,addr[,pid]` rows) |
//!
//! ```no_run
//! use dirsim_trace::frontend::open_trace;
//! use dirsim_trace::source::collect_all;
//!
//! let source = open_trace("workload.csv")?;
//! let refs = collect_all(source)?;
//! # Ok::<(), dirsim_trace::TraceIoError>(())
//! ```

use std::fs::File;
use std::io::{self, BufRead, BufReader, Read};
use std::path::Path;

use crate::compress::{read_compressed, COMPRESSED_MAGIC};
use crate::corpus::{CorpusReader, CORPUS_MAGIC};
use crate::io::{read_text, TraceIoError, BINARY_MAGIC};
use crate::mmap::MmapTraceSource;
use crate::source::{fill_from_results, TraceSource};
use crate::types::{AccessKind, Addr, CpuId, MemRef, ProcessId, RefFlags};

/// A format adapter: recognises files of one trace format and opens them
/// as reference streams.
///
/// Contract: `sniff` must be cheap and side-effect free (it sees the
/// path and the file's first bytes, nothing more); `open` must yield a
/// stream whose records are in trace order; decode failures surface as
/// typed [`TraceIoError`]s from the returned source, not panics.
pub trait TraceFrontend {
    /// Short identifier (`binary`, `csv`, ...).
    fn name(&self) -> &'static str;

    /// One-line human description.
    fn description(&self) -> &'static str;

    /// Whether this frontend claims the file. `prefix` holds the file's
    /// first bytes (up to 8; shorter for tiny files).
    fn sniff(&self, path: &Path, prefix: &[u8]) -> bool;

    /// Opens the file as a reference stream.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceIoError`] when the file cannot be opened or its
    /// header is invalid.
    fn open(&self, path: &Path) -> Result<Box<dyn TraceSource + Send>, TraceIoError>;
}

fn ext_of(path: &Path) -> Option<String> {
    path.extension()
        .and_then(|e| e.to_str())
        .map(|e| e.to_ascii_lowercase())
}

fn has_magic(prefix: &[u8], magic: &[u8; 4]) -> bool {
    prefix.len() >= 4 && &prefix[0..4] == magic
}

#[derive(Debug)]
struct CorpusFrontend;

impl TraceFrontend for CorpusFrontend {
    fn name(&self) -> &'static str {
        "corpus"
    }

    fn description(&self) -> &'static str {
        "packed DTR3 corpus (compressed, checksum footer)"
    }

    fn sniff(&self, path: &Path, prefix: &[u8]) -> bool {
        has_magic(prefix, &CORPUS_MAGIC) || ext_of(path).as_deref() == Some("dtrz")
    }

    fn open(&self, path: &Path) -> Result<Box<dyn TraceSource + Send>, TraceIoError> {
        Ok(Box::new(CorpusReader::open(path)?))
    }
}

#[derive(Debug)]
struct CompressedFrontend;

impl TraceFrontend for CompressedFrontend {
    fn name(&self) -> &'static str {
        "compressed"
    }

    fn description(&self) -> &'static str {
        "delta-compressed DTR2 stream"
    }

    fn sniff(&self, path: &Path, prefix: &[u8]) -> bool {
        has_magic(prefix, &COMPRESSED_MAGIC) || ext_of(path).as_deref() == Some("dtr2")
    }

    fn open(&self, path: &Path) -> Result<Box<dyn TraceSource + Send>, TraceIoError> {
        let file = File::open(path)?;
        Ok(Box::new(read_compressed(BufReader::new(file))))
    }
}

#[derive(Debug)]
struct BinaryFrontend;

impl TraceFrontend for BinaryFrontend {
    fn name(&self) -> &'static str {
        "binary"
    }

    fn description(&self) -> &'static str {
        "fixed-record DTR1 trace (memory-mapped, zero-copy)"
    }

    fn sniff(&self, path: &Path, prefix: &[u8]) -> bool {
        has_magic(prefix, &BINARY_MAGIC)
            || matches!(ext_of(path).as_deref(), Some("dtr" | "dtr1" | "bin"))
    }

    fn open(&self, path: &Path) -> Result<Box<dyn TraceSource + Send>, TraceIoError> {
        Ok(Box::new(MmapTraceSource::open(path)?))
    }
}

#[derive(Debug)]
struct TextFrontend;

impl TraceFrontend for TextFrontend {
    fn name(&self) -> &'static str {
        "text"
    }

    fn description(&self) -> &'static str {
        "whitespace-separated text records"
    }

    fn sniff(&self, path: &Path, _prefix: &[u8]) -> bool {
        matches!(ext_of(path).as_deref(), Some("txt" | "trace"))
    }

    fn open(&self, path: &Path) -> Result<Box<dyn TraceSource + Send>, TraceIoError> {
        let file = File::open(path)?;
        Ok(Box::new(read_text(BufReader::new(file))))
    }
}

#[derive(Debug)]
struct CsvFrontend;

impl TraceFrontend for CsvFrontend {
    fn name(&self) -> &'static str {
        "csv"
    }

    fn description(&self) -> &'static str {
        "foreign timestamp,cpu,op,addr[,pid] rows"
    }

    fn sniff(&self, path: &Path, _prefix: &[u8]) -> bool {
        ext_of(path).as_deref() == Some("csv")
    }

    fn open(&self, path: &Path) -> Result<Box<dyn TraceSource + Send>, TraceIoError> {
        let file = File::open(path)?;
        Ok(Box::new(read_csv(BufReader::new(file))))
    }
}

/// The ordered set of known frontends.
///
/// Order matters only for overlap, and magic-bearing formats are checked
/// before extension-only ones, so a `DTR1` file named `foo.txt` is still
/// read as binary.
pub struct FrontendRegistry {
    frontends: Vec<Box<dyn TraceFrontend + Send + Sync>>,
}

impl std::fmt::Debug for FrontendRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontendRegistry")
            .field("frontends", &self.names())
            .finish()
    }
}

impl Default for FrontendRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

impl FrontendRegistry {
    /// A registry holding every built-in frontend.
    pub fn builtin() -> Self {
        FrontendRegistry {
            frontends: vec![
                Box::new(CorpusFrontend),
                Box::new(CompressedFrontend),
                Box::new(BinaryFrontend),
                Box::new(TextFrontend),
                Box::new(CsvFrontend),
            ],
        }
    }

    /// Adds a frontend, consulted after the built-ins.
    pub fn register(&mut self, frontend: Box<dyn TraceFrontend + Send + Sync>) {
        self.frontends.push(frontend);
    }

    /// Names of the registered frontends, in sniffing order.
    pub fn names(&self) -> Vec<&'static str> {
        self.frontends.iter().map(|f| f.name()).collect()
    }

    /// The frontend claiming `path`, if any.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] if the file cannot be opened for
    /// sniffing.
    pub fn find(&self, path: &Path) -> Result<Option<&dyn TraceFrontend>, TraceIoError> {
        let prefix = read_prefix(path)?;
        Ok(self
            .frontends
            .iter()
            .find(|f| f.sniff(path, &prefix))
            .map(|f| f.as_ref() as &dyn TraceFrontend))
    }

    /// Sniffs `path` and opens it with the claiming frontend.
    ///
    /// When no frontend claims the file, it is handed to the binary
    /// frontend — the historical default — so unrecognised files fail
    /// with the usual [`TraceIoError::BadMagic`] rather than a bespoke
    /// error.
    ///
    /// # Errors
    ///
    /// Any open/validation error from the chosen frontend.
    pub fn open(
        &self,
        path: impl AsRef<Path>,
    ) -> Result<Box<dyn TraceSource + Send>, TraceIoError> {
        let path = path.as_ref();
        match self.find(path)? {
            Some(frontend) => frontend.open(path),
            None => BinaryFrontend.open(path),
        }
    }
}

fn read_prefix(path: &Path) -> Result<Vec<u8>, TraceIoError> {
    let mut file = File::open(path)?;
    let mut prefix = [0u8; 8];
    let mut filled = 0usize;
    while filled < prefix.len() {
        match file.read(&mut prefix[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(prefix[..filled].to_vec())
}

/// Opens a trace file of any registered format (the one-call entry point
/// the CLIs use).
///
/// # Errors
///
/// See [`FrontendRegistry::open`].
pub fn open_trace(path: impl AsRef<Path>) -> Result<Box<dyn TraceSource + Send>, TraceIoError> {
    FrontendRegistry::builtin().open(path)
}

/// Streaming reader over foreign CSV rows.
///
/// Schema: `timestamp,cpu,op,addr[,pid]` with an optional header row.
/// `timestamp` must be numeric and is used only for ordering (rows are
/// expected already time-sorted; the value itself is not retained).
/// `op` accepts `r`/`read`/`load`, `w`/`write`/`store`, `i`/`ifetch`
/// (case-insensitive). `addr` is hex with an optional `0x` prefix, or
/// decimal. `pid` defaults to the cpu column — foreign traces rarely
/// distinguish the two. The schema has no flag column, so lock/OS
/// annotations do not survive a CSV round trip.
#[derive(Debug)]
pub struct CsvReader<R> {
    lines: io::Lines<R>,
    lineno: usize,
    failed: bool,
}

/// Opens a CSV trace stream for reading.
pub fn read_csv<R: BufRead>(reader: R) -> CsvReader<R> {
    CsvReader {
        lines: reader.lines(),
        lineno: 0,
        failed: false,
    }
}

fn parse_csv_op(token: &str) -> Option<AccessKind> {
    match token.to_ascii_lowercase().as_str() {
        "r" | "read" | "load" => Some(AccessKind::Read),
        "w" | "write" | "store" => Some(AccessKind::Write),
        "i" | "ifetch" | "instr" => Some(AccessKind::InstrFetch),
        _ => None,
    }
}

fn parse_csv_addr(token: &str) -> Option<u64> {
    if let Some(hex) = token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).ok()
    } else {
        token
            .parse::<u64>()
            .ok()
            .or_else(|| u64::from_str_radix(token, 16).ok())
    }
}

fn parse_csv_line(line: &str, lineno: usize) -> Result<Option<MemRef>, TraceIoError> {
    let bad = |reason: &str| TraceIoError::BadTextRecord {
        line: lineno,
        reason: reason.to_string(),
    };
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
    if fields.len() < 4 || fields.len() > 5 {
        return Err(bad("expected timestamp,cpu,op,addr[,pid]"));
    }
    if fields[0].parse::<f64>().is_err() {
        // A non-numeric timestamp on the first line is the header row.
        if lineno == 1 {
            return Ok(None);
        }
        return Err(bad("timestamp is not a number"));
    }
    let cpu: u16 = fields[1].parse().map_err(|_| bad("cpu is not a number"))?;
    let kind = parse_csv_op(fields[2]).ok_or_else(|| bad("op must be read/write/ifetch"))?;
    let addr = parse_csv_addr(fields[3]).ok_or_else(|| bad("address is not a number"))?;
    let pid: u32 = match fields.get(4) {
        Some(tok) => tok.parse().map_err(|_| bad("pid is not a number"))?,
        None => u32::from(cpu),
    };
    Ok(Some(MemRef {
        cpu: CpuId::new(cpu),
        pid: ProcessId::new(pid),
        addr: Addr::new(addr),
        kind,
        flags: RefFlags::empty(),
    }))
}

impl<R: BufRead> Iterator for CsvReader<R> {
    type Item = Result<MemRef, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            self.lineno += 1;
            match self.lines.next() {
                None => return None,
                Some(Err(e)) => {
                    self.failed = true;
                    return Some(Err(e.into()));
                }
                Some(Ok(line)) => match parse_csv_line(&line, self.lineno) {
                    Ok(None) => continue,
                    Ok(Some(r)) => return Some(Ok(r)),
                    Err(e) => {
                        self.failed = true;
                        return Some(Err(e));
                    }
                },
            }
        }
    }
}

impl<R: BufRead> TraceSource for CsvReader<R> {
    fn read_chunk(&mut self, buf: &mut Vec<MemRef>, max: usize) -> Result<usize, TraceIoError> {
        fill_from_results(self, buf, max)
    }
}

/// Writes references as CSV rows under a header, using the record index
/// as the timestamp. Lock/OS flags are not representable in the foreign
/// schema and are dropped.
///
/// # Errors
///
/// Returns any error from the underlying writer.
pub fn write_csv<W, I>(w: &mut W, refs: I) -> Result<u64, TraceIoError>
where
    W: std::io::Write,
    I: IntoIterator<Item = MemRef>,
{
    writeln!(w, "timestamp,cpu,op,addr,pid")?;
    let mut count = 0u64;
    for r in refs {
        writeln!(
            w,
            "{},{},{},0x{:x},{}",
            count,
            r.cpu.index(),
            r.kind.code(),
            r.addr.raw(),
            r.pid.index()
        )?;
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::write_binary;
    use crate::source::collect_all;
    use crate::synth::PaperTrace;

    fn temp_path(name: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "dirsim-frontend-{}-{}-{name}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn csv_round_trips_flagless_refs() {
        let refs: Vec<MemRef> = PaperTrace::Pops
            .workload()
            .take(2000)
            .map(|r| r.with_flags(RefFlags::empty()))
            .collect();
        let mut buf = Vec::new();
        let n = write_csv(&mut buf, refs.iter().copied()).unwrap();
        assert_eq!(n, refs.len() as u64);
        let back: Vec<MemRef> = read_csv(&buf[..]).collect::<Result<_, _>>().unwrap();
        assert_eq!(back, refs);
    }

    #[test]
    fn csv_accepts_spelled_out_ops_and_decimal_addresses() {
        let src = "timestamp,cpu,op,addr\n0,1,READ,255\n1.5,2,store,0x10\n2,0,ifetch,20\n";
        let back: Vec<MemRef> = read_csv(src.as_bytes()).collect::<Result<_, _>>().unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0].kind, AccessKind::Read);
        assert_eq!(back[0].addr, Addr::new(255));
        assert_eq!(back[0].pid, ProcessId::new(1), "pid defaults to cpu");
        assert_eq!(back[1].kind, AccessKind::Write);
        assert_eq!(back[1].addr, Addr::new(0x10));
        assert_eq!(back[2].kind, AccessKind::InstrFetch);
    }

    #[test]
    fn csv_rejects_garbage_with_line_numbers() {
        for bad in [
            "0,1,r\n",               // too few fields
            "0,1,r,10,2,9\n",        // too many fields
            "0,x,r,10\n",            // cpu
            "0,1,q,10\n",            // op
            "0,1,r,zz\n",            // addr... note zz is not hex
            "0,1,r,10,pid\n",        // pid
            "t,1,r,10\nt2,1,r,10\n", // non-numeric timestamp past line 1
        ] {
            let results: Vec<_> = read_csv(bad.as_bytes()).collect();
            assert!(
                matches!(
                    results.last(),
                    Some(Err(TraceIoError::BadTextRecord { .. }))
                ),
                "input {bad:?} should fail, got {results:?}"
            );
        }
    }

    #[test]
    fn registry_sniffs_magic_over_extension() {
        let refs: Vec<MemRef> = PaperTrace::Pops.workload().take(50).collect();
        let mut bin = Vec::new();
        write_binary(&mut bin, refs.iter().copied()).unwrap();
        // A DTR1 file with a lying .txt extension still opens as binary.
        let path = temp_path("lying.txt");
        std::fs::write(&path, &bin).unwrap();
        let registry = FrontendRegistry::builtin();
        let frontend = registry.find(&path).unwrap().unwrap();
        assert_eq!(frontend.name(), "binary");
        let got = collect_all(registry.open(&path).unwrap()).unwrap();
        assert_eq!(got, refs);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn registry_opens_every_builtin_format() {
        let refs: Vec<MemRef> = PaperTrace::Thor
            .workload()
            .take(300)
            .map(|r| r.with_flags(RefFlags::empty()))
            .collect();

        let mut bin = Vec::new();
        write_binary(&mut bin, refs.iter().copied()).unwrap();
        let mut packed = Vec::new();
        crate::compress::write_compressed(&mut packed, refs.iter().copied()).unwrap();
        let mut corpus = Vec::new();
        crate::corpus::write_corpus(
            &mut corpus,
            crate::source::IterSource::new(refs.iter().copied()),
        )
        .unwrap();
        let mut text = Vec::new();
        crate::io::write_text(&mut text, refs.iter().copied()).unwrap();
        let mut csv = Vec::new();
        write_csv(&mut csv, refs.iter().copied()).unwrap();

        for (name, ext, bytes) in [
            ("binary", "dtr", &bin),
            ("compressed", "dtr2", &packed),
            ("corpus", "dtrz", &corpus),
            ("text", "txt", &text),
            ("csv", "csv", &csv),
        ] {
            let path = temp_path(&format!("fmt.{ext}"));
            std::fs::write(&path, bytes).unwrap();
            let registry = FrontendRegistry::builtin();
            let frontend = registry.find(&path).unwrap().unwrap();
            assert_eq!(frontend.name(), name, "extension {ext}");
            let got = collect_all(registry.open(&path).unwrap()).unwrap();
            assert_eq!(got, refs, "format {name}");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn unknown_files_fail_with_bad_magic() {
        let path = temp_path("mystery.bits");
        std::fs::write(&path, b"GARBAGE!").unwrap();
        let registry = FrontendRegistry::builtin();
        assert!(registry.find(&path).unwrap().is_none());
        let err = match registry.open(&path) {
            Err(e) => e,
            Ok(_) => panic!("garbage file must not open"),
        };
        assert!(matches!(err, TraceIoError::BadMagic(_)), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn custom_frontends_can_register() {
        #[derive(Debug)]
        struct Claims;
        impl TraceFrontend for Claims {
            fn name(&self) -> &'static str {
                "claims"
            }
            fn description(&self) -> &'static str {
                "test"
            }
            fn sniff(&self, path: &Path, _prefix: &[u8]) -> bool {
                ext_of(path).as_deref() == Some("weird")
            }
            fn open(&self, _path: &Path) -> Result<Box<dyn TraceSource + Send>, TraceIoError> {
                Ok(Box::new(crate::source::IterSource::new(std::iter::empty())))
            }
        }
        let mut registry = FrontendRegistry::builtin();
        registry.register(Box::new(Claims));
        assert!(registry.names().contains(&"claims"));
        let path = temp_path("x.weird");
        std::fs::write(&path, b"").unwrap();
        let frontend = registry.find(&path).unwrap().unwrap();
        assert_eq!(frontend.name(), "claims");
        std::fs::remove_file(&path).unwrap();
    }
}
