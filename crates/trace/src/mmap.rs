//! Memory-mapped `DTR1` trace source.
//!
//! [`crate::io::BinaryReader`] pulls file bytes through `std::io` buffers
//! and hands out one record at a time; at corpus scale (10⁸ references,
//! ~1.6 GB) the copy into the read buffer and the per-chunk buffer
//! traffic start to dominate decode. [`MmapTraceSource`] maps the file
//! instead and decodes records straight out of the map into one reusable
//! chunk buffer: no read syscalls on the hot path, no per-record heap
//! traffic, and the kernel's page cache is shared across simultaneous
//! readers of the same corpus.
//!
//! The map is advised `MADV_SEQUENTIAL` at open, and as decoding crosses
//! each 1 MiB window the next window is advised `MADV_WILLNEED`, so page
//! faults overlap with decode instead of stalling it.
//!
//! File validation happens at open: a missing or foreign magic is
//! [`TraceIoError::BadMagic`], a file shorter than its header is
//! [`TraceIoError::TruncatedRecord`], and a byte length that is not a
//! whole number of records yields every complete record followed by a
//! single [`TraceIoError::TruncatedRecord`] — exactly the buffered
//! reader's behaviour, which the equivalence property tests pin.
//!
//! On non-Unix targets (no `mmap`) the source falls back to reading the
//! whole file into a heap buffer; the decode path and error behaviour
//! are identical.

use std::fs::File;
use std::io;
use std::path::Path;

use crate::codec::{self, HEADER_LEN, RECORD_LEN};
use crate::io::TraceIoError;
use crate::source::{BorrowedChunkSource, TraceSource};
use crate::types::MemRef;

/// Bytes of lookahead advised `MADV_WILLNEED` as decode crosses each
/// window boundary.
const PREFETCH_WINDOW: usize = 1 << 20;

#[cfg(unix)]
mod sys {
    //! The slice of the mmap syscall surface this module needs, declared
    //! directly: the workspace is dependency-free, so there is no `libc`
    //! crate to lean on. Constants are the Linux values; they match every
    //! tier-1 Unix target for these three calls.

    use core::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MADV_SEQUENTIAL: c_int = 2;
    pub const MADV_WILLNEED: c_int = 3;

    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }
}

/// A read-only view of a whole file: an `mmap` region on Unix, a heap
/// buffer elsewhere (and for empty files, which `mmap` rejects).
#[derive(Debug)]
enum Backing {
    #[cfg(unix)]
    Mapped {
        ptr: *mut core::ffi::c_void,
        len: usize,
    },
    Heap(Vec<u8>),
}

/// An owned read-only mapping of a file's bytes.
#[derive(Debug)]
pub struct Mapping {
    backing: Backing,
}

// The region is owned exclusively by this value and only ever read, so
// moving it across threads is sound (the pipelined engine requires its
// sources to be `Send`).
unsafe impl Send for Mapping {}

impl Mapping {
    /// Maps `file` (falling back to a heap read where `mmap` is
    /// unavailable or meaningless, e.g. empty files).
    ///
    /// # Errors
    ///
    /// Returns any error from the underlying syscalls or file reads.
    pub fn of_file(file: &mut File) -> io::Result<Self> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        Self::map_impl(file, len)
    }

    /// Opens and maps the file at `path`.
    ///
    /// # Errors
    ///
    /// Returns any error from opening or mapping the file.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut file = File::open(path)?;
        Self::of_file(&mut file)
    }

    #[cfg(unix)]
    fn map_impl(file: &mut File, len: usize) -> io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            // mmap(len = 0) is EINVAL; an empty view needs no map.
            return Ok(Mapping {
                backing: Backing::Heap(Vec::new()),
            });
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        // Advisory only: a failure here costs prefetch, not correctness.
        unsafe { sys::madvise(ptr, len, sys::MADV_SEQUENTIAL) };
        Ok(Mapping {
            backing: Backing::Mapped { ptr, len },
        })
    }

    #[cfg(not(unix))]
    fn map_impl(file: &mut File, len: usize) -> io::Result<Self> {
        use std::io::Read;
        let mut bytes = Vec::with_capacity(len);
        file.read_to_end(&mut bytes)?;
        Ok(Mapping {
            backing: Backing::Heap(bytes),
        })
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(*ptr as *const u8, *len)
            },
            Backing::Heap(v) => v,
        }
    }

    /// Hints that `[offset, offset + len)` will be read soon. Clamped to
    /// the mapping; a no-op on heap backings.
    pub fn advise_willneed(&self, offset: usize, len: usize) {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, len: map_len } => {
                if offset >= *map_len {
                    return;
                }
                let len = len.min(*map_len - offset);
                let start = (*ptr as usize + offset) as *mut core::ffi::c_void;
                unsafe { sys::madvise(start, len, sys::MADV_WILLNEED) };
            }
            Backing::Heap(_) => {}
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => {
                unsafe { sys::munmap(*ptr, *len) };
            }
            Backing::Heap(_) => {}
        }
    }
}

/// A [`TraceSource`] (and [`BorrowedChunkSource`]) decoding `DTR1`
/// records straight from a file mapping.
///
/// # Examples
///
/// ```no_run
/// use dirsim_trace::mmap::MmapTraceSource;
/// use dirsim_trace::source::collect_all;
///
/// let source = MmapTraceSource::open("corpus.dtr")?;
/// let refs = collect_all(source)?;
/// # Ok::<(), dirsim_trace::TraceIoError>(())
/// ```
#[derive(Debug)]
pub struct MmapTraceSource {
    map: Mapping,
    /// Byte offset of the next undecoded record.
    pos: usize,
    /// One past the last byte of the last *complete* record.
    end: usize,
    /// Whether bytes trail past `end` (a torn final record).
    torn_tail: bool,
    /// Sticky end-of-stream / post-error flag.
    done: bool,
    /// Reused decode buffer backing [`BorrowedChunkSource`] chunks.
    chunk: Vec<MemRef>,
    /// High-water mark of `MADV_WILLNEED` advice.
    prefetched_to: usize,
}

impl MmapTraceSource {
    /// Opens and validates the file at `path`.
    ///
    /// # Errors
    ///
    /// * [`TraceIoError::Io`] if the file cannot be opened or mapped.
    /// * [`TraceIoError::TruncatedRecord`] if it is shorter than the
    ///   8-byte header.
    /// * [`TraceIoError::BadMagic`] if the magic is not `DTR1`.
    ///
    /// A torn final record is *not* an open error: the stream yields all
    /// complete records first and then fails, like the buffered reader.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceIoError> {
        let map = Mapping::open(path)?;
        Self::from_mapping(map)
    }

    /// Wraps an existing mapping (the whole file, header included).
    ///
    /// # Errors
    ///
    /// See [`open`](Self::open).
    pub fn from_mapping(map: Mapping) -> Result<Self, TraceIoError> {
        let bytes = map.bytes();
        if bytes.len() < HEADER_LEN {
            return Err(TraceIoError::TruncatedRecord);
        }
        let header: [u8; HEADER_LEN] = bytes[0..HEADER_LEN].try_into().expect("len checked");
        codec::check_header(&header)?;
        let payload = bytes.len() - HEADER_LEN;
        let end = HEADER_LEN + (payload / RECORD_LEN) * RECORD_LEN;
        let torn_tail = payload % RECORD_LEN != 0;
        Ok(MmapTraceSource {
            map,
            pos: HEADER_LEN,
            end,
            torn_tail,
            done: false,
            chunk: Vec::new(),
            prefetched_to: HEADER_LEN,
        })
    }

    /// Opens a window of the file: decoding starts at byte `offset`
    /// (which must sit on a record boundary past the header) and covers
    /// at most `max_records` records. Used to shard one corpus file
    /// across readers.
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open), plus [`TraceIoError::Misaligned`] when
    /// `offset` is inside the header or not on a record boundary.
    pub fn open_window(
        path: impl AsRef<Path>,
        offset: u64,
        max_records: u64,
    ) -> Result<Self, TraceIoError> {
        let mut source = Self::open(path)?;
        let off = usize::try_from(offset).map_err(|_| TraceIoError::Misaligned { offset })?;
        if off < HEADER_LEN || (off - HEADER_LEN) % RECORD_LEN != 0 {
            return Err(TraceIoError::Misaligned { offset });
        }
        source.pos = off.min(source.end);
        let span = (source.end - source.pos) as u64 / RECORD_LEN as u64;
        if max_records < span {
            source.end = source.pos + (max_records as usize) * RECORD_LEN;
            // The cut is ours, not the file's.
            source.torn_tail = false;
        }
        source.prefetched_to = source.pos;
        Ok(source)
    }

    /// Number of complete records remaining ahead of the cursor (the
    /// whole stream when called right after opening).
    pub fn record_count(&self) -> u64 {
        (self.end.saturating_sub(self.pos) / RECORD_LEN) as u64
    }

    /// Decodes up to `max` records into `out` (which is cleared first).
    fn decode_chunk(
        out: &mut Vec<MemRef>,
        bytes: &[u8],
        pos: usize,
        max: usize,
    ) -> Result<usize, TraceIoError> {
        out.clear();
        let take = max.min(bytes[pos..].len() / RECORD_LEN);
        out.reserve(take);
        for i in 0..take {
            let at = pos + i * RECORD_LEN;
            let rec: &[u8; RECORD_LEN] =
                bytes[at..at + RECORD_LEN].try_into().expect("len checked");
            out.push(codec::decode_record(rec)?);
        }
        Ok(take)
    }

    /// Shared body of both read paths: advises the next prefetch window,
    /// decodes into `out`, and updates the cursor / error state.
    fn fill(&mut self, max: usize) -> Result<(), TraceIoError> {
        if self.done {
            self.chunk.clear();
            return Ok(());
        }
        if self.pos >= self.end {
            self.chunk.clear();
            self.done = true;
            if self.torn_tail {
                return Err(TraceIoError::TruncatedRecord);
            }
            return Ok(());
        }
        if self.pos + PREFETCH_WINDOW > self.prefetched_to {
            self.map
                .advise_willneed(self.prefetched_to, PREFETCH_WINDOW);
            self.prefetched_to = (self.prefetched_to + PREFETCH_WINDOW).min(self.end);
        }
        let mut chunk = std::mem::take(&mut self.chunk);
        let bytes = &self.map.bytes()[..self.end];
        let res = Self::decode_chunk(&mut chunk, bytes, self.pos, max);
        self.chunk = chunk;
        match res {
            Ok(n) => {
                self.pos += n * RECORD_LEN;
                Ok(())
            }
            Err(e) => {
                self.done = true;
                self.chunk.clear();
                Err(e)
            }
        }
    }
}

impl TraceSource for MmapTraceSource {
    fn read_chunk(&mut self, buf: &mut Vec<MemRef>, max: usize) -> Result<usize, TraceIoError> {
        self.fill(max)?;
        buf.clear();
        buf.extend_from_slice(&self.chunk);
        Ok(buf.len())
    }

    fn borrowed(&mut self) -> Option<&mut dyn BorrowedChunkSource> {
        Some(self)
    }
}

impl BorrowedChunkSource for MmapTraceSource {
    fn next_chunk(&mut self, max: usize) -> Result<&[MemRef], TraceIoError> {
        self.fill(max)?;
        Ok(&self.chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::write_binary;
    use crate::source::collect_all;
    use crate::synth::PaperTrace;

    fn write_temp(bytes: &[u8]) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "dirsim-mmap-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn decodes_a_round_tripped_trace() {
        let refs: Vec<MemRef> = PaperTrace::Pops.workload().take(5000).collect();
        let mut buf = Vec::new();
        write_binary(&mut buf, refs.iter().copied()).unwrap();
        let path = write_temp(&buf);
        let source = MmapTraceSource::open(&path).unwrap();
        assert_eq!(source.record_count(), refs.len() as u64);
        assert_eq!(collect_all(source).unwrap(), refs);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn borrowed_chunks_match_owned_chunks() {
        let refs: Vec<MemRef> = PaperTrace::Thor.workload().take(1000).collect();
        let mut buf = Vec::new();
        write_binary(&mut buf, refs.iter().copied()).unwrap();
        let path = write_temp(&buf);
        let mut source = MmapTraceSource::open(&path).unwrap();
        let mut seen = Vec::new();
        loop {
            let chunk = source.next_chunk(77).unwrap();
            if chunk.is_empty() {
                break;
            }
            seen.extend_from_slice(chunk);
        }
        assert_eq!(seen, refs);
        // End of stream is sticky on the borrowed path too.
        assert!(source.next_chunk(77).unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_fails_at_open() {
        let path = write_temp(b"NOPE0000");
        assert!(matches!(
            MmapTraceSource::open(&path),
            Err(TraceIoError::BadMagic(m)) if &m == b"NOPE"
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn short_header_fails_at_open() {
        let path = write_temp(b"DTR");
        assert!(matches!(
            MmapTraceSource::open(&path),
            Err(TraceIoError::TruncatedRecord)
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_yields_full_records_then_truncated_error() {
        let refs: Vec<MemRef> = PaperTrace::Pops.workload().take(10).collect();
        let mut buf = Vec::new();
        write_binary(&mut buf, refs.iter().copied()).unwrap();
        buf.truncate(buf.len() - 5); // tear the final record
        let path = write_temp(&buf);
        let mut source = MmapTraceSource::open(&path).unwrap();
        let mut seen = Vec::new();
        let mut chunk = Vec::new();
        let err = loop {
            match source.read_chunk(&mut chunk, 3) {
                Ok(0) => panic!("stream ended without reporting the torn tail"),
                Ok(_) => seen.extend_from_slice(&chunk),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, TraceIoError::TruncatedRecord));
        assert_eq!(seen, &refs[..9], "every complete record, no partials");
        // Fused after the error.
        assert_eq!(source.read_chunk(&mut chunk, 3).unwrap(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_only_file_is_an_empty_stream() {
        let path = write_temp(&crate::codec::header_bytes());
        let source = MmapTraceSource::open(&path).unwrap();
        assert_eq!(source.record_count(), 0);
        assert!(collect_all(source).unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn windows_shard_the_file() {
        let refs: Vec<MemRef> = PaperTrace::Pops.workload().take(100).collect();
        let mut buf = Vec::new();
        write_binary(&mut buf, refs.iter().copied()).unwrap();
        let path = write_temp(&buf);
        let offset = (HEADER_LEN + 40 * RECORD_LEN) as u64;
        let window = MmapTraceSource::open_window(&path, offset, 30).unwrap();
        assert_eq!(collect_all(window).unwrap(), &refs[40..70]);
        assert!(matches!(
            MmapTraceSource::open_window(&path, offset + 1, 30),
            Err(TraceIoError::Misaligned { .. })
        ));
        assert!(matches!(
            MmapTraceSource::open_window(&path, 4, 30),
            Err(TraceIoError::Misaligned { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
