//! Compressed binary trace format (`DTR2`).
//!
//! Address traces are highly regular: CPUs round-robin, processes repeat,
//! and consecutive addresses from one CPU are near each other. `DTR2`
//! exploits that with per-record flag bytes, varint (LEB128) fields, and
//! zig-zag-encoded address deltas tracked *per CPU* — typically 3–5×
//! smaller than the fixed 16-byte [`crate::io`] records while
//! round-tripping exactly.
//!
//! Record layout: one flags byte (`kind:2 | lock:1 | os:1 | same_cpu:1 |
//! same_pid:1`), then `cpu: u16` unless `same_cpu`, `pid: varint` unless
//! `same_pid`, then a `zigzag-varint` address delta against that CPU's
//! previous address *of the same access kind* — instruction streams are
//! sequential and data streams are clustered, so splitting the prediction
//! per kind keeps most deltas to one or two bytes.

use std::collections::HashMap;
use std::io::{Read, Write};

use crate::io::TraceIoError;
use crate::types::{AccessKind, Addr, CpuId, MemRef, ProcessId, RefFlags};

/// Magic bytes opening a compressed trace stream.
pub const COMPRESSED_MAGIC: [u8; 4] = *b"DTR2";

const KIND_MASK: u8 = 0b0000_0011;
const FLAG_LOCK: u8 = 0b0000_0100;
const FLAG_OS: u8 = 0b0000_1000;
const FLAG_SAME_CPU: u8 = 0b0001_0000;
const FLAG_SAME_PID: u8 = 0b0010_0000;

fn write_varint<W: Write>(w: &mut W, mut value: u64) -> std::io::Result<()> {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> Result<u64, TraceIoError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)
            .map_err(|_| TraceIoError::TruncatedRecord)?;
        if shift >= 64 {
            return Err(TraceIoError::TruncatedRecord);
        }
        value |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Writes the compressed header and all references.
///
/// # Errors
///
/// Returns any error from the underlying writer.
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use dirsim_trace::compress::{read_compressed, write_compressed};
/// use dirsim_trace::{MemRef, CpuId, ProcessId, Addr};
///
/// let refs = vec![MemRef::read(CpuId::new(0), ProcessId::new(0), Addr::new(64))];
/// let mut buf = Vec::new();
/// write_compressed(&mut buf, refs.iter().copied())?;
/// let back: Vec<_> = read_compressed(&buf[..]).collect::<Result<_, _>>()?;
/// assert_eq!(back, refs);
/// # Ok(())
/// # }
/// ```
pub fn write_compressed<W, I>(w: &mut W, refs: I) -> Result<u64, TraceIoError>
where
    W: Write,
    I: IntoIterator<Item = MemRef>,
{
    let mut enc = Encoder::new(w)?;
    for r in refs {
        enc.push(&r)?;
    }
    let (_, count) = enc.finish()?;
    Ok(count)
}

/// Incremental `DTR2` encoder: header on construction, one record per
/// [`push`](Self::push).
///
/// This is the streaming counterpart of [`write_compressed`], used where
/// references arrive chunk by chunk (corpus packing) rather than as one
/// iterator.
#[derive(Debug)]
pub struct Encoder<W> {
    w: W,
    count: u64,
    last_cpu: Option<u16>,
    last_pid: Option<u32>,
    last_addr: HashMap<(u16, u8), u64>,
}

impl<W: Write> Encoder<W> {
    /// Writes the `DTR2` header and returns the encoder.
    ///
    /// # Errors
    ///
    /// Returns any error from the underlying writer.
    pub fn new(mut w: W) -> Result<Self, TraceIoError> {
        w.write_all(&COMPRESSED_MAGIC)?;
        w.write_all(&[1, 0, 0, 0])?;
        Ok(Encoder {
            w,
            count: 0,
            last_cpu: None,
            last_pid: None,
            last_addr: HashMap::new(),
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Returns any error from the underlying writer.
    pub fn push(&mut self, r: &MemRef) -> Result<(), TraceIoError> {
        let cpu = r.cpu.index() as u16;
        let pid = r.pid.index() as u32;
        let mut flags = match r.kind {
            AccessKind::InstrFetch => 0u8,
            AccessKind::Read => 1,
            AccessKind::Write => 2,
        };
        if r.flags.is_lock() {
            flags |= FLAG_LOCK;
        }
        if r.flags.is_os() {
            flags |= FLAG_OS;
        }
        if self.last_cpu == Some(cpu) {
            flags |= FLAG_SAME_CPU;
        }
        if self.last_pid == Some(pid) {
            flags |= FLAG_SAME_PID;
        }
        self.w.write_all(&[flags])?;
        if self.last_cpu != Some(cpu) {
            self.w.write_all(&cpu.to_le_bytes())?;
        }
        if self.last_pid != Some(pid) {
            write_varint(&mut self.w, u64::from(pid))?;
        }
        let kind_tag = flags & KIND_MASK;
        let prev = self.last_addr.get(&(cpu, kind_tag)).copied().unwrap_or(0);
        let delta = r.addr.raw().wrapping_sub(prev) as i64;
        write_varint(&mut self.w, zigzag(delta))?;
        self.last_addr.insert((cpu, kind_tag), r.addr.raw());
        self.last_cpu = Some(cpu);
        self.last_pid = Some(pid);
        self.count += 1;
        Ok(())
    }

    /// Number of records encoded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Flushes and returns the underlying writer and the record count.
    ///
    /// # Errors
    ///
    /// Returns any error from flushing the underlying writer.
    pub fn finish(mut self) -> Result<(W, u64), TraceIoError> {
        self.w.flush()?;
        Ok((self.w, self.count))
    }
}

/// Streaming reader over a compressed trace.
#[derive(Debug)]
pub struct CompressedReader<R> {
    inner: R,
    checked_header: bool,
    failed: bool,
    last_cpu: Option<u16>,
    last_pid: Option<u32>,
    last_addr: HashMap<(u16, u8), u64>,
}

/// Opens a compressed trace stream for reading.
pub fn read_compressed<R: Read>(reader: R) -> CompressedReader<R> {
    CompressedReader {
        inner: reader,
        checked_header: false,
        failed: false,
        last_cpu: None,
        last_pid: None,
        last_addr: HashMap::new(),
    }
}

impl<R: Read> CompressedReader<R> {
    /// Shared view of the underlying reader (used by the corpus reader
    /// to consult checksum state after the stream ends).
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    fn check_header(&mut self) -> Result<(), TraceIoError> {
        let mut header = [0u8; 8];
        self.inner.read_exact(&mut header)?;
        let magic: [u8; 4] = header[0..4].try_into().expect("slice length is 4");
        if magic != COMPRESSED_MAGIC {
            return Err(TraceIoError::BadMagic(magic));
        }
        Ok(())
    }

    fn read_record(&mut self) -> Option<Result<MemRef, TraceIoError>> {
        let mut flags = [0u8; 1];
        loop {
            match self.inner.read(&mut flags) {
                Ok(0) => return None,
                Ok(_) => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Some(Err(e.into())),
            }
        }
        let flags = flags[0];
        let kind = match flags & KIND_MASK {
            0 => AccessKind::InstrFetch,
            1 => AccessKind::Read,
            2 => AccessKind::Write,
            other => return Some(Err(TraceIoError::BadAccessKind(other))),
        };
        let cpu = if flags & FLAG_SAME_CPU != 0 {
            match self.last_cpu {
                Some(c) => c,
                None => return Some(Err(TraceIoError::TruncatedRecord)),
            }
        } else {
            let mut bytes = [0u8; 2];
            if self.inner.read_exact(&mut bytes).is_err() {
                return Some(Err(TraceIoError::TruncatedRecord));
            }
            u16::from_le_bytes(bytes)
        };
        let pid = if flags & FLAG_SAME_PID != 0 {
            match self.last_pid {
                Some(p) => p,
                None => return Some(Err(TraceIoError::TruncatedRecord)),
            }
        } else {
            match read_varint(&mut self.inner) {
                Ok(v) if v <= u64::from(u32::MAX) => v as u32,
                Ok(_) => return Some(Err(TraceIoError::TruncatedRecord)),
                Err(e) => return Some(Err(e)),
            }
        };
        let delta = match read_varint(&mut self.inner) {
            Ok(v) => unzigzag(v),
            Err(e) => return Some(Err(e)),
        };
        let kind_tag = flags & KIND_MASK;
        let prev = self.last_addr.get(&(cpu, kind_tag)).copied().unwrap_or(0);
        let addr = prev.wrapping_add(delta as u64);
        self.last_addr.insert((cpu, kind_tag), addr);
        self.last_cpu = Some(cpu);
        self.last_pid = Some(pid);
        let mut ref_flags = RefFlags::empty();
        if flags & FLAG_LOCK != 0 {
            ref_flags = ref_flags.with_lock();
        }
        if flags & FLAG_OS != 0 {
            ref_flags = ref_flags.with_os();
        }
        Some(Ok(MemRef {
            cpu: CpuId::new(cpu),
            pid: ProcessId::new(pid),
            addr: Addr::new(addr),
            kind,
            flags: ref_flags,
        }))
    }
}

impl<R: Read> Iterator for CompressedReader<R> {
    type Item = Result<MemRef, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if !self.checked_header {
            self.checked_header = true;
            if let Err(e) = self.check_header() {
                self.failed = true;
                return Some(Err(e));
            }
        }
        match self.read_record() {
            Some(Err(e)) => {
                self.failed = true;
                Some(Err(e))
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::write_binary;
    use crate::synth::PaperTrace;

    fn sample() -> Vec<MemRef> {
        vec![
            MemRef::instr(CpuId::new(0), ProcessId::new(0), Addr::new(0x1000)),
            MemRef::read(CpuId::new(1), ProcessId::new(2), Addr::new(0x2000))
                .with_flags(RefFlags::empty().with_lock()),
            MemRef::write(CpuId::new(0), ProcessId::new(0), Addr::new(0x1010))
                .with_flags(RefFlags::empty().with_os()),
            MemRef::read(CpuId::new(1), ProcessId::new(2), Addr::new(0x1ff0)),
        ]
    }

    #[test]
    fn round_trips_exactly() {
        let refs = sample();
        let mut buf = Vec::new();
        let n = write_compressed(&mut buf, refs.iter().copied()).unwrap();
        assert_eq!(n, 4);
        let back: Vec<_> = read_compressed(&buf[..]).collect::<Result<_, _>>().unwrap();
        assert_eq!(back, refs);
    }

    #[test]
    fn round_trips_a_real_workload() {
        let refs: Vec<MemRef> = PaperTrace::Pops.workload().take(30_000).collect();
        let mut buf = Vec::new();
        write_compressed(&mut buf, refs.iter().copied()).unwrap();
        let back: Vec<_> = read_compressed(&buf[..]).collect::<Result<_, _>>().unwrap();
        assert_eq!(back, refs);
    }

    #[test]
    fn compresses_well() {
        let refs: Vec<MemRef> = PaperTrace::Thor.workload().take(30_000).collect();
        let mut raw = Vec::new();
        write_binary(&mut raw, refs.iter().copied()).unwrap();
        let mut packed = Vec::new();
        write_compressed(&mut packed, refs.iter().copied()).unwrap();
        let ratio = raw.len() as f64 / packed.len() as f64;
        assert!(ratio > 2.0, "compression ratio only {ratio:.2}");
    }

    #[test]
    fn bad_magic_detected() {
        let buf = b"DTR1....".to_vec();
        let mut rd = read_compressed(&buf[..]);
        assert!(matches!(rd.next(), Some(Err(TraceIoError::BadMagic(_)))));
        assert!(rd.next().is_none());
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        write_compressed(&mut buf, sample()).unwrap();
        buf.truncate(buf.len() - 1);
        let results: Vec<_> = read_compressed(&buf[..]).collect();
        assert!(results.last().unwrap().is_err());
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 123456, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            let got = read_varint(&mut &buf[..]).unwrap();
            assert_eq!(got, v);
        }
    }

    #[test]
    fn incremental_encoder_matches_batch() {
        let refs: Vec<MemRef> = PaperTrace::Pops.workload().take(2000).collect();
        let mut batch = Vec::new();
        write_compressed(&mut batch, refs.iter().copied()).unwrap();
        let mut enc = Encoder::new(Vec::new()).unwrap();
        for r in &refs {
            enc.push(r).unwrap();
        }
        assert_eq!(enc.count(), refs.len() as u64);
        let (streamed, count) = enc.finish().unwrap();
        assert_eq!(count, refs.len() as u64);
        assert_eq!(streamed, batch, "byte-identical encodings");
    }

    #[test]
    fn empty_stream_is_valid() {
        let mut buf = Vec::new();
        write_compressed(&mut buf, std::iter::empty()).unwrap();
        let back: Vec<_> = read_compressed(&buf[..])
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        assert!(back.is_empty());
    }
}
