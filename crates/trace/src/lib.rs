//! # dirsim-trace
//!
//! Multiprocessor address traces for cache-coherence simulation: the
//! reference model, file formats, statistics, filters, and synthetic
//! workload generators.
//!
//! This crate is the stand-in for the ATUM trace infrastructure used by
//! Agarwal, Simoni, Hennessy & Horowitz, *"An Evaluation of Directory
//! Schemes for Cache Coherence"* (ISCA 1988). A trace is an interleaved
//! stream of [`MemRef`]s; statistics ([`TraceStats`]) correspond to the
//! paper's Table 3; the synthetic generators ([`synth`]) reproduce the
//! first-order characteristics of the paper's POPS / THOR / PERO traces.
//!
//! ## Quick start
//!
//! ```
//! use dirsim_trace::synth::PaperTrace;
//! use dirsim_trace::TraceStats;
//!
//! // A deterministic stand-in for the paper's POPS trace:
//! let refs: Vec<_> = PaperTrace::Pops.workload().take(10_000).collect();
//! let stats = TraceStats::from_refs(refs);
//! assert_eq!(stats.cpu_count(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod compress;
pub mod corpus;
pub mod filter;
pub mod frontend;
pub mod io;
pub mod mmap;
pub mod scenario;
pub mod source;
pub mod stats;
pub mod synth;
pub mod types;

pub use frontend::{open_trace, FrontendRegistry, TraceFrontend};
pub use io::TraceIoError;
pub use mmap::MmapTraceSource;
pub use scenario::{Scenario, ScenarioError};
pub use source::{BorrowedChunkSource, IterSource, TakeSource, TraceSource};
pub use stats::TraceStats;
pub use types::{AccessKind, Addr, CpuId, MemRef, ProcessId, RefFlags};
