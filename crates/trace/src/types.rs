//! Fundamental vocabulary for multiprocessor address traces.
//!
//! A trace is an interleaved stream of [`MemRef`] records, one per memory
//! reference issued by any processor, in global time order. This mirrors the
//! ATUM multiprocessor traces used by the paper: each record carries the
//! issuing CPU, the scheduled process, the byte address, and the access kind,
//! plus annotations (lock spin, operating-system activity) that the paper's
//! §5.2 experiments rely on.

use std::fmt;

/// Identifier of a physical processor (and, in the paper's model, of the
/// cache attached to it).
///
/// # Examples
///
/// ```
/// use dirsim_trace::CpuId;
/// let cpu = CpuId::new(2);
/// assert_eq!(cpu.index(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CpuId(u16);

impl CpuId {
    /// Creates a CPU identifier from a zero-based index.
    pub fn new(index: u16) -> Self {
        CpuId(index)
    }

    /// Returns the zero-based index of this CPU.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl From<u16> for CpuId {
    fn from(value: u16) -> Self {
        CpuId(value)
    }
}

/// Identifier of a software process.
///
/// The paper defines sharing at *process* granularity: a block is shared only
/// if more than one process touches it, so that sharing induced purely by
/// process migration is excluded (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates a process identifier from a zero-based index.
    pub fn new(index: u32) -> Self {
        ProcessId(index)
    }

    /// Returns the zero-based index of this process.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(value: u32) -> Self {
        ProcessId(value)
    }
}

/// A byte address in the shared physical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    pub fn new(byte: u64) -> Self {
        Addr(byte)
    }

    /// Returns the raw byte value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(value: u64) -> Self {
        Addr(value)
    }
}

/// The kind of a memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch. The paper assumes instruction references cause no
    /// coherence traffic and excludes instruction misses from cost (§4).
    InstrFetch,
    /// Data read.
    Read,
    /// Data write.
    Write,
}

impl AccessKind {
    /// Returns `true` for data reads and writes (everything except
    /// instruction fetches).
    pub fn is_data(self) -> bool {
        !matches!(self, AccessKind::InstrFetch)
    }

    /// Returns `true` for data writes.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }

    /// One-letter code used by the text trace format: `i`, `r`, or `w`.
    pub fn code(self) -> char {
        match self {
            AccessKind::InstrFetch => 'i',
            AccessKind::Read => 'r',
            AccessKind::Write => 'w',
        }
    }

    /// Parses the one-letter code used by the text trace format.
    pub fn from_code(code: char) -> Option<Self> {
        match code {
            'i' => Some(AccessKind::InstrFetch),
            'r' => Some(AccessKind::Read),
            'w' => Some(AccessKind::Write),
            _ => None,
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AccessKind::InstrFetch => "instr",
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        };
        f.write_str(name)
    }
}

/// Annotation flags attached to a reference.
///
/// Flags never change how a protocol treats a reference; they exist so that
/// experiments can *select* references (e.g. §5.2 removes spin-lock test
/// reads and re-measures `Dir1NB`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RefFlags(u8);

impl RefFlags {
    const LOCK: u8 = 0b0000_0001;
    const OS: u8 = 0b0000_0010;

    /// No annotations.
    pub const fn empty() -> Self {
        RefFlags(0)
    }

    /// Marks the reference as part of a spin on a lock (the read in the first
    /// test of a test-and-test-and-set primitive).
    pub fn with_lock(mut self) -> Self {
        self.0 |= Self::LOCK;
        self
    }

    /// Marks the reference as operating-system activity.
    pub fn with_os(mut self) -> Self {
        self.0 |= Self::OS;
        self
    }

    /// Whether the reference is a spin-lock test read.
    pub fn is_lock(self) -> bool {
        self.0 & Self::LOCK != 0
    }

    /// Whether the reference is operating-system activity.
    pub fn is_os(self) -> bool {
        self.0 & Self::OS != 0
    }

    /// Raw bits, used by the binary trace format.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Reconstructs flags from raw bits, ignoring unknown bits.
    pub fn from_bits(bits: u8) -> Self {
        RefFlags(bits & (Self::LOCK | Self::OS))
    }
}

/// One memory reference in an interleaved multiprocessor trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Issuing processor.
    pub cpu: CpuId,
    /// Process scheduled on that processor at the time of the reference.
    pub pid: ProcessId,
    /// Byte address referenced.
    pub addr: Addr,
    /// Kind of access.
    pub kind: AccessKind,
    /// Annotations (lock spin, OS activity).
    pub flags: RefFlags,
}

impl MemRef {
    /// Creates an un-annotated reference.
    ///
    /// # Examples
    ///
    /// ```
    /// use dirsim_trace::{AccessKind, Addr, CpuId, MemRef, ProcessId};
    /// let r = MemRef::new(CpuId::new(0), ProcessId::new(7), Addr::new(0x1000), AccessKind::Read);
    /// assert!(r.kind.is_data());
    /// ```
    pub fn new(cpu: CpuId, pid: ProcessId, addr: Addr, kind: AccessKind) -> Self {
        MemRef {
            cpu,
            pid,
            addr,
            kind,
            flags: RefFlags::empty(),
        }
    }

    /// Shorthand for an instruction fetch.
    pub fn instr(cpu: CpuId, pid: ProcessId, addr: Addr) -> Self {
        Self::new(cpu, pid, addr, AccessKind::InstrFetch)
    }

    /// Shorthand for a data read.
    pub fn read(cpu: CpuId, pid: ProcessId, addr: Addr) -> Self {
        Self::new(cpu, pid, addr, AccessKind::Read)
    }

    /// Shorthand for a data write.
    pub fn write(cpu: CpuId, pid: ProcessId, addr: Addr) -> Self {
        Self::new(cpu, pid, addr, AccessKind::Write)
    }

    /// Returns the same reference with the given flags.
    pub fn with_flags(mut self, flags: RefFlags) -> Self {
        self.flags = flags;
        self
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} {}", self.cpu, self.pid, self.kind, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_id_roundtrip() {
        let cpu = CpuId::new(3);
        assert_eq!(cpu.index(), 3);
        assert_eq!(CpuId::from(3u16), cpu);
        assert_eq!(cpu.to_string(), "cpu3");
    }

    #[test]
    fn process_id_roundtrip() {
        let pid = ProcessId::new(42);
        assert_eq!(pid.index(), 42);
        assert_eq!(ProcessId::from(42u32), pid);
        assert_eq!(pid.to_string(), "pid42");
    }

    #[test]
    fn addr_formatting() {
        let a = Addr::new(0xff00);
        assert_eq!(a.raw(), 0xff00);
        assert_eq!(a.to_string(), "0xff00");
        assert_eq!(format!("{:x}", a), "ff00");
    }

    #[test]
    fn access_kind_codes_roundtrip() {
        for kind in [AccessKind::InstrFetch, AccessKind::Read, AccessKind::Write] {
            assert_eq!(AccessKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(AccessKind::from_code('x'), None);
    }

    #[test]
    fn access_kind_predicates() {
        assert!(!AccessKind::InstrFetch.is_data());
        assert!(AccessKind::Read.is_data());
        assert!(AccessKind::Write.is_data());
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
    }

    #[test]
    fn flags_compose() {
        let f = RefFlags::empty().with_lock().with_os();
        assert!(f.is_lock());
        assert!(f.is_os());
        let g = RefFlags::from_bits(f.bits());
        assert_eq!(f, g);
    }

    #[test]
    fn flags_ignore_unknown_bits() {
        let f = RefFlags::from_bits(0xff);
        assert!(f.is_lock());
        assert!(f.is_os());
        assert_eq!(f.bits() & 0b1111_1100, 0);
    }

    #[test]
    fn memref_constructors() {
        let cpu = CpuId::new(1);
        let pid = ProcessId::new(2);
        let addr = Addr::new(0x40);
        assert_eq!(MemRef::instr(cpu, pid, addr).kind, AccessKind::InstrFetch);
        assert_eq!(MemRef::read(cpu, pid, addr).kind, AccessKind::Read);
        assert_eq!(MemRef::write(cpu, pid, addr).kind, AccessKind::Write);
        let r = MemRef::read(cpu, pid, addr).with_flags(RefFlags::empty().with_lock());
        assert!(r.flags.is_lock());
    }

    #[test]
    fn memref_display() {
        let r = MemRef::read(CpuId::new(0), ProcessId::new(1), Addr::new(16));
        assert_eq!(r.to_string(), "cpu0 pid1 read 0x10");
    }
}
