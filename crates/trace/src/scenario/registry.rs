//! The bundled scenario registry.
//!
//! Every `.scn` file under `crates/trace/scenarios/` is compiled into the
//! binary with `include_str!` and parsed once, on first use, into a
//! static list of [`Scenario`]s. The first three entries are the paper's
//! POPS / THOR / PERO traces re-expressed as specs; the rest open the
//! scenario-diversity axis (open systems, skewed popularity, phases,
//! sharing-motif stress tests).

use std::sync::OnceLock;

use crate::scenario::Scenario;

/// The bundled spec texts, in registry order (paper traces first).
pub(crate) const BUNDLED_SPECS: &[&str] = &[
    include_str!("../../scenarios/pops.scn"),
    include_str!("../../scenarios/thor.scn"),
    include_str!("../../scenarios/pero.scn"),
    include_str!("../../scenarios/open-system.scn"),
    include_str!("../../scenarios/zipf-hot.scn"),
    include_str!("../../scenarios/phased.scn"),
    include_str!("../../scenarios/false-sharing.scn"),
    include_str!("../../scenarios/producer-consumer.scn"),
    include_str!("../../scenarios/lock-storm.scn"),
    include_str!("../../scenarios/barrier-heavy.scn"),
    include_str!("../../scenarios/migratory-16.scn"),
    include_str!("../../scenarios/read-mostly-8.scn"),
    include_str!("../../scenarios/open-zipf-phased.scn"),
];

/// All bundled scenarios, parsed and validated.
///
/// The list is stable across calls (parsed once into a static); lookups
/// by name go through [`Scenario::named`].
///
/// # Examples
///
/// ```
/// let names: Vec<_> = dirsim_trace::scenario::registry()
///     .iter()
///     .map(|s| s.name())
///     .collect();
/// assert!(names.contains(&"pops"));
/// assert!(names.len() >= 10);
/// ```
pub fn registry() -> &'static [Scenario] {
    static REGISTRY: OnceLock<Vec<Scenario>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        BUNDLED_SPECS
            .iter()
            .map(|text| {
                Scenario::parse(text).unwrap_or_else(|e| panic!("bundled scenario spec: {e}"))
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_at_least_ten_scenarios() {
        assert!(registry().len() >= 10, "{}", registry().len());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = registry().iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), registry().len());
    }

    #[test]
    fn paper_traces_lead_the_registry() {
        let names: Vec<_> = registry().iter().take(3).map(|s| s.name()).collect();
        assert_eq!(names, ["pops", "thor", "pero"]);
    }

    #[test]
    fn every_scenario_has_a_description() {
        for s in registry() {
            assert!(!s.description().is_empty(), "{}", s.name());
        }
    }
}
