//! Recursive-descent parser for the scenario spec format.
//!
//! The grammar is tiny (see DESIGN.md §15):
//!
//! ```text
//! spec    := "scenario" STRING "{" item* "}"
//! item    := IDENT "=" value
//!          | IDENT "{" item* "}"
//! value   := STRING | NUMBER
//! NUMBER  := decimal integer (with optional "_" separators),
//!            "0x" hexadecimal integer, or decimal float
//! ```
//!
//! `#` starts a comment that runs to end of line. Whitespace (including
//! newlines) is insignificant between tokens. Every token carries its
//! 1-based source line so both parse errors and the semantic errors
//! raised later by [`rules`](crate::scenario::rules) can point at the
//! offending line.

use std::fmt;

use crate::scenario::ast::{Item, ItemKind, Spec, Value};

/// A parse failure, locating the offending source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: u32,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The ways a spec can fail to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseErrorKind {
    /// A character that starts no token.
    UnexpectedChar(char),
    /// A string literal with no closing quote on its line.
    UnterminatedString,
    /// A malformed numeric literal.
    BadNumber(String),
    /// The parser wanted one thing and found another.
    Expected {
        /// What the grammar required here.
        wanted: &'static str,
        /// What was actually found.
        found: String,
    },
    /// Tokens left over after the closing `}` of the spec.
    TrailingInput(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            ParseErrorKind::UnterminatedString => write!(f, "unterminated string literal"),
            ParseErrorKind::BadNumber(s) => write!(f, "malformed number `{s}`"),
            ParseErrorKind::Expected { wanted, found } => {
                write!(f, "expected {wanted}, found {found}")
            }
            ParseErrorKind::TrailingInput(s) => {
                write!(f, "trailing input after scenario body: `{s}`")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Int(u64),
    Float(f64),
    LBrace,
    RBrace,
    Equals,
    Comma,
}

impl Token {
    fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("`{s}`"),
            Token::Str(s) => format!("string \"{s}\""),
            Token::Int(n) => format!("integer {n}"),
            Token::Float(x) => format!("number {x}"),
            Token::LBrace => "`{`".to_string(),
            Token::RBrace => "`}`".to_string(),
            Token::Equals => "`=`".to_string(),
            Token::Comma => "`,`".to_string(),
        }
    }
}

fn lex(text: &str) -> Result<Vec<(Token, u32)>, ParseError> {
    let mut tokens = Vec::new();
    let mut line: u32 = 1;
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // Comment to end of line; the newline itself is handled
                // above so line counting stays in one place.
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    chars.next();
                }
            }
            '{' => {
                tokens.push((Token::LBrace, line));
                chars.next();
            }
            '}' => {
                tokens.push((Token::RBrace, line));
                chars.next();
            }
            '=' => {
                tokens.push((Token::Equals, line));
                chars.next();
            }
            ',' => {
                tokens.push((Token::Comma, line));
                chars.next();
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\n') | None => {
                            return Err(ParseError {
                                line,
                                kind: ParseErrorKind::UnterminatedString,
                            });
                        }
                        Some(c) => s.push(c),
                    }
                }
                tokens.push((Token::Str(s), line));
            }
            c if c.is_ascii_digit() || c == '.' => {
                let mut raw = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '.' || c == '_' {
                        raw.push(c);
                        chars.next();
                    } else if (c == '+' || c == '-')
                        && matches!(raw.chars().last(), Some('e' | 'E'))
                        && !raw.starts_with("0x")
                        && !raw.starts_with("0X")
                    {
                        // Exponent sign in a float like `1e-5`.
                        raw.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push((parse_number(&raw, line)?, line));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push((Token::Ident(s), line));
            }
            c => {
                return Err(ParseError {
                    line,
                    kind: ParseErrorKind::UnexpectedChar(c),
                });
            }
        }
    }
    Ok(tokens)
}

fn parse_number(raw: &str, line: u32) -> Result<Token, ParseError> {
    let bad = || ParseError {
        line,
        kind: ParseErrorKind::BadNumber(raw.to_string()),
    };
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        let digits: String = hex.chars().filter(|&c| c != '_').collect();
        if digits.is_empty() {
            return Err(bad());
        }
        return u64::from_str_radix(&digits, 16)
            .map(Token::Int)
            .map_err(|_| bad());
    }
    let plain: String = raw.chars().filter(|&c| c != '_').collect();
    if plain.contains(['.', 'e', 'E']) {
        // Reject forms like "1.2.3" or a bare "." that f64::parse would
        // also reject, but with our own error.
        plain.parse::<f64>().map(Token::Float).map_err(|_| bad())
    } else {
        plain.parse::<u64>().map(Token::Int).map_err(|_| bad())
    }
}

struct Parser {
    tokens: Vec<(Token, u32)>,
    pos: usize,
    last_line: u32,
}

impl Parser {
    fn peek(&self) -> Option<&(Token, u32)> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<(Token, u32)> {
        let t = self.tokens.get(self.pos).cloned();
        if let Some((_, line)) = &t {
            self.last_line = *line;
            self.pos += 1;
        }
        t
    }

    fn expected(&self, wanted: &'static str, found: Option<&(Token, u32)>) -> ParseError {
        match found {
            Some((tok, line)) => ParseError {
                line: *line,
                kind: ParseErrorKind::Expected {
                    wanted,
                    found: tok.describe(),
                },
            },
            None => ParseError {
                line: self.last_line,
                kind: ParseErrorKind::Expected {
                    wanted,
                    found: "end of input".to_string(),
                },
            },
        }
    }

    fn expect_ident(&mut self, wanted: &'static str) -> Result<(String, u32), ParseError> {
        match self.next() {
            Some((Token::Ident(s), line)) => Ok((s, line)),
            other => Err(self.expected(wanted, other.as_ref())),
        }
    }

    fn expect(&mut self, token: Token, wanted: &'static str) -> Result<u32, ParseError> {
        match self.next() {
            Some((t, line)) if t == token => Ok(line),
            other => Err(self.expected(wanted, other.as_ref())),
        }
    }

    fn items_until_rbrace(&mut self) -> Result<Vec<Item>, ParseError> {
        let mut items = Vec::new();
        loop {
            match self.peek() {
                Some((Token::RBrace, _)) => {
                    self.next();
                    return Ok(items);
                }
                Some((Token::Ident(_), _)) => {
                    let (key, line) = self.expect_ident("a key")?;
                    match self.peek() {
                        Some((Token::Equals, _)) => {
                            self.next();
                            let value = match self.next() {
                                Some((Token::Int(n), _)) => Value::Int(n),
                                Some((Token::Float(x), _)) => Value::Float(x),
                                Some((Token::Str(s), _)) => Value::Str(s),
                                other => {
                                    return Err(self.expected("a value", other.as_ref()));
                                }
                            };
                            items.push(Item {
                                key,
                                line,
                                kind: ItemKind::Value(value),
                            });
                        }
                        Some((Token::LBrace, _)) => {
                            self.next();
                            let body = self.items_until_rbrace()?;
                            items.push(Item {
                                key,
                                line,
                                kind: ItemKind::Block(body),
                            });
                        }
                        other => return Err(self.expected("`=` or `{`", other)),
                    }
                    // Items are newline-separated by convention, but a
                    // trailing comma after an item is accepted so one-line
                    // blocks read naturally: `lock { locks = 1, hold = 9 }`.
                    if let Some((Token::Comma, _)) = self.peek() {
                        self.next();
                    }
                }
                other => return Err(self.expected("a key or `}`", other)),
            }
        }
    }
}

/// Parses one `scenario "name" { ... }` spec.
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first offending line.
///
/// # Examples
///
/// ```
/// use dirsim_trace::scenario::parse_spec;
///
/// let spec = parse_spec(r#"
///     scenario "demo" {
///         cpus = 4
///         lock { locks = 2 }
///     }
/// "#).unwrap();
/// assert_eq!(spec.name, "demo");
/// assert_eq!(spec.items.len(), 2);
/// ```
pub fn parse_spec(text: &str) -> Result<Spec, ParseError> {
    let tokens = lex(text)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        last_line: 1,
    };
    match p.next() {
        Some((Token::Ident(kw), _)) if kw == "scenario" => {}
        other => return Err(p.expected("`scenario`", other.as_ref())),
    }
    let (name, line) = match p.next() {
        Some((Token::Str(s), line)) => (s, line),
        other => return Err(p.expected("a quoted scenario name", other.as_ref())),
    };
    p.expect(Token::LBrace, "`{`")?;
    let items = p.items_until_rbrace()?;
    if let Some((tok, line)) = p.peek() {
        return Err(ParseError {
            line: *line,
            kind: ParseErrorKind::TrailingInput(tok.describe()),
        });
    }
    Ok(Spec { name, line, items })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_blocks_and_comments() {
        let spec = parse_spec(
            r#"
            # header comment
            scenario "pops" {
                cpus = 4            # trailing comment
                instr_frac = 0.517
                seed = 0x1988_0001
                description = "rule system"
                lock {
                    locks = 1
                }
                phase { refs = 1_000 write_frac = 0.3 }
                phase { refs = 0 write_frac = 0.6 }
            }
            "#,
        )
        .unwrap();
        assert_eq!(spec.name, "pops");
        assert_eq!(spec.items.len(), 7);
        assert_eq!(spec.scalar("cpus"), Some(&Value::Int(4)));
        assert_eq!(spec.scalar("instr_frac"), Some(&Value::Float(0.517)));
        assert_eq!(spec.scalar("seed"), Some(&Value::Int(0x1988_0001)));
        assert_eq!(
            spec.scalar("description"),
            Some(&Value::Str("rule system".to_string()))
        );
        let phases: Vec<_> = spec
            .items
            .iter()
            .filter(|i| i.key == "phase" && matches!(i.kind, ItemKind::Block(_)))
            .collect();
        assert_eq!(phases.len(), 2);
    }

    #[test]
    fn accepts_comma_separated_one_line_blocks() {
        let spec = parse_spec(
            r#"
            scenario "one-liner" {
                cpus = 8, processes = 8
                lock { locks = 1, hold = 9, spin_block = 0x40 }
            }
            "#,
        )
        .unwrap();
        assert_eq!(spec.scalar("cpus"), Some(&Value::Int(8)));
        let lock = spec
            .items
            .iter()
            .find(|i| i.key == "lock")
            .expect("lock block");
        match &lock.kind {
            ItemKind::Block(items) => assert_eq!(items.len(), 3),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse_spec("scenario \"x\" {\n  cpus = 4\n  oops =\n}").unwrap_err();
        assert_eq!(err.line, 4, "{err}");
        assert!(matches!(err.kind, ParseErrorKind::Expected { .. }));
    }

    #[test]
    fn rejects_unterminated_string() {
        let err = parse_spec("scenario \"x {\n}").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnterminatedString);
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_bad_numbers() {
        for bad in ["1.2.3", "0x", "12ab"] {
            let err = parse_spec(&format!("scenario \"x\" {{ cpus = {bad} }}")).unwrap_err();
            assert!(
                matches!(err.kind, ParseErrorKind::BadNumber(_)),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn rejects_missing_braces() {
        let err = parse_spec("scenario \"x\"").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Expected { .. }));
        let err = parse_spec("scenario \"x\" { cpus = 4").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Expected { .. }));
    }

    #[test]
    fn rejects_trailing_input() {
        let err = parse_spec("scenario \"x\" { } scenario \"y\" { }").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::TrailingInput(_)));
    }

    #[test]
    fn rejects_unexpected_characters() {
        let err = parse_spec("scenario \"x\" { cpus: 4 }").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnexpectedChar(':'));
    }

    #[test]
    fn underscore_separators_parse() {
        let spec = parse_spec("scenario \"x\" { quantum = 10_000 }").unwrap();
        assert_eq!(spec.scalar("quantum"), Some(&Value::Int(10_000)));
    }

    #[test]
    fn error_display_names_the_line() {
        let err = parse_spec("scenario 4 { }").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "{msg}");
        assert!(msg.contains("quoted scenario name"), "{msg}");
    }
}
