//! Named, reproducible workload scenarios and the spec language that
//! defines them.
//!
//! A **scenario** is a named, validated [`WorkloadConfig`] with a
//! description — the unit the rest of the system asks for by name
//! (`simulate --scenario pops`) or loads from a spec file on disk. The
//! module follows a script-language split (DESIGN.md §15):
//!
//! * [`ast`] — the untyped parse tree (`scenario "name" { key = value,
//!   nested { … } }`), every node carrying its source line;
//! * [`parser`] — the grammar: a hand-rolled lexer + recursive-descent
//!   parser producing [`ast::Spec`] or a line-addressed [`ParseError`];
//! * [`rules`] — the vocabulary: resolves an AST into a
//!   [`WorkloadConfig`] (defaults from [`WorkloadConfig::default`], the
//!   spec names only what differs) and reports unknown keys, type
//!   mismatches and duplicates as field-addressed [`RuleError`]s before
//!   handing the result to [`WorkloadConfig::validate`];
//! * [`mod@registry`] — the bundled library: every `.scn` under
//!   `crates/trace/scenarios/` compiled in and parsed once, the paper's
//!   POPS/THOR/PERO presets re-expressed as specs that generate
//!   bit-identical traces to the old hand-written constructors.
//!
//! ```
//! use dirsim_trace::scenario::Scenario;
//!
//! // By name, from the bundled registry:
//! let pops = Scenario::named("pops").unwrap();
//! let refs: Vec<_> = pops.workload().take(10_000).collect();
//! assert_eq!(refs.len(), 10_000);
//!
//! // Or from spec text (a file's contents):
//! let custom = Scenario::parse(r#"
//!     scenario "mine" {
//!         cpus = 8
//!         processes = 8
//!         zipf_theta = 0.9
//!     }
//! "#).unwrap();
//! assert_eq!(custom.config().cpus, 8);
//! ```

pub mod ast;
pub mod parser;
pub mod registry;
pub mod rules;

use std::fmt;
use std::path::Path;

use crate::source::IterSource;
use crate::synth::{ConfigError, Workload, WorkloadConfig};

pub use parser::{parse_spec, ParseError, ParseErrorKind};
pub use registry::registry;
pub use rules::{RuleError, RuleErrorKind};

/// Any way a scenario can fail to load.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The spec text failed to parse.
    Parse(ParseError),
    /// The spec parsed but used an unknown key, wrong type, or duplicate.
    Rule(RuleError),
    /// The resolved configuration failed validation.
    Config(ConfigError),
    /// No bundled scenario has this name.
    UnknownScenario {
        /// The requested name.
        name: String,
    },
    /// A spec file could not be read.
    Io {
        /// The path that failed.
        path: String,
        /// The OS error message.
        message: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse(e) => e.fmt(f),
            ScenarioError::Rule(e) => e.fmt(f),
            ScenarioError::Config(e) => e.fmt(f),
            ScenarioError::UnknownScenario { name } => {
                write!(
                    f,
                    "no bundled scenario named `{name}` (try --list-scenarios)"
                )
            }
            ScenarioError::Io { path, message } => {
                write!(f, "cannot read scenario file `{path}`: {message}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ParseError> for ScenarioError {
    fn from(e: ParseError) -> Self {
        ScenarioError::Parse(e)
    }
}

impl From<rules::ResolveError> for ScenarioError {
    fn from(e: rules::ResolveError) -> Self {
        match e {
            rules::ResolveError::Rule(e) => ScenarioError::Rule(e),
            rules::ResolveError::Config(e) => ScenarioError::Config(e),
        }
    }
}

/// A named, validated workload: the unit the public API deals in.
///
/// Obtain one from the bundled registry ([`Scenario::named`]), from spec
/// text ([`Scenario::parse`]), from a file ([`Scenario::from_file`]), or
/// let [`Scenario::resolve`] pick name-or-file from a CLI argument.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    description: String,
    config: WorkloadConfig,
}

impl Scenario {
    /// Looks up a bundled scenario by name (case-insensitive, so the
    /// paper's upper-case `POPS` works too).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::UnknownScenario`] if no bundled scenario
    /// has the name.
    pub fn named(name: &str) -> Result<&'static Scenario, ScenarioError> {
        registry()
            .iter()
            .find(|s| s.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| ScenarioError::UnknownScenario {
                name: name.to_string(),
            })
    }

    /// Parses and resolves one spec from text.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] carrying line/field context for parse,
    /// rule, and validation failures.
    pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
        let spec = parser::parse_spec(text)?;
        let resolved = rules::resolve(&spec)?;
        Ok(Scenario {
            name: spec.name,
            description: resolved.description,
            config: resolved.config,
        })
    }

    /// Loads a spec file from disk.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Io`] if the file cannot be read, or any
    /// [`Scenario::parse`] error for its contents.
    pub fn from_file(path: impl AsRef<Path>) -> Result<Scenario, ScenarioError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Scenario::parse(&text)
    }

    /// Resolves a CLI argument: a bundled name first, otherwise a spec
    /// file path (anything containing a path separator or `.` is treated
    /// as a path without consulting the registry).
    ///
    /// # Errors
    ///
    /// Returns the registry or file error, whichever path was taken.
    pub fn resolve(arg: &str) -> Result<Scenario, ScenarioError> {
        let looks_like_path = arg.contains(['/', '\\', '.']);
        if !looks_like_path {
            return Scenario::named(arg).cloned();
        }
        Scenario::from_file(arg)
    }

    /// The scenario's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-line human description (may be empty for file-loaded specs).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The validated workload configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Builds the infinite reference generator for this scenario.
    pub fn workload(&self) -> Workload {
        Workload::new(self.config.clone())
    }

    /// Builds a bounded [`TraceSource`](crate::TraceSource) of `len`
    /// references, ready to feed a simulation engine.
    pub fn source(&self, len: u64) -> IterSource<std::iter::Take<Workload>> {
        IterSource::new(self.workload().take(len as usize))
    }

    /// Renders the scenario back into spec text that parses to an equal
    /// scenario (`parse(to_spec(s)) == s`, pinned by proptest).
    pub fn to_spec(&self) -> String {
        rules::render(&self.name, &self.description, &self.config)
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_lookup_is_case_insensitive() {
        assert_eq!(Scenario::named("POPS").unwrap().name(), "pops");
        assert_eq!(Scenario::named("Thor").unwrap().name(), "thor");
    }

    #[test]
    fn unknown_name_lists_the_failure() {
        let err = Scenario::named("nope").unwrap_err();
        assert!(matches!(err, ScenarioError::UnknownScenario { .. }));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn parse_rejects_bad_specs_with_context() {
        let err = Scenario::parse("scenario \"x\" {\n  cpuz = 4\n}").unwrap_err();
        match err {
            ScenarioError::Rule(e) => {
                assert_eq!(e.line, 2);
                assert_eq!(e.field, "cpuz");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn missing_file_reports_io_error() {
        let err = Scenario::from_file("/nonexistent/x.scn").unwrap_err();
        assert!(matches!(err, ScenarioError::Io { .. }));
    }

    #[test]
    fn resolve_prefers_names_and_falls_back_to_paths() {
        assert_eq!(Scenario::resolve("pero").unwrap().name(), "pero");
        let err = Scenario::resolve("missing-dir/spec.scn").unwrap_err();
        assert!(matches!(err, ScenarioError::Io { .. }));
    }

    #[test]
    fn to_spec_round_trips_every_bundled_scenario() {
        for s in registry() {
            let back = Scenario::parse(&s.to_spec()).unwrap();
            assert_eq!(&back, s, "{}", s.name());
        }
    }

    #[test]
    fn source_is_bounded() {
        use crate::TraceSource;
        let mut src = Scenario::named("zipf-hot").unwrap().source(5_000);
        let mut buf = Vec::new();
        let mut total = 0;
        while src.read_chunk(&mut buf, 1024).unwrap() > 0 {
            total += buf.len();
        }
        assert_eq!(total, 5_000);
    }
}
