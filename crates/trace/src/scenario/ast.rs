//! The parsed form of a scenario spec.
//!
//! A spec is one `scenario "name" { ... }` clause whose body is a list of
//! [`Item`]s: scalar assignments (`cpus = 4`) and nested blocks
//! (`lock { ... }`, repeated `phase { ... }`). The AST is deliberately
//! untyped — keys are plain strings and every node carries the source
//! line it came from — so the parser stays a pure grammar concern and all
//! key/type knowledge lives in [`rules`](crate::scenario::rules), which
//! turns an AST into a validated
//! [`WorkloadConfig`](crate::synth::WorkloadConfig).

/// A parsed `scenario` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Spec {
    /// The scenario's name (the quoted string after `scenario`).
    pub name: String,
    /// Line of the `scenario` keyword (1-based).
    pub line: u32,
    /// Body items in source order.
    pub items: Vec<Item>,
}

/// One entry in a spec body: `key = value` or `key { ... }`.
#[derive(Debug, Clone, PartialEq)]
pub struct Item {
    /// The key identifier.
    pub key: String,
    /// Line the key appears on (1-based).
    pub line: u32,
    /// Scalar assignment or nested block.
    pub kind: ItemKind,
}

/// The right-hand side of an [`Item`].
#[derive(Debug, Clone, PartialEq)]
pub enum ItemKind {
    /// `key = value`.
    Value(Value),
    /// `key { items... }`.
    Block(Vec<Item>),
}

/// A scalar literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer, decimal (`4`, with optional `_` separators) or
    /// hexadecimal (`0x1988_0001`).
    Int(u64),
    /// A floating-point number (`0.517`).
    Float(f64),
    /// A double-quoted string.
    Str(String),
}

impl Value {
    /// Human-readable name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
        }
    }
}

impl Spec {
    /// Finds the first scalar item with the given key, if any.
    pub fn scalar(&self, key: &str) -> Option<&Value> {
        self.items.iter().find_map(|item| match &item.kind {
            ItemKind::Value(v) if item.key == key => Some(v),
            _ => None,
        })
    }
}
