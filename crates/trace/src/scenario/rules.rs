//! Semantic resolution: turning a parsed [`Spec`] into a validated
//! [`WorkloadConfig`].
//!
//! This is the only place that knows which keys exist, what types they
//! take, and how they map onto configuration fields. Unknown keys,
//! type mismatches, and duplicates are reported as [`RuleError`]s that
//! carry the source line and the dotted field path (`lock.hold`,
//! `phase.write_frac`). Range constraints are *not* re-checked here —
//! the resolved configuration is passed through
//! [`WorkloadConfig::validate`], so scenario specs hit exactly the same
//! semantic wall as configurations built in Rust.

use std::fmt;

use crate::scenario::ast::{Item, ItemKind, Spec, Value};
use crate::synth::{
    BarrierConfig, ConfigError, LockConfig, OpenSystemConfig, Phase, SharingMix, WorkloadConfig,
};

/// A semantic error in an otherwise well-formed spec.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleError {
    /// 1-based source line of the offending item.
    pub line: u32,
    /// Dotted field path (`cpus`, `lock.hold`, `phase.mix.migratory`).
    pub field: String,
    /// What went wrong.
    pub kind: RuleErrorKind,
}

/// The ways a well-formed spec can fail to resolve.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleErrorKind {
    /// The key is not part of the scenario vocabulary at this position.
    UnknownKey,
    /// The key exists but takes a different shape.
    WrongType {
        /// The type the key requires.
        wanted: &'static str,
        /// The type the spec supplied.
        found: &'static str,
    },
    /// The key was given more than once.
    Duplicate,
    /// An integer too large for the field's width.
    IntOutOfRange {
        /// The field's maximum value.
        max: u64,
    },
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: `{}`: ", self.line, self.field)?;
        match &self.kind {
            RuleErrorKind::UnknownKey => write!(f, "unknown key"),
            RuleErrorKind::WrongType { wanted, found } => {
                write!(f, "expected {wanted}, found {found}")
            }
            RuleErrorKind::Duplicate => write!(f, "key given more than once"),
            RuleErrorKind::IntOutOfRange { max } => {
                write!(f, "value exceeds the field's maximum ({max})")
            }
        }
    }
}

impl std::error::Error for RuleError {}

fn wrong_type(item: &Item, field: &str, wanted: &'static str) -> RuleError {
    let found = match &item.kind {
        ItemKind::Value(v) => v.type_name(),
        ItemKind::Block(_) => "a block",
    };
    RuleError {
        line: item.line,
        field: field.to_string(),
        kind: RuleErrorKind::WrongType { wanted, found },
    }
}

/// Extracts a float (integers are accepted and widened: `write_frac = 0`).
fn float(item: &Item, field: &str) -> Result<f64, RuleError> {
    match &item.kind {
        ItemKind::Value(Value::Float(x)) => Ok(*x),
        ItemKind::Value(Value::Int(n)) => Ok(*n as f64),
        _ => Err(wrong_type(item, field, "a number")),
    }
}

fn int(item: &Item, field: &str, max: u64) -> Result<u64, RuleError> {
    match &item.kind {
        ItemKind::Value(Value::Int(n)) if *n <= max => Ok(*n),
        ItemKind::Value(Value::Int(_)) => Err(RuleError {
            line: item.line,
            field: field.to_string(),
            kind: RuleErrorKind::IntOutOfRange { max },
        }),
        _ => Err(wrong_type(item, field, "an integer")),
    }
}

fn string(item: &Item, field: &str) -> Result<String, RuleError> {
    match &item.kind {
        ItemKind::Value(Value::Str(s)) => Ok(s.clone()),
        _ => Err(wrong_type(item, field, "a string")),
    }
}

fn block<'a>(item: &'a Item, field: &str) -> Result<&'a [Item], RuleError> {
    match &item.kind {
        ItemKind::Block(items) => Ok(items),
        ItemKind::Value(_) => Err(wrong_type(item, field, "a block")),
    }
}

/// Tracks which keys have been seen to reject duplicates.
struct Seen(Vec<String>);

impl Seen {
    fn new() -> Self {
        Seen(Vec::new())
    }

    fn claim(&mut self, item: &Item, field: &str) -> Result<(), RuleError> {
        if self.0.iter().any(|k| k == &item.key) {
            return Err(RuleError {
                line: item.line,
                field: field.to_string(),
                kind: RuleErrorKind::Duplicate,
            });
        }
        self.0.push(item.key.clone());
        Ok(())
    }
}

fn resolve_mix(items: &[Item], prefix: &str) -> Result<SharingMix, RuleError> {
    let mut mix = SharingMix {
        read_mostly: 0.0,
        migratory: 0.0,
        producer_consumer: 0.0,
        false_sharing: 0.0,
    };
    let mut seen = Seen::new();
    for item in items {
        let field = format!("{prefix}.{}", item.key);
        seen.claim(item, &field)?;
        match item.key.as_str() {
            "read_mostly" => mix.read_mostly = float(item, &field)?,
            "migratory" => mix.migratory = float(item, &field)?,
            "producer_consumer" => mix.producer_consumer = float(item, &field)?,
            "false_sharing" => mix.false_sharing = float(item, &field)?,
            _ => {
                return Err(RuleError {
                    line: item.line,
                    field,
                    kind: RuleErrorKind::UnknownKey,
                });
            }
        }
    }
    Ok(mix)
}

fn resolve_lock(items: &[Item], base: LockConfig) -> Result<LockConfig, RuleError> {
    let mut lock = base;
    let mut seen = Seen::new();
    for item in items {
        let field = format!("lock.{}", item.key);
        seen.claim(item, &field)?;
        match item.key.as_str() {
            "locks" => lock.locks = int(item, &field, u64::from(u32::MAX))? as u32,
            "acquire_prob" => lock.acquire_prob = float(item, &field)?,
            "hold" => lock.critical_section_len = int(item, &field, u64::from(u32::MAX))? as u32,
            "write_frac" => lock.critical_write_frac = float(item, &field)?,
            _ => {
                return Err(RuleError {
                    line: item.line,
                    field,
                    kind: RuleErrorKind::UnknownKey,
                });
            }
        }
    }
    Ok(lock)
}

fn resolve_open(items: &[Item]) -> Result<OpenSystemConfig, RuleError> {
    let mut open = OpenSystemConfig::closed();
    let mut seen = Seen::new();
    for item in items {
        let field = format!("open.{}", item.key);
        seen.claim(item, &field)?;
        match item.key.as_str() {
            "arrival" => open.arrival_prob = float(item, &field)?,
            "departure" => open.departure_prob = float(item, &field)?,
            "max_processes" => {
                open.max_processes = int(item, &field, u64::from(u32::MAX))? as u32;
            }
            _ => {
                return Err(RuleError {
                    line: item.line,
                    field,
                    kind: RuleErrorKind::UnknownKey,
                });
            }
        }
    }
    Ok(open)
}

fn resolve_phase(items: &[Item]) -> Result<Phase, RuleError> {
    let mut phase = Phase::default();
    let mut seen = Seen::new();
    for item in items {
        let field = format!("phase.{}", item.key);
        seen.claim(item, &field)?;
        match item.key.as_str() {
            "refs" => phase.refs = int(item, &field, u64::MAX)?,
            "instr_frac" => phase.instr_frac = Some(float(item, &field)?),
            "write_frac" => phase.write_frac = Some(float(item, &field)?),
            "shared_frac" => phase.shared_frac = Some(float(item, &field)?),
            "acquire_prob" => phase.acquire_prob = Some(float(item, &field)?),
            "mix" => {
                phase.sharing_mix = Some(resolve_mix(block(item, &field)?, "phase.mix")?);
            }
            _ => {
                return Err(RuleError {
                    line: item.line,
                    field,
                    kind: RuleErrorKind::UnknownKey,
                });
            }
        }
    }
    Ok(phase)
}

/// The resolved spec: the configuration plus the spec-level metadata that
/// does not live in [`WorkloadConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct Resolved {
    /// Human-readable description (empty if the spec gave none).
    pub description: String,
    /// The workload configuration, already validated.
    pub config: WorkloadConfig,
}

/// Resolution failure: either a key-level [`RuleError`] or a range/
/// consistency [`ConfigError`] from the final validation pass.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolveError {
    /// Unknown key, wrong type, duplicate, or overflow.
    Rule(RuleError),
    /// The resolved configuration failed [`WorkloadConfig::validate`].
    Config(ConfigError),
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::Rule(e) => e.fmt(f),
            ResolveError::Config(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ResolveError {}

impl From<RuleError> for ResolveError {
    fn from(e: RuleError) -> Self {
        ResolveError::Rule(e)
    }
}

/// Resolves a parsed spec into a validated configuration.
///
/// Defaults come from [`WorkloadConfig::default`]; a spec only names what
/// differs, which is what makes the bundled paper scenarios exactly
/// equivalent to the old hand-written presets.
///
/// # Errors
///
/// Returns a [`ResolveError`] for unknown keys, type mismatches,
/// duplicates, integer overflow, or a configuration that fails
/// validation.
pub fn resolve(spec: &Spec) -> Result<Resolved, ResolveError> {
    let mut cfg = WorkloadConfig::default();
    let mut description = String::new();
    let mut seen = Seen::new();
    for item in &spec.items {
        let field = item.key.clone();
        if item.key != "phase" {
            seen.claim(item, &field)?;
        }
        match item.key.as_str() {
            "description" => description = string(item, &field)?,
            "cpus" => cfg.cpus = int(item, &field, u64::from(u16::MAX))? as u16,
            "processes" => cfg.processes = int(item, &field, u64::from(u32::MAX))? as u32,
            "instr_frac" => cfg.instr_frac = float(item, &field)?,
            "write_frac" => cfg.write_frac = float(item, &field)?,
            "shared_frac" => cfg.shared_frac = float(item, &field)?,
            "os_frac" => cfg.os_frac = float(item, &field)?,
            "migration_prob" => cfg.migration_prob = float(item, &field)?,
            "zipf_theta" => cfg.zipf_theta = float(item, &field)?,
            "shared_blocks" => {
                cfg.shared_blocks_per_pool = int(item, &field, u64::from(u32::MAX))? as u32;
            }
            "private_blocks" => {
                cfg.private_blocks = int(item, &field, u64::from(u32::MAX))? as u32;
            }
            "code_blocks" => cfg.code_blocks = int(item, &field, u64::from(u32::MAX))? as u32,
            "quantum" => cfg.quantum = int(item, &field, u64::from(u32::MAX))? as u32,
            "block_size" => cfg.block_size = int(item, &field, u64::from(u32::MAX))? as u32,
            "seed" => cfg.seed = int(item, &field, u64::MAX)?,
            "mix" => cfg.sharing_mix = resolve_mix(block(item, &field)?, "mix")?,
            "lock" => cfg.lock = resolve_lock(block(item, &field)?, cfg.lock)?,
            "barrier" => {
                let items = block(item, &field)?;
                let mut seen = Seen::new();
                for item in items {
                    let field = format!("barrier.{}", item.key);
                    seen.claim(item, &field)?;
                    match item.key.as_str() {
                        "interval" => {
                            cfg.barrier = BarrierConfig {
                                interval: int(item, &field, u64::from(u32::MAX))? as u32,
                            };
                        }
                        _ => {
                            return Err(RuleError {
                                line: item.line,
                                field,
                                kind: RuleErrorKind::UnknownKey,
                            }
                            .into());
                        }
                    }
                }
            }
            "open" => cfg.open = resolve_open(block(item, &field)?)?,
            "phase" => cfg.phases.push(resolve_phase(block(item, &field)?)?),
            _ => {
                return Err(RuleError {
                    line: item.line,
                    field,
                    kind: RuleErrorKind::UnknownKey,
                }
                .into());
            }
        }
    }
    cfg.validate().map_err(ResolveError::Config)?;
    Ok(Resolved {
        description,
        config: cfg,
    })
}

/// Formats a float so the spec grammar can read it back exactly.
fn fmt_f64(x: f64) -> String {
    // Rust's `{:?}` is shortest-round-trip; it may use an exponent
    // (`1e-7`), which the lexer accepts.
    format!("{x:?}")
}

/// Renders a configuration back into spec text that resolves to the same
/// configuration (`parse → resolve` round-trips, pinned by proptest).
///
/// The render is exhaustive — every field is written even when it equals
/// the default — so rendered specs double as complete documentation of a
/// configuration.
pub fn render(name: &str, description: &str, cfg: &WorkloadConfig) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "scenario \"{name}\" {{");
    if !description.is_empty() {
        let _ = writeln!(out, "    description = \"{description}\"");
    }
    let _ = writeln!(out, "    cpus = {}", cfg.cpus);
    let _ = writeln!(out, "    processes = {}", cfg.processes);
    let _ = writeln!(out, "    instr_frac = {}", fmt_f64(cfg.instr_frac));
    let _ = writeln!(out, "    write_frac = {}", fmt_f64(cfg.write_frac));
    let _ = writeln!(out, "    shared_frac = {}", fmt_f64(cfg.shared_frac));
    let _ = writeln!(out, "    os_frac = {}", fmt_f64(cfg.os_frac));
    let _ = writeln!(out, "    migration_prob = {}", fmt_f64(cfg.migration_prob));
    let _ = writeln!(out, "    zipf_theta = {}", fmt_f64(cfg.zipf_theta));
    let _ = writeln!(out, "    shared_blocks = {}", cfg.shared_blocks_per_pool);
    let _ = writeln!(out, "    private_blocks = {}", cfg.private_blocks);
    let _ = writeln!(out, "    code_blocks = {}", cfg.code_blocks);
    let _ = writeln!(out, "    quantum = {}", cfg.quantum);
    let _ = writeln!(out, "    block_size = {}", cfg.block_size);
    let _ = writeln!(out, "    seed = 0x{:x}", cfg.seed);
    let _ = writeln!(out, "    mix {{");
    let _ = writeln!(
        out,
        "        read_mostly = {}",
        fmt_f64(cfg.sharing_mix.read_mostly)
    );
    let _ = writeln!(
        out,
        "        migratory = {}",
        fmt_f64(cfg.sharing_mix.migratory)
    );
    let _ = writeln!(
        out,
        "        producer_consumer = {}",
        fmt_f64(cfg.sharing_mix.producer_consumer)
    );
    let _ = writeln!(
        out,
        "        false_sharing = {}",
        fmt_f64(cfg.sharing_mix.false_sharing)
    );
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "    lock {{");
    let _ = writeln!(out, "        locks = {}", cfg.lock.locks);
    let _ = writeln!(
        out,
        "        acquire_prob = {}",
        fmt_f64(cfg.lock.acquire_prob)
    );
    let _ = writeln!(out, "        hold = {}", cfg.lock.critical_section_len);
    let _ = writeln!(
        out,
        "        write_frac = {}",
        fmt_f64(cfg.lock.critical_write_frac)
    );
    let _ = writeln!(out, "    }}");
    if cfg.barrier.is_enabled() {
        let _ = writeln!(out, "    barrier {{");
        let _ = writeln!(out, "        interval = {}", cfg.barrier.interval);
        let _ = writeln!(out, "    }}");
    }
    if cfg.open.is_enabled() {
        let _ = writeln!(out, "    open {{");
        let _ = writeln!(out, "        arrival = {}", fmt_f64(cfg.open.arrival_prob));
        let _ = writeln!(
            out,
            "        departure = {}",
            fmt_f64(cfg.open.departure_prob)
        );
        let _ = writeln!(out, "        max_processes = {}", cfg.open.max_processes);
        let _ = writeln!(out, "    }}");
    }
    for phase in &cfg.phases {
        let _ = writeln!(out, "    phase {{");
        let _ = writeln!(out, "        refs = {}", phase.refs);
        if let Some(x) = phase.instr_frac {
            let _ = writeln!(out, "        instr_frac = {}", fmt_f64(x));
        }
        if let Some(x) = phase.write_frac {
            let _ = writeln!(out, "        write_frac = {}", fmt_f64(x));
        }
        if let Some(x) = phase.shared_frac {
            let _ = writeln!(out, "        shared_frac = {}", fmt_f64(x));
        }
        if let Some(x) = phase.acquire_prob {
            let _ = writeln!(out, "        acquire_prob = {}", fmt_f64(x));
        }
        if let Some(mix) = phase.sharing_mix {
            let _ = writeln!(out, "        mix {{");
            let _ = writeln!(
                out,
                "            read_mostly = {}",
                fmt_f64(mix.read_mostly)
            );
            let _ = writeln!(out, "            migratory = {}", fmt_f64(mix.migratory));
            let _ = writeln!(
                out,
                "            producer_consumer = {}",
                fmt_f64(mix.producer_consumer)
            );
            let _ = writeln!(
                out,
                "            false_sharing = {}",
                fmt_f64(mix.false_sharing)
            );
            let _ = writeln!(out, "        }}");
        }
        let _ = writeln!(out, "    }}");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::parser::parse_spec;

    fn resolve_text(text: &str) -> Result<Resolved, ResolveError> {
        resolve(&parse_spec(text).unwrap())
    }

    #[test]
    fn spec_overrides_only_what_it_names() {
        let r = resolve_text(
            r#"scenario "x" {
                cpus = 8
                processes = 8
                write_frac = 0.3
            }"#,
        )
        .unwrap();
        assert_eq!(r.config.cpus, 8);
        assert_eq!(r.config.write_frac, 0.3);
        // Untouched fields keep the defaults.
        let d = WorkloadConfig::default();
        assert_eq!(r.config.quantum, d.quantum);
        assert_eq!(r.config.lock, d.lock);
        assert_eq!(r.config.seed, d.seed);
    }

    #[test]
    fn unknown_key_names_line_and_field() {
        let err = resolve_text("scenario \"x\" {\n  cpuz = 4\n}").unwrap_err();
        match err {
            ResolveError::Rule(e) => {
                assert_eq!(e.line, 2);
                assert_eq!(e.field, "cpuz");
                assert_eq!(e.kind, RuleErrorKind::UnknownKey);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn unknown_nested_key_gets_dotted_path() {
        let err = resolve_text("scenario \"x\" {\n  lock {\n    spin = 4\n  }\n}").unwrap_err();
        match err {
            ResolveError::Rule(e) => {
                assert_eq!(e.line, 3);
                assert_eq!(e.field, "lock.spin");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn out_of_range_fraction_surfaces_config_error() {
        let err = resolve_text("scenario \"x\" { write_frac = 1.5 }").unwrap_err();
        assert!(matches!(
            err,
            ResolveError::Config(ConfigError::OutOfRange {
                field: "write_frac",
                ..
            })
        ));
    }

    #[test]
    fn empty_phase_surfaces_config_error() {
        let err = resolve_text("scenario \"x\" { phase { refs = 100 } }").unwrap_err();
        assert!(matches!(
            err,
            ResolveError::Config(ConfigError::EmptyPhase { index: 0 })
        ));
    }

    #[test]
    fn duplicate_scalar_rejected() {
        let err = resolve_text("scenario \"x\" {\n  cpus = 4\n  cpus = 8\n}").unwrap_err();
        match err {
            ResolveError::Rule(e) => {
                assert_eq!(e.line, 3);
                assert_eq!(e.kind, RuleErrorKind::Duplicate);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn repeated_phase_blocks_accumulate() {
        let r = resolve_text(
            r#"scenario "x" {
                phase { refs = 1000 write_frac = 0.1 }
                phase { refs = 0 write_frac = 0.5 }
            }"#,
        )
        .unwrap();
        assert_eq!(r.config.phases.len(), 2);
        assert_eq!(r.config.phases[1].write_frac, Some(0.5));
    }

    #[test]
    fn wrong_type_reports_both_sides() {
        let err = resolve_text("scenario \"x\" { cpus = \"four\" }").unwrap_err();
        match err {
            ResolveError::Rule(e) => {
                assert_eq!(
                    e.kind,
                    RuleErrorKind::WrongType {
                        wanted: "an integer",
                        found: "string"
                    }
                );
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn block_where_scalar_expected() {
        let err = resolve_text("scenario \"x\" { cpus { } }").unwrap_err();
        assert!(matches!(
            err,
            ResolveError::Rule(RuleError {
                kind: RuleErrorKind::WrongType { .. },
                ..
            })
        ));
    }

    #[test]
    fn int_overflow_rejected() {
        let err = resolve_text("scenario \"x\" { cpus = 70000 }").unwrap_err();
        match err {
            ResolveError::Rule(e) => {
                assert_eq!(
                    e.kind,
                    RuleErrorKind::IntOutOfRange {
                        max: u64::from(u16::MAX)
                    }
                );
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn integers_widen_to_floats() {
        let r = resolve_text("scenario \"x\" { write_frac = 0 zipf_theta = 0 }").unwrap();
        assert_eq!(r.config.write_frac, 0.0);
    }

    #[test]
    fn render_round_trips_a_full_config() {
        let cfg = WorkloadConfig {
            cpus: 8,
            processes: 16,
            zipf_theta: 0.9,
            open: OpenSystemConfig {
                arrival_prob: 0.0005,
                departure_prob: 1e-7,
                max_processes: 64,
            },
            phases: vec![
                Phase {
                    refs: 10_000,
                    write_frac: Some(0.4),
                    sharing_mix: Some(SharingMix::default()),
                    ..Phase::default()
                },
                Phase {
                    refs: 0,
                    shared_frac: Some(0.1),
                    ..Phase::default()
                },
            ],
            ..WorkloadConfig::default()
        };
        cfg.validate().unwrap();
        let text = render("round-trip", "exercise every clause", &cfg);
        let r = resolve_text(&text).unwrap();
        assert_eq!(r.config, cfg);
        assert_eq!(r.description, "exercise every clause");
    }
}
