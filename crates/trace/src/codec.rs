//! Record-level encode/decode for the fixed-width `DTR1` binary format.
//!
//! [`crate::io`] streams whole traces through `std::io` readers and
//! writers; this module is the layer underneath — the pure byte layout of
//! one record and the 8-byte file header — shared by the buffered reader,
//! the memory-mapped reader ([`crate::mmap`]), and the corpus tooling.
//! Keeping the layout in one place is what lets the mmap path decode
//! straight out of the map with the exact same bit semantics as the
//! buffered path.
//!
//! Record layout (little-endian, [`RECORD_LEN`] bytes):
//!
//! | bytes | field | encoding |
//! |-------|-------|----------|
//! | 0..2  | cpu   | `u16` LE |
//! | 2     | kind  | 0 = instr, 1 = read, 2 = write |
//! | 3     | flags | [`RefFlags::bits`] |
//! | 4..8  | pid   | `u32` LE |
//! | 8..16 | addr  | `u64` LE |

use std::io::Write;

use crate::io::{TraceIoError, BINARY_MAGIC, BINARY_RECORD_LEN};
use crate::types::{AccessKind, Addr, CpuId, MemRef, ProcessId, RefFlags};

/// Size in bytes of one encoded record (re-export of
/// [`BINARY_RECORD_LEN`] under the codec's own name).
pub const RECORD_LEN: usize = BINARY_RECORD_LEN;

/// Size in bytes of the file header (magic plus version word).
pub const HEADER_LEN: usize = 8;

/// The binary access-kind byte for `kind`.
pub fn kind_byte(kind: AccessKind) -> u8 {
    match kind {
        AccessKind::InstrFetch => 0,
        AccessKind::Read => 1,
        AccessKind::Write => 2,
    }
}

/// Decodes a binary access-kind byte.
///
/// # Errors
///
/// Returns [`TraceIoError::BadAccessKind`] for bytes outside `0..=2`.
pub fn kind_from_byte(b: u8) -> Result<AccessKind, TraceIoError> {
    match b {
        0 => Ok(AccessKind::InstrFetch),
        1 => Ok(AccessKind::Read),
        2 => Ok(AccessKind::Write),
        other => Err(TraceIoError::BadAccessKind(other)),
    }
}

/// The 8-byte `DTR1` file header: magic, format version 1, three
/// reserved bytes.
pub fn header_bytes() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..4].copy_from_slice(&BINARY_MAGIC);
    h[4] = 1;
    h
}

/// Validates a `DTR1` file header.
///
/// Only the magic is checked; the version word is reserved for future
/// revisions (readers of version 1 accept every version-1-era file).
///
/// # Errors
///
/// Returns [`TraceIoError::BadMagic`] when the magic does not match.
pub fn check_header(header: &[u8; HEADER_LEN]) -> Result<(), TraceIoError> {
    let magic: [u8; 4] = header[0..4].try_into().expect("slice length is 4");
    if magic != BINARY_MAGIC {
        return Err(TraceIoError::BadMagic(magic));
    }
    Ok(())
}

/// Encodes one reference into `out`.
pub fn encode_record(r: &MemRef, out: &mut [u8; RECORD_LEN]) {
    out[0..2].copy_from_slice(&(r.cpu.index() as u16).to_le_bytes());
    out[2] = kind_byte(r.kind);
    out[3] = r.flags.bits();
    out[4..8].copy_from_slice(&(r.pid.index() as u32).to_le_bytes());
    out[8..16].copy_from_slice(&r.addr.raw().to_le_bytes());
}

/// Decodes one reference from a full record's bytes.
///
/// # Errors
///
/// Returns [`TraceIoError::BadAccessKind`] when the kind byte is invalid;
/// every other bit pattern decodes (unknown flag bits are dropped by
/// [`RefFlags::from_bits`]).
pub fn decode_record(rec: &[u8; RECORD_LEN]) -> Result<MemRef, TraceIoError> {
    let cpu = u16::from_le_bytes(rec[0..2].try_into().expect("len 2"));
    let kind = kind_from_byte(rec[2])?;
    let flags = RefFlags::from_bits(rec[3]);
    let pid = u32::from_le_bytes(rec[4..8].try_into().expect("len 4"));
    let addr = u64::from_le_bytes(rec[8..16].try_into().expect("len 8"));
    Ok(MemRef {
        cpu: CpuId::new(cpu),
        pid: ProcessId::new(pid),
        addr: Addr::new(addr),
        kind,
        flags,
    })
}

/// Streaming `DTR1` writer: header on construction, one record per
/// [`push`](Self::push).
///
/// The iterator-driven [`crate::io::write_binary`] needs the whole stream
/// up front; this writer is its incremental counterpart for tools that
/// produce references chunk by chunk (corpus `unpack`, format
/// conversion) without materialising the trace.
#[derive(Debug)]
pub struct BinaryWriter<W> {
    inner: W,
    count: u64,
}

impl<W: Write> BinaryWriter<W> {
    /// Writes the header and returns the writer.
    ///
    /// # Errors
    ///
    /// Returns any error from the underlying writer.
    pub fn new(mut inner: W) -> Result<Self, TraceIoError> {
        inner.write_all(&header_bytes())?;
        Ok(BinaryWriter { inner, count: 0 })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Returns any error from the underlying writer.
    pub fn push(&mut self, r: &MemRef) -> Result<(), TraceIoError> {
        let mut rec = [0u8; RECORD_LEN];
        encode_record(r, &mut rec);
        self.inner.write_all(&rec)?;
        self.count += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Flushes and returns the underlying writer and the record count.
    ///
    /// # Errors
    ///
    /// Returns any error from flushing the underlying writer.
    pub fn finish(mut self) -> Result<(W, u64), TraceIoError> {
        self.inner.flush()?;
        Ok((self.inner, self.count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::read_binary;

    fn sample() -> MemRef {
        MemRef::write(CpuId::new(3), ProcessId::new(9), Addr::new(0xdead_beef))
            .with_flags(RefFlags::empty().with_os())
    }

    #[test]
    fn record_round_trips() {
        let r = sample();
        let mut rec = [0u8; RECORD_LEN];
        encode_record(&r, &mut rec);
        assert_eq!(decode_record(&rec).unwrap(), r);
    }

    #[test]
    fn bad_kind_byte_is_typed() {
        let mut rec = [0u8; RECORD_LEN];
        rec[2] = 7;
        assert!(matches!(
            decode_record(&rec),
            Err(TraceIoError::BadAccessKind(7))
        ));
    }

    #[test]
    fn header_round_trips() {
        let h = header_bytes();
        check_header(&h).unwrap();
        let mut bad = h;
        bad[0] = b'X';
        assert!(matches!(check_header(&bad), Err(TraceIoError::BadMagic(_))));
    }

    #[test]
    fn streaming_writer_matches_write_binary() {
        let refs = vec![
            sample(),
            MemRef::read(CpuId::new(0), ProcessId::new(0), Addr::new(1)),
        ];
        let mut expect = Vec::new();
        crate::io::write_binary(&mut expect, refs.iter().copied()).unwrap();

        let mut writer = BinaryWriter::new(Vec::new()).unwrap();
        for r in &refs {
            writer.push(r).unwrap();
        }
        let (got, n) = writer.finish().unwrap();
        assert_eq!(n, 2);
        assert_eq!(got, expect);
        let back: Vec<_> = read_binary(&got[..]).collect::<Result<_, _>>().unwrap();
        assert_eq!(back, refs);
    }
}
