//! Packed cold-storage corpus format (`DTR3`).
//!
//! A corpus file is a `DTR1` trace packed for archival: an 8-byte outer
//! header, a complete `DTR2` compressed stream as the payload, and a
//! 24-byte footer carrying the record count and an FNV-1a-64 checksum of
//! the payload bytes, so `verify` can prove a multi-gigabyte file intact
//! without trusting the decode alone.
//!
//! Layout:
//!
//! ```text
//! +--------------------+------------------------------+----------------------+
//! | "DTR3" 1 0 0 0     | DTR2 stream (own header)     | footer (24 bytes)    |
//! +--------------------+------------------------------+----------------------+
//! footer = record count u64 LE | payload FNV-1a-64 u64 LE | "END3" | 4 reserved
//! ```
//!
//! Everything streams: [`write_corpus`] pulls chunks from any
//! [`TraceSource`] and never materialises the trace, and
//! [`CorpusReader`] decodes record-by-record, verifying count and
//! checksum when the payload ends. Both run comfortably at the 10⁸-ref
//! scale the `trace_tool` subcommands target.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom, Take, Write};
use std::path::Path;

use crate::compress::{read_compressed, CompressedReader, Encoder};
use crate::io::TraceIoError;
use crate::source::{fill_from_results, TraceSource};
use crate::types::MemRef;

/// Magic bytes opening a corpus file.
pub const CORPUS_MAGIC: [u8; 4] = *b"DTR3";

/// Magic bytes inside the footer, marking an intact tail.
pub const FOOTER_MAGIC: [u8; 4] = *b"END3";

/// Size in bytes of the outer header.
pub const CORPUS_HEADER_LEN: usize = 8;

/// Size in bytes of the footer.
pub const CORPUS_FOOTER_LEN: usize = 24;

/// Streaming FNV-1a-64 over a byte stream.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64 {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// A writer adapter hashing and counting everything written through it.
#[derive(Debug)]
struct ChecksumWriter<W> {
    inner: W,
    hash: Fnv64,
    bytes: u64,
}

impl<W: Write> ChecksumWriter<W> {
    fn new(inner: W) -> Self {
        ChecksumWriter {
            inner,
            hash: Fnv64::new(),
            bytes: 0,
        }
    }
}

impl<W: Write> Write for ChecksumWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hash.update(&buf[..n]);
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A reader adapter hashing and counting everything read through it.
#[derive(Debug)]
pub struct ChecksumReader<R> {
    inner: R,
    hash: Fnv64,
    bytes: u64,
}

impl<R: Read> ChecksumReader<R> {
    fn new(inner: R) -> Self {
        ChecksumReader {
            inner,
            hash: Fnv64::new(),
            bytes: 0,
        }
    }
}

impl<R: Read> Read for ChecksumReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hash.update(&buf[..n]);
        self.bytes += n as u64;
        Ok(n)
    }
}

fn footer_bytes(count: u64, checksum: u64) -> [u8; CORPUS_FOOTER_LEN] {
    let mut footer = [0u8; CORPUS_FOOTER_LEN];
    footer[0..8].copy_from_slice(&count.to_le_bytes());
    footer[8..16].copy_from_slice(&checksum.to_le_bytes());
    footer[16..20].copy_from_slice(&FOOTER_MAGIC);
    footer
}

/// Packs every reference from `source` into a corpus stream on `w`.
/// Returns the record count.
///
/// # Errors
///
/// Propagates decode errors from the source and write errors from `w`.
pub fn write_corpus<W, S>(w: &mut W, mut source: S) -> Result<u64, TraceIoError>
where
    W: Write,
    S: TraceSource,
{
    w.write_all(&CORPUS_MAGIC)?;
    w.write_all(&[1, 0, 0, 0])?;
    let mut cw = ChecksumWriter::new(&mut *w);
    let mut enc = Encoder::new(&mut cw)?;
    let mut chunk = Vec::new();
    while source.read_chunk(&mut chunk, 8192)? > 0 {
        for r in &chunk {
            enc.push(r)?;
        }
    }
    let (_, count) = enc.finish()?;
    let checksum = cw.hash.finish();
    w.write_all(&footer_bytes(count, checksum))?;
    w.flush()?;
    Ok(count)
}

/// What a [`CorpusReader`] knows after the stream is fully drained (also
/// the result of [`verify_corpus`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusSummary {
    /// Records decoded (equals the footer count once verified).
    pub records: u64,
    /// Compressed payload size in bytes.
    pub payload_bytes: u64,
    /// FNV-1a-64 checksum of the payload.
    pub checksum: u64,
}

#[derive(Debug, PartialEq, Eq)]
enum ReaderState {
    Streaming,
    Done,
    Failed,
}

/// Streaming reader over a corpus file.
///
/// Iterates `Result<MemRef, TraceIoError>` and is a [`TraceSource`]. The
/// footer is read (and its magic validated) up front; the count and
/// checksum are verified once the payload ends, surfacing
/// [`TraceIoError::BadChecksum`] / [`TraceIoError::CountMismatch`] as a
/// final stream item so corruption cannot pass silently.
#[derive(Debug)]
pub struct CorpusReader<R: Read> {
    inner: CompressedReader<ChecksumReader<Take<R>>>,
    expected_count: u64,
    expected_checksum: u64,
    decoded: u64,
    state: ReaderState,
}

impl CorpusReader<BufReader<File>> {
    /// Opens the corpus file at `path`.
    ///
    /// # Errors
    ///
    /// * [`TraceIoError::Io`] for filesystem failures.
    /// * [`TraceIoError::TruncatedRecord`] if the file is too short to
    ///   hold header plus footer, or the footer magic is damaged.
    /// * [`TraceIoError::BadMagic`] if the outer magic is not `DTR3`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceIoError> {
        let file = File::open(path)?;
        Self::new(BufReader::new(file))
    }
}

impl<R: Read + Seek> CorpusReader<R> {
    /// Wraps a seekable byte stream holding a whole corpus file.
    ///
    /// # Errors
    ///
    /// See [`CorpusReader::open`].
    pub fn new(mut r: R) -> Result<Self, TraceIoError> {
        let total = r.seek(SeekFrom::End(0))?;
        let overhead = (CORPUS_HEADER_LEN + CORPUS_FOOTER_LEN) as u64;
        if total < overhead {
            return Err(TraceIoError::TruncatedRecord);
        }
        r.seek(SeekFrom::End(-(CORPUS_FOOTER_LEN as i64)))?;
        let mut footer = [0u8; CORPUS_FOOTER_LEN];
        r.read_exact(&mut footer)?;
        let footer_magic: [u8; 4] = footer[16..20].try_into().expect("len 4");
        if footer_magic != FOOTER_MAGIC {
            return Err(TraceIoError::TruncatedRecord);
        }
        let expected_count = u64::from_le_bytes(footer[0..8].try_into().expect("len 8"));
        let expected_checksum = u64::from_le_bytes(footer[8..16].try_into().expect("len 8"));
        r.seek(SeekFrom::Start(0))?;
        let mut header = [0u8; CORPUS_HEADER_LEN];
        r.read_exact(&mut header)?;
        let magic: [u8; 4] = header[0..4].try_into().expect("len 4");
        if magic != CORPUS_MAGIC {
            return Err(TraceIoError::BadMagic(magic));
        }
        let payload_len = total - overhead;
        let inner = read_compressed(ChecksumReader::new(r.take(payload_len)));
        Ok(CorpusReader {
            inner,
            expected_count,
            expected_checksum,
            decoded: 0,
            state: ReaderState::Streaming,
        })
    }
}

impl<R: Read> CorpusReader<R> {
    /// Record count promised by the footer.
    pub fn expected_records(&self) -> u64 {
        self.expected_count
    }

    /// Summary of the drained stream (checksum and byte count are only
    /// final once iteration has returned `None`).
    pub fn summary(&self) -> CorpusSummary {
        let cs = self.inner.get_ref();
        CorpusSummary {
            records: self.decoded,
            payload_bytes: cs.bytes,
            checksum: cs.hash.finish(),
        }
    }

    /// Verifies checksum and count at end of payload.
    fn check_footer(&self) -> Result<(), TraceIoError> {
        let summary = self.summary();
        if summary.checksum != self.expected_checksum {
            return Err(TraceIoError::BadChecksum {
                expected: self.expected_checksum,
                actual: summary.checksum,
            });
        }
        if summary.records != self.expected_count {
            return Err(TraceIoError::CountMismatch {
                expected: self.expected_count,
                actual: summary.records,
            });
        }
        Ok(())
    }
}

impl<R: Read> Iterator for CorpusReader<R> {
    type Item = Result<MemRef, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.state != ReaderState::Streaming {
            return None;
        }
        match self.inner.next() {
            Some(Ok(r)) => {
                self.decoded += 1;
                Some(Ok(r))
            }
            Some(Err(e)) => {
                self.state = ReaderState::Failed;
                Some(Err(e))
            }
            None => match self.check_footer() {
                Ok(()) => {
                    self.state = ReaderState::Done;
                    None
                }
                Err(e) => {
                    self.state = ReaderState::Failed;
                    Some(Err(e))
                }
            },
        }
    }
}

impl<R: Read> TraceSource for CorpusReader<R> {
    fn read_chunk(&mut self, buf: &mut Vec<MemRef>, max: usize) -> Result<usize, TraceIoError> {
        fill_from_results(self, buf, max)
    }
}

/// Fully verifies a corpus stream: magic, decodability, record count,
/// checksum footer. Streams — memory use is flat in file size.
///
/// # Errors
///
/// The first problem found, as the same typed errors the reader yields.
pub fn verify_corpus<R: Read + Seek>(r: R) -> Result<CorpusSummary, TraceIoError> {
    let mut reader = CorpusReader::new(r)?;
    for item in &mut reader {
        item?;
    }
    Ok(reader.summary())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    use crate::source::IterSource;
    use crate::synth::PaperTrace;

    fn pack(refs: &[MemRef]) -> Vec<u8> {
        let mut buf = Vec::new();
        let n = write_corpus(&mut buf, IterSource::new(refs.iter().copied())).unwrap();
        assert_eq!(n, refs.len() as u64);
        buf
    }

    #[test]
    fn round_trips_and_verifies() {
        let refs: Vec<MemRef> = PaperTrace::Pops.workload().take(10_000).collect();
        let buf = pack(&refs);
        let back: Vec<MemRef> = CorpusReader::new(Cursor::new(&buf))
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(back, refs);
        let summary = verify_corpus(Cursor::new(&buf)).unwrap();
        assert_eq!(summary.records, refs.len() as u64);
        assert_eq!(summary.payload_bytes as usize, buf.len() - 32);
    }

    #[test]
    fn empty_corpus_is_valid() {
        let buf = pack(&[]);
        assert_eq!(buf.len(), CORPUS_HEADER_LEN + 8 + CORPUS_FOOTER_LEN);
        assert_eq!(verify_corpus(Cursor::new(&buf)).unwrap().records, 0);
    }

    #[test]
    fn corrupt_payload_is_a_bad_checksum() {
        let refs: Vec<MemRef> = PaperTrace::Thor.workload().take(1000).collect();
        let mut buf = pack(&refs);
        // Flip a payload byte that keeps the DTR2 stream decodable in
        // length terms (an address-delta byte) — the checksum must still
        // catch it even when decode doesn't.
        let idx = buf.len() - CORPUS_FOOTER_LEN - 2;
        buf[idx] ^= 0x01;
        let outcome: Result<Vec<MemRef>, _> =
            CorpusReader::new(Cursor::new(&buf)).unwrap().collect();
        assert!(outcome.is_err(), "corruption must surface");
    }

    #[test]
    fn tampered_checksum_footer_is_detected() {
        let refs: Vec<MemRef> = PaperTrace::Pops.workload().take(100).collect();
        let mut buf = pack(&refs);
        let idx = buf.len() - CORPUS_FOOTER_LEN + 8; // checksum field
        buf[idx] ^= 0xff;
        let err = verify_corpus(Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, TraceIoError::BadChecksum { .. }), "{err}");
    }

    #[test]
    fn tampered_count_footer_is_detected() {
        let refs: Vec<MemRef> = PaperTrace::Pops.workload().take(100).collect();
        let mut buf = pack(&refs);
        let idx = buf.len() - CORPUS_FOOTER_LEN; // count field
        buf[idx] ^= 0xff;
        let err = verify_corpus(Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, TraceIoError::CountMismatch { .. }), "{err}");
    }

    #[test]
    fn bad_outer_magic_is_detected() {
        let refs: Vec<MemRef> = PaperTrace::Pops.workload().take(10).collect();
        let mut buf = pack(&refs);
        buf[0] = b'X';
        assert!(matches!(
            CorpusReader::new(Cursor::new(&buf)),
            Err(TraceIoError::BadMagic(_))
        ));
    }

    #[test]
    fn truncated_tail_is_detected_at_open() {
        let refs: Vec<MemRef> = PaperTrace::Pops.workload().take(10).collect();
        let mut buf = pack(&refs);
        buf.truncate(buf.len() - 3); // tear the footer
        assert!(matches!(
            CorpusReader::new(Cursor::new(&buf)),
            Err(TraceIoError::TruncatedRecord)
        ));
        assert!(matches!(
            CorpusReader::new(Cursor::new(&buf[..10])),
            Err(TraceIoError::TruncatedRecord)
        ));
    }

    #[test]
    fn corpus_reader_is_a_trace_source() {
        let refs: Vec<MemRef> = PaperTrace::Pops.workload().take(500).collect();
        let buf = pack(&refs);
        let collected =
            crate::source::collect_all(CorpusReader::new(Cursor::new(&buf)).unwrap()).unwrap();
        assert_eq!(collected, refs);
    }
}
