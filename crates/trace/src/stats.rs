//! Trace characterisation in the style of the paper's Table 3.
//!
//! [`TraceStats`] accumulates the per-kind counts the paper reports for each
//! trace (total references, instructions, data reads, data writes, user vs.
//! system references) plus the lock-spin counts that drive the §5.2
//! experiment.

use std::collections::HashSet;
use std::fmt;

use crate::types::{AccessKind, MemRef};

/// A set of small non-negative ids, built for the per-reference observe
/// path: ids below [`IdSet::BITMAP_LIMIT`] land in a dense bitmap (one
/// or-instruction per insert, no hashing), anything larger spills to a
/// `HashSet`. CPU and process ids are dense small integers in every
/// workload this crate generates, so the spill set stays empty in
/// practice.
#[derive(Debug, Clone, Default)]
struct IdSet {
    bits: Vec<u64>,
    spill: HashSet<u32>,
}

impl IdSet {
    /// Bitmap coverage: 64 Ki ids = 8 KiB fully grown.
    const BITMAP_LIMIT: u32 = 1 << 16;

    #[inline]
    fn insert(&mut self, id: u32) {
        if id < Self::BITMAP_LIMIT {
            let word = (id >> 6) as usize;
            if self.bits.len() <= word {
                self.bits.resize(word + 1, 0);
            }
            self.bits[word] |= 1u64 << (id & 63);
        } else {
            self.spill.insert(id);
        }
    }

    fn len(&self) -> usize {
        self.bits
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum::<usize>()
            + self.spill.len()
    }

    fn max(&self) -> Option<u32> {
        // Every spill id exceeds every bitmap id, so a plain Option max
        // (None < Some) picks the right winner.
        let bitmap_max = self
            .bits
            .iter()
            .enumerate()
            .rev()
            .find(|(_, w)| **w != 0)
            .map(|(word, w)| word as u32 * 64 + 63 - w.leading_zeros());
        self.spill.iter().copied().max().max(bitmap_max)
    }

    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.bits
            .iter()
            .enumerate()
            .flat_map(|(word, &w)| {
                (0..64u32)
                    .filter(move |b| w & (1u64 << b) != 0)
                    .map(move |b| word as u32 * 64 + b)
            })
            .chain(self.spill.iter().copied())
    }

    fn merge(&mut self, other: &IdSet) {
        if self.bits.len() < other.bits.len() {
            self.bits.resize(other.bits.len(), 0);
        }
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= b;
        }
        self.spill.extend(other.spill.iter().copied());
    }
}

/// Set equality (the bitmap's trailing-zero words don't count), so two
/// [`TraceStats`] that saw the same identities compare equal no matter
/// how their bitmaps grew.
impl PartialEq for IdSet {
    fn eq(&self, other: &Self) -> bool {
        let mut a: Vec<u32> = self.iter().collect();
        let mut b: Vec<u32> = other.iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }
}

impl Eq for IdSet {}

/// Running counters over a reference stream.
///
/// # Examples
///
/// ```
/// use dirsim_trace::{MemRef, CpuId, ProcessId, Addr, TraceStats};
/// let mut stats = TraceStats::new();
/// stats.observe(&MemRef::read(CpuId::new(0), ProcessId::new(0), Addr::new(0x10)));
/// stats.observe(&MemRef::write(CpuId::new(1), ProcessId::new(1), Addr::new(0x20)));
/// assert_eq!(stats.total(), 2);
/// assert_eq!(stats.data_reads(), 1);
/// assert_eq!(stats.data_writes(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    total: u64,
    instr: u64,
    data_reads: u64,
    data_writes: u64,
    user: u64,
    system: u64,
    lock_reads: u64,
    cpus: IdSet,
    pids: IdSet,
}

impl TraceStats {
    /// Creates an empty statistics accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates statistics from every reference produced by an iterator.
    pub fn from_refs<I>(refs: I) -> Self
    where
        I: IntoIterator<Item = MemRef>,
    {
        let mut stats = Self::new();
        for r in refs {
            stats.observe(&r);
        }
        stats
    }

    /// Records one reference.
    pub fn observe(&mut self, r: &MemRef) {
        self.total += 1;
        match r.kind {
            AccessKind::InstrFetch => self.instr += 1,
            AccessKind::Read => {
                self.data_reads += 1;
                if r.flags.is_lock() {
                    self.lock_reads += 1;
                }
            }
            AccessKind::Write => self.data_writes += 1,
        }
        if r.flags.is_os() {
            self.system += 1;
        } else {
            self.user += 1;
        }
        self.cpus.insert(r.cpu.index() as u32);
        self.pids.insert(r.pid.index() as u32);
    }

    /// Total number of references observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of instruction fetches.
    pub fn instructions(&self) -> u64 {
        self.instr
    }

    /// Number of data reads.
    pub fn data_reads(&self) -> u64 {
        self.data_reads
    }

    /// Number of data writes.
    pub fn data_writes(&self) -> u64 {
        self.data_writes
    }

    /// Number of references not marked as operating-system activity.
    pub fn user(&self) -> u64 {
        self.user
    }

    /// Number of references marked as operating-system activity.
    pub fn system(&self) -> u64 {
        self.system
    }

    /// Number of data reads marked as spin-lock tests.
    pub fn lock_reads(&self) -> u64 {
        self.lock_reads
    }

    /// Number of distinct CPUs seen.
    pub fn cpu_count(&self) -> usize {
        self.cpus.len()
    }

    /// Number of distinct processes seen.
    pub fn process_count(&self) -> usize {
        self.pids.len()
    }

    /// One past the highest process index seen (0 for an empty trace).
    ///
    /// This is the per-process cache count a simulation of the trace
    /// needs. It differs from [`process_count`](Self::process_count) on
    /// open-system traces, where a process id can appear even though an
    /// earlier-minted id never emitted a reference.
    pub fn process_id_bound(&self) -> u32 {
        self.pids.max().map_or(0, |p| p + 1)
    }

    /// Fraction of data reads that are lock-spin tests.
    ///
    /// The paper reports roughly one third for POPS and THOR.
    pub fn lock_read_fraction(&self) -> f64 {
        if self.data_reads == 0 {
            0.0
        } else {
            self.lock_reads as f64 / self.data_reads as f64
        }
    }

    /// Ratio of data reads to data writes.
    pub fn read_write_ratio(&self) -> f64 {
        if self.data_writes == 0 {
            f64::INFINITY
        } else {
            self.data_reads as f64 / self.data_writes as f64
        }
    }

    /// Merges another accumulator into this one.
    ///
    /// CPU/process identity sets are unioned, so merging two single-CPU
    /// traces reports two distinct CPUs.
    pub fn merge(&mut self, other: &TraceStats) {
        self.total += other.total;
        self.instr += other.instr;
        self.data_reads += other.data_reads;
        self.data_writes += other.data_writes;
        self.user += other.user;
        self.system += other.system;
        self.lock_reads += other.lock_reads;
        self.cpus.merge(&other.cpus);
        self.pids.merge(&other.pids);
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "refs={} instr={} dread={} dwrt={} user={} sys={} locks={} cpus={} procs={}",
            self.total,
            self.instr,
            self.data_reads,
            self.data_writes,
            self.user,
            self.system,
            self.lock_reads,
            self.cpu_count(),
            self.process_count()
        )
    }
}

impl Extend<MemRef> for TraceStats {
    fn extend<T: IntoIterator<Item = MemRef>>(&mut self, iter: T) {
        for r in iter {
            self.observe(&r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Addr, CpuId, ProcessId, RefFlags};

    fn sample() -> Vec<MemRef> {
        let c0 = CpuId::new(0);
        let c1 = CpuId::new(1);
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        vec![
            MemRef::instr(c0, p0, Addr::new(0x0)),
            MemRef::read(c0, p0, Addr::new(0x100)).with_flags(RefFlags::empty().with_lock()),
            MemRef::read(c1, p1, Addr::new(0x100)),
            MemRef::write(c1, p1, Addr::new(0x200)).with_flags(RefFlags::empty().with_os()),
        ]
    }

    #[test]
    fn counts_by_kind() {
        let stats = TraceStats::from_refs(sample());
        assert_eq!(stats.total(), 4);
        assert_eq!(stats.instructions(), 1);
        assert_eq!(stats.data_reads(), 2);
        assert_eq!(stats.data_writes(), 1);
    }

    #[test]
    fn user_system_split() {
        let stats = TraceStats::from_refs(sample());
        assert_eq!(stats.system(), 1);
        assert_eq!(stats.user(), 3);
        assert_eq!(stats.user() + stats.system(), stats.total());
    }

    #[test]
    fn lock_fraction() {
        let stats = TraceStats::from_refs(sample());
        assert_eq!(stats.lock_reads(), 1);
        assert!((stats.lock_read_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identity_counts() {
        let stats = TraceStats::from_refs(sample());
        assert_eq!(stats.cpu_count(), 2);
        assert_eq!(stats.process_count(), 2);
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = TraceStats::new();
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.lock_read_fraction(), 0.0);
        assert!(stats.read_write_ratio().is_infinite());
    }

    #[test]
    fn merge_unions_identities() {
        let mut a = TraceStats::from_refs(vec![MemRef::read(
            CpuId::new(0),
            ProcessId::new(0),
            Addr::new(0),
        )]);
        let b = TraceStats::from_refs(vec![MemRef::read(
            CpuId::new(1),
            ProcessId::new(1),
            Addr::new(0),
        )]);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.cpu_count(), 2);
        assert_eq!(a.process_count(), 2);
    }

    #[test]
    fn extend_matches_observe() {
        let mut a = TraceStats::new();
        a.extend(sample());
        let b = TraceStats::from_refs(sample());
        assert_eq!(a, b);
    }

    #[test]
    fn display_is_nonempty() {
        let s = TraceStats::new().to_string();
        assert!(s.contains("refs=0"));
    }
}
