//! Calibrated workload presets standing in for the paper's three ATUM traces.
//!
//! The paper traces (Table 3) are parallel applications on a 4-CPU VAX 8350
//! under MACH, each ~3.1–3.5 M references, ~50 % instruction fetches, ~10 %
//! operating-system activity:
//!
//! * **POPS** — parallel OPS5 rule system. Heavy test-and-test-and-set
//!   contention: about one third of data reads are lock spins.
//! * **THOR** — parallel logic simulator. Similar lock behaviour to POPS,
//!   with more producer/consumer traffic (event queues).
//! * **PERO** — parallel VLSI router. High read-to-write ratio from the
//!   algorithm itself, *much* less sharing and essentially no spin locking —
//!   the paper notes its bus-cycle numbers are far below the other two.
//!
//! These presets configure the synthetic generator to match those first-order
//! characteristics. They do not (and cannot) reproduce the applications'
//! exact address streams; see DESIGN.md §2 for the substitution argument.
//!
//! Since the scenario language landed, this module is a thin alias over
//! the bundled registry: the calibrations themselves live in
//! `crates/trace/scenarios/{pops,thor,pero}.scn` and [`PaperTrace`] just
//! resolves them by name. `tests/scenarios.rs` pins the specs
//! bit-identical to the original hand-written constructors.

use crate::scenario::Scenario;
use crate::synth::config::WorkloadConfig;
use crate::synth::generator::Workload;

/// Identifies one of the paper's three traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperTrace {
    /// Parallel OPS5 production system.
    Pops,
    /// Parallel logic simulator.
    Thor,
    /// Parallel VLSI router.
    Pero,
}

impl PaperTrace {
    /// All three traces, in the paper's order.
    pub const ALL: [PaperTrace; 3] = [PaperTrace::Pops, PaperTrace::Thor, PaperTrace::Pero];

    /// The trace's display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            PaperTrace::Pops => "POPS",
            PaperTrace::Thor => "THOR",
            PaperTrace::Pero => "PERO",
        }
    }

    /// The bundled scenario this trace resolves to.
    pub fn scenario(self) -> &'static Scenario {
        Scenario::named(self.name()).expect("paper scenarios are bundled")
    }

    /// The workload configuration emulating this trace.
    pub fn config(self) -> WorkloadConfig {
        self.scenario().config().clone()
    }

    /// Reference count the paper reports for this trace (Table 3, thousands
    /// of references): POPS 3142k, THOR 3222k, PERO 3508k.
    pub fn paper_ref_count(self) -> u64 {
        match self {
            PaperTrace::Pops => 3_142_000,
            PaperTrace::Thor => 3_222_000,
            PaperTrace::Pero => 3_508_000,
        }
    }

    /// Builds the workload generator for this trace.
    pub fn workload(self) -> Workload {
        Workload::new(self.config())
    }
}

impl std::fmt::Display for PaperTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Workload approximating the POPS trace: rule-system with contended locks.
///
/// Alias for the bundled `pops` scenario.
pub fn pops_like() -> WorkloadConfig {
    PaperTrace::Pops.config()
}

/// Workload approximating the THOR trace: logic simulator with event queues.
///
/// Alias for the bundled `thor` scenario.
pub fn thor_like() -> WorkloadConfig {
    PaperTrace::Thor.config()
}

/// Workload approximating the PERO trace: read-heavy router, little sharing.
///
/// Alias for the bundled `pero` scenario.
pub fn pero_like() -> WorkloadConfig {
    PaperTrace::Pero.config()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn all_presets_are_valid() {
        for t in PaperTrace::ALL {
            t.config().validate().unwrap();
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(PaperTrace::Pops.name(), "POPS");
        assert_eq!(PaperTrace::Thor.name(), "THOR");
        assert_eq!(PaperTrace::Pero.name(), "PERO");
        assert_eq!(PaperTrace::Pops.to_string(), "POPS");
    }

    #[test]
    fn pops_and_thor_spin_more_than_pero() {
        let n = 150_000;
        let pops = TraceStats::from_refs(PaperTrace::Pops.workload().take(n));
        let thor = TraceStats::from_refs(PaperTrace::Thor.workload().take(n));
        let pero = TraceStats::from_refs(PaperTrace::Pero.workload().take(n));
        assert!(pops.lock_read_fraction() > 5.0 * pero.lock_read_fraction());
        assert!(thor.lock_read_fraction() > 5.0 * pero.lock_read_fraction());
    }

    #[test]
    fn presets_have_four_cpus() {
        for t in PaperTrace::ALL {
            let stats = TraceStats::from_refs(t.workload().take(10_000));
            assert_eq!(stats.cpu_count(), 4, "{t}");
        }
    }

    #[test]
    fn instruction_fraction_is_near_half() {
        for t in PaperTrace::ALL {
            let stats = TraceStats::from_refs(t.workload().take(100_000));
            let frac = stats.instructions() as f64 / stats.total() as f64;
            assert!((0.40..0.60).contains(&frac), "{t}: instr frac {frac}");
        }
    }

    #[test]
    fn reads_dominate_writes() {
        // The paper notes a larger-than-usual read-to-write ratio (spins in
        // POPS/THOR, algorithmic in PERO).
        for t in PaperTrace::ALL {
            let stats = TraceStats::from_refs(t.workload().take(100_000));
            assert!(
                stats.read_write_ratio() > 2.0,
                "{t}: r/w {}",
                stats.read_write_ratio()
            );
        }
    }

    #[test]
    fn paper_ref_counts() {
        assert_eq!(PaperTrace::Pops.paper_ref_count(), 3_142_000);
        assert_eq!(PaperTrace::Thor.paper_ref_count(), 3_222_000);
        assert_eq!(PaperTrace::Pero.paper_ref_count(), 3_508_000);
    }
}
