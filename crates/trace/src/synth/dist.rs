//! Skewed sampling distributions for the synthetic generator.
//!
//! [`Zipf`] implements Zipf-distributed block popularity: rank 0 is the
//! hottest block, rank `n-1` the coldest, with skew controlled by
//! `theta ∈ (0, 1)`. Real shared heaps are not uniformly popular — a few
//! hot objects (work-queue heads, root tables) absorb most references —
//! and a skewed popularity law concentrates coherence traffic on a few
//! blocks, which is exactly the regime where limited-pointer directories
//! and broadcast schemes diverge.
//!
//! The sampler is the standard quantile-approximation used by YCSB's
//! `ZipfianGenerator` (Gray et al., "Quickly Generating Billion-Record
//! Synthetic Databases"): one uniform draw, a couple of multiplies and a
//! `powf` — no rejection loop, so each sample consumes exactly one RNG
//! value, which keeps trace generation deterministic and cheap.

use rand::rngs::SmallRng;
use rand::Rng;

/// Truncated zeta (generalised harmonic) number `Σ_{i=1..n} i^-theta`.
fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

/// A Zipf(θ) sampler over ranks `0..n`.
///
/// # Examples
///
/// ```
/// use dirsim_trace::synth::Zipf;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let zipf = Zipf::new(64, 0.9);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    half_pow_theta: f64,
}

impl Zipf {
    /// Creates a sampler over ranks `0..n` with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `(0, 1)` (use a plain
    /// uniform draw for `theta == 0`).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf needs a non-empty rank space");
        assert!(
            theta > 0.0 && theta < 1.0,
            "zipf theta {theta} must be in (0, 1)"
        );
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        Zipf {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            half_pow_theta: 0.5f64.powf(theta),
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one rank in `0..n`; rank 0 is the most popular.
    ///
    /// Consumes exactly one value from `rng`.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + self.half_pow_theta {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn histogram(n: u64, theta: f64, samples: usize) -> Vec<u64> {
        let zipf = Zipf::new(n, theta);
        let mut rng = SmallRng::seed_from_u64(0xd157);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..samples {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn samples_stay_in_bounds() {
        let zipf = Zipf::new(10, 0.9);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn rank_zero_dominates() {
        let counts = histogram(64, 0.9, 100_000);
        let hottest = counts[0];
        assert!(
            hottest > counts[1],
            "rank 0 ({hottest}) beats rank 1 ({})",
            counts[1]
        );
        // Under θ=0.9 the hottest of 64 ranks takes a large share; under a
        // uniform law it would take ~1.6 %.
        assert!(
            hottest as f64 / 100_000.0 > 0.10,
            "rank 0 share {}",
            hottest as f64 / 100_000.0
        );
        // Every rank is still reachable in a large sample.
        assert!(counts.iter().all(|&c| c > 0), "full support");
    }

    #[test]
    fn low_theta_approaches_uniform() {
        let counts = histogram(16, 0.05, 160_000);
        let expect = 10_000.0;
        for (rank, &c) in counts.iter().enumerate() {
            let rel = (c as f64 - expect).abs() / expect;
            assert!(rel < 0.25, "rank {rank}: count {c} vs uniform {expect}");
        }
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let mild = histogram(64, 0.3, 100_000)[0];
        let sharp = histogram(64, 0.95, 100_000)[0];
        assert!(sharp > mild, "θ=0.95 head {sharp} > θ=0.3 head {mild}");
    }

    #[test]
    fn deterministic_per_seed() {
        let zipf = Zipf::new(32, 0.8);
        let mut a = SmallRng::seed_from_u64(3);
        let mut b = SmallRng::seed_from_u64(3);
        for _ in 0..1_000 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
    }

    #[test]
    fn single_rank_degenerates() {
        let zipf = Zipf::new(1, 0.9);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1)")]
    fn rejects_theta_one() {
        let _ = Zipf::new(8, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty rank space")]
    fn rejects_empty_rank_space() {
        let _ = Zipf::new(0, 0.5);
    }
}
