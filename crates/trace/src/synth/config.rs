//! Configuration for synthetic multiprocessor workloads.
//!
//! The configuration captures the first-order statistical structure of the
//! paper's ATUM traces (Table 3, Table 4): the instruction/read/write mix,
//! how much data is shared and in what pattern, how intensely processes
//! contend on test-and-test-and-set locks, how often processes migrate
//! between CPUs, and how much operating-system activity is interleaved.

use std::fmt;

/// Errors produced when a workload configuration is internally inconsistent.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A probability-like field was outside `[0, 1]`.
    OutOfRange {
        /// Field name.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A count field that must be positive was zero.
    ZeroCount {
        /// Field name.
        field: &'static str,
    },
    /// Fewer processes than CPUs (every CPU must have a process to run).
    TooFewProcesses {
        /// Configured process count.
        processes: u32,
        /// Configured CPU count.
        cpus: u16,
    },
    /// Sharing-mix weights summed to zero.
    EmptySharingMix,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::OutOfRange { field, value } => {
                write!(f, "field `{field}` must be in [0, 1], got {value}")
            }
            ConfigError::ZeroCount { field } => {
                write!(f, "field `{field}` must be positive")
            }
            ConfigError::TooFewProcesses { processes, cpus } => write!(
                f,
                "need at least as many processes ({processes}) as cpus ({cpus})"
            ),
            ConfigError::EmptySharingMix => {
                write!(f, "sharing mix weights must not all be zero")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// How shared-data references are distributed over sharing patterns.
///
/// Weights are relative; they need not sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharingMix {
    /// Blocks read by many processes and written rarely (e.g. code-like
    /// tables, rule networks in POPS).
    pub read_mostly: f64,
    /// Objects accessed in read-modify-write bursts by one process at a
    /// time, handed off between processes (the dominant pattern behind the
    /// paper's "≤1 invalidation" observation).
    pub migratory: f64,
    /// One process writes, the others read (event queues in THOR).
    pub producer_consumer: f64,
    /// *False* sharing: each process updates its own word, but the words
    /// of several processes land in the same block, so block-granularity
    /// coherence ping-pongs data that is logically private. Zero by
    /// default (the calibrated paper presets don't need it); used by the
    /// block-size ablation.
    pub false_sharing: f64,
}

impl SharingMix {
    /// Sum of the weights.
    pub fn total(&self) -> f64 {
        self.read_mostly + self.migratory + self.producer_consumer + self.false_sharing
    }
}

impl Default for SharingMix {
    fn default() -> Self {
        SharingMix {
            read_mostly: 0.4,
            migratory: 0.45,
            producer_consumer: 0.15,
            false_sharing: 0.0,
        }
    }
}

/// Test-and-test-and-set lock behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LockConfig {
    /// Number of distinct lock words (each in its own block).
    pub locks: u32,
    /// Per-data-reference probability that a running process begins an
    /// acquire.
    pub acquire_prob: f64,
    /// Length of the lock-holding phase in *turns* (instructions included);
    /// models task execution under a work-queue lock, which is what makes
    /// other processes spin for long stretches as in the paper's traces.
    pub critical_section_len: u32,
    /// Fraction of guarded-data references inside the critical section
    /// that are writes.
    pub critical_write_frac: f64,
}

impl Default for LockConfig {
    fn default() -> Self {
        LockConfig {
            locks: 2,
            acquire_prob: 0.004,
            critical_section_len: 120,
            critical_write_frac: 0.4,
        }
    }
}

/// Barrier-synchronisation behaviour: all processes periodically rendezvous,
/// spinning on a shared generation word until the last arrives. Produces
/// bursts where one write must invalidate every other cache — the worst
/// case for the paper's Figure 1 fan-out and for broadcast-free schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarrierConfig {
    /// Turns of work between barrier episodes, per process. Zero disables
    /// barriers entirely.
    pub interval: u32,
}

impl BarrierConfig {
    /// No barriers (the calibrated paper presets).
    pub const fn disabled() -> Self {
        BarrierConfig { interval: 0 }
    }

    /// Whether barriers are active.
    pub fn is_enabled(&self) -> bool {
        self.interval > 0
    }
}

impl Default for BarrierConfig {
    fn default() -> Self {
        BarrierConfig::disabled()
    }
}

/// Full description of a synthetic workload.
///
/// Construct via [`WorkloadConfig::builder`]; `Default` gives a 4-CPU
/// workload loosely matching the paper's averaged trace characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of processors (the paper's traces have 4).
    pub cpus: u16,
    /// Number of processes (≥ `cpus`).
    pub processes: u32,
    /// Fraction of references that are instruction fetches (~0.50).
    pub instr_frac: f64,
    /// Of ordinary data references, the fraction that are writes (~0.21).
    pub write_frac: f64,
    /// Of ordinary data references, the fraction that target shared data.
    pub shared_frac: f64,
    /// Distribution over sharing patterns.
    pub sharing_mix: SharingMix,
    /// Number of shared blocks per pattern pool.
    pub shared_blocks_per_pool: u32,
    /// Number of private data blocks per process.
    pub private_blocks: u32,
    /// Number of instruction blocks per process (code loop length).
    pub code_blocks: u32,
    /// Lock behaviour.
    pub lock: LockConfig,
    /// Barrier behaviour (disabled by default).
    pub barrier: BarrierConfig,
    /// Fraction of references flagged as operating-system activity (~0.10).
    pub os_frac: f64,
    /// Per-scheduler-step probability of migrating a process to another CPU.
    pub migration_prob: f64,
    /// Scheduler quantum in references; processes beyond `cpus` are rotated
    /// in at quantum boundaries.
    pub quantum: u32,
    /// Block size in bytes (the paper uses 16).
    pub block_size: u32,
    /// RNG seed; identical configurations generate identical traces.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            cpus: 4,
            processes: 4,
            instr_frac: 0.497,
            write_frac: 0.21,
            shared_frac: 0.06,
            sharing_mix: SharingMix::default(),
            shared_blocks_per_pool: 64,
            private_blocks: 256,
            code_blocks: 512,
            lock: LockConfig::default(),
            barrier: BarrierConfig::disabled(),
            os_frac: 0.10,
            migration_prob: 0.0,
            quantum: 10_000,
            block_size: 16,
            seed: 0x5eed_0001,
        }
    }
}

impl WorkloadConfig {
    /// Starts a builder seeded with the default configuration.
    pub fn builder() -> WorkloadBuilder {
        WorkloadBuilder {
            config: WorkloadConfig::default(),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let fracs = [
            ("instr_frac", self.instr_frac),
            ("write_frac", self.write_frac),
            ("shared_frac", self.shared_frac),
            ("os_frac", self.os_frac),
            ("migration_prob", self.migration_prob),
            ("lock.acquire_prob", self.lock.acquire_prob),
            ("lock.critical_write_frac", self.lock.critical_write_frac),
            ("sharing_mix.read_mostly", self.sharing_mix.read_mostly),
            ("sharing_mix.migratory", self.sharing_mix.migratory),
            (
                "sharing_mix.producer_consumer",
                self.sharing_mix.producer_consumer,
            ),
            ("sharing_mix.false_sharing", self.sharing_mix.false_sharing),
        ];
        for (field, value) in fracs {
            if !(0.0..=1.0).contains(&value) || value.is_nan() {
                return Err(ConfigError::OutOfRange { field, value });
            }
        }
        if self.cpus == 0 {
            return Err(ConfigError::ZeroCount { field: "cpus" });
        }
        if self.processes == 0 {
            return Err(ConfigError::ZeroCount { field: "processes" });
        }
        if self.block_size == 0 || !self.block_size.is_power_of_two() {
            return Err(ConfigError::ZeroCount {
                field: "block_size",
            });
        }
        if self.private_blocks == 0 {
            return Err(ConfigError::ZeroCount {
                field: "private_blocks",
            });
        }
        if self.code_blocks == 0 {
            return Err(ConfigError::ZeroCount {
                field: "code_blocks",
            });
        }
        if self.shared_blocks_per_pool == 0 {
            return Err(ConfigError::ZeroCount {
                field: "shared_blocks_per_pool",
            });
        }
        if self.quantum == 0 {
            return Err(ConfigError::ZeroCount { field: "quantum" });
        }
        if u32::from(self.cpus) > self.processes {
            return Err(ConfigError::TooFewProcesses {
                processes: self.processes,
                cpus: self.cpus,
            });
        }
        if self.shared_frac > 0.0 && self.sharing_mix.total() <= 0.0 {
            return Err(ConfigError::EmptySharingMix);
        }
        Ok(())
    }
}

/// Fluent builder for [`WorkloadConfig`].
///
/// # Examples
///
/// ```
/// use dirsim_trace::synth::WorkloadConfig;
/// let cfg = WorkloadConfig::builder()
///     .cpus(16)
///     .processes(16)
///     .shared_frac(0.08)
///     .seed(42)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(cfg.cpus, 16);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    config: WorkloadConfig,
}

impl WorkloadBuilder {
    /// Sets the number of processors.
    pub fn cpus(mut self, cpus: u16) -> Self {
        self.config.cpus = cpus;
        self
    }

    /// Sets the number of processes.
    pub fn processes(mut self, processes: u32) -> Self {
        self.config.processes = processes;
        self
    }

    /// Sets the instruction-fetch fraction.
    pub fn instr_frac(mut self, f: f64) -> Self {
        self.config.instr_frac = f;
        self
    }

    /// Sets the write fraction of ordinary data references.
    pub fn write_frac(mut self, f: f64) -> Self {
        self.config.write_frac = f;
        self
    }

    /// Sets the shared fraction of ordinary data references.
    pub fn shared_frac(mut self, f: f64) -> Self {
        self.config.shared_frac = f;
        self
    }

    /// Sets the sharing-pattern mix.
    pub fn sharing_mix(mut self, mix: SharingMix) -> Self {
        self.config.sharing_mix = mix;
        self
    }

    /// Sets the number of shared blocks per pattern pool.
    pub fn shared_blocks_per_pool(mut self, blocks: u32) -> Self {
        self.config.shared_blocks_per_pool = blocks;
        self
    }

    /// Sets the number of private blocks per process.
    pub fn private_blocks(mut self, blocks: u32) -> Self {
        self.config.private_blocks = blocks;
        self
    }

    /// Sets the per-process code loop length in blocks.
    pub fn code_blocks(mut self, blocks: u32) -> Self {
        self.config.code_blocks = blocks;
        self
    }

    /// Sets the lock behaviour.
    pub fn lock(mut self, lock: LockConfig) -> Self {
        self.config.lock = lock;
        self
    }

    /// Sets the barrier behaviour.
    pub fn barrier(mut self, barrier: BarrierConfig) -> Self {
        self.config.barrier = barrier;
        self
    }

    /// Sets the operating-system activity fraction.
    pub fn os_frac(mut self, f: f64) -> Self {
        self.config.os_frac = f;
        self
    }

    /// Sets the per-step process migration probability.
    pub fn migration_prob(mut self, p: f64) -> Self {
        self.config.migration_prob = p;
        self
    }

    /// Sets the scheduler quantum in references.
    pub fn quantum(mut self, q: u32) -> Self {
        self.config.quantum = q;
        self
    }

    /// Sets the block size in bytes (must be a power of two).
    pub fn block_size(mut self, bytes: u32) -> Self {
        self.config.block_size = bytes;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any constraint is violated.
    pub fn build(self) -> Result<WorkloadConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        WorkloadConfig::default().validate().unwrap();
    }

    #[test]
    fn builder_sets_fields() {
        let cfg = WorkloadConfig::builder()
            .cpus(8)
            .processes(12)
            .instr_frac(0.4)
            .write_frac(0.3)
            .shared_frac(0.1)
            .os_frac(0.05)
            .migration_prob(0.001)
            .quantum(500)
            .block_size(32)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(cfg.cpus, 8);
        assert_eq!(cfg.processes, 12);
        assert_eq!(cfg.block_size, 32);
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    fn rejects_out_of_range_fraction() {
        let err = WorkloadConfig::builder()
            .instr_frac(1.5)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ConfigError::OutOfRange {
                field: "instr_frac",
                ..
            }
        ));
    }

    #[test]
    fn rejects_nan_fraction() {
        let err = WorkloadConfig::builder()
            .write_frac(f64::NAN)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::OutOfRange { .. }));
    }

    #[test]
    fn rejects_zero_cpus() {
        let err = WorkloadConfig::builder().cpus(0).build().unwrap_err();
        assert!(matches!(err, ConfigError::ZeroCount { field: "cpus" }));
    }

    #[test]
    fn rejects_fewer_processes_than_cpus() {
        let err = WorkloadConfig::builder()
            .cpus(8)
            .processes(4)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::TooFewProcesses { .. }));
    }

    #[test]
    fn rejects_non_power_of_two_block() {
        let err = WorkloadConfig::builder()
            .block_size(24)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ConfigError::ZeroCount {
                field: "block_size"
            }
        ));
    }

    #[test]
    fn rejects_empty_sharing_mix_when_sharing() {
        let err = WorkloadConfig::builder()
            .shared_frac(0.1)
            .sharing_mix(SharingMix {
                read_mostly: 0.0,
                migratory: 0.0,
                producer_consumer: 0.0,
                false_sharing: 0.0,
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::EmptySharingMix);
    }

    #[test]
    fn zero_sharing_allows_empty_mix() {
        WorkloadConfig::builder()
            .shared_frac(0.0)
            .sharing_mix(SharingMix {
                read_mostly: 0.0,
                migratory: 0.0,
                producer_consumer: 0.0,
                false_sharing: 0.0,
            })
            .build()
            .unwrap();
    }

    #[test]
    fn error_display() {
        let e = ConfigError::TooFewProcesses {
            processes: 2,
            cpus: 4,
        };
        assert!(e.to_string().contains("processes (2)"));
    }
}
