//! Configuration for synthetic multiprocessor workloads.
//!
//! The configuration captures the first-order statistical structure of the
//! paper's ATUM traces (Table 3, Table 4): the instruction/read/write mix,
//! how much data is shared and in what pattern, how intensely processes
//! contend on test-and-test-and-set locks, how often processes migrate
//! between CPUs, and how much operating-system activity is interleaved.

use std::fmt;

/// Errors produced when a workload configuration is internally inconsistent.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A probability-like field was outside `[0, 1]`.
    OutOfRange {
        /// Field name.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A count field that must be positive was zero.
    ZeroCount {
        /// Field name.
        field: &'static str,
    },
    /// Fewer processes than CPUs (every CPU must have a process to run).
    TooFewProcesses {
        /// Configured process count.
        processes: u32,
        /// Configured CPU count.
        cpus: u16,
    },
    /// Sharing-mix weights summed to zero.
    EmptySharingMix,
    /// Zipf skew outside `[0, 1)` (`0` selects uniform popularity).
    ZipfTheta {
        /// Offending value.
        value: f64,
    },
    /// Open-system population dynamics combined with barriers. A barrier
    /// release waits for every live process, which is ill-defined while
    /// the population grows and shrinks.
    OpenSystemWithBarriers,
    /// Open-system cap below the initial process population.
    OpenSystemCapTooSmall {
        /// Configured cap on live processes.
        max_processes: u32,
        /// Initial process population.
        processes: u32,
    },
    /// A phase that overrides nothing (index into the phase list).
    EmptyPhase {
        /// Zero-based phase index.
        index: usize,
    },
    /// A zero-length phase anywhere but last (`refs == 0` means "rest of
    /// the trace" and is only meaningful for the final phase).
    ZeroRefsPhaseNotLast {
        /// Zero-based phase index.
        index: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::OutOfRange { field, value } => {
                write!(f, "field `{field}` must be in [0, 1], got {value}")
            }
            ConfigError::ZeroCount { field } => {
                write!(f, "field `{field}` must be positive")
            }
            ConfigError::TooFewProcesses { processes, cpus } => write!(
                f,
                "need at least as many processes ({processes}) as cpus ({cpus})"
            ),
            ConfigError::EmptySharingMix => {
                write!(f, "sharing mix weights must not all be zero")
            }
            ConfigError::ZipfTheta { value } => {
                write!(f, "zipf_theta must be in [0, 1), got {value}")
            }
            ConfigError::OpenSystemWithBarriers => {
                write!(
                    f,
                    "open-system arrivals/departures cannot be combined with barriers"
                )
            }
            ConfigError::OpenSystemCapTooSmall {
                max_processes,
                processes,
            } => write!(
                f,
                "open-system cap ({max_processes}) below initial population ({processes})"
            ),
            ConfigError::EmptyPhase { index } => {
                write!(f, "phase {index} overrides nothing")
            }
            ConfigError::ZeroRefsPhaseNotLast { index } => {
                write!(
                    f,
                    "phase {index} has refs = 0 (rest of trace) but is not the final phase"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// How shared-data references are distributed over sharing patterns.
///
/// Weights are relative; they need not sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharingMix {
    /// Blocks read by many processes and written rarely (e.g. code-like
    /// tables, rule networks in POPS).
    pub read_mostly: f64,
    /// Objects accessed in read-modify-write bursts by one process at a
    /// time, handed off between processes (the dominant pattern behind the
    /// paper's "≤1 invalidation" observation).
    pub migratory: f64,
    /// One process writes, the others read (event queues in THOR).
    pub producer_consumer: f64,
    /// *False* sharing: each process updates its own word, but the words
    /// of several processes land in the same block, so block-granularity
    /// coherence ping-pongs data that is logically private. Zero by
    /// default (the calibrated paper presets don't need it); used by the
    /// block-size ablation.
    pub false_sharing: f64,
}

impl SharingMix {
    /// Sum of the weights.
    pub fn total(&self) -> f64 {
        self.read_mostly + self.migratory + self.producer_consumer + self.false_sharing
    }
}

impl Default for SharingMix {
    fn default() -> Self {
        SharingMix {
            read_mostly: 0.4,
            migratory: 0.45,
            producer_consumer: 0.15,
            false_sharing: 0.0,
        }
    }
}

/// Test-and-test-and-set lock behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LockConfig {
    /// Number of distinct lock words (each in its own block).
    pub locks: u32,
    /// Per-data-reference probability that a running process begins an
    /// acquire.
    pub acquire_prob: f64,
    /// Length of the lock-holding phase in *turns* (instructions included);
    /// models task execution under a work-queue lock, which is what makes
    /// other processes spin for long stretches as in the paper's traces.
    pub critical_section_len: u32,
    /// Fraction of guarded-data references inside the critical section
    /// that are writes.
    pub critical_write_frac: f64,
}

impl Default for LockConfig {
    fn default() -> Self {
        LockConfig {
            locks: 2,
            acquire_prob: 0.004,
            critical_section_len: 120,
            critical_write_frac: 0.4,
        }
    }
}

/// Barrier-synchronisation behaviour: all processes periodically rendezvous,
/// spinning on a shared generation word until the last arrives. Produces
/// bursts where one write must invalidate every other cache — the worst
/// case for the paper's Figure 1 fan-out and for broadcast-free schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarrierConfig {
    /// Turns of work between barrier episodes, per process. Zero disables
    /// barriers entirely.
    pub interval: u32,
}

impl BarrierConfig {
    /// No barriers (the calibrated paper presets).
    pub const fn disabled() -> Self {
        BarrierConfig { interval: 0 }
    }

    /// Whether barriers are active.
    pub fn is_enabled(&self) -> bool {
        self.interval > 0
    }
}

impl Default for BarrierConfig {
    fn default() -> Self {
        BarrierConfig::disabled()
    }
}

/// Open-system process population dynamics.
///
/// Instead of a fixed process set rotated through the CPUs (a *closed*
/// system), processes arrive and depart as independent Bernoulli events
/// per generated reference — the discrete-time analogue of a Poisson
/// birth/death process, following the open-system workload model of
/// Berserker and the queueing literature ("Open versus closed: a
/// cautionary tale", Schroeder et al.). Arrivals join the ready queue;
/// departures retire a *waiting* process, so every CPU always has work
/// and a critical-section holder is never killed while holding its lock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenSystemConfig {
    /// Per-reference probability that a new process arrives (ignored once
    /// `max_processes` are live).
    pub arrival_prob: f64,
    /// Per-reference probability that a waiting process departs. The
    /// population never drops below the CPU count (running processes are
    /// not retired).
    pub departure_prob: f64,
    /// Cap on the live process population.
    pub max_processes: u32,
}

impl OpenSystemConfig {
    /// A closed system: the process population is fixed.
    pub const fn closed() -> Self {
        OpenSystemConfig {
            arrival_prob: 0.0,
            departure_prob: 0.0,
            max_processes: 0,
        }
    }

    /// Whether arrivals or departures are active.
    pub fn is_enabled(&self) -> bool {
        self.arrival_prob > 0.0 || self.departure_prob > 0.0
    }
}

impl Default for OpenSystemConfig {
    fn default() -> Self {
        OpenSystemConfig::closed()
    }
}

/// One phase of a phased workload: a reference-count window in which part
/// of the reference mix is overridden. Fields left `None` keep the base
/// configuration's value, so a phase only has to name what changes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Phase {
    /// Phase length in generated references; `0` means "the rest of the
    /// trace" and is only allowed on the final phase. After the last
    /// phase's budget is spent, the last phase's mix persists.
    pub refs: u64,
    /// Overrides the instruction-fetch fraction.
    pub instr_frac: Option<f64>,
    /// Overrides the data-write fraction.
    pub write_frac: Option<f64>,
    /// Overrides the shared fraction of data references.
    pub shared_frac: Option<f64>,
    /// Overrides the sharing-pattern mix.
    pub sharing_mix: Option<SharingMix>,
    /// Overrides the lock-acquire probability.
    pub acquire_prob: Option<f64>,
}

impl Phase {
    /// Whether the phase overrides nothing (invalid: a phase must change
    /// something).
    pub fn overrides_nothing(&self) -> bool {
        self.instr_frac.is_none()
            && self.write_frac.is_none()
            && self.shared_frac.is_none()
            && self.sharing_mix.is_none()
            && self.acquire_prob.is_none()
    }
}

/// Full description of a synthetic workload.
///
/// Construct via [`WorkloadConfig::builder`]; `Default` gives a 4-CPU
/// workload loosely matching the paper's averaged trace characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of processors (the paper's traces have 4).
    pub cpus: u16,
    /// Number of processes (≥ `cpus`).
    pub processes: u32,
    /// Fraction of references that are instruction fetches (~0.50).
    pub instr_frac: f64,
    /// Of ordinary data references, the fraction that are writes (~0.21).
    pub write_frac: f64,
    /// Of ordinary data references, the fraction that target shared data.
    pub shared_frac: f64,
    /// Distribution over sharing patterns.
    pub sharing_mix: SharingMix,
    /// Number of shared blocks per pattern pool.
    pub shared_blocks_per_pool: u32,
    /// Number of private data blocks per process.
    pub private_blocks: u32,
    /// Number of instruction blocks per process (code loop length).
    pub code_blocks: u32,
    /// Lock behaviour.
    pub lock: LockConfig,
    /// Barrier behaviour (disabled by default).
    pub barrier: BarrierConfig,
    /// Fraction of references flagged as operating-system activity (~0.10).
    pub os_frac: f64,
    /// Per-scheduler-step probability of migrating a process to another CPU.
    pub migration_prob: f64,
    /// Scheduler quantum in references; processes beyond `cpus` are rotated
    /// in at quantum boundaries.
    pub quantum: u32,
    /// Block size in bytes (the paper uses 16).
    pub block_size: u32,
    /// Zipf skew for shared-pool block popularity: `0` (the default) is
    /// uniform, values in `(0, 1)` concentrate references on a few hot
    /// blocks (rank 0 hottest).
    pub zipf_theta: f64,
    /// Open-system process arrival/departure (disabled by default: the
    /// population is closed, as in the paper's traces).
    pub open: OpenSystemConfig,
    /// Phased mix schedule; empty means one implicit phase with the base
    /// mix for the whole trace.
    pub phases: Vec<Phase>,
    /// RNG seed; identical configurations generate identical traces.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            cpus: 4,
            processes: 4,
            instr_frac: 0.497,
            write_frac: 0.21,
            shared_frac: 0.06,
            sharing_mix: SharingMix::default(),
            shared_blocks_per_pool: 64,
            private_blocks: 256,
            code_blocks: 512,
            lock: LockConfig::default(),
            barrier: BarrierConfig::disabled(),
            os_frac: 0.10,
            migration_prob: 0.0,
            quantum: 10_000,
            block_size: 16,
            zipf_theta: 0.0,
            open: OpenSystemConfig::closed(),
            phases: Vec::new(),
            seed: 0x5eed_0001,
        }
    }
}

impl WorkloadConfig {
    /// Starts a builder seeded with the default configuration.
    pub fn builder() -> WorkloadBuilder {
        WorkloadBuilder {
            config: WorkloadConfig::default(),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let fracs = [
            ("instr_frac", self.instr_frac),
            ("write_frac", self.write_frac),
            ("shared_frac", self.shared_frac),
            ("os_frac", self.os_frac),
            ("migration_prob", self.migration_prob),
            ("lock.acquire_prob", self.lock.acquire_prob),
            ("lock.critical_write_frac", self.lock.critical_write_frac),
            ("sharing_mix.read_mostly", self.sharing_mix.read_mostly),
            ("sharing_mix.migratory", self.sharing_mix.migratory),
            (
                "sharing_mix.producer_consumer",
                self.sharing_mix.producer_consumer,
            ),
            ("sharing_mix.false_sharing", self.sharing_mix.false_sharing),
        ];
        for (field, value) in fracs {
            if !(0.0..=1.0).contains(&value) || value.is_nan() {
                return Err(ConfigError::OutOfRange { field, value });
            }
        }
        if self.cpus == 0 {
            return Err(ConfigError::ZeroCount { field: "cpus" });
        }
        if self.processes == 0 {
            return Err(ConfigError::ZeroCount { field: "processes" });
        }
        if self.block_size == 0 || !self.block_size.is_power_of_two() {
            return Err(ConfigError::ZeroCount {
                field: "block_size",
            });
        }
        if self.private_blocks == 0 {
            return Err(ConfigError::ZeroCount {
                field: "private_blocks",
            });
        }
        if self.code_blocks == 0 {
            return Err(ConfigError::ZeroCount {
                field: "code_blocks",
            });
        }
        if self.shared_blocks_per_pool == 0 {
            return Err(ConfigError::ZeroCount {
                field: "shared_blocks_per_pool",
            });
        }
        if self.quantum == 0 {
            return Err(ConfigError::ZeroCount { field: "quantum" });
        }
        if u32::from(self.cpus) > self.processes {
            return Err(ConfigError::TooFewProcesses {
                processes: self.processes,
                cpus: self.cpus,
            });
        }
        if self.shared_frac > 0.0 && self.sharing_mix.total() <= 0.0 {
            return Err(ConfigError::EmptySharingMix);
        }
        if !(0.0..1.0).contains(&self.zipf_theta) || self.zipf_theta.is_nan() {
            return Err(ConfigError::ZipfTheta {
                value: self.zipf_theta,
            });
        }
        for (field, value) in [
            ("open.arrival_prob", self.open.arrival_prob),
            ("open.departure_prob", self.open.departure_prob),
        ] {
            if !(0.0..=1.0).contains(&value) || value.is_nan() {
                return Err(ConfigError::OutOfRange { field, value });
            }
        }
        if self.open.is_enabled() {
            if self.barrier.is_enabled() {
                return Err(ConfigError::OpenSystemWithBarriers);
            }
            if self.open.max_processes < self.processes {
                return Err(ConfigError::OpenSystemCapTooSmall {
                    max_processes: self.open.max_processes,
                    processes: self.processes,
                });
            }
        }
        for (index, phase) in self.phases.iter().enumerate() {
            if phase.overrides_nothing() {
                return Err(ConfigError::EmptyPhase { index });
            }
            if phase.refs == 0 && index + 1 != self.phases.len() {
                return Err(ConfigError::ZeroRefsPhaseNotLast { index });
            }
            let fracs = [
                ("phase.instr_frac", phase.instr_frac),
                ("phase.write_frac", phase.write_frac),
                ("phase.shared_frac", phase.shared_frac),
                ("phase.acquire_prob", phase.acquire_prob),
            ];
            for (field, value) in fracs {
                if let Some(value) = value {
                    if !(0.0..=1.0).contains(&value) || value.is_nan() {
                        return Err(ConfigError::OutOfRange { field, value });
                    }
                }
            }
            let shared = phase.shared_frac.unwrap_or(self.shared_frac);
            let mix = phase.sharing_mix.unwrap_or(self.sharing_mix);
            if shared > 0.0 && mix.total() <= 0.0 {
                return Err(ConfigError::EmptySharingMix);
            }
        }
        Ok(())
    }
}

/// Fluent builder for [`WorkloadConfig`].
///
/// # Examples
///
/// ```
/// use dirsim_trace::synth::WorkloadConfig;
/// let cfg = WorkloadConfig::builder()
///     .cpus(16)
///     .processes(16)
///     .shared_frac(0.08)
///     .seed(42)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(cfg.cpus, 16);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    config: WorkloadConfig,
}

impl WorkloadBuilder {
    /// Sets the number of processors.
    pub fn cpus(mut self, cpus: u16) -> Self {
        self.config.cpus = cpus;
        self
    }

    /// Sets the number of processes.
    pub fn processes(mut self, processes: u32) -> Self {
        self.config.processes = processes;
        self
    }

    /// Sets the instruction-fetch fraction.
    pub fn instr_frac(mut self, f: f64) -> Self {
        self.config.instr_frac = f;
        self
    }

    /// Sets the write fraction of ordinary data references.
    pub fn write_frac(mut self, f: f64) -> Self {
        self.config.write_frac = f;
        self
    }

    /// Sets the shared fraction of ordinary data references.
    pub fn shared_frac(mut self, f: f64) -> Self {
        self.config.shared_frac = f;
        self
    }

    /// Sets the sharing-pattern mix.
    pub fn sharing_mix(mut self, mix: SharingMix) -> Self {
        self.config.sharing_mix = mix;
        self
    }

    /// Sets the number of shared blocks per pattern pool.
    pub fn shared_blocks_per_pool(mut self, blocks: u32) -> Self {
        self.config.shared_blocks_per_pool = blocks;
        self
    }

    /// Sets the number of private blocks per process.
    pub fn private_blocks(mut self, blocks: u32) -> Self {
        self.config.private_blocks = blocks;
        self
    }

    /// Sets the per-process code loop length in blocks.
    pub fn code_blocks(mut self, blocks: u32) -> Self {
        self.config.code_blocks = blocks;
        self
    }

    /// Sets the lock behaviour.
    pub fn lock(mut self, lock: LockConfig) -> Self {
        self.config.lock = lock;
        self
    }

    /// Sets the barrier behaviour.
    pub fn barrier(mut self, barrier: BarrierConfig) -> Self {
        self.config.barrier = barrier;
        self
    }

    /// Sets the operating-system activity fraction.
    pub fn os_frac(mut self, f: f64) -> Self {
        self.config.os_frac = f;
        self
    }

    /// Sets the per-step process migration probability.
    pub fn migration_prob(mut self, p: f64) -> Self {
        self.config.migration_prob = p;
        self
    }

    /// Sets the scheduler quantum in references.
    pub fn quantum(mut self, q: u32) -> Self {
        self.config.quantum = q;
        self
    }

    /// Sets the block size in bytes (must be a power of two).
    pub fn block_size(mut self, bytes: u32) -> Self {
        self.config.block_size = bytes;
        self
    }

    /// Sets the Zipf skew for shared-pool block popularity (`0` = uniform).
    pub fn zipf_theta(mut self, theta: f64) -> Self {
        self.config.zipf_theta = theta;
        self
    }

    /// Sets the open-system arrival/departure behaviour.
    pub fn open(mut self, open: OpenSystemConfig) -> Self {
        self.config.open = open;
        self
    }

    /// Appends one phase to the phased mix schedule.
    pub fn phase(mut self, phase: Phase) -> Self {
        self.config.phases.push(phase);
        self
    }

    /// Replaces the phased mix schedule.
    pub fn phases(mut self, phases: Vec<Phase>) -> Self {
        self.config.phases = phases;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any constraint is violated.
    pub fn build(self) -> Result<WorkloadConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        WorkloadConfig::default().validate().unwrap();
    }

    #[test]
    fn builder_sets_fields() {
        let cfg = WorkloadConfig::builder()
            .cpus(8)
            .processes(12)
            .instr_frac(0.4)
            .write_frac(0.3)
            .shared_frac(0.1)
            .os_frac(0.05)
            .migration_prob(0.001)
            .quantum(500)
            .block_size(32)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(cfg.cpus, 8);
        assert_eq!(cfg.processes, 12);
        assert_eq!(cfg.block_size, 32);
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    fn rejects_out_of_range_fraction() {
        let err = WorkloadConfig::builder()
            .instr_frac(1.5)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ConfigError::OutOfRange {
                field: "instr_frac",
                ..
            }
        ));
    }

    #[test]
    fn rejects_nan_fraction() {
        let err = WorkloadConfig::builder()
            .write_frac(f64::NAN)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::OutOfRange { .. }));
    }

    #[test]
    fn rejects_zero_cpus() {
        let err = WorkloadConfig::builder().cpus(0).build().unwrap_err();
        assert!(matches!(err, ConfigError::ZeroCount { field: "cpus" }));
    }

    #[test]
    fn rejects_fewer_processes_than_cpus() {
        let err = WorkloadConfig::builder()
            .cpus(8)
            .processes(4)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::TooFewProcesses { .. }));
    }

    #[test]
    fn rejects_non_power_of_two_block() {
        let err = WorkloadConfig::builder()
            .block_size(24)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ConfigError::ZeroCount {
                field: "block_size"
            }
        ));
    }

    #[test]
    fn rejects_empty_sharing_mix_when_sharing() {
        let err = WorkloadConfig::builder()
            .shared_frac(0.1)
            .sharing_mix(SharingMix {
                read_mostly: 0.0,
                migratory: 0.0,
                producer_consumer: 0.0,
                false_sharing: 0.0,
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::EmptySharingMix);
    }

    #[test]
    fn zero_sharing_allows_empty_mix() {
        WorkloadConfig::builder()
            .shared_frac(0.0)
            .sharing_mix(SharingMix {
                read_mostly: 0.0,
                migratory: 0.0,
                producer_consumer: 0.0,
                false_sharing: 0.0,
            })
            .build()
            .unwrap();
    }

    #[test]
    fn error_display() {
        let e = ConfigError::TooFewProcesses {
            processes: 2,
            cpus: 4,
        };
        assert!(e.to_string().contains("processes (2)"));
    }

    #[test]
    fn rejects_zipf_theta_at_or_above_one() {
        for theta in [1.0, 1.5, f64::NAN] {
            let err = WorkloadConfig::builder()
                .zipf_theta(theta)
                .build()
                .unwrap_err();
            assert!(matches!(err, ConfigError::ZipfTheta { .. }), "{theta}");
        }
        WorkloadConfig::builder().zipf_theta(0.99).build().unwrap();
    }

    #[test]
    fn rejects_open_system_with_barriers() {
        let err = WorkloadConfig::builder()
            .open(OpenSystemConfig {
                arrival_prob: 0.001,
                departure_prob: 0.001,
                max_processes: 16,
            })
            .barrier(BarrierConfig { interval: 100 })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::OpenSystemWithBarriers);
    }

    #[test]
    fn rejects_open_system_cap_below_population() {
        let err = WorkloadConfig::builder()
            .processes(8)
            .cpus(4)
            .open(OpenSystemConfig {
                arrival_prob: 0.001,
                departure_prob: 0.0,
                max_processes: 4,
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::OpenSystemCapTooSmall { .. }));
    }

    #[test]
    fn rejects_out_of_range_arrival_prob() {
        let err = WorkloadConfig::builder()
            .open(OpenSystemConfig {
                arrival_prob: 1.5,
                departure_prob: 0.0,
                max_processes: 64,
            })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ConfigError::OutOfRange {
                field: "open.arrival_prob",
                ..
            }
        ));
    }

    #[test]
    fn rejects_empty_phase() {
        let err = WorkloadConfig::builder()
            .phase(Phase {
                refs: 100,
                ..Phase::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::EmptyPhase { index: 0 });
    }

    #[test]
    fn rejects_zero_refs_phase_not_last() {
        let err = WorkloadConfig::builder()
            .phase(Phase {
                refs: 0,
                write_frac: Some(0.3),
                ..Phase::default()
            })
            .phase(Phase {
                refs: 100,
                write_frac: Some(0.1),
                ..Phase::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroRefsPhaseNotLast { index: 0 });
    }

    #[test]
    fn rejects_out_of_range_phase_fraction() {
        let err = WorkloadConfig::builder()
            .phase(Phase {
                refs: 100,
                write_frac: Some(2.0),
                ..Phase::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ConfigError::OutOfRange {
                field: "phase.write_frac",
                ..
            }
        ));
    }

    #[test]
    fn rejects_phase_emptying_the_sharing_mix() {
        let err = WorkloadConfig::builder()
            .shared_frac(0.05)
            .phase(Phase {
                refs: 0,
                sharing_mix: Some(SharingMix {
                    read_mostly: 0.0,
                    migratory: 0.0,
                    producer_consumer: 0.0,
                    false_sharing: 0.0,
                }),
                ..Phase::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::EmptySharingMix);
    }

    #[test]
    fn accepts_valid_phases_and_open_system() {
        WorkloadConfig::builder()
            .zipf_theta(0.9)
            .open(OpenSystemConfig {
                arrival_prob: 0.0005,
                departure_prob: 0.0005,
                max_processes: 32,
            })
            .phase(Phase {
                refs: 50_000,
                write_frac: Some(0.4),
                ..Phase::default()
            })
            .phase(Phase {
                refs: 0,
                shared_frac: Some(0.1),
                ..Phase::default()
            })
            .build()
            .unwrap();
    }
}
