//! Synthetic multiprocessor workload generation.
//!
//! Stand-in for the paper's ATUM traces: a deterministic generator
//! ([`Workload`]) parameterised by a [`WorkloadConfig`], with presets
//! calibrated to the paper's three traces ([`PaperTrace`]).

mod config;
mod dist;
mod generator;
mod layout;
mod presets;

pub use config::{
    BarrierConfig, ConfigError, LockConfig, OpenSystemConfig, Phase, SharingMix, WorkloadBuilder,
    WorkloadConfig,
};
pub use dist::Zipf;
pub use generator::Workload;
pub use layout::{AddressLayout, Region};
pub use presets::{pero_like, pops_like, thor_like, PaperTrace};
