//! The synthetic workload generator.
//!
//! [`Workload`] is an infinite, deterministic iterator of [`MemRef`]s that
//! emulates `P` processes running on `C` processors: per-process code loops
//! and private working sets, shared pools with read-mostly / migratory /
//! producer-consumer / false-sharing semantics and working-set churn,
//! honest test-and-test-and-set spin locks with long lock-holding phases,
//! optional barrier rendezvous, split per-CPU/shared operating-system
//! activity, a round-robin scheduler with a context-switch quantum, and
//! optional process migration.
//!
//! Determinism: the stream is a pure function of the [`WorkloadConfig`]
//! (including its seed), so experiments are exactly reproducible.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::synth::config::{Phase, SharingMix, WorkloadConfig};
use crate::synth::dist::Zipf;
use crate::synth::layout::{AddressLayout, Region};
use crate::types::{CpuId, MemRef, ProcessId, RefFlags};

#[cfg(test)]
use crate::types::AccessKind;

/// Blocks of data guarded by each lock (the critical-section working set).
/// Kept small: the paper's traces show very low coherence-miss rates, so
/// lock-protected handoffs must touch only a few blocks.
const GUARDED_BLOCKS_PER_LOCK: u64 = 4;

/// Of the data references issued inside a critical section, the fraction
/// that touch the lock's guarded blocks (the rest are ordinary private/OS
/// work done while holding the lock).
const CS_GUARDED_FRAC: f64 = 0.30;

/// Blocks in the globally-shared operating-system pool.
const OS_SHARED_BLOCKS: u64 = 64;

/// Per-processor operating-system blocks (kernel stacks, per-CPU data).
const OS_LOCAL_BLOCKS: u64 = 64;

/// Fraction of OS references that touch the globally-shared pool.
const OS_SHARED_PROB: f64 = 0.25;

/// Fraction of shared-pool OS references that are writes. Kept low: OS
/// shared structures are read-mostly, and every write here invalidates
/// copies in all processors' caches.
const OS_SHARED_WRITE_FRAC: f64 = 0.02;

/// Fraction of per-processor OS references that are writes.
const OS_LOCAL_WRITE_FRAC: f64 = 0.30;

/// Length of a migratory access burst, in references.
const MIGRATORY_BURST: u32 = 8;

/// References per producer/consumer epoch (producer role rotates).
const PRODUCER_EPOCH: u64 = 50_000;

/// Probability that an instruction fetch jumps instead of falling through.
const JUMP_PROB: f64 = 0.05;

/// Probability that a private reference reuses the previous private block.
const PRIVATE_LOCALITY: f64 = 0.6;

/// Fraction of read-mostly pool references that are writes.
const READ_MOSTLY_WRITE_FRAC: f64 = 0.01;

/// Fraction of migratory burst references that are writes.
const MIGRATORY_WRITE_FRAC: f64 = 0.5;

/// Working-set churn: shared pools are sliding windows over a growing
/// block space, modelling allocation of new shared objects over time. This
/// sustains the *native* miss rate the paper observes with infinite caches
/// (Dragon's misses, Table 4) instead of letting it decay to zero once the
/// pools are cached everywhere.
///
/// Probability per guarded-data reference of sliding the lock's window.
const GUARDED_CHURN: f64 = 0.05;

/// Probability per migratory burst of sliding the migratory window.
const MIGRATORY_CHURN: f64 = 0.10;

/// Probability per read-mostly/producer-consumer reference of sliding that
/// pool's window.
const POOL_CHURN: f64 = 0.004;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Running,
    /// Spinning on a lock with test reads.
    Spinning {
        lock: u32,
    },
    /// Inside the critical section of `lock`.
    Critical {
        lock: u32,
        remaining: u32,
    },
    /// Arrived at the barrier; spinning until the generation advances
    /// past the recorded value.
    AtBarrier {
        generation: u64,
    },
}

#[derive(Debug, Clone)]
struct ProcState {
    mode: Mode,
    /// Current code block (program counter at block granularity).
    pc: u64,
    /// Most recent private block, for temporal locality.
    last_private: u64,
    /// Current migratory block and remaining burst length.
    mig_block: u64,
    mig_burst_left: u32,
    /// Turns of ordinary work since the last barrier episode.
    turns_since_barrier: u32,
}

impl ProcState {
    fn new(pid: u32, cfg: &WorkloadConfig) -> Self {
        ProcState {
            mode: Mode::Running,
            pc: u64::from(pid) % u64::from(cfg.code_blocks),
            last_private: 0,
            mig_block: u64::from(pid) % u64::from(cfg.shared_blocks_per_pool),
            mig_burst_left: 0,
            turns_since_barrier: 0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct LockState {
    holder: Option<u32>,
}

/// The reference mix currently in force: the base configuration with the
/// active phase's overrides applied. Recomputed only at phase boundaries,
/// so the per-reference hot path reads plain fields.
#[derive(Debug, Clone, Copy)]
struct EffectiveMix {
    instr_frac: f64,
    write_frac: f64,
    shared_frac: f64,
    acquire_prob: f64,
    sharing_mix: SharingMix,
}

impl EffectiveMix {
    fn base(cfg: &WorkloadConfig) -> Self {
        EffectiveMix {
            instr_frac: cfg.instr_frac,
            write_frac: cfg.write_frac,
            shared_frac: cfg.shared_frac,
            acquire_prob: cfg.lock.acquire_prob,
            sharing_mix: cfg.sharing_mix,
        }
    }

    fn for_phase(cfg: &WorkloadConfig, phase: &Phase) -> Self {
        EffectiveMix {
            instr_frac: phase.instr_frac.unwrap_or(cfg.instr_frac),
            write_frac: phase.write_frac.unwrap_or(cfg.write_frac),
            shared_frac: phase.shared_frac.unwrap_or(cfg.shared_frac),
            acquire_prob: phase.acquire_prob.unwrap_or(cfg.lock.acquire_prob),
            sharing_mix: phase.sharing_mix.unwrap_or(cfg.sharing_mix),
        }
    }
}

/// Infinite deterministic reference stream. See the module docs.
///
/// # Examples
///
/// ```
/// use dirsim_trace::synth::{Workload, WorkloadConfig};
///
/// let cfg = WorkloadConfig::builder().seed(1).build().expect("valid");
/// let refs: Vec<_> = Workload::new(cfg).take(1000).collect();
/// assert_eq!(refs.len(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    cfg: WorkloadConfig,
    layout: AddressLayout,
    rng: SmallRng,
    procs: Vec<ProcState>,
    /// Process currently running on each CPU.
    cpu_proc: Vec<u32>,
    /// Processes waiting for a CPU.
    ready: VecDeque<u32>,
    locks: Vec<LockState>,
    /// Processes currently waiting at the barrier.
    barrier_arrived: u32,
    /// Barrier generation; bumped by each release.
    barrier_generation: u64,
    next_cpu: usize,
    step: u64,
    /// Sliding-window bases for working-set churn (see the churn constants).
    guarded_base: Vec<u64>,
    mig_base: u64,
    read_mostly_base: u64,
    producer_base: u64,
    /// The mix currently in force (base config + active phase overrides).
    eff: EffectiveMix,
    /// Index of the active phase (`cfg.phases` may be empty).
    phase_idx: usize,
    /// References left in the active phase; `None` once the schedule is
    /// exhausted (or was never set).
    phase_left: Option<u64>,
    /// Zipf sampler for shared-pool popularity (`None` = uniform).
    zipf: Option<Zipf>,
    /// Live process count (grows and shrinks in open-system mode).
    live: u32,
}

impl Workload {
    /// Creates a generator for a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`WorkloadConfig::validate`] (or the builder) first.
    pub fn new(cfg: WorkloadConfig) -> Self {
        cfg.validate().expect("invalid workload configuration");
        let layout = AddressLayout::new(cfg.block_size);
        let procs = (0..cfg.processes)
            .map(|pid| ProcState::new(pid, &cfg))
            .collect();
        let cpu_proc: Vec<u32> = (0..u32::from(cfg.cpus)).collect();
        let ready: VecDeque<u32> = (u32::from(cfg.cpus)..cfg.processes).collect();
        let locks = vec![LockState { holder: None }; cfg.lock.locks as usize];
        let guarded_base = vec![0u64; cfg.lock.locks as usize];
        let rng = SmallRng::seed_from_u64(cfg.seed);
        let (eff, phase_left) = match cfg.phases.first() {
            Some(phase) => (
                EffectiveMix::for_phase(&cfg, phase),
                (phase.refs > 0).then_some(phase.refs),
            ),
            None => (EffectiveMix::base(&cfg), None),
        };
        let zipf = (cfg.zipf_theta > 0.0)
            .then(|| Zipf::new(u64::from(cfg.shared_blocks_per_pool), cfg.zipf_theta));
        let live = cfg.processes;
        Workload {
            cfg,
            layout,
            rng,
            procs,
            cpu_proc,
            ready,
            locks,
            barrier_arrived: 0,
            barrier_generation: 0,
            next_cpu: 0,
            step: 0,
            guarded_base,
            mig_base: 0,
            read_mostly_base: 0,
            producer_base: 0,
            eff,
            phase_idx: 0,
            phase_left,
            zipf,
            live,
        }
    }

    /// The configuration this generator was built from.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// Moves to the next phase once the active one's budget is spent. The
    /// last phase's mix persists after its budget runs out.
    fn maybe_advance_phase(&mut self) {
        if self.phase_left == Some(0) {
            self.phase_idx += 1;
            match self.cfg.phases.get(self.phase_idx) {
                Some(phase) => {
                    self.eff = EffectiveMix::for_phase(&self.cfg, phase);
                    self.phase_left = (phase.refs > 0).then_some(phase.refs);
                }
                None => self.phase_left = None,
            }
        }
    }

    /// One step of the open-system birth/death process: maybe spawn a new
    /// process into the ready queue, maybe retire a waiting one. Only runs
    /// when open-system mode is enabled, so closed configurations draw no
    /// extra randomness (bit-identical streams).
    fn open_system_step(&mut self) {
        let open = self.cfg.open;
        if open.arrival_prob > 0.0 && self.rng.gen_bool(open.arrival_prob) {
            // The cap check comes after the draw so the stream consumed
            // per step does not depend on the population.
            if self.live < open.max_processes {
                let pid = self.procs.len() as u32;
                self.procs.push(ProcState::new(pid, &self.cfg));
                self.ready.push_back(pid);
                self.live += 1;
            }
        }
        if open.departure_prob > 0.0 && self.rng.gen_bool(open.departure_prob) {
            // Retire the front waiter; CPUs keep their running processes,
            // so the population never drops below the CPU count. A
            // critical-section holder is never retired (it would leak its
            // lock and starve every spinner) — it is rotated to the back
            // and this departure is skipped.
            if let Some(&front) = self.ready.front() {
                if matches!(self.procs[front as usize].mode, Mode::Critical { .. }) {
                    self.ready.rotate_left(1);
                } else {
                    self.ready.pop_front();
                    self.live -= 1;
                }
            }
        }
    }

    /// Draws a block rank within a shared pool: uniform by default, Zipf
    /// when `zipf_theta > 0`. Consumes exactly one RNG value either way.
    fn pool_rank(&mut self, blocks: u64) -> u64 {
        match &self.zipf {
            Some(zipf) => {
                debug_assert_eq!(zipf.ranks(), blocks);
                zipf.sample(&mut self.rng)
            }
            None => self.rng.gen_range(0..blocks),
        }
    }

    fn maybe_migrate(&mut self) {
        if self.cfg.migration_prob > 0.0
            && self.cfg.cpus > 1
            && self.rng.gen_bool(self.cfg.migration_prob)
        {
            let a = self.rng.gen_range(0..self.cpu_proc.len());
            let b = self.rng.gen_range(0..self.cpu_proc.len());
            self.cpu_proc.swap(a, b);
        }
    }

    fn maybe_context_switch(&mut self) {
        if self.ready.is_empty() {
            return;
        }
        if self.step > 0 && self.step % u64::from(self.cfg.quantum) == 0 {
            for slot in self.cpu_proc.iter_mut() {
                if let Some(next) = self.ready.pop_front() {
                    self.ready.push_back(*slot);
                    *slot = next;
                }
            }
        }
    }

    /// Emits the next reference from process `pid` on CPU `cpu`.
    fn proc_turn(&mut self, cpu: CpuId, pid: u32) -> MemRef {
        let id = ProcessId::new(pid);
        match self.procs[pid as usize].mode {
            Mode::Spinning { lock } => {
                // The spin loop executes instructions between tests.
                if self.rng.gen_bool(self.eff.instr_frac) {
                    return self.instr_fetch(cpu, pid);
                }
                if self.locks[lock as usize].holder.is_none() {
                    // Observed free last test: issue the test-and-set write.
                    self.locks[lock as usize].holder = Some(pid);
                    self.procs[pid as usize].mode = Mode::Critical {
                        lock,
                        remaining: self.cfg.lock.critical_section_len,
                    };
                    MemRef::write(cpu, id, self.layout.lock(lock))
                } else {
                    // Keep testing: this is the spin read the paper flags.
                    MemRef::read(cpu, id, self.layout.lock(lock))
                        .with_flags(RefFlags::empty().with_lock())
                }
            }
            Mode::Critical { lock, remaining } => {
                if remaining == 0 {
                    // Release store.
                    self.locks[lock as usize].holder = None;
                    self.procs[pid as usize].mode = Mode::Running;
                    return MemRef::write(cpu, id, self.layout.lock(lock));
                }
                self.procs[pid as usize].mode = Mode::Critical {
                    lock,
                    remaining: remaining - 1,
                };
                // Work done while holding the lock looks like ordinary
                // execution, except that its shared accesses target the
                // lock's guarded blocks.
                if self.rng.gen_bool(self.eff.instr_frac) {
                    return self.instr_fetch(cpu, pid);
                }
                let os_prob = (1.0 - self.eff.instr_frac) * self.cfg.os_frac;
                if self.rng.gen_bool(os_prob.clamp(0.0, 1.0)) {
                    return self.os_ref(cpu, pid);
                }
                if self.rng.gen_bool(CS_GUARDED_FRAC) {
                    if self.rng.gen_bool(GUARDED_CHURN) {
                        self.guarded_base[lock as usize] += 1;
                    }
                    let base = self.guarded_base[lock as usize];
                    let block = base + self.rng.gen_range(0..GUARDED_BLOCKS_PER_LOCK);
                    let addr = self.layout.guarded(lock, block);
                    if self.rng.gen_bool(self.cfg.lock.critical_write_frac) {
                        MemRef::write(cpu, id, addr)
                    } else {
                        MemRef::read(cpu, id, addr)
                    }
                } else {
                    self.private_ref(cpu, pid)
                }
            }
            Mode::AtBarrier { generation } => {
                // Spin-loop instructions interleave with generation tests.
                if self.rng.gen_bool(self.eff.instr_frac) {
                    return self.instr_fetch(cpu, pid);
                }
                if self.barrier_generation != generation {
                    // Released: a later generation means the round completed.
                    self.procs[pid as usize].mode = Mode::Running;
                    self.procs[pid as usize].turns_since_barrier = 0;
                    return self.running_turn(cpu, pid);
                }
                MemRef::read(cpu, id, self.barrier_word()).with_flags(RefFlags::empty().with_lock())
            }
            Mode::Running => {
                // Barrier rendezvous: after `interval` turns of work, a
                // process arrives (a write on the barrier word) and waits
                // for everyone else.
                if self.cfg.barrier.is_enabled() {
                    let state = &mut self.procs[pid as usize];
                    state.turns_since_barrier += 1;
                    if state.turns_since_barrier >= self.cfg.barrier.interval {
                        self.barrier_arrived += 1;
                        if self.barrier_arrived == self.cfg.processes {
                            // Last arriver releases everyone: its write to
                            // the barrier word is the release store, and it
                            // advances the generation the waiters test.
                            self.barrier_arrived = 0;
                            self.barrier_generation += 1;
                            self.procs[pid as usize].turns_since_barrier = 0;
                        } else {
                            self.procs[pid as usize].mode = Mode::AtBarrier {
                                generation: self.barrier_generation,
                            };
                        }
                        return MemRef::write(cpu, id, self.barrier_word());
                    }
                }
                self.running_turn(cpu, pid)
            }
        }
    }

    /// The barrier generation word lives in its own block, one past the
    /// lock words.
    fn barrier_word(&self) -> crate::types::Addr {
        self.layout.lock(self.cfg.lock.locks)
    }

    fn running_turn(&mut self, cpu: CpuId, pid: u32) -> MemRef {
        let id = ProcessId::new(pid);
        let roll: f64 = self.rng.gen();
        if roll < self.eff.instr_frac {
            return self.instr_fetch(cpu, pid);
        }
        if roll < self.eff.instr_frac + (1.0 - self.eff.instr_frac) * self.cfg.os_frac {
            return self.os_ref(cpu, pid);
        }
        // Ordinary data reference.
        if !self.locks.is_empty() && self.rng.gen_bool(self.eff.acquire_prob) {
            let lock = self.rng.gen_range(0..self.locks.len()) as u32;
            self.procs[pid as usize].mode = Mode::Spinning { lock };
            // The initial test read of test-and-test-and-set.
            return MemRef::read(cpu, id, self.layout.lock(lock))
                .with_flags(RefFlags::empty().with_lock());
        }
        if self.rng.gen_bool(self.eff.shared_frac) {
            self.shared_ref(cpu, pid)
        } else {
            self.private_ref(cpu, pid)
        }
    }

    fn instr_fetch(&mut self, cpu: CpuId, pid: u32) -> MemRef {
        let code_blocks = u64::from(self.cfg.code_blocks);
        let state = &mut self.procs[pid as usize];
        let pc = state.pc;
        state.pc = if self.rng.gen_bool(JUMP_PROB) {
            self.rng.gen_range(0..code_blocks)
        } else {
            (pc + 1) % code_blocks
        };
        MemRef::instr(cpu, ProcessId::new(pid), self.layout.code(pid, pc))
    }

    fn os_ref(&mut self, cpu: CpuId, pid: u32) -> MemRef {
        let flags = RefFlags::empty().with_os();
        let (addr, write_frac) = if self.rng.gen_bool(OS_SHARED_PROB) {
            let block = self.rng.gen_range(0..OS_SHARED_BLOCKS);
            (self.layout.os(block), OS_SHARED_WRITE_FRAC)
        } else {
            let block = self.rng.gen_range(0..OS_LOCAL_BLOCKS);
            (
                self.layout.os_local(cpu.index() as u16, block),
                OS_LOCAL_WRITE_FRAC,
            )
        };
        if self.rng.gen_bool(write_frac) {
            MemRef::write(cpu, ProcessId::new(pid), addr).with_flags(flags)
        } else {
            MemRef::read(cpu, ProcessId::new(pid), addr).with_flags(flags)
        }
    }

    fn private_ref(&mut self, cpu: CpuId, pid: u32) -> MemRef {
        let blocks = u64::from(self.cfg.private_blocks);
        let reuse = self.rng.gen_bool(PRIVATE_LOCALITY);
        let block = if reuse {
            self.procs[pid as usize].last_private
        } else {
            let b = self.rng.gen_range(0..blocks);
            self.procs[pid as usize].last_private = b;
            b
        };
        let addr = self.layout.private(pid, block);
        if self.rng.gen_bool(self.eff.write_frac) {
            MemRef::write(cpu, ProcessId::new(pid), addr)
        } else {
            MemRef::read(cpu, ProcessId::new(pid), addr)
        }
    }

    fn shared_ref(&mut self, cpu: CpuId, pid: u32) -> MemRef {
        let mix = self.eff.sharing_mix;
        let total = mix.total();
        let roll: f64 = self.rng.gen::<f64>() * total;
        if roll < mix.read_mostly {
            self.read_mostly_ref(cpu, pid)
        } else if roll < mix.read_mostly + mix.migratory {
            self.migratory_ref(cpu, pid)
        } else if roll < mix.read_mostly + mix.migratory + mix.producer_consumer {
            self.producer_consumer_ref(cpu, pid)
        } else {
            self.false_sharing_ref(cpu, pid)
        }
    }

    fn false_sharing_ref(&mut self, cpu: CpuId, pid: u32) -> MemRef {
        // Each process hammers its own word; several words share a block.
        let blocks = u64::from(self.cfg.shared_blocks_per_pool);
        let block = self.pool_rank(blocks);
        let addr = self.layout.false_sharing_word(pid, block);
        // Per-process counters are update-heavy.
        if self.rng.gen_bool(0.6) {
            MemRef::write(cpu, ProcessId::new(pid), addr)
        } else {
            MemRef::read(cpu, ProcessId::new(pid), addr)
        }
    }

    fn read_mostly_ref(&mut self, cpu: CpuId, pid: u32) -> MemRef {
        let blocks = u64::from(self.cfg.shared_blocks_per_pool);
        if self.rng.gen_bool(POOL_CHURN) {
            self.read_mostly_base += 1;
        }
        let block = self.read_mostly_base + self.pool_rank(blocks);
        let addr = self.layout.shared(Region::ReadMostly, block);
        if self.rng.gen_bool(READ_MOSTLY_WRITE_FRAC) {
            MemRef::write(cpu, ProcessId::new(pid), addr)
        } else {
            MemRef::read(cpu, ProcessId::new(pid), addr)
        }
    }

    fn migratory_ref(&mut self, cpu: CpuId, pid: u32) -> MemRef {
        let blocks = u64::from(self.cfg.shared_blocks_per_pool);
        if self.procs[pid as usize].mig_burst_left == 0 && self.rng.gen_bool(MIGRATORY_CHURN) {
            self.mig_base += 1;
        }
        let mig_base = self.mig_base;
        if self.procs[pid as usize].mig_burst_left == 0 {
            // Pick up a (likely previously-owned-by-someone-else) object.
            let rank = self.pool_rank(blocks);
            let state = &mut self.procs[pid as usize];
            state.mig_block = mig_base + rank;
            state.mig_burst_left = MIGRATORY_BURST;
        }
        let state = &mut self.procs[pid as usize];
        state.mig_burst_left -= 1;
        let first_of_burst = state.mig_burst_left == MIGRATORY_BURST - 1;
        let addr = self.layout.shared(Region::Migratory, state.mig_block);
        // A migratory burst starts with a read (inspect), then mixes writes.
        if !first_of_burst && self.rng.gen_bool(MIGRATORY_WRITE_FRAC) {
            MemRef::write(cpu, ProcessId::new(pid), addr)
        } else {
            MemRef::read(cpu, ProcessId::new(pid), addr)
        }
    }

    fn producer_consumer_ref(&mut self, cpu: CpuId, pid: u32) -> MemRef {
        let blocks = u64::from(self.cfg.shared_blocks_per_pool);
        if self.rng.gen_bool(POOL_CHURN) {
            self.producer_base += 1;
        }
        let block = self.producer_base + self.pool_rank(blocks);
        let addr = self.layout.shared(Region::ProducerConsumer, block);
        // Rotate the producer role over every process ever created; in a
        // closed system this is exactly the configured process set.
        let producer = ((self.step / PRODUCER_EPOCH) % self.procs.len() as u64) as u32;
        if pid == producer {
            MemRef::write(cpu, ProcessId::new(pid), addr)
        } else {
            MemRef::read(cpu, ProcessId::new(pid), addr)
        }
    }
}

impl Iterator for Workload {
    type Item = MemRef;

    fn next(&mut self) -> Option<Self::Item> {
        self.maybe_advance_phase();
        if self.cfg.open.is_enabled() {
            self.open_system_step();
        }
        self.maybe_context_switch();
        self.maybe_migrate();
        let cpu_idx = self.next_cpu;
        self.next_cpu = (self.next_cpu + 1) % self.cpu_proc.len();
        let pid = self.cpu_proc[cpu_idx];
        let r = self.proc_turn(CpuId::new(cpu_idx as u16), pid);
        self.step += 1;
        if let Some(left) = &mut self.phase_left {
            *left -= 1;
        }
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;
    use crate::synth::config::LockConfig;

    fn take(cfg: WorkloadConfig, n: usize) -> Vec<MemRef> {
        Workload::new(cfg).take(n).collect()
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = WorkloadConfig::builder().seed(99).build().unwrap();
        let a = take(cfg.clone(), 5_000);
        let b = take(cfg, 5_000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = take(WorkloadConfig::builder().seed(1).build().unwrap(), 2_000);
        let b = take(WorkloadConfig::builder().seed(2).build().unwrap(), 2_000);
        assert_ne!(a, b);
    }

    #[test]
    fn reference_mix_matches_configuration() {
        let cfg = WorkloadConfig::builder().seed(7).build().unwrap();
        let stats = TraceStats::from_refs(take(cfg, 200_000));
        let instr_frac = stats.instructions() as f64 / stats.total() as f64;
        assert!(
            (instr_frac - 0.497).abs() < 0.03,
            "instr fraction {instr_frac}"
        );
        let write_frac = stats.data_writes() as f64 / stats.total() as f64;
        assert!(
            (0.05..0.20).contains(&write_frac),
            "write fraction {write_frac}"
        );
    }

    #[test]
    fn cpus_interleave_round_robin() {
        let cfg = WorkloadConfig::builder().seed(3).build().unwrap();
        let refs = take(cfg, 64);
        for (i, r) in refs.iter().enumerate() {
            assert_eq!(r.cpu.index(), i % 4);
        }
    }

    #[test]
    fn lock_protocol_is_well_formed() {
        // Sequence per lock word must alternate: (acquire write) precedes
        // release write; spin reads only while locked or testing.
        let cfg = WorkloadConfig::builder()
            .seed(11)
            .lock(LockConfig {
                locks: 2,
                acquire_prob: 0.05,
                critical_section_len: 5,
                critical_write_frac: 0.5,
            })
            .build()
            .unwrap();
        let refs = take(cfg, 50_000);
        // Track per-lock-word writes: they must strictly alternate
        // acquire/release, and consecutive writes must come from the same
        // process (the holder releases).
        use std::collections::HashMap;
        let mut writes: HashMap<u64, Vec<u32>> = HashMap::new();
        for r in &refs {
            if Region::of(r.addr) == Some(Region::Locks) && r.kind == AccessKind::Write {
                writes
                    .entry(r.addr.raw())
                    .or_default()
                    .push(r.pid.index() as u32);
            }
        }
        assert!(!writes.is_empty(), "locks were exercised");
        for (_, seq) in writes {
            // acquire(p) release(p) acquire(q) release(q) ...
            for pair in seq.chunks(2) {
                if pair.len() == 2 {
                    assert_eq!(pair[0], pair[1], "acquire and release by same pid");
                }
            }
        }
    }

    #[test]
    fn spin_reads_are_flagged_and_on_lock_words() {
        let cfg = WorkloadConfig::builder()
            .seed(13)
            .lock(LockConfig {
                locks: 1,
                acquire_prob: 0.05,
                critical_section_len: 30,
                critical_write_frac: 0.5,
            })
            .build()
            .unwrap();
        let refs = take(cfg, 50_000);
        let lock_reads: Vec<_> = refs.iter().filter(|r| r.flags.is_lock()).collect();
        assert!(!lock_reads.is_empty(), "contention produced spin reads");
        for r in &lock_reads {
            assert_eq!(r.kind, AccessKind::Read);
            assert_eq!(Region::of(r.addr), Some(Region::Locks));
        }
    }

    #[test]
    fn contended_lock_produces_long_spins() {
        // One lock, long critical sections, aggressive acquisition: a large
        // share of reads should be spin tests (the paper reports ~1/3 for
        // POPS and THOR).
        let cfg = WorkloadConfig::builder()
            .seed(17)
            .lock(LockConfig {
                locks: 1,
                acquire_prob: 0.02,
                critical_section_len: 50,
                critical_write_frac: 0.3,
            })
            .build()
            .unwrap();
        let stats = TraceStats::from_refs(take(cfg, 100_000));
        assert!(
            stats.lock_read_fraction() > 0.15,
            "lock read fraction {}",
            stats.lock_read_fraction()
        );
    }

    #[test]
    fn os_refs_are_flagged() {
        let cfg = WorkloadConfig::builder().seed(19).build().unwrap();
        let refs = take(cfg, 100_000);
        let os: Vec<_> = refs.iter().filter(|r| r.flags.is_os()).collect();
        let frac = os.len() as f64 / refs.len() as f64;
        assert!((0.01..0.15).contains(&frac), "os fraction {frac}");
        for r in os {
            assert!(matches!(
                Region::of(r.addr),
                Some(Region::Os | Region::OsLocal)
            ));
        }
    }

    #[test]
    fn private_refs_stay_private() {
        let cfg = WorkloadConfig::builder().seed(23).build().unwrap();
        let refs = take(cfg, 100_000);
        use std::collections::HashMap;
        let mut owner: HashMap<u64, u32> = HashMap::new();
        for r in &refs {
            if matches!(Region::of(r.addr), Some(Region::Private | Region::Code)) {
                let prev = owner.insert(r.addr.raw(), r.pid.index() as u32);
                if let Some(p) = prev {
                    assert_eq!(p, r.pid.index() as u32, "private block crossed processes");
                }
            }
        }
    }

    #[test]
    fn more_processes_than_cpus_all_get_scheduled() {
        let cfg = WorkloadConfig::builder()
            .cpus(2)
            .processes(6)
            .quantum(100)
            .seed(29)
            .build()
            .unwrap();
        let refs = take(cfg, 10_000);
        let stats = TraceStats::from_refs(refs);
        assert_eq!(stats.cpu_count(), 2);
        assert_eq!(stats.process_count(), 6);
    }

    #[test]
    fn migration_moves_processes_between_cpus() {
        let cfg = WorkloadConfig::builder()
            .migration_prob(0.01)
            .seed(31)
            .build()
            .unwrap();
        let refs = take(cfg, 20_000);
        use std::collections::HashMap;
        let mut cpus_per_pid: HashMap<u32, std::collections::HashSet<usize>> = HashMap::new();
        for r in &refs {
            cpus_per_pid
                .entry(r.pid.index() as u32)
                .or_default()
                .insert(r.cpu.index());
        }
        assert!(
            cpus_per_pid.values().any(|s| s.len() > 1),
            "some process ran on multiple cpus"
        );
    }

    #[test]
    fn no_migration_pins_processes() {
        let cfg = WorkloadConfig::builder()
            .migration_prob(0.0)
            .seed(37)
            .build()
            .unwrap();
        let refs = take(cfg, 20_000);
        for r in &refs {
            assert_eq!(r.cpu.index() as u32, r.pid.index() as u32);
        }
    }

    #[test]
    fn barriers_produce_rendezvous_spins() {
        use crate::synth::config::BarrierConfig;
        let cfg = WorkloadConfig {
            barrier: BarrierConfig { interval: 200 },
            lock: LockConfig {
                locks: 1,
                acquire_prob: 0.0,
                critical_section_len: 1,
                critical_write_frac: 0.0,
            },
            seed: 41,
            ..WorkloadConfig::default()
        };
        let refs = take(cfg, 60_000);
        // The barrier word is the block one past the lock words.
        let barrier_addr = AddressLayout::new(16).lock(1);
        let arrivals = refs
            .iter()
            .filter(|r| r.addr == barrier_addr && r.kind == AccessKind::Write)
            .count();
        let spins = refs
            .iter()
            .filter(|r| r.addr == barrier_addr && r.flags.is_lock())
            .count();
        assert!(arrivals > 10, "barrier arrivals: {arrivals}");
        assert!(spins > 0, "waiters spin between arrivals: {spins}");
        // Every process reaches the barrier.
        use std::collections::HashSet;
        let arrivers: HashSet<u32> = refs
            .iter()
            .filter(|r| r.addr == barrier_addr && r.kind == AccessKind::Write)
            .map(|r| r.pid.index() as u32)
            .collect();
        assert_eq!(arrivers.len(), 4);
    }

    #[test]
    fn barriers_never_deadlock_with_extra_processes() {
        use crate::synth::config::BarrierConfig;
        let cfg = WorkloadConfig {
            cpus: 2,
            processes: 5,
            quantum: 300,
            barrier: BarrierConfig { interval: 100 },
            seed: 43,
            ..WorkloadConfig::default()
        };
        let refs = take(cfg, 80_000);
        let barrier_addr = AddressLayout::new(16).lock(2);
        let arrivals = refs
            .iter()
            .filter(|r| r.addr == barrier_addr && r.kind == AccessKind::Write)
            .count();
        // Barriers keep completing: arrivals far exceed one round.
        assert!(arrivals > 10, "arrivals: {arrivals}");
    }

    #[test]
    #[should_panic(expected = "invalid workload configuration")]
    fn invalid_config_panics() {
        let cfg = WorkloadConfig {
            cpus: 0,
            ..WorkloadConfig::default()
        };
        let _ = Workload::new(cfg);
    }

    #[test]
    fn phases_matching_the_base_mix_do_not_perturb_the_stream() {
        // Phase bookkeeping must consume no randomness: a schedule whose
        // overrides equal the base configuration yields the identical
        // trace. This is the bit-identity guarantee the paper presets
        // (re-expressed as scenario specs) rely on.
        let plain = WorkloadConfig::builder().seed(47).build().unwrap();
        let phased = WorkloadConfig::builder()
            .seed(47)
            .phase(Phase {
                refs: 5_000,
                write_frac: Some(plain.write_frac),
                ..Phase::default()
            })
            .phase(Phase {
                refs: 0,
                instr_frac: Some(plain.instr_frac),
                ..Phase::default()
            })
            .build()
            .unwrap();
        assert_eq!(take(plain, 20_000), take(phased, 20_000));
    }

    #[test]
    fn phases_shift_the_write_mix_at_the_boundary() {
        let cfg = WorkloadConfig::builder()
            .seed(53)
            .phase(Phase {
                refs: 100_000,
                write_frac: Some(0.02),
                ..Phase::default()
            })
            .phase(Phase {
                refs: 0,
                write_frac: Some(0.60),
                ..Phase::default()
            })
            .build()
            .unwrap();
        let refs = take(cfg, 200_000);
        let write_frac = |window: &[MemRef]| {
            let writes = window
                .iter()
                .filter(|r| r.kind == AccessKind::Write)
                .count();
            writes as f64 / window.len() as f64
        };
        let early = write_frac(&refs[..100_000]);
        let late = write_frac(&refs[100_000..]);
        assert!(
            late > early + 0.10,
            "write fraction shifts up at the phase boundary: {early} -> {late}"
        );
    }

    #[test]
    fn open_system_grows_the_population() {
        let cfg = WorkloadConfig::builder()
            .seed(59)
            .quantum(500)
            .open(crate::synth::config::OpenSystemConfig {
                arrival_prob: 0.001,
                departure_prob: 0.0002,
                max_processes: 32,
            })
            .build()
            .unwrap();
        let stats = TraceStats::from_refs(take(cfg, 200_000));
        assert!(
            stats.process_count() > 4,
            "arrivals created new processes: {}",
            stats.process_count()
        );
    }

    #[test]
    fn open_system_respects_the_population_cap() {
        let cfg = WorkloadConfig::builder()
            .seed(61)
            .quantum(200)
            .open(crate::synth::config::OpenSystemConfig {
                arrival_prob: 0.05,
                departure_prob: 0.0,
                max_processes: 6,
            })
            .build()
            .unwrap();
        let mut w = Workload::new(cfg);
        for _ in 0..100_000 {
            let _ = w.next();
            assert!(w.live <= 6, "live population {} over cap", w.live);
        }
        assert_eq!(w.live, 6, "aggressive arrivals saturate the cap");
    }

    #[test]
    fn open_system_departures_shrink_the_ready_queue() {
        let cfg = WorkloadConfig::builder()
            .seed(67)
            .processes(12)
            .quantum(200)
            .open(crate::synth::config::OpenSystemConfig {
                arrival_prob: 0.0,
                departure_prob: 0.01,
                max_processes: 12,
            })
            .build()
            .unwrap();
        let mut w = Workload::new(cfg);
        for _ in 0..100_000 {
            let _ = w.next();
        }
        assert!(w.live < 12, "departures retired waiters: live {}", w.live);
        assert!(
            w.live >= 4,
            "running processes are never retired: live {}",
            w.live
        );
    }

    #[test]
    fn open_system_is_deterministic() {
        let cfg = WorkloadConfig::builder()
            .seed(71)
            .open(crate::synth::config::OpenSystemConfig {
                arrival_prob: 0.002,
                departure_prob: 0.001,
                max_processes: 16,
            })
            .build()
            .unwrap();
        assert_eq!(take(cfg.clone(), 50_000), take(cfg, 50_000));
    }

    #[test]
    fn zipf_popularity_concentrates_shared_pool_traffic() {
        use std::collections::HashMap;
        // Use the false-sharing pool: unlike the churned sliding-window
        // pools, its word addresses are stable over the whole trace, so
        // the popularity law is visible in a raw address histogram.
        let pool_histogram = |theta: f64| {
            let cfg = WorkloadConfig::builder()
                .seed(73)
                .shared_frac(0.30)
                .sharing_mix(SharingMix {
                    read_mostly: 0.0,
                    migratory: 0.0,
                    producer_consumer: 0.0,
                    false_sharing: 1.0,
                })
                .zipf_theta(theta)
                .build()
                .unwrap();
            let refs = take(cfg, 300_000);
            let mut counts: HashMap<u64, u64> = HashMap::new();
            for r in &refs {
                if Region::of(r.addr) == Some(Region::FalseSharing) {
                    *counts.entry(r.addr.raw()).or_default() += 1;
                }
            }
            let mut sorted: Vec<u64> = counts.into_values().collect();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            sorted
        };
        let uniform = pool_histogram(0.0);
        let skewed = pool_histogram(0.9);
        let head_share = |h: &[u64]| {
            let total: u64 = h.iter().sum();
            h[0] as f64 / total as f64
        };
        assert!(
            head_share(&skewed) > 2.0 * head_share(&uniform),
            "zipf head {:.3} vs uniform head {:.3}",
            head_share(&skewed),
            head_share(&uniform)
        );
    }
}
