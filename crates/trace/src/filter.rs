//! Reference-stream adapters used by the paper's ablation experiments.
//!
//! The central one is [`without_lock_tests`], which drops spin-lock test
//! reads: §5.2 reruns `Dir1NB` and `Dir0B` with lock tests excluded and shows
//! `Dir1NB` improving from 0.32 to 0.12 bus cycles per reference while
//! `Dir0B` is unchanged.

use crate::types::{AccessKind, CpuId, MemRef};

/// Drops references flagged as spin-lock test reads (§5.2 experiment).
///
/// # Examples
///
/// ```
/// use dirsim_trace::filter::without_lock_tests;
/// use dirsim_trace::{MemRef, CpuId, ProcessId, Addr, RefFlags};
///
/// let lockref = MemRef::read(CpuId::new(0), ProcessId::new(0), Addr::new(0))
///     .with_flags(RefFlags::empty().with_lock());
/// let plain = MemRef::read(CpuId::new(0), ProcessId::new(0), Addr::new(16));
/// let out: Vec<_> = without_lock_tests(vec![lockref, plain]).collect();
/// assert_eq!(out, vec![plain]);
/// ```
pub fn without_lock_tests<I>(refs: I) -> impl Iterator<Item = MemRef>
where
    I: IntoIterator<Item = MemRef>,
{
    refs.into_iter().filter(|r| !r.flags.is_lock())
}

/// Drops references flagged as operating-system activity.
pub fn without_os<I>(refs: I) -> impl Iterator<Item = MemRef>
where
    I: IntoIterator<Item = MemRef>,
{
    refs.into_iter().filter(|r| !r.flags.is_os())
}

/// Keeps only data references (drops instruction fetches).
///
/// The paper assumes instruction references cause no coherence traffic; the
/// simulator already treats them that way, so this adapter exists mainly for
/// trace-size reduction.
pub fn data_only<I>(refs: I) -> impl Iterator<Item = MemRef>
where
    I: IntoIterator<Item = MemRef>,
{
    refs.into_iter().filter(|r| r.kind.is_data())
}

/// Keeps only references issued by the given CPU.
pub fn by_cpu<I>(refs: I, cpu: CpuId) -> impl Iterator<Item = MemRef>
where
    I: IntoIterator<Item = MemRef>,
{
    refs.into_iter().filter(move |r| r.cpu == cpu)
}

/// Keeps only references of the given kind.
pub fn by_kind<I>(refs: I, kind: AccessKind) -> impl Iterator<Item = MemRef>
where
    I: IntoIterator<Item = MemRef>,
{
    refs.into_iter().filter(move |r| r.kind == kind)
}

/// Truncates the stream after `n` references.
pub fn first_n<I>(refs: I, n: usize) -> impl Iterator<Item = MemRef>
where
    I: IntoIterator<Item = MemRef>,
{
    refs.into_iter().take(n)
}

/// Splits an interleaved stream into one stream per CPU (indices beyond
/// `cpus` wrap), preserving per-CPU order. The inverse of
/// [`merge_round_robin`] for round-robin traces.
pub fn split_by_cpu<I>(refs: I, cpus: usize) -> Vec<Vec<MemRef>>
where
    I: IntoIterator<Item = MemRef>,
{
    assert!(cpus > 0, "need at least one cpu");
    let mut out = vec![Vec::new(); cpus];
    for r in refs {
        out[r.cpu.index() % cpus].push(r);
    }
    out
}

/// Interleaves per-CPU streams round-robin (one reference from each
/// non-empty stream per round), the global-time-order convention of the
/// synthetic generator.
pub fn merge_round_robin(mut streams: Vec<Vec<MemRef>>) -> Vec<MemRef> {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut cursors = vec![0usize; streams.len()];
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        for (stream, cursor) in streams.iter_mut().zip(cursors.iter_mut()) {
            if *cursor < stream.len() {
                out.push(stream[*cursor]);
                *cursor += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Addr, ProcessId, RefFlags};

    fn sample() -> Vec<MemRef> {
        let c0 = CpuId::new(0);
        let c1 = CpuId::new(1);
        let p = ProcessId::new(0);
        vec![
            MemRef::instr(c0, p, Addr::new(0)),
            MemRef::read(c0, p, Addr::new(16)).with_flags(RefFlags::empty().with_lock()),
            MemRef::read(c1, p, Addr::new(32)).with_flags(RefFlags::empty().with_os()),
            MemRef::write(c1, p, Addr::new(48)),
        ]
    }

    #[test]
    fn lock_filter_drops_only_lock_refs() {
        let out: Vec<_> = without_lock_tests(sample()).collect();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| !r.flags.is_lock()));
    }

    #[test]
    fn os_filter() {
        let out: Vec<_> = without_os(sample()).collect();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| !r.flags.is_os()));
    }

    #[test]
    fn data_only_drops_instr() {
        let out: Vec<_> = data_only(sample()).collect();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| r.kind.is_data()));
    }

    #[test]
    fn cpu_filter() {
        let out: Vec<_> = by_cpu(sample(), CpuId::new(1)).collect();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.cpu == CpuId::new(1)));
    }

    #[test]
    fn kind_filter() {
        let out: Vec<_> = by_kind(sample(), AccessKind::Write).collect();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].addr, Addr::new(48));
    }

    #[test]
    fn first_n_truncates() {
        let out: Vec<_> = first_n(sample(), 2).collect();
        assert_eq!(out.len(), 2);
        let out: Vec<_> = first_n(sample(), 100).collect();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn split_partitions_by_cpu() {
        let streams = split_by_cpu(sample(), 2);
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].len() + streams[1].len(), 4);
        for (i, s) in streams.iter().enumerate() {
            assert!(s.iter().all(|r| r.cpu.index() % 2 == i));
        }
    }

    #[test]
    fn split_then_merge_round_trips_round_robin_traces() {
        // A perfectly round-robin trace survives split + merge unchanged.
        let p = ProcessId::new(0);
        let refs: Vec<MemRef> = (0..12u64)
            .map(|i| MemRef::read(CpuId::new((i % 3) as u16), p, Addr::new(i * 16)))
            .collect();
        let merged = merge_round_robin(split_by_cpu(refs.clone(), 3));
        assert_eq!(merged, refs);
    }

    #[test]
    fn merge_handles_uneven_streams() {
        let p = ProcessId::new(0);
        let a = vec![MemRef::read(CpuId::new(0), p, Addr::new(0))];
        let b = vec![
            MemRef::read(CpuId::new(1), p, Addr::new(16)),
            MemRef::read(CpuId::new(1), p, Addr::new(32)),
            MemRef::read(CpuId::new(1), p, Addr::new(48)),
        ];
        let merged = merge_round_robin(vec![a, b]);
        assert_eq!(merged.len(), 4);
        assert_eq!(merged[0].cpu, CpuId::new(0));
        assert_eq!(merged[1].cpu, CpuId::new(1));
        assert_eq!(merged[2].cpu, CpuId::new(1));
    }

    #[test]
    #[should_panic(expected = "at least one cpu")]
    fn split_rejects_zero_cpus() {
        let _ = split_by_cpu(sample(), 0);
    }
}
