//! Streaming trace sources: one chunked pull interface over every way a
//! reference stream can be produced.
//!
//! The simulation engine replays the *same* interleaved stream under many
//! protocols at once, so it wants references in bounded batches rather
//! than as fully materialised `Vec<MemRef>`s (a 14-scheme matrix over a
//! million-reference trace would otherwise hold 14 traces' worth of
//! memory). [`TraceSource`] is that interface: a source fills a caller
//! buffer with up to `max` references per call and reports exhaustion by
//! filling zero.
//!
//! Implementations cover the three producers the crate knows about —
//! synthetic generators (via [`IterSource`]), binary/compressed readers
//! ([`crate::io::BinaryReader`], [`crate::compress::CompressedReader`]),
//! and text readers ([`crate::io::TextReader`]) — plus the
//! [`WithoutLockTests`] adapter used by the §5.2 ablation.
//!
//! ```
//! use dirsim_trace::source::{IterSource, TraceSource};
//! use dirsim_trace::synth::PaperTrace;
//!
//! let mut source = IterSource::new(PaperTrace::Pops.workload().take(10_000));
//! let mut buf = Vec::new();
//! let mut total = 0;
//! while source.read_chunk(&mut buf, 4096).unwrap() > 0 {
//!     total += buf.len();
//! }
//! assert_eq!(total, 10_000);
//! ```

use std::io::{BufRead, Read};

use crate::compress::CompressedReader;
use crate::io::{BinaryReader, TextReader, TraceIoError};
use crate::types::MemRef;

/// A pull-based, chunked producer of memory references.
///
/// Implementors fill the caller's buffer with up to `max` references per
/// call; a call that fills zero references means the stream is exhausted.
/// The buffer is cleared by the source before filling, so callers can
/// reuse one allocation across the whole stream.
pub trait TraceSource {
    /// Clears `buf` and fills it with up to `max` references.
    ///
    /// Returns the number of references written (`buf.len()`); `Ok(0)`
    /// means the source is exhausted and further calls keep returning
    /// `Ok(0)`.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceIoError`] if the underlying stream fails to
    /// decode; after an error the source is fused (subsequent calls
    /// return `Ok(0)`).
    fn read_chunk(&mut self, buf: &mut Vec<MemRef>, max: usize) -> Result<usize, TraceIoError>;

    /// Owned-buffer variant of [`read_chunk`](Self::read_chunk): takes the
    /// chunk buffer by value and hands it back filled.
    ///
    /// This is the recycling handshake the pipelined engine uses when the
    /// decode stage lives on its own thread: emptied buffers travel back
    /// to the producer over a channel, get refilled here, and are sent
    /// forward again — the references themselves are written exactly once
    /// per chunk and never copied between stages. An empty returned
    /// buffer (`buf.is_empty()`) means the stream is exhausted, mirroring
    /// the `Ok(0)` contract of `read_chunk`.
    ///
    /// # Errors
    ///
    /// See [`read_chunk`](Self::read_chunk); on error the buffer is
    /// consumed (the caller is expected to abandon the stream).
    fn read_chunk_owned(
        &mut self,
        mut buf: Vec<MemRef>,
        max: usize,
    ) -> Result<Vec<MemRef>, TraceIoError> {
        self.read_chunk(&mut buf, max)?;
        Ok(buf)
    }

    /// The zero-copy view of this source, if it has one.
    ///
    /// Sources whose chunks live in storage they own (the memory-mapped
    /// reader's reusable decode buffer) return `Some`; the engine's
    /// decode stage then borrows each chunk in place instead of running
    /// the owned-buffer recycle handshake. `None` (the default) means
    /// callers use [`read_chunk`](Self::read_chunk) /
    /// [`read_chunk_owned`](Self::read_chunk_owned), which every source
    /// supports.
    fn borrowed(&mut self) -> Option<&mut dyn BorrowedChunkSource> {
        None
    }
}

/// A chunked reference producer whose chunks are borrowed from storage
/// the source owns, valid until the next call.
///
/// The contract mirrors [`TraceSource::read_chunk`]: a chunk holds at
/// most `max` references, an empty chunk means the stream is exhausted,
/// errors fuse the source (later calls yield empty chunks), and the
/// reference sequence is identical to what the owned path would produce.
pub trait BorrowedChunkSource {
    /// Decodes and returns the next chunk of up to `max` references.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceIoError`] if the underlying stream fails to
    /// decode; afterwards the source is fused.
    fn next_chunk(&mut self, max: usize) -> Result<&[MemRef], TraceIoError>;
}

impl<S: TraceSource + ?Sized> TraceSource for &mut S {
    fn read_chunk(&mut self, buf: &mut Vec<MemRef>, max: usize) -> Result<usize, TraceIoError> {
        (**self).read_chunk(buf, max)
    }

    fn borrowed(&mut self) -> Option<&mut dyn BorrowedChunkSource> {
        (**self).borrowed()
    }
}

impl<S: TraceSource + ?Sized> TraceSource for Box<S> {
    fn read_chunk(&mut self, buf: &mut Vec<MemRef>, max: usize) -> Result<usize, TraceIoError> {
        (**self).read_chunk(buf, max)
    }

    fn borrowed(&mut self) -> Option<&mut dyn BorrowedChunkSource> {
        (**self).borrowed()
    }
}

/// Adapts any infallible reference iterator — a synthetic
/// [`Workload`](crate::synth::Workload), a `Vec`, a filter chain — into a
/// [`TraceSource`].
#[derive(Debug)]
pub struct IterSource<I> {
    inner: I,
}

impl<I> IterSource<I>
where
    I: Iterator<Item = MemRef>,
{
    /// Wraps an iterator of references.
    pub fn new(inner: I) -> Self {
        IterSource { inner }
    }
}

impl<I> TraceSource for IterSource<I>
where
    I: Iterator<Item = MemRef>,
{
    fn read_chunk(&mut self, buf: &mut Vec<MemRef>, max: usize) -> Result<usize, TraceIoError> {
        buf.clear();
        buf.extend(self.inner.by_ref().take(max));
        Ok(buf.len())
    }
}

pub(crate) fn fill_from_results<I>(
    iter: &mut I,
    buf: &mut Vec<MemRef>,
    max: usize,
) -> Result<usize, TraceIoError>
where
    I: Iterator<Item = Result<MemRef, TraceIoError>>,
{
    buf.clear();
    while buf.len() < max {
        match iter.next() {
            Some(Ok(r)) => buf.push(r),
            Some(Err(e)) => return Err(e),
            None => break,
        }
    }
    Ok(buf.len())
}

impl<R: Read> TraceSource for BinaryReader<R> {
    fn read_chunk(&mut self, buf: &mut Vec<MemRef>, max: usize) -> Result<usize, TraceIoError> {
        fill_from_results(self, buf, max)
    }
}

impl<R: BufRead> TraceSource for TextReader<R> {
    fn read_chunk(&mut self, buf: &mut Vec<MemRef>, max: usize) -> Result<usize, TraceIoError> {
        fill_from_results(self, buf, max)
    }
}

impl<R: Read> TraceSource for CompressedReader<R> {
    fn read_chunk(&mut self, buf: &mut Vec<MemRef>, max: usize) -> Result<usize, TraceIoError> {
        fill_from_results(self, buf, max)
    }
}

/// Drops spin-lock test reads from an underlying source (the §5.2
/// ablation, the streaming counterpart of
/// [`crate::filter::without_lock_tests`]).
///
/// A chunk from the inner source may shrink after filtering; this adapter
/// keeps pulling until it has at least one reference (or the inner source
/// is exhausted), so `Ok(0)` still means end-of-stream.
#[derive(Debug)]
pub struct WithoutLockTests<S> {
    inner: S,
    scratch: Vec<MemRef>,
}

impl<S: TraceSource> WithoutLockTests<S> {
    /// Wraps a source, filtering out lock-test references.
    pub fn new(inner: S) -> Self {
        WithoutLockTests {
            inner,
            scratch: Vec::new(),
        }
    }
}

impl<S: TraceSource> TraceSource for WithoutLockTests<S> {
    fn read_chunk(&mut self, buf: &mut Vec<MemRef>, max: usize) -> Result<usize, TraceIoError> {
        buf.clear();
        while buf.is_empty() {
            if self.inner.read_chunk(&mut self.scratch, max)? == 0 {
                return Ok(0);
            }
            buf.extend(self.scratch.iter().filter(|r| !r.flags.is_lock()));
        }
        Ok(buf.len())
    }
}

/// Caps an underlying source at `limit` references (the streaming
/// counterpart of `Iterator::take`), so a fixed reference budget can be
/// replayed out of an arbitrarily large corpus file.
#[derive(Debug)]
pub struct TakeSource<S> {
    inner: S,
    remaining: u64,
}

impl<S: TraceSource> TakeSource<S> {
    /// Wraps `inner`, yielding at most `limit` references.
    pub fn new(inner: S, limit: u64) -> Self {
        TakeSource {
            inner,
            remaining: limit,
        }
    }
}

impl<S: TraceSource> TraceSource for TakeSource<S> {
    fn read_chunk(&mut self, buf: &mut Vec<MemRef>, max: usize) -> Result<usize, TraceIoError> {
        let max = max.min(usize::try_from(self.remaining).unwrap_or(usize::MAX));
        if max == 0 {
            buf.clear();
            return Ok(0);
        }
        let n = self.inner.read_chunk(buf, max)?;
        self.remaining -= n as u64;
        Ok(n)
    }
}

/// Drains a source into one `Vec` (testing / small-trace convenience; for
/// large traces prefer chunked consumption).
///
/// # Errors
///
/// Propagates the first decode error from the source.
pub fn collect_all<S: TraceSource>(mut source: S) -> Result<Vec<MemRef>, TraceIoError> {
    let mut out = Vec::new();
    let mut buf = Vec::new();
    while source.read_chunk(&mut buf, 8192)? > 0 {
        out.extend_from_slice(&buf);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{read_binary, read_text, write_binary, write_text};
    use crate::synth::PaperTrace;
    use crate::types::{Addr, CpuId, ProcessId, RefFlags};

    fn sample() -> Vec<MemRef> {
        let c0 = CpuId::new(0);
        let p0 = ProcessId::new(0);
        vec![
            MemRef::instr(c0, p0, Addr::new(0x1000)),
            MemRef::read(c0, p0, Addr::new(0x40)).with_flags(RefFlags::empty().with_lock()),
            MemRef::write(c0, p0, Addr::new(0x80)),
        ]
    }

    #[test]
    fn iter_source_chunks_exactly() {
        let refs: Vec<MemRef> = PaperTrace::Pops.workload().take(1000).collect();
        let mut source = IterSource::new(refs.iter().copied());
        let mut buf = Vec::new();
        let mut seen = Vec::new();
        loop {
            let n = source.read_chunk(&mut buf, 64).unwrap();
            if n == 0 {
                break;
            }
            assert!(n <= 64);
            seen.extend_from_slice(&buf);
        }
        assert_eq!(seen, refs);
        // Exhausted sources stay exhausted.
        assert_eq!(source.read_chunk(&mut buf, 64).unwrap(), 0);
    }

    #[test]
    fn owned_buffer_handshake_recycles_one_allocation() {
        let refs: Vec<MemRef> = PaperTrace::Pops.workload().take(300).collect();
        let mut source = IterSource::new(refs.iter().copied());
        let mut buf = Vec::with_capacity(64);
        let ptr = buf.as_ptr();
        let mut seen = Vec::new();
        loop {
            buf = source.read_chunk_owned(buf, 64).unwrap();
            if buf.is_empty() {
                break;
            }
            seen.extend_from_slice(&buf);
        }
        assert_eq!(seen, refs);
        // The chunk never outgrew the buffer, so the handshake reused the
        // caller's allocation for the entire stream.
        assert_eq!(buf.as_ptr(), ptr, "the same allocation is recycled");
    }

    #[test]
    fn owned_buffer_handshake_surfaces_errors() {
        let encoded = b"NOPE0000".to_vec();
        let mut source = read_binary(&encoded[..]);
        assert!(matches!(
            source.read_chunk_owned(Vec::new(), 16),
            Err(TraceIoError::BadMagic(_))
        ));
    }

    #[test]
    fn binary_reader_is_a_source() {
        let refs = sample();
        let mut encoded = Vec::new();
        write_binary(&mut encoded, refs.iter().copied()).unwrap();
        let collected = collect_all(read_binary(&encoded[..])).unwrap();
        assert_eq!(collected, refs);
    }

    #[test]
    fn text_reader_is_a_source() {
        let refs = sample();
        let mut encoded = Vec::new();
        write_text(&mut encoded, refs.iter().copied()).unwrap();
        let collected = collect_all(read_text(&encoded[..])).unwrap();
        assert_eq!(collected, refs);
    }

    #[test]
    fn compressed_reader_is_a_source() {
        let refs: Vec<MemRef> = PaperTrace::Pops.workload().take(500).collect();
        let mut encoded = Vec::new();
        crate::compress::write_compressed(&mut encoded, refs.iter().copied()).unwrap();
        let collected = collect_all(crate::compress::read_compressed(&encoded[..])).unwrap();
        assert_eq!(collected, refs);
    }

    #[test]
    fn source_errors_surface() {
        let encoded = b"NOPE0000".to_vec();
        let mut source = read_binary(&encoded[..]);
        let mut buf = Vec::new();
        assert!(matches!(
            source.read_chunk(&mut buf, 16),
            Err(TraceIoError::BadMagic(_))
        ));
        // Fused after the error.
        assert_eq!(source.read_chunk(&mut buf, 16).unwrap(), 0);
    }

    #[test]
    fn lock_filter_source_matches_filter_adapter() {
        let refs: Vec<MemRef> = PaperTrace::Pops.workload().take(5000).collect();
        let expected: Vec<MemRef> =
            crate::filter::without_lock_tests(refs.iter().copied()).collect();
        let filtered =
            collect_all(WithoutLockTests::new(IterSource::new(refs.iter().copied()))).unwrap();
        assert_eq!(filtered, expected);
        assert!(filtered.len() < refs.len(), "POPS contains lock tests");
    }

    #[test]
    fn lock_filter_skips_all_lock_chunks() {
        let c0 = CpuId::new(0);
        let p0 = ProcessId::new(0);
        let lock = MemRef::read(c0, p0, Addr::new(0)).with_flags(RefFlags::empty().with_lock());
        let plain = MemRef::read(c0, p0, Addr::new(16));
        // 3 chunks of size 1: lock, lock, plain — the adapter must not
        // report exhaustion at an all-lock chunk.
        let refs = vec![lock, lock, plain];
        let mut source = WithoutLockTests::new(IterSource::new(refs.into_iter()));
        let mut buf = Vec::new();
        assert_eq!(source.read_chunk(&mut buf, 1).unwrap(), 1);
        assert_eq!(buf, vec![plain]);
        assert_eq!(source.read_chunk(&mut buf, 1).unwrap(), 0);
    }

    #[test]
    fn take_source_caps_the_stream() {
        let refs: Vec<MemRef> = PaperTrace::Pops.workload().take(500).collect();
        let capped =
            collect_all(TakeSource::new(IterSource::new(refs.iter().copied()), 123)).unwrap();
        assert_eq!(capped, &refs[..123]);
        // A limit past the end of the stream is a no-op.
        let uncapped = collect_all(TakeSource::new(
            IterSource::new(refs.iter().copied()),
            10_000,
        ))
        .unwrap();
        assert_eq!(uncapped, refs);
        // A zero limit is empty without touching the inner source.
        let empty = collect_all(TakeSource::new(IterSource::new(refs.iter().copied()), 0)).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn borrowed_defaults_to_none_and_forwards() {
        fn through_generic<S: TraceSource>(mut source: S) -> bool {
            source.borrowed().is_none()
        }
        let mut source = IterSource::new(std::iter::empty());
        assert!(source.borrowed().is_none());
        assert!(through_generic(&mut source));
        let mut boxed: Box<dyn TraceSource> = Box::new(IterSource::new(std::iter::empty()));
        assert!(boxed.borrowed().is_none());
    }

    #[test]
    fn mut_ref_and_box_are_sources() {
        let refs = sample();
        let mut inner = IterSource::new(refs.iter().copied());
        let collected = collect_all(&mut inner).unwrap();
        assert_eq!(collected, refs);
        let boxed: Box<dyn TraceSource> = Box::new(IterSource::new(refs.clone().into_iter()));
        assert_eq!(collect_all(boxed).unwrap(), refs);
    }
}
