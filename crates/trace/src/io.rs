//! Trace file formats.
//!
//! The original evaluation consumed ATUM traces, a proprietary VAX microcode
//! format. As a stand-in this module defines two formats with identical
//! information content:
//!
//! * **Binary `DTR1`** — a fixed 16-byte little-endian record per reference
//!   behind an 8-byte header; compact and fast, the default for generated
//!   workloads.
//! * **Text** — one whitespace-separated record per line
//!   (`<cpu> <pid> <i|r|w> <hex addr> [l][s]`), convenient for hand-written
//!   fixtures and debugging.
//!
//! Both round-trip exactly: `read(write(refs)) == refs`.

use std::fmt;
use std::io::{self, BufRead, Read, Write};

use crate::types::{AccessKind, Addr, CpuId, MemRef, ProcessId, RefFlags};

/// Magic bytes opening a binary trace stream.
pub const BINARY_MAGIC: [u8; 4] = *b"DTR1";

/// Size in bytes of one binary record.
pub const BINARY_RECORD_LEN: usize = 16;

/// Errors produced while decoding a trace stream.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream did not begin with [`BINARY_MAGIC`].
    BadMagic([u8; 4]),
    /// A record contained an unknown access-kind byte.
    BadAccessKind(u8),
    /// The stream ended in the middle of a record.
    TruncatedRecord,
    /// A text line could not be parsed.
    BadTextRecord {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A requested window into a fixed-record file does not start on a
    /// record boundary.
    Misaligned {
        /// Byte offset that was requested.
        offset: u64,
    },
    /// A corpus checksum footer did not match the payload.
    BadChecksum {
        /// Checksum recorded in the footer.
        expected: u64,
        /// Checksum computed over the payload.
        actual: u64,
    },
    /// A corpus record-count footer did not match the decoded stream.
    CountMismatch {
        /// Record count recorded in the footer.
        expected: u64,
        /// Records actually decoded.
        actual: u64,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceIoError::BadMagic(m) => {
                write!(f, "bad trace magic {m:?}, expected {BINARY_MAGIC:?}")
            }
            TraceIoError::BadAccessKind(b) => write!(f, "unknown access kind byte {b:#x}"),
            TraceIoError::TruncatedRecord => write!(f, "truncated trace record"),
            TraceIoError::BadTextRecord { line, reason } => {
                write!(f, "bad text trace record on line {line}: {reason}")
            }
            TraceIoError::Misaligned { offset } => {
                write!(f, "offset {offset} is not on a record boundary")
            }
            TraceIoError::BadChecksum { expected, actual } => {
                write!(
                    f,
                    "corpus checksum mismatch: footer {expected:#018x}, payload {actual:#018x}"
                )
            }
            TraceIoError::CountMismatch { expected, actual } => {
                write!(
                    f,
                    "corpus record count mismatch: footer says {expected}, decoded {actual}"
                )
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes the binary header and all references to `w`.
///
/// # Errors
///
/// Returns any error reported by the underlying writer.
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use dirsim_trace::io::{write_binary, read_binary};
/// use dirsim_trace::{MemRef, CpuId, ProcessId, Addr};
///
/// let refs = vec![MemRef::read(CpuId::new(0), ProcessId::new(1), Addr::new(0x40))];
/// let mut buf = Vec::new();
/// write_binary(&mut buf, refs.iter().copied())?;
/// let back: Vec<_> = read_binary(&buf[..]).collect::<Result<_, _>>()?;
/// assert_eq!(back, refs);
/// # Ok(())
/// # }
/// ```
pub fn write_binary<W, I>(w: &mut W, refs: I) -> Result<u64, TraceIoError>
where
    W: Write,
    I: IntoIterator<Item = MemRef>,
{
    w.write_all(&crate::codec::header_bytes())?;
    let mut count = 0u64;
    for r in refs {
        let mut rec = [0u8; BINARY_RECORD_LEN];
        crate::codec::encode_record(&r, &mut rec);
        w.write_all(&rec)?;
        count += 1;
    }
    Ok(count)
}

/// Streaming reader over a binary trace.
///
/// Produced by [`read_binary`]; yields `Result<MemRef, TraceIoError>` so
/// decode errors surface at the offending record.
#[derive(Debug)]
pub struct BinaryReader<R> {
    inner: R,
    checked_header: bool,
    failed: bool,
}

/// Opens a binary trace stream for reading.
///
/// The header is validated lazily on the first call to `next`.
pub fn read_binary<R: Read>(reader: R) -> BinaryReader<R> {
    BinaryReader {
        inner: reader,
        checked_header: false,
        failed: false,
    }
}

impl<R: Read> BinaryReader<R> {
    fn check_header(&mut self) -> Result<(), TraceIoError> {
        let mut header = [0u8; crate::codec::HEADER_LEN];
        self.inner.read_exact(&mut header)?;
        crate::codec::check_header(&header)
    }

    fn read_record(&mut self) -> Option<Result<MemRef, TraceIoError>> {
        let mut rec = [0u8; BINARY_RECORD_LEN];
        let mut filled = 0usize;
        while filled < BINARY_RECORD_LEN {
            match self.inner.read(&mut rec[filled..]) {
                Ok(0) if filled == 0 => return None,
                Ok(0) => return Some(Err(TraceIoError::TruncatedRecord)),
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Some(Err(e.into())),
            }
        }
        Some(crate::codec::decode_record(&rec))
    }
}

impl<R: Read> Iterator for BinaryReader<R> {
    type Item = Result<MemRef, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if !self.checked_header {
            self.checked_header = true;
            if let Err(e) = self.check_header() {
                self.failed = true;
                return Some(Err(e));
            }
        }
        match self.read_record() {
            Some(Err(e)) => {
                self.failed = true;
                Some(Err(e))
            }
            other => other,
        }
    }
}

/// Writes references as text, one per line.
///
/// Format: `<cpu> <pid> <i|r|w> <hex addr> [flags]` where flags is a string
/// containing `l` (lock) and/or `s` (system).
///
/// # Errors
///
/// Returns any error reported by the underlying writer.
pub fn write_text<W, I>(w: &mut W, refs: I) -> Result<u64, TraceIoError>
where
    W: Write,
    I: IntoIterator<Item = MemRef>,
{
    let mut count = 0u64;
    for r in refs {
        let mut flags = String::new();
        if r.flags.is_lock() {
            flags.push('l');
        }
        if r.flags.is_os() {
            flags.push('s');
        }
        if flags.is_empty() {
            writeln!(
                w,
                "{} {} {} {:x}",
                r.cpu.index(),
                r.pid.index(),
                r.kind.code(),
                r.addr.raw()
            )?;
        } else {
            writeln!(
                w,
                "{} {} {} {:x} {}",
                r.cpu.index(),
                r.pid.index(),
                r.kind.code(),
                r.addr.raw(),
                flags
            )?;
        }
        count += 1;
    }
    Ok(count)
}

fn parse_text_line(line: &str, lineno: usize) -> Result<Option<MemRef>, TraceIoError> {
    let bad = |reason: &str| TraceIoError::BadTextRecord {
        line: lineno,
        reason: reason.to_string(),
    };
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let mut parts = trimmed.split_whitespace();
    let cpu: u16 = parts
        .next()
        .ok_or_else(|| bad("missing cpu"))?
        .parse()
        .map_err(|_| bad("cpu is not a number"))?;
    let pid: u32 = parts
        .next()
        .ok_or_else(|| bad("missing pid"))?
        .parse()
        .map_err(|_| bad("pid is not a number"))?;
    let kind_tok = parts.next().ok_or_else(|| bad("missing access kind"))?;
    let kind = kind_tok
        .chars()
        .next()
        .and_then(AccessKind::from_code)
        .filter(|_| kind_tok.len() == 1)
        .ok_or_else(|| bad("access kind must be one of i, r, w"))?;
    let addr_tok = parts.next().ok_or_else(|| bad("missing address"))?;
    let addr = u64::from_str_radix(addr_tok.trim_start_matches("0x"), 16)
        .map_err(|_| bad("address is not hexadecimal"))?;
    let mut flags = RefFlags::empty();
    if let Some(flag_tok) = parts.next() {
        for c in flag_tok.chars() {
            flags = match c {
                'l' => flags.with_lock(),
                's' => flags.with_os(),
                _ => return Err(bad("unknown flag character")),
            };
        }
    }
    if parts.next().is_some() {
        return Err(bad("trailing tokens"));
    }
    Ok(Some(MemRef {
        cpu: CpuId::new(cpu),
        pid: ProcessId::new(pid),
        addr: Addr::new(addr),
        kind,
        flags,
    }))
}

/// Streaming reader over a text trace.
#[derive(Debug)]
pub struct TextReader<R> {
    lines: io::Lines<R>,
    lineno: usize,
    failed: bool,
}

/// Opens a text trace stream for reading.
///
/// Blank lines and lines starting with `#` are skipped.
pub fn read_text<R: BufRead>(reader: R) -> TextReader<R> {
    TextReader {
        lines: reader.lines(),
        lineno: 0,
        failed: false,
    }
}

impl<R: BufRead> Iterator for TextReader<R> {
    type Item = Result<MemRef, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            self.lineno += 1;
            match self.lines.next() {
                None => return None,
                Some(Err(e)) => {
                    self.failed = true;
                    return Some(Err(e.into()));
                }
                Some(Ok(line)) => match parse_text_line(&line, self.lineno) {
                    Ok(None) => continue,
                    Ok(Some(r)) => return Some(Ok(r)),
                    Err(e) => {
                        self.failed = true;
                        return Some(Err(e));
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Addr, CpuId, ProcessId};

    fn sample() -> Vec<MemRef> {
        vec![
            MemRef::instr(CpuId::new(0), ProcessId::new(0), Addr::new(0x1000)),
            MemRef::read(CpuId::new(1), ProcessId::new(2), Addr::new(0x2000))
                .with_flags(RefFlags::empty().with_lock()),
            MemRef::write(CpuId::new(3), ProcessId::new(4), Addr::new(0xdead_beef))
                .with_flags(RefFlags::empty().with_os()),
        ]
    }

    #[test]
    fn binary_roundtrip() {
        let refs = sample();
        let mut buf = Vec::new();
        let n = write_binary(&mut buf, refs.iter().copied()).unwrap();
        assert_eq!(n, 3);
        assert_eq!(buf.len(), 8 + 3 * BINARY_RECORD_LEN);
        let back: Vec<_> = read_binary(&buf[..]).collect::<Result<_, _>>().unwrap();
        assert_eq!(back, refs);
    }

    #[test]
    fn binary_bad_magic() {
        let buf = b"NOPE0000".to_vec();
        let mut rd = read_binary(&buf[..]);
        match rd.next() {
            Some(Err(TraceIoError::BadMagic(m))) => assert_eq!(&m, b"NOPE"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
        assert!(rd.next().is_none(), "reader fuses after error");
    }

    #[test]
    fn binary_truncated_record() {
        let mut buf = Vec::new();
        write_binary(&mut buf, sample().into_iter().take(1)).unwrap();
        buf.truncate(buf.len() - 3);
        let results: Vec<_> = read_binary(&buf[..]).collect();
        assert!(matches!(
            results.last(),
            Some(Err(TraceIoError::TruncatedRecord))
        ));
    }

    #[test]
    fn binary_bad_kind_byte() {
        let mut buf = Vec::new();
        write_binary(&mut buf, sample().into_iter().take(1)).unwrap();
        buf[8 + 2] = 99; // corrupt the kind byte of the first record
        let results: Vec<_> = read_binary(&buf[..]).collect();
        assert!(matches!(
            results.last(),
            Some(Err(TraceIoError::BadAccessKind(99)))
        ));
    }

    #[test]
    fn text_roundtrip() {
        let refs = sample();
        let mut buf = Vec::new();
        write_text(&mut buf, refs.iter().copied()).unwrap();
        let back: Vec<_> = read_text(&buf[..]).collect::<Result<_, _>>().unwrap();
        assert_eq!(back, refs);
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let src = "# header comment\n\n0 0 r 40\n";
        let back: Vec<_> = read_text(src.as_bytes()).collect::<Result<_, _>>().unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].addr, Addr::new(0x40));
    }

    #[test]
    fn text_accepts_0x_prefix() {
        let src = "0 0 w 0xff\n";
        let back: Vec<_> = read_text(src.as_bytes()).collect::<Result<_, _>>().unwrap();
        assert_eq!(back[0].addr, Addr::new(0xff));
        assert_eq!(back[0].kind, AccessKind::Write);
    }

    #[test]
    fn text_rejects_garbage() {
        for bad in [
            "x 0 r 40",
            "0 y r 40",
            "0 0 q 40",
            "0 0 r zz",
            "0 0 r",
            "0 0 r 40 q",
            "0 0 r 40 l extra",
        ] {
            let results: Vec<_> = read_text(bad.as_bytes()).collect();
            assert!(
                matches!(
                    results.last(),
                    Some(Err(TraceIoError::BadTextRecord { .. }))
                ),
                "input {bad:?} should fail"
            );
        }
    }

    #[test]
    fn text_error_reports_line_number() {
        let src = "0 0 r 40\nbogus line\n";
        let results: Vec<_> = read_text(src.as_bytes()).collect();
        match results.last() {
            Some(Err(TraceIoError::BadTextRecord { line, .. })) => assert_eq!(*line, 2),
            other => panic!("expected BadTextRecord, got {other:?}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = TraceIoError::BadAccessKind(7);
        assert!(e.to_string().contains("0x7"));
        let e = TraceIoError::BadTextRecord {
            line: 3,
            reason: "x".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
