//! The bundled scenario registry, held to its contract:
//!
//! * the paper scenarios (`pops`/`thor`/`pero`) generate traces
//!   **bit-identical** to the old hand-written presets, pinned here
//!   against literal configurations (not the preset constructors, so a
//!   drive-by edit to either side fails loudly);
//! * every bundled scenario passes `trace::stats` shape checks on its
//!   first-order mix (CPU count, instruction fraction, lock-read
//!   ordering, arrival-rate sanity);
//! * malformed specs fail with typed, line-addressed errors (the
//!   `fixtures/malformed.scn` file is the same one the CI gate feeds to
//!   `simulate --scenario` expecting a non-zero exit);
//! * `render → parse` round-trips arbitrary valid configurations
//!   (proptest).

use proptest::prelude::*;

use dirsim_trace::scenario::{registry, rules, Scenario, ScenarioError};
use dirsim_trace::synth::{
    LockConfig, OpenSystemConfig, Phase, SharingMix, Workload, WorkloadConfig,
};
use dirsim_trace::TraceStats;

fn stats_for(scenario: &Scenario, n: usize) -> TraceStats {
    TraceStats::from_refs(scenario.workload().take(n))
}

/// The old `pops_like()` preset, written out literally (4-CPU OPS5 rule
/// system; see crates/trace/src/synth/presets.rs for the calibration).
fn pinned_pops() -> WorkloadConfig {
    WorkloadConfig {
        cpus: 4,
        processes: 4,
        instr_frac: 0.517,
        write_frac: 0.24,
        shared_frac: 0.02,
        sharing_mix: SharingMix {
            read_mostly: 0.50,
            migratory: 0.40,
            producer_consumer: 0.10,
            false_sharing: 0.0,
        },
        lock: LockConfig {
            locks: 1,
            acquire_prob: 0.0055,
            critical_section_len: 200,
            critical_write_frac: 0.50,
        },
        os_frac: 0.103,
        seed: 0x1988_0001,
        ..WorkloadConfig::default()
    }
}

fn pinned_thor() -> WorkloadConfig {
    WorkloadConfig {
        cpus: 4,
        processes: 4,
        instr_frac: 0.452,
        write_frac: 0.21,
        shared_frac: 0.025,
        sharing_mix: SharingMix {
            read_mostly: 0.35,
            migratory: 0.53,
            producer_consumer: 0.12,
            false_sharing: 0.0,
        },
        lock: LockConfig {
            locks: 1,
            acquire_prob: 0.0055,
            critical_section_len: 200,
            critical_write_frac: 0.45,
        },
        os_frac: 0.154,
        seed: 0x1988_0002,
        ..WorkloadConfig::default()
    }
}

fn pinned_pero() -> WorkloadConfig {
    WorkloadConfig {
        cpus: 4,
        processes: 4,
        instr_frac: 0.523,
        write_frac: 0.24,
        shared_frac: 0.008,
        sharing_mix: SharingMix {
            read_mostly: 0.70,
            migratory: 0.25,
            producer_consumer: 0.05,
            false_sharing: 0.0,
        },
        lock: LockConfig {
            locks: 2,
            acquire_prob: 0.0003,
            critical_section_len: 60,
            critical_write_frac: 0.30,
        },
        os_frac: 0.076,
        seed: 0x1988_0003,
        ..WorkloadConfig::default()
    }
}

#[test]
fn paper_scenarios_are_bit_identical_to_the_old_presets() {
    for (name, pinned) in [
        ("pops", pinned_pops()),
        ("thor", pinned_thor()),
        ("pero", pinned_pero()),
    ] {
        let scenario = Scenario::named(name).unwrap();
        assert_eq!(scenario.config(), &pinned, "{name}: config drift");
        // Config equality already implies identical traces (the generator
        // is a pure function of the config), but compare a real prefix
        // anyway so a generator regression that consults global state
        // cannot hide behind the config check.
        let via_scenario: Vec<_> = scenario.workload().take(100_000).collect();
        let via_pinned: Vec<_> = Workload::new(pinned).take(100_000).collect();
        assert_eq!(via_scenario, via_pinned, "{name}: trace drift");
    }
}

#[test]
fn paper_trace_alias_matches_the_registry() {
    use dirsim_trace::synth::PaperTrace;
    for t in PaperTrace::ALL {
        let scenario = Scenario::named(t.name()).unwrap();
        assert_eq!(&t.config(), scenario.config(), "{t}");
    }
}

#[test]
fn registry_exposes_at_least_ten_scenarios() {
    assert!(registry().len() >= 10, "only {}", registry().len());
}

#[test]
fn every_scenario_matches_its_declared_cpu_count() {
    for s in registry() {
        // Enough references that the round-robin covers every CPU even
        // under migration and open-system churn.
        let stats = stats_for(s, 20_000);
        assert_eq!(
            stats.cpu_count(),
            usize::from(s.config().cpus),
            "{}",
            s.name()
        );
    }
}

#[test]
fn every_scenario_tracks_its_instruction_fraction() {
    for s in registry() {
        // The effective instruction fraction of the *first* window: for
        // phased scenarios that is the first phase's override.
        let want = s
            .config()
            .phases
            .first()
            .and_then(|p| p.instr_frac)
            .unwrap_or(s.config().instr_frac);
        let stats = stats_for(s, 150_000);
        let got = stats.instructions() as f64 / stats.total() as f64;
        // Spin-heavy scenarios sit below the configured fraction (spin
        // reads displace ordinary turns), so the band is generous but
        // still catches a mixed-up mix.
        assert!(
            (got - want).abs() < 0.12,
            "{}: instr fraction {got} vs configured {want}",
            s.name()
        );
    }
}

#[test]
fn lock_read_ordering_matches_the_paper() {
    // POPS and THOR spin far more than PERO (paper: ~1/3 of data reads
    // vs essentially none), and the lock-storm scenario out-spins all
    // three paper traces.
    let frac = |name: &str| stats_for(Scenario::named(name).unwrap(), 150_000).lock_read_fraction();
    let (pops, thor, pero, storm) = (frac("pops"), frac("thor"), frac("pero"), frac("lock-storm"));
    assert!(pops > 5.0 * pero, "pops {pops} vs pero {pero}");
    assert!(thor > 5.0 * pero, "thor {thor} vs pero {pero}");
    assert!(storm > pops, "lock-storm {storm} vs pops {pops}");
    assert!(storm > 0.3, "lock-storm spins hard: {storm}");
}

#[test]
fn open_scenarios_grow_their_population() {
    for name in ["open-system", "open-zipf-phased"] {
        let s = Scenario::named(name).unwrap();
        let open = s.config().open;
        // Arrival-rate sanity: open scenarios declare a positive arrival
        // probability that is still a probability, an arrival rate at
        // least the departure rate (the population trends up, not to
        // extinction), and a cap above the initial population.
        assert!(open.arrival_prob > 0.0 && open.arrival_prob < 1.0, "{name}");
        assert!(open.arrival_prob >= open.departure_prob, "{name}");
        assert!(open.max_processes > s.config().processes, "{name}");
        let stats = stats_for(s, 300_000);
        assert!(
            stats.process_count() > s.config().processes as usize,
            "{name}: population never grew past {}",
            s.config().processes
        );
    }
}

#[test]
fn closed_scenarios_keep_their_population() {
    for s in registry() {
        if s.config().open.is_enabled() {
            continue;
        }
        let stats = stats_for(s, 100_000);
        assert_eq!(
            stats.process_count(),
            s.config().processes as usize,
            "{}",
            s.name()
        );
    }
}

#[test]
fn phased_scenario_shifts_its_write_mix() {
    let s = Scenario::named("phased").unwrap();
    let refs: Vec<_> = s.workload().take(800_000).collect();
    let write_frac = |w: &[dirsim_trace::MemRef]| {
        w.iter()
            .filter(|r| r.kind == dirsim_trace::AccessKind::Write)
            .count() as f64
            / w.len() as f64
    };
    let build = write_frac(&refs[..400_000]);
    let update = write_frac(&refs[400_000..800_000]);
    assert!(
        update > 2.0 * build,
        "write fraction jumps between phases: {build} -> {update}"
    );
}

#[test]
fn reads_dominate_writes_in_the_paper_scenarios() {
    for name in ["pops", "thor", "pero"] {
        let stats = stats_for(Scenario::named(name).unwrap(), 100_000);
        assert!(
            stats.read_write_ratio() > 2.0,
            "{name}: r/w {}",
            stats.read_write_ratio()
        );
    }
}

#[test]
fn malformed_fixture_fails_with_a_typed_error() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/malformed.scn");
    let err = Scenario::from_file(path).unwrap_err();
    match err {
        ScenarioError::Config(e) => {
            let msg = e.to_string();
            assert!(msg.contains("write_frac"), "{msg}");
        }
        other => panic!("expected a config error, got {other:?}"),
    }
}

#[test]
fn parse_error_paths_carry_line_and_field_context() {
    // Unknown key.
    let err = Scenario::parse("scenario \"x\" {\n  turbo = 9\n}").unwrap_err();
    match &err {
        ScenarioError::Rule(e) => {
            assert_eq!(e.line, 2);
            assert_eq!(e.field, "turbo");
        }
        other => panic!("unexpected: {other:?}"),
    }
    // Out-of-range fraction (via validation).
    let err = Scenario::parse("scenario \"x\" { os_frac = 7.0 }").unwrap_err();
    assert!(matches!(err, ScenarioError::Config(_)), "{err:?}");
    // A phase that overrides nothing.
    let err = Scenario::parse("scenario \"x\" { phase { refs = 10 } }").unwrap_err();
    assert!(err.to_string().contains("overrides nothing"), "{err}");
    // Grammar failure with a line number.
    let err = Scenario::parse("scenario \"x\" {\n  cpus =\n}").unwrap_err();
    match err {
        ScenarioError::Parse(e) => assert_eq!(e.line, 3),
        other => panic!("unexpected: {other:?}"),
    }
}

/// A strategy over valid workload configurations that exercises every
/// clause the renderer can emit.
fn arb_config() -> impl Strategy<Value = WorkloadConfig> {
    (
        (1u16..=8, 0u32..8),                     // cpus, extra processes
        (0.1f64..0.9, 0.0f64..0.9, 0.0f64..0.5), // instr/write/shared fracs
        (0.0f64..0.99, any::<bool>()),           // zipf_theta, open system?
        (0u64..3, any::<u64>()),                 // phase count, seed
    )
        .prop_map(
            |((cpus, extra), (instr, write, shared), (zipf, open), (phases, seed))| {
                let processes = u32::from(cpus) + extra;
                let mut cfg = WorkloadConfig {
                    cpus,
                    processes,
                    instr_frac: instr,
                    write_frac: write,
                    shared_frac: shared,
                    zipf_theta: zipf,
                    seed,
                    ..WorkloadConfig::default()
                };
                if open {
                    cfg.open = OpenSystemConfig {
                        arrival_prob: 0.001,
                        departure_prob: 0.0005,
                        max_processes: processes + 16,
                    };
                }
                for i in 0..phases {
                    cfg.phases.push(Phase {
                        // Last phase gets refs = 0 ("rest of trace").
                        refs: if i + 1 == phases { 0 } else { 1_000 * (i + 1) },
                        write_frac: Some(0.1 * (i + 1) as f64),
                        ..Phase::default()
                    });
                }
                cfg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `render → parse → resolve` reproduces the configuration exactly —
    /// the renderer and the rules vocabulary cannot drift apart without
    /// this failing.
    #[test]
    fn spec_render_parse_round_trip(cfg in arb_config()) {
        prop_assume!(cfg.validate().is_ok());
        let text = rules::render("round-trip", "proptest", &cfg);
        let scenario = Scenario::parse(&text).unwrap();
        prop_assert_eq!(scenario.config(), &cfg);
        prop_assert_eq!(scenario.name(), "round-trip");
    }

    /// Rendering a bundled scenario and parsing it back is the identity.
    #[test]
    fn bundled_round_trip(idx in 0usize..13) {
        prop_assume!(idx < registry().len());
        let s = &registry()[idx];
        let back = Scenario::parse(&s.to_spec()).unwrap();
        prop_assert_eq!(&back, s);
    }
}
