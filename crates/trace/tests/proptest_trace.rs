//! Property tests for the trace crate: format robustness, statistics
//! algebra, filter laws, and generator structure.

use proptest::prelude::*;
use proptest::test_runner::TestCaseResult;

use dirsim_trace::filter::{by_cpu, data_only, without_lock_tests, without_os};
use dirsim_trace::frontend::{read_csv, write_csv};
use dirsim_trace::io::{read_binary, read_text, write_binary, write_text, TraceIoError};
use dirsim_trace::source::IterSource;
use dirsim_trace::synth::{Region, Workload, WorkloadConfig};
use dirsim_trace::{
    open_trace, AccessKind, Addr, CpuId, MemRef, MmapTraceSource, ProcessId, RefFlags, TraceSource,
    TraceStats,
};

/// A collision-free temp path: pid plus a process-wide counter, so
/// proptest cases (and parallel test binaries) never share a file.
fn temp_path(tag: &str, ext: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "dirsim-proptest-{tag}-{}-{}.{ext}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn arbitrary_refs(len: usize) -> impl Strategy<Value = Vec<MemRef>> {
    prop::collection::vec(
        (
            0u16..8,
            0u32..8,
            0u64..(1 << 44),
            0u8..3,
            any::<bool>(),
            any::<bool>(),
        )
            .prop_map(|(cpu, pid, addr, kind, lock, os)| {
                let kind = match kind {
                    0 => AccessKind::InstrFetch,
                    1 => AccessKind::Read,
                    _ => AccessKind::Write,
                };
                let mut flags = RefFlags::empty();
                if lock {
                    flags = flags.with_lock();
                }
                if os {
                    flags = flags.with_os();
                }
                MemRef::new(CpuId::new(cpu), ProcessId::new(pid), Addr::new(addr), kind)
                    .with_flags(flags)
            }),
        0..len,
    )
}

/// Drives `source` to exhaustion in `chunk`-sized reads, checking the
/// short-read/EOF contract along the way: `read_chunk` never over-fills
/// `max`, the buffer length always equals the returned count, `Ok(0)`
/// appears exactly once — at end of stream, never mid-stream (a
/// premature 0 would truncate `got` and fail the final comparison) — and
/// end of stream is sticky.
fn check_source_contract<S: TraceSource>(
    mut source: S,
    want: &[MemRef],
    chunk: usize,
) -> TestCaseResult {
    let mut got = Vec::new();
    let mut buf = Vec::new();
    loop {
        let n = source.read_chunk(&mut buf, chunk).unwrap();
        prop_assert!(n <= chunk, "read_chunk over-filled max: {} > {}", n, chunk);
        prop_assert_eq!(n, buf.len());
        if n == 0 {
            break;
        }
        got.extend_from_slice(&buf);
    }
    // A source that reported end of stream stays ended.
    prop_assert_eq!(source.read_chunk(&mut buf, chunk).unwrap(), 0);
    prop_assert_eq!(&got[..], want);
    Ok(())
}

/// Drains a source, panicking on any error (for comparisons only).
fn drain<S: TraceSource>(mut source: S, chunk: usize) -> Vec<MemRef> {
    let mut got = Vec::new();
    let mut buf = Vec::new();
    while source.read_chunk(&mut buf, chunk).unwrap() > 0 {
        got.extend_from_slice(&buf);
    }
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every [`TraceSource`] adapter honours the short-read/EOF contract
    /// for arbitrary streams and chunk sizes: binary, text, and
    /// iterator/synthetic sources alike.
    #[test]
    fn sources_honour_the_chunk_contract(refs in arbitrary_refs(120), chunk in 1usize..40) {
        let mut bin = Vec::new();
        write_binary(&mut bin, refs.iter().copied()).unwrap();
        check_source_contract(read_binary(&bin[..]), &refs, chunk)?;

        let mut txt = Vec::new();
        write_text(&mut txt, refs.iter().copied()).unwrap();
        check_source_contract(read_text(&txt[..]), &refs, chunk)?;

        check_source_contract(IterSource::new(refs.iter().copied()), &refs, chunk)?;
    }

    /// Chunk size is invisible: reading one reference at a time and
    /// reading everything in one oversized chunk produce the same
    /// sequence for binary, text, and synthetic workload sources.
    #[test]
    fn chunk_size_does_not_change_the_stream(refs in arbitrary_refs(80), seed in any::<u64>()) {
        let oversized = refs.len() + 1;

        let mut bin = Vec::new();
        write_binary(&mut bin, refs.iter().copied()).unwrap();
        prop_assert_eq!(drain(read_binary(&bin[..]), 1), drain(read_binary(&bin[..]), oversized));

        let mut txt = Vec::new();
        write_text(&mut txt, refs.iter().copied()).unwrap();
        prop_assert_eq!(drain(read_text(&txt[..]), 1), drain(read_text(&txt[..]), oversized));

        // Synthetic workloads are deterministic under a seed, so two
        // independently generated streams are comparable.
        let cfg = WorkloadConfig::builder().seed(seed).build().unwrap();
        let synth = |chunk: usize| {
            drain(IterSource::new(Workload::new(cfg.clone()).take(64)), chunk)
        };
        prop_assert_eq!(synth(1), synth(65));
    }

    /// Corrupting any single byte of a binary trace either still decodes
    /// (payload bytes) or produces a clean error — never a panic.
    #[test]
    fn binary_corruption_never_panics(refs in arbitrary_refs(20), pos in 0usize..100, byte in any::<u8>()) {
        let mut buf = Vec::new();
        write_binary(&mut buf, refs.iter().copied()).unwrap();
        if buf.is_empty() {
            return Ok(());
        }
        let idx = pos % buf.len();
        buf[idx] = byte;
        // Must terminate without panicking; errors are fine.
        let _ = read_binary(&buf[..]).collect::<Vec<Result<MemRef, TraceIoError>>>();
    }

    /// Truncating a binary trace mid-record errors instead of inventing
    /// data.
    #[test]
    fn binary_truncation_is_detected(refs in arbitrary_refs(20), cut in 1usize..15) {
        prop_assume!(!refs.is_empty());
        let mut buf = Vec::new();
        write_binary(&mut buf, refs.iter().copied()).unwrap();
        buf.truncate(buf.len() - cut);
        let results: Vec<_> = read_binary(&buf[..]).collect();
        prop_assert!(matches!(
            results.last(),
            Some(Err(TraceIoError::TruncatedRecord)) | Some(Err(TraceIoError::Io(_)))
        ));
        // All records before the cut decode correctly.
        for (got, want) in results.iter().zip(refs.iter()) {
            if let Ok(got) = got {
                prop_assert_eq!(got, want);
            }
        }
    }

    /// Text parsing accepts whatever the writer produces, line by line.
    #[test]
    fn text_lines_are_individually_valid(refs in arbitrary_refs(40)) {
        let mut buf = Vec::new();
        write_text(&mut buf, refs.iter().copied()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for (line, want) in text.lines().zip(refs.iter()) {
            let got: Vec<MemRef> =
                read_text(line.as_bytes()).collect::<Result<_, _>>().unwrap();
            prop_assert_eq!(&got[..], std::slice::from_ref(want));
        }
    }

    /// The compressed format round-trips arbitrary reference streams.
    #[test]
    fn compressed_round_trips(refs in arbitrary_refs(200)) {
        use dirsim_trace::compress::{read_compressed, write_compressed};
        let mut buf = Vec::new();
        write_compressed(&mut buf, refs.iter().copied()).unwrap();
        let back: Vec<MemRef> =
            read_compressed(&buf[..]).collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(back, refs);
    }

    /// Corrupting a compressed stream never panics and never loops.
    #[test]
    fn compressed_corruption_never_panics(
        refs in arbitrary_refs(30),
        pos in 0usize..200,
        byte in any::<u8>(),
    ) {
        use dirsim_trace::compress::{read_compressed, write_compressed};
        let mut buf = Vec::new();
        write_compressed(&mut buf, refs.iter().copied()).unwrap();
        if buf.is_empty() {
            return Ok(());
        }
        let idx = pos % buf.len();
        buf[idx] = byte;
        let decoded: Vec<_> = read_compressed(&buf[..]).take(1000).collect();
        prop_assert!(decoded.len() <= refs.len() + 8, "no runaway decoding");
    }

    /// The mmap source decodes identically to the buffered decoder,
    /// record for record, at chunk size 1, an odd size, and one
    /// oversized chunk — and it honours the short-read/EOF contract
    /// like every other source.
    #[test]
    fn mmap_decodes_identically_to_buffered(refs in arbitrary_refs(120), chunk in 1usize..40) {
        let path = temp_path("mmap", "dtr");
        let mut bin = Vec::new();
        write_binary(&mut bin, refs.iter().copied()).unwrap();
        std::fs::write(&path, &bin).unwrap();
        check_source_contract(MmapTraceSource::open(&path).unwrap(), &refs, chunk)?;
        for chunk in [1, 7, refs.len() + 1] {
            prop_assert_eq!(
                drain(MmapTraceSource::open(&path).unwrap(), chunk),
                drain(read_binary(&bin[..]), chunk),
                "chunk size {}", chunk
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// The text and CSV frontends round-trip arbitrary streams through
    /// the registry's sniffing `open_trace` path. Text is lossless; the
    /// foreign CSV schema has no flag column, so the round trip
    /// normalises flags away and must preserve everything else.
    #[test]
    fn text_and_csv_frontends_round_trip(refs in arbitrary_refs(80)) {
        let txt = temp_path("frontend", "txt");
        let mut buf = Vec::new();
        write_text(&mut buf, refs.iter().copied()).unwrap();
        std::fs::write(&txt, &buf).unwrap();
        prop_assert_eq!(drain(open_trace(&txt).unwrap(), 17), refs.clone());
        std::fs::remove_file(&txt).unwrap();

        let lossy: Vec<MemRef> = refs
            .iter()
            .map(|r| MemRef::new(r.cpu, r.pid, r.addr, r.kind))
            .collect();
        let mut buf = Vec::new();
        write_csv(&mut buf, refs.iter().copied()).unwrap();
        // In memory, straight through the reader…
        prop_assert_eq!(drain(read_csv(&buf[..]), 17), lossy.clone());
        // …and from disk, sniffed by the registry.
        let csv = temp_path("frontend", "csv");
        std::fs::write(&csv, &buf).unwrap();
        prop_assert_eq!(drain(open_trace(&csv).unwrap(), 17), lossy);
        std::fs::remove_file(&csv).unwrap();
    }

    /// Stats of a concatenation equal the merge of the parts.
    #[test]
    fn stats_merge_is_concat(a in arbitrary_refs(100), b in arbitrary_refs(100)) {
        let mut merged = TraceStats::from_refs(a.iter().copied());
        merged.merge(&TraceStats::from_refs(b.iter().copied()));
        let concat = TraceStats::from_refs(a.iter().copied().chain(b.iter().copied()));
        prop_assert_eq!(merged, concat);
    }

    /// Filters are idempotent and only remove what they claim.
    #[test]
    fn filters_are_idempotent(refs in arbitrary_refs(150)) {
        let once: Vec<MemRef> = without_lock_tests(refs.clone()).collect();
        let twice: Vec<MemRef> = without_lock_tests(once.clone()).collect();
        prop_assert_eq!(&once, &twice);
        prop_assert!(once.iter().all(|r| !r.flags.is_lock()));
        let removed = refs.len() - once.len();
        let locks = refs.iter().filter(|r| r.flags.is_lock()).count();
        prop_assert_eq!(removed, locks);

        let os_free: Vec<MemRef> = without_os(refs.clone()).collect();
        prop_assert!(os_free.iter().all(|r| !r.flags.is_os()));
        let data: Vec<MemRef> = data_only(refs.clone()).collect();
        prop_assert!(data.iter().all(|r| r.kind.is_data()));
        for cpu in 0..8u16 {
            let per: Vec<MemRef> = by_cpu(refs.clone(), CpuId::new(cpu)).collect();
            prop_assert!(per.iter().all(|r| r.cpu == CpuId::new(cpu)));
        }
    }

    /// Generator structural laws on arbitrary (valid) configurations:
    /// instruction fetches only target code, lock flags only appear on
    /// reads of lock words, and the CPU sequence is round-robin.
    #[test]
    fn generator_structural_laws(
        cpus in 1u16..6,
        extra_procs in 0u32..3,
        seed in any::<u64>(),
        shared in 0.0f64..0.2,
    ) {
        let cfg = WorkloadConfig::builder()
            .cpus(cpus)
            .processes(u32::from(cpus) + extra_procs)
            .shared_frac(shared)
            .seed(seed)
            .build()
            .unwrap();
        let refs: Vec<MemRef> = Workload::new(cfg).take(3000).collect();
        for (i, r) in refs.iter().enumerate() {
            prop_assert_eq!(r.cpu.index(), i % cpus as usize, "round robin");
            match r.kind {
                AccessKind::InstrFetch => {
                    prop_assert_eq!(Region::of(r.addr), Some(Region::Code));
                }
                AccessKind::Read => {
                    if r.flags.is_lock() {
                        prop_assert_eq!(Region::of(r.addr), Some(Region::Locks));
                    }
                }
                AccessKind::Write => {
                    prop_assert!(!r.flags.is_lock(), "writes are never spin tests");
                }
            }
            prop_assert!(Region::of(r.addr).is_some(), "every address has a region");
        }
    }
}

/// The degenerate files the fuzzer cannot reach with a generated stream:
/// a zero-byte file and a header-only file. Both decode paths must agree
/// — a typed refusal for the former, a clean zero-record stream for the
/// latter.
#[test]
fn mmap_agrees_with_buffered_on_empty_and_header_only_files() {
    let path = temp_path("degenerate", "dtr");

    // Empty file: no header to validate. The mmap path refuses at open;
    // the lazy buffered path refuses on the first chunk read.
    std::fs::write(&path, b"").unwrap();
    assert!(matches!(
        MmapTraceSource::open(&path),
        Err(TraceIoError::TruncatedRecord)
    ));
    let file = std::fs::File::open(&path).unwrap();
    let mut src = read_binary(std::io::BufReader::new(file));
    let mut buf = Vec::new();
    assert!(src.read_chunk(&mut buf, 16).is_err());

    // Header-only file: a valid, empty trace from both paths.
    std::fs::write(&path, dirsim_trace::codec::header_bytes()).unwrap();
    assert_eq!(drain(MmapTraceSource::open(&path).unwrap(), 8), Vec::new());
    let file = std::fs::File::open(&path).unwrap();
    assert_eq!(
        drain(read_binary(std::io::BufReader::new(file)), 8),
        Vec::new()
    );
    std::fs::remove_file(&path).unwrap();
}
