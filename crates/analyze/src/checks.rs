//! The static check catalogue over extracted [`ProtocolTable`]s.
//!
//! Each check is a pure function of the declarative table (plus, for the
//! symmetry check, the protocol's own state-renaming hook); none of them
//! executes a trace. Together they make whole classes of protocol bugs
//! into lint findings:
//!
//! | check | catches |
//! |---|---|
//! | `exhaustive` | missing `(state, symbol)` rows, dangling destinations |
//! | `reachable` | dead states a hand-edited golden could smuggle in |
//! | `drainable` | states evictions cannot empty (stuck residency) |
//! | `structural` | per-state invariant violations (dirty-not-exclusive, …) |
//! | `event` | Table 4 misclassification against the §4 prediction model |
//! | `capacity` | `Dir_i NB` holder / `Dir_i B` pointer overflow |
//! | `broadcast` | `Dir_i B` broadcasting while pointer knowledge is exact, or any `Dir_i NB` broadcast |
//! | `conservation` | sharer-set changes unaccounted by fills/invalidates |
//! | `symmetry` | cache-identity dependence in nominally symmetric machines |
//! | `style` | invalidations in update protocols, write-backs in write-through |

use std::collections::VecDeque;
use std::fmt;

use dirsim::invariant;
use dirsim_mem::CacheId;
use dirsim_protocol::directory::PointerCapacity;
use dirsim_protocol::{
    BlockProbe, BlockState, BusOp, CacheSymmetry, CoherenceProtocol, DirSpec, ProtocolStyle,
};

use crate::serial::state_key;
use crate::table::{ProtocolTable, Symbol};

/// One static-analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Which check fired (the table in the module docs).
    pub check: &'static str,
    /// The state the finding is anchored to, if any.
    pub state: Option<usize>,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.state {
            Some(id) => write!(f, "[{}] state {}: {}", self.check, id, self.detail),
            None => write!(f, "[{}] {}", self.check, self.detail),
        }
    }
}

fn sorted(caches: &[CacheId]) -> Vec<usize> {
    let mut v: Vec<usize> = caches.iter().map(|c| c.index()).collect();
    v.sort_unstable();
    v
}

/// Cache indices named by `inval($#k)` movement codes.
fn invalidated(movements: &[String]) -> Vec<usize> {
    movements
        .iter()
        .filter_map(|m| {
            m.strip_prefix("inval($#")
                .and_then(|rest| rest.strip_suffix(')'))
                .and_then(|i| i.parse::<usize>().ok())
        })
        .collect()
}

/// Rewrites every `$#k` occurrence in a movement code through `perm`.
fn permute_code(code: &str, perm: &[u32]) -> String {
    let mut out = String::with_capacity(code.len());
    let mut rest = code;
    while let Some(pos) = rest.find("$#") {
        out.push_str(&rest[..pos + 2]);
        rest = &rest[pos + 2..];
        let digits = rest.len() - rest.trim_start_matches(|c: char| c.is_ascii_digit()).len();
        let index: usize = rest[..digits].parse().unwrap_or(0);
        out.push_str(&perm[index].to_string());
        rest = &rest[digits..];
    }
    out.push_str(rest);
    out
}

fn exhaustive(table: &ProtocolTable, findings: &mut Vec<LintFinding>) {
    for (id, state) in table.states.iter().enumerate() {
        if state.transitions.len() != table.symbols.len() {
            findings.push(LintFinding {
                check: "exhaustive",
                state: Some(id),
                detail: format!(
                    "row covers {} of {} symbols",
                    state.transitions.len(),
                    table.symbols.len()
                ),
            });
            continue;
        }
        for (si, t) in state.transitions.iter().enumerate() {
            if t.to >= table.states.len() {
                findings.push(LintFinding {
                    check: "exhaustive",
                    state: Some(id),
                    detail: format!("'{}' leads to undefined state {}", table.symbols[si], t.to),
                });
            }
        }
    }
}

fn reachable(table: &ProtocolTable, findings: &mut Vec<LintFinding>) {
    let n = table.states.len();
    let mut seen = vec![false; n];
    let mut queue = VecDeque::from([0usize]);
    seen[0] = true;
    while let Some(id) = queue.pop_front() {
        for t in &table.states[id].transitions {
            if t.to < n && !seen[t.to] {
                seen[t.to] = true;
                queue.push_back(t.to);
            }
        }
    }
    for (id, seen) in seen.iter().enumerate() {
        if !seen {
            findings.push(LintFinding {
                check: "reachable",
                state: Some(id),
                detail: "state is unreachable from the initial state".into(),
            });
        }
    }
}

/// Every state must drain to an all-empty sharer configuration using only
/// eviction symbols — otherwise some residency can never be reclaimed.
fn drainable(table: &ProtocolTable, findings: &mut Vec<LintFinding>) {
    let n = table.states.len();
    let evict_syms: Vec<usize> = table
        .symbols
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_evict())
        .map(|(i, _)| i)
        .collect();
    // Reverse reachability from the drained states over eviction edges.
    let mut drains = vec![false; n];
    let mut queue = VecDeque::new();
    for (id, state) in table.states.iter().enumerate() {
        if state.blocks.iter().all(|b| b.holders.is_empty()) {
            drains[id] = true;
            queue.push_back(id);
        }
    }
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (id, state) in table.states.iter().enumerate() {
        for &si in &evict_syms {
            if let Some(t) = state.transitions.get(si) {
                if t.to < n {
                    preds[t.to].push(id);
                }
            }
        }
    }
    while let Some(id) = queue.pop_front() {
        for &p in &preds[id] {
            if !drains[p] {
                drains[p] = true;
                queue.push_back(p);
            }
        }
    }
    for (id, ok) in drains.iter().enumerate() {
        if !ok {
            findings.push(LintFinding {
                check: "drainable",
                state: Some(id),
                detail: "no eviction sequence empties every cache from here".into(),
            });
        }
    }
}

fn structural(table: &ProtocolTable, findings: &mut Vec<LintFinding>) {
    for (id, state) in table.states.iter().enumerate() {
        for block in &state.blocks {
            if let Err(v) = invariant::check_block(table.style, block, table.caches) {
                findings.push(LintFinding {
                    check: "structural",
                    state: Some(id),
                    detail: v.to_string(),
                });
            }
        }
    }
}

/// Re-predicts every reference transition's Table 4 event from the source
/// state via the §4 model and flags disagreements.
fn event_agreement(table: &ProtocolTable, findings: &mut Vec<LintFinding>) {
    for (id, state) in table.states.iter().enumerate() {
        for (si, t) in state.transitions.iter().enumerate() {
            let Some(Symbol::Ref(step)) = table.symbols.get(si).copied() else {
                if t.event.is_some() {
                    findings.push(LintFinding {
                        check: "event",
                        state: Some(id),
                        detail: format!(
                            "eviction '{}' classified as {:?}",
                            table.symbols[si], t.event
                        ),
                    });
                }
                continue;
            };
            let pre = state
                .blocks
                .iter()
                .find(|b| b.block == step.block)
                .map(|b| BlockProbe {
                    holders: b.holders.clone(),
                    dirty: b.dirty,
                });
            let expected =
                invariant::predicted_event(table.style, pre.as_ref(), step.cache, step.write);
            if t.event != Some(expected) {
                findings.push(LintFinding {
                    check: "event",
                    state: Some(id),
                    detail: format!(
                        "'{}' classified as {} but the state predicts {}",
                        table.symbols[si],
                        t.event.map_or("none".to_string(), |e| e.name().to_string()),
                        expected.name(),
                    ),
                });
            }
        }
    }
}

/// `Dir_i NB`: at most `i` holders ever; `Dir_i B`: at most `i` pointers.
fn capacity(table: &ProtocolTable, spec: DirSpec, findings: &mut Vec<LintFinding>) {
    let limit = spec.pointers().resolve(table.caches) as usize;
    for (id, state) in table.states.iter().enumerate() {
        for block in &state.blocks {
            if spec.allows_broadcast() {
                if block.pointers.len() > limit {
                    findings.push(LintFinding {
                        check: "capacity",
                        state: Some(id),
                        detail: format!(
                            "{}: {} pointers exceed capacity {limit}",
                            block.block,
                            block.pointers.len()
                        ),
                    });
                }
            } else if block.holders.len() > limit {
                findings.push(LintFinding {
                    check: "capacity",
                    state: Some(id),
                    detail: format!(
                        "{}: {} holders exceed the {limit}-pointer no-broadcast capacity",
                        block.block,
                        block.holders.len()
                    ),
                });
            }
        }
    }
}

/// Broadcast discipline: a `Dir_i B` transition may put a broadcast
/// invalidation on the bus only when the directory has in fact lost exact
/// knowledge (broadcast bit set, or a holder outside the pointer set); a
/// `Dir_i NB` machine may never broadcast at all.
fn broadcast(table: &ProtocolTable, spec: DirSpec, findings: &mut Vec<LintFinding>) {
    for (id, state) in table.states.iter().enumerate() {
        for (si, t) in state.transitions.iter().enumerate() {
            if !t.ops.contains(&BusOp::BroadcastInvalidate) {
                continue;
            }
            if !spec.allows_broadcast() {
                findings.push(LintFinding {
                    check: "broadcast",
                    state: Some(id),
                    detail: format!(
                        "'{}' broadcasts in a no-broadcast scheme",
                        table.symbols[si]
                    ),
                });
                continue;
            }
            let block = table.symbols[si].block();
            let inexact = state
                .blocks
                .iter()
                .find(|b| b.block == block)
                .is_some_and(|b| {
                    let known = sorted(&b.pointers);
                    b.broadcast_bit || !sorted(&b.holders).iter().all(|h| known.contains(h))
                });
            if !inexact {
                findings.push(LintFinding {
                    check: "broadcast",
                    state: Some(id),
                    detail: format!(
                        "'{}' broadcasts although pointer knowledge is exact",
                        table.symbols[si]
                    ),
                });
            }
        }
    }
}

/// Sharer-set conservation: across every transition, untouched blocks are
/// unchanged; on the touched block, only the acting cache may join, and
/// every leaving cache is accounted for by an `inval` movement.
fn conservation(table: &ProtocolTable, findings: &mut Vec<LintFinding>) {
    for (id, state) in table.states.iter().enumerate() {
        for (si, t) in state.transitions.iter().enumerate() {
            if t.to >= table.states.len() {
                continue; // already an `exhaustive` finding
            }
            let symbol = &table.symbols[si];
            let dest = &table.states[t.to];
            for from_block in &state.blocks {
                if from_block.block == symbol.block() {
                    continue;
                }
                let to_block = dest.blocks.iter().find(|b| b.block == from_block.block);
                if to_block != Some(from_block) {
                    findings.push(LintFinding {
                        check: "conservation",
                        state: Some(id),
                        detail: format!("'{}' disturbed untouched {}", symbol, from_block.block),
                    });
                }
            }
            let from_holders = state
                .blocks
                .iter()
                .find(|b| b.block == symbol.block())
                .map(|b| sorted(&b.holders))
                .unwrap_or_default();
            let to_holders = dest
                .blocks
                .iter()
                .find(|b| b.block == symbol.block())
                .map(|b| sorted(&b.holders))
                .unwrap_or_default();
            let joined: Vec<usize> = to_holders
                .iter()
                .copied()
                .filter(|h| !from_holders.contains(h))
                .collect();
            let left: Vec<usize> = from_holders
                .iter()
                .copied()
                .filter(|h| !to_holders.contains(h))
                .collect();
            let actor = symbol.cache().index();
            if symbol.is_evict() {
                if !joined.is_empty() || left.iter().any(|&l| l != actor) {
                    findings.push(LintFinding {
                        check: "conservation",
                        state: Some(id),
                        detail: format!(
                            "'{}' changed holders {from_holders:?} -> {to_holders:?}",
                            symbol
                        ),
                    });
                }
                continue;
            }
            if joined.iter().any(|&j| j != actor) {
                findings.push(LintFinding {
                    check: "conservation",
                    state: Some(id),
                    detail: format!(
                        "'{}' added non-acting holders: {from_holders:?} -> {to_holders:?}",
                        symbol
                    ),
                });
            }
            let invalidations = invalidated(&t.movements);
            for &l in &left {
                if !invalidations.contains(&l) {
                    findings.push(LintFinding {
                        check: "conservation",
                        state: Some(id),
                        detail: format!(
                            "'{}' dropped holder $#{l} without an inval movement",
                            symbol
                        ),
                    });
                }
            }
            if table.style == ProtocolStyle::Update && !left.is_empty() {
                findings.push(LintFinding {
                    check: "conservation",
                    state: Some(id),
                    detail: format!("update protocol lost sharers {left:?} on '{}'", symbol),
                });
            }
        }
    }
}

/// Cache-permutation symmetry: for each generator permutation `p`, the
/// image of every reachable state is reachable, and the table commutes —
/// `p(dest(s, σ)) == dest(p(s), p(σ))` with matching event, ops, fan-out,
/// and (multiset of renamed) movements. Uses the protocol's own
/// [`CoherenceProtocol::permute_block_state`] hook so owner identities in
/// `aux` rename correctly; skipped for
/// [`CacheSymmetry::Asymmetric`] machines.
fn symmetry(
    table: &ProtocolTable,
    protocol: &dyn CoherenceProtocol,
    findings: &mut Vec<LintFinding>,
) {
    if table.symmetry == CacheSymmetry::Asymmetric || table.caches < 2 {
        return;
    }
    let mut generators = vec![{
        // Swap the first two caches.
        let mut p: Vec<u32> = (0..table.caches).collect();
        p.swap(0, 1);
        p
    }];
    if table.caches > 2 {
        // Rotate all caches by one.
        generators.push((0..table.caches).map(|i| (i + 1) % table.caches).collect());
    }

    let key_to_id: std::collections::HashMap<String, usize> = table
        .states
        .iter()
        .enumerate()
        .map(|(id, s)| (state_key(&s.blocks), id))
        .collect();
    let sym_index: std::collections::HashMap<Symbol, usize> = table
        .symbols
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i))
        .collect();

    for perm in &generators {
        for (id, state) in table.states.iter().enumerate() {
            let image: Vec<BlockState> = state
                .blocks
                .iter()
                .map(|b| protocol.permute_block_state(b, perm))
                .collect();
            let Some(&image_id) = key_to_id.get(&state_key(&image)) else {
                findings.push(LintFinding {
                    check: "symmetry",
                    state: Some(id),
                    detail: format!("image under {perm:?} is not a reachable state"),
                });
                continue;
            };
            for (si, t) in state.transitions.iter().enumerate() {
                if t.to >= table.states.len() {
                    continue;
                }
                let p_sym = table.symbols[si].permuted(perm);
                let Some(&p_si) = sym_index.get(&p_sym) else {
                    continue;
                };
                let mirrored = &table.states[image_id].transitions[p_si];
                let dest_image: Vec<BlockState> = table.states[t.to]
                    .blocks
                    .iter()
                    .map(|b| protocol.permute_block_state(b, perm))
                    .collect();
                let dest_image_id = key_to_id.get(&state_key(&dest_image)).copied();
                let mut expected_moves: Vec<String> =
                    t.movements.iter().map(|m| permute_code(m, perm)).collect();
                expected_moves.sort();
                let mut mirrored_moves = mirrored.movements.clone();
                mirrored_moves.sort();
                let mut expected_ops = t.ops.clone();
                expected_ops.sort();
                let mut mirrored_ops = mirrored.ops.clone();
                mirrored_ops.sort();
                if dest_image_id != Some(mirrored.to)
                    || t.event != mirrored.event
                    || expected_ops != mirrored_ops
                    || expected_moves != mirrored_moves
                    || t.fanout != mirrored.fanout
                {
                    findings.push(LintFinding {
                        check: "symmetry",
                        state: Some(id),
                        detail: format!(
                            "table does not commute with {perm:?} on '{}'",
                            table.symbols[si]
                        ),
                    });
                }
            }
        }
    }
}

/// Style consistency: update protocols never invalidate; write-through
/// protocols never write back dirty data.
fn style_consistency(table: &ProtocolTable, findings: &mut Vec<LintFinding>) {
    for (id, state) in table.states.iter().enumerate() {
        for (si, t) in state.transitions.iter().enumerate() {
            let offending = match table.style {
                ProtocolStyle::Update if !table.symbols[si].is_evict() => t
                    .movements
                    .iter()
                    .find(|m| m.starts_with("inval("))
                    .cloned(),
                ProtocolStyle::WriteThrough => t
                    .movements
                    .iter()
                    .find(|m| m.starts_with("write-back("))
                    .cloned(),
                _ => None,
            };
            if let Some(movement) = offending {
                findings.push(LintFinding {
                    check: "style",
                    state: Some(id),
                    detail: format!(
                        "{movement} is impossible for a {} protocol on '{}'",
                        match table.style {
                            ProtocolStyle::Update => "update",
                            _ => "write-through",
                        },
                        table.symbols[si]
                    ),
                });
            }
        }
    }
}

/// Runs the full static check catalogue over one extracted table.
///
/// `protocol` must be a fresh instance of the same scheme (it supplies the
/// state-renaming hook for the symmetry check); `dir_spec` enables the
/// directory-family capacity and broadcast-discipline lints.
pub fn run_lints(
    table: &ProtocolTable,
    protocol: &dyn CoherenceProtocol,
    dir_spec: Option<DirSpec>,
) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    exhaustive(table, &mut findings);
    reachable(table, &mut findings);
    drainable(table, &mut findings);
    structural(table, &mut findings);
    event_agreement(table, &mut findings);
    if let Some(spec) = dir_spec {
        if let PointerCapacity::Limited(_) = spec.pointers() {
            capacity(table, spec, &mut findings);
        }
        broadcast(table, spec, &mut findings);
    }
    conservation(table, &mut findings);
    symmetry(table, protocol, &mut findings);
    style_consistency(table, &mut findings);
    findings
}

/// Product-factorization check: the multi-block machine must be the
/// independent product of per-block machines. Every reachable state of
/// `multi` must project, block by block (normalised to block 0), onto a
/// reachable state of `single`, and every transition must act only on its
/// symbol's component, exactly as the single-block table says.
pub fn check_product(single: &ProtocolTable, multi: &ProtocolTable) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    if single.blocks != 1 {
        findings.push(LintFinding {
            check: "product",
            state: None,
            detail: "reference table must have exactly one block".into(),
        });
        return findings;
    }
    let key_to_id: std::collections::HashMap<String, usize> = single
        .states
        .iter()
        .enumerate()
        .map(|(id, s)| (state_key(&s.blocks), id))
        .collect();
    let normalise = |blocks: &[BlockState], block: dirsim_mem::BlockAddr| -> Vec<BlockState> {
        blocks
            .iter()
            .filter(|b| b.block == block)
            .map(|b| BlockState {
                block: dirsim_mem::BlockAddr::new(0),
                ..b.clone()
            })
            .collect()
    };
    // Map each multi-table symbol to the single-table symbol acting on
    // block 0 with the same verb and cache.
    let sym_index: std::collections::HashMap<Symbol, usize> = single
        .symbols
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i))
        .collect();
    let project_symbol = |s: &Symbol| -> Option<usize> {
        let zero = dirsim_mem::BlockAddr::new(0);
        let projected = match *s {
            Symbol::Ref(step) => Symbol::Ref(dirsim_verify::Step {
                block: zero,
                ..step
            }),
            Symbol::Evict { cache, .. } => Symbol::Evict { cache, block: zero },
        };
        sym_index.get(&projected).copied()
    };

    for (id, state) in multi.states.iter().enumerate() {
        // Each component must be a reachable single-block state.
        let mut component_ids = Vec::new();
        let mut bad_component = false;
        for raw in 0..multi.blocks {
            let block = dirsim_mem::BlockAddr::new(raw);
            let component = normalise(&state.blocks, block);
            match key_to_id.get(&state_key(&component)) {
                Some(&cid) => component_ids.push(cid),
                None => {
                    findings.push(LintFinding {
                        check: "product",
                        state: Some(id),
                        detail: format!(
                            "component for {block} is not a reachable single-block state"
                        ),
                    });
                    bad_component = true;
                }
            }
        }
        if bad_component {
            continue;
        }
        for (si, t) in state.transitions.iter().enumerate() {
            if t.to >= multi.states.len() {
                continue;
            }
            let symbol = &multi.symbols[si];
            let Some(ssi) = project_symbol(symbol) else {
                continue;
            };
            let touched = symbol.block().raw() as usize;
            let reference = &single.states[component_ids[touched]].transitions[ssi];
            let dest = &multi.states[t.to];
            let dest_component = normalise(&dest.blocks, symbol.block());
            let dest_cid = key_to_id.get(&state_key(&dest_component)).copied();
            let mut rebased_moves: Vec<String> = t.movements.clone();
            rebased_moves.sort();
            let mut reference_moves = reference.movements.clone();
            reference_moves.sort();
            if dest_cid != Some(reference.to)
                || t.event != reference.event
                || t.ops != reference.ops
                || rebased_moves != reference_moves
                || t.fanout != reference.fanout
            {
                findings.push(LintFinding {
                    check: "product",
                    state: Some(id),
                    detail: format!(
                        "'{}' does not factor through the single-block table",
                        symbol
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::extract;
    use dirsim_protocol::Scheme;

    #[test]
    fn invalidated_parses_codes() {
        let moves = vec![
            "fill-mem($#0)".to_string(),
            "inval($#2)".to_string(),
            "inval($#10)".to_string(),
        ];
        assert_eq!(invalidated(&moves), vec![2, 10]);
    }

    #[test]
    fn permute_code_renames_every_cache_reference() {
        assert_eq!(
            permute_code("fill-cache($#2<-$#0)", &[2, 1, 0]),
            "fill-cache($#0<-$#2)"
        );
        assert_eq!(permute_code("write($#1)", &[2, 1, 0]), "write($#1)");
    }

    #[test]
    fn clean_scheme_lints_clean() {
        let scheme = Scheme::dir1_nb();
        let table = extract(|| scheme.build(3), 3, 1, true).unwrap();
        let probe = scheme.build(3);
        let findings = run_lints(&table, probe.as_ref(), scheme.dir_spec());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn dropped_invalidate_mutant_fails_structural_and_conservation() {
        let table = extract(
            || Box::new(dirsim_verify::mutants::DroppedInvalidate::new(3)),
            3,
            1,
            false,
        )
        .unwrap();
        let probe = Scheme::dir_n_nb().build(3);
        let findings = run_lints(&table, probe.as_ref(), None);
        assert!(
            findings.iter().any(|f| f.check == "structural"),
            "{findings:?}"
        );
        assert!(
            findings.iter().any(|f| f.check == "conservation"),
            "{findings:?}"
        );
    }

    #[test]
    fn misclassified_hit_mutant_fails_event_agreement() {
        let table = extract(
            || Box::new(dirsim_verify::mutants::MisclassifiedHit::new(3)),
            3,
            1,
            false,
        )
        .unwrap();
        let probe = Scheme::dir_n_nb().build(3);
        let findings = run_lints(
            &table,
            probe.as_ref(),
            Some(dirsim_protocol::DirSpec::dir_n_nb()),
        );
        assert!(findings.iter().any(|f| f.check == "event"), "{findings:?}");
    }

    #[test]
    fn product_factorization_holds_for_dir1b() {
        let scheme = Scheme::dir1_b();
        let single = extract(|| scheme.build(2), 2, 1, true).unwrap();
        let double = extract(|| scheme.build(2), 2, 2, true).unwrap();
        let findings = check_product(&single, &double);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
