//! Static protocol analysis gate: extract, lint, and golden-diff.
//!
//! ```text
//! analyze --all                        # every gauntlet scheme vs committed goldens
//! analyze --scheme Dir1NB              # one scheme
//! analyze --all --bless                # regenerate the goldens
//! analyze --mutant dropped-invalidate  # must FAIL: proves the gate bites
//! ```
//!
//! Exit status: 0 when every extraction is clean, lints pass and tables
//! match their goldens; 1 on any finding or diff; 2 on usage or I/O
//! errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dirsim_analyze::checks::check_product;
use dirsim_analyze::{diff_tables, extract, parse_table, run_lints, table_to_jsonl};
use dirsim_protocol::{CoherenceProtocol, Scheme};
use dirsim_verify::mutants::{DroppedInvalidate, MisclassifiedHit};

const USAGE: &str = "usage: analyze [--all | --scheme NAME | --mutant NAME] [options]

modes (default: --all)
  --all              analyze every gauntlet scheme
  --scheme NAME      analyze one scheme (paper notation, e.g. Dir1NB)
  --mutant NAME      analyze a deliberately broken protocol; expected to fail
                     (names: dropped-invalidate, misclassified-hit)

options
  --caches N         caches in the extracted configuration (default 3)
  --golden DIR       golden directory (default: crates/analyze/golden)
  --bless            rewrite goldens from the live extraction
  --no-product       skip the two-block product-factorization check
  -h, --help         this text";

struct Options {
    caches: u32,
    golden_dir: PathBuf,
    bless: bool,
    product: bool,
}

fn default_golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("golden")
}

/// Analyzes one machine: extract at one block, lint, product-check at two
/// blocks, then diff against (or bless) the golden. Returns whether
/// everything passed.
fn analyze_one(
    label: &str,
    build: &dyn Fn() -> Box<dyn CoherenceProtocol>,
    scheme: Option<Scheme>,
    golden_name: &str,
    opts: &Options,
    audited: bool,
) -> Result<bool, String> {
    let table = match extract(build, opts.caches, 1, audited) {
        Ok(t) => t,
        Err(e) => {
            println!("FAIL {label}: {e}");
            return Ok(false);
        }
    };
    let mut clean = true;

    let probe = build();
    let findings = run_lints(&table, probe.as_ref(), scheme.and_then(Scheme::dir_spec));
    for f in &findings {
        println!("FAIL {label}: {f}");
        clean = false;
    }

    if opts.product {
        match extract(build, opts.caches, 2, audited) {
            Ok(double) => {
                for f in check_product(&table, &double) {
                    println!("FAIL {label}: {f}");
                    clean = false;
                }
            }
            Err(e) => {
                println!("FAIL {label}: two-block extraction: {e}");
                clean = false;
            }
        }
    }

    let golden_path = opts.golden_dir.join(format!("{golden_name}.jsonl"));
    if opts.bless {
        std::fs::create_dir_all(&opts.golden_dir)
            .map_err(|e| format!("creating {}: {e}", opts.golden_dir.display()))?;
        std::fs::write(&golden_path, table_to_jsonl(&table))
            .map_err(|e| format!("writing {}: {e}", golden_path.display()))?;
        println!(
            "BLESS {label}: {} states, {} transitions -> {}",
            table.states.len(),
            table.transition_count(),
            golden_path.display()
        );
        return Ok(clean);
    }
    let text = std::fs::read_to_string(&golden_path).map_err(|e| {
        format!(
            "reading {}: {e} (run with --bless to create goldens)",
            golden_path.display()
        )
    })?;
    let golden = parse_table(&text).map_err(|e| format!("{}: {e}", golden_path.display()))?;
    let diff = diff_tables(&golden, &table, golden_name != table.scheme);
    if diff.is_empty() {
        if clean {
            println!(
                "ok {label}: {} states, {} transitions, lints clean, matches golden",
                table.states.len(),
                table.transition_count()
            );
        }
    } else {
        print!("FAIL {diff}");
        clean = false;
    }
    Ok(clean)
}

fn run() -> Result<bool, String> {
    let mut opts = Options {
        caches: 3,
        golden_dir: default_golden_dir(),
        bless: false,
        product: true,
    };
    let mut schemes: Vec<Scheme> = Vec::new();
    let mut mutant: Option<String> = None;
    let mut all = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--all" => all = true,
            "--scheme" => {
                let name = value("--scheme")?;
                schemes.push(name.parse().map_err(|e| format!("{e}"))?);
            }
            "--mutant" => mutant = Some(value("--mutant")?),
            "--caches" => {
                opts.caches = value("--caches")?
                    .parse()
                    .map_err(|e| format!("--caches: {e}"))?;
            }
            "--golden" => opts.golden_dir = PathBuf::from(value("--golden")?),
            "--bless" => opts.bless = true,
            "--no-product" => opts.product = false,
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }

    if let Some(name) = mutant {
        let caches = opts.caches;
        // Mutants extract unaudited — the point is to show the *static*
        // pass catches what it can and the golden diff catches the rest,
        // without the dynamic audit stopping extraction first.
        type Build = Box<dyn Fn() -> Box<dyn CoherenceProtocol>>;
        let (build, base): (Build, &str) = match name.as_str() {
            "dropped-invalidate" => (
                Box::new(move || -> Box<dyn CoherenceProtocol> {
                    Box::new(DroppedInvalidate::new(caches))
                }),
                "DirnNB",
            ),
            "misclassified-hit" => (
                Box::new(move || -> Box<dyn CoherenceProtocol> {
                    Box::new(MisclassifiedHit::new(caches))
                }),
                "DirnNB",
            ),
            other => return Err(format!("unknown mutant {other:?}\n{USAGE}")),
        };
        println!("analyzing mutant {name} against the {base} golden");
        return analyze_one(&name, build.as_ref(), None, base, &opts, false);
    }

    if schemes.is_empty() || all {
        schemes = dirsim_verify::gauntlet();
    }
    let mut clean = true;
    for scheme in schemes {
        let name = scheme.name();
        let build = move || scheme.build(opts.caches);
        clean &= analyze_one(&name, &build, Some(scheme), &name, &opts, true)?;
    }
    Ok(clean)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("analyze: {e}");
            ExitCode::from(2)
        }
    }
}
