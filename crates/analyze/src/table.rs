//! Transition-table extraction: lift an imperative protocol into an
//! explicit declarative relation.
//!
//! Extraction is a product construction over a small configuration: from
//! the empty initial state, apply every symbol of the alphabet (all
//! `caches × blocks × {read,write}` references plus all `caches × blocks`
//! capacity evictions) to every reachable state, deduplicating states on
//! the protocol's canonical [`StateSnapshot`]. The result is a total
//! function `state × symbol → (state, event, ops, movements, fanout)` —
//! the table the static [`crate::checks`] catalogue and the golden diffs
//! operate on.
//!
//! Audited extraction routes every step through the same invariant and
//! shadow-memory-oracle checks as the simulation engine, so a table only
//! comes out of a machine the dynamic layers also accept; unaudited
//! extraction records whatever the machine does, which is what lets the
//! deliberately broken `verify::mutants` still produce tables for the
//! lint pass and golden diff to flag.

use std::collections::HashMap;
use std::fmt;

use dirsim::invariant;
use dirsim_mem::{BlockAddr, CacheId, ShadowMemory};
use dirsim_protocol::{
    BlockState, BusOp, CacheSymmetry, CoherenceProtocol, EventKind, ProtocolStyle, RefOutcome,
    StateSnapshot,
};
use dirsim_verify::{CheckConfig, Step};

/// Hard cap on discovered states; extraction aborts beyond it rather than
/// chase an unbounded (buggy) state space.
const MAX_STATES: usize = 100_000;

/// One input symbol of the extracted machine: a data reference or a
/// capacity eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Symbol {
    /// A read or write by one cache to one block.
    Ref(Step),
    /// A capacity eviction of one block from one cache.
    Evict {
        /// The evicting cache.
        cache: CacheId,
        /// The evicted block.
        block: BlockAddr,
    },
}

impl Symbol {
    /// The cache acting in this symbol.
    pub fn cache(&self) -> CacheId {
        match *self {
            Symbol::Ref(step) => step.cache,
            Symbol::Evict { cache, .. } => cache,
        }
    }

    /// The block this symbol touches.
    pub fn block(&self) -> BlockAddr {
        match *self {
            Symbol::Ref(step) => step.block,
            Symbol::Evict { block, .. } => block,
        }
    }

    /// Whether this symbol is a capacity eviction.
    pub fn is_evict(&self) -> bool {
        matches!(self, Symbol::Evict { .. })
    }

    /// The same symbol with the acting cache renamed through `perm`.
    pub fn permuted(&self, perm: &[u32]) -> Symbol {
        let rename = |c: CacheId| CacheId::new(perm[c.index()]);
        match *self {
            Symbol::Ref(step) => Symbol::Ref(Step {
                cache: rename(step.cache),
                ..step
            }),
            Symbol::Evict { cache, block } => Symbol::Evict {
                cache: rename(cache),
                block,
            },
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Symbol::Ref(step) => step.fmt(f),
            Symbol::Evict { cache, block } => write!(f, "evict {block} {cache}"),
        }
    }
}

/// The full symbol alphabet for one configuration: every reference of
/// [`CheckConfig::alphabet`] followed by every capacity eviction of
/// [`CheckConfig::eviction_alphabet`], both in their fixed enumeration
/// orders.
pub fn symbols_for(cfg: &CheckConfig) -> Vec<Symbol> {
    cfg.alphabet()
        .into_iter()
        .map(Symbol::Ref)
        .chain(
            cfg.eviction_alphabet()
                .into_iter()
                .map(|(cache, block)| Symbol::Evict { cache, block }),
        )
        .collect()
}

/// One cell of the table: what applying one symbol in one state does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Destination state id (index into [`ProtocolTable::states`]).
    pub to: usize,
    /// Table 4 event classification (`None` for evictions).
    pub event: Option<EventKind>,
    /// Bus operations the step put on the bus, in emission order.
    pub ops: Vec<BusOp>,
    /// Semantic data movements as compact [`dirsim_protocol::DataMovement::code`]
    /// labels, in emission order.
    pub movements: Vec<String>,
    /// The clean-write invalidation fan-out datum, when the event reports
    /// one.
    pub fanout: Option<u32>,
}

/// One reachable state and its complete outgoing row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableState {
    /// The canonical per-block protocol state, ordered by block address.
    pub blocks: Vec<BlockState>,
    /// Outgoing transitions, indexed identically to
    /// [`ProtocolTable::symbols`].
    pub transitions: Vec<Transition>,
}

/// A complete extracted transition relation for one scheme at one
/// configuration. State 0 is the initial (empty) state.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolTable {
    /// Scheme display name (`Dir1NB`, `Dragon`, …).
    pub scheme: String,
    /// The scheme's write-propagation family.
    pub style: ProtocolStyle,
    /// Whether cache permutations are a symmetry of the machine.
    pub symmetry: CacheSymmetry,
    /// Number of caches in the extracted configuration.
    pub caches: u32,
    /// Number of blocks in the extracted configuration.
    pub blocks: u64,
    /// The symbol alphabet; every state has exactly one transition per
    /// symbol.
    pub symbols: Vec<Symbol>,
    /// All reachable states, in breadth-first discovery order.
    pub states: Vec<TableState>,
}

/// Why extraction failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractError {
    /// The scheme being extracted.
    pub scheme: String,
    /// Discovery id of the state the failure occurred in.
    pub state: usize,
    /// The symbol being applied (empty for state-level failures).
    pub symbol: String,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: extraction failed at state {}",
            self.scheme, self.state
        )?;
        if !self.symbol.is_empty() {
            write!(f, " on '{}'", self.symbol)?;
        }
        write!(f, ": {}", self.detail)
    }
}

impl std::error::Error for ExtractError {}

/// Applies one symbol to a live machine, optionally running the full
/// engine-grade audit (invariants plus oracle replay).
fn apply_symbol(
    protocol: &mut dyn CoherenceProtocol,
    oracle: &mut ShadowMemory,
    symbol: &Symbol,
    audited: bool,
) -> Result<RefOutcome, String> {
    match *symbol {
        Symbol::Ref(step) => {
            let pre = protocol.probe(step.block);
            let out = protocol.on_data_ref(step.cache, step.block, step.write);
            if audited {
                invariant::check_data_ref(
                    &*protocol,
                    pre.as_ref(),
                    step.cache,
                    step.block,
                    step.write,
                    &out,
                )
                .map_err(|v| format!("invariant: {v}"))?;
                invariant::replay_movements(oracle, &out.movements, step.block)
                    .map_err(|v| format!("oracle: {v}"))?;
                oracle
                    .check_read(step.cache, step.block)
                    .map_err(|v| format!("oracle: {v}"))?;
                invariant::check_snapshot(
                    protocol.style(),
                    &protocol.snapshot(),
                    protocol.cache_count(),
                )
                .map_err(|v| format!("invariant: {v}"))?;
            }
            Ok(out)
        }
        Symbol::Evict { cache, block } => {
            let out = protocol.evict(cache, block);
            if audited {
                invariant::check_eviction(&*protocol, cache, block, &out)
                    .map_err(|v| format!("invariant: {v}"))?;
                invariant::replay_movements(oracle, &out.movements, block)
                    .map_err(|v| format!("oracle: {v}"))?;
            }
            Ok(out)
        }
    }
}

/// Cross-checks the sharer set the protocol *reports* in its canonical
/// state against the copies the shadow-memory oracle *saw* move.
fn cross_check_oracle(
    snapshot: &StateSnapshot,
    oracle: &ShadowMemory,
    blocks: u64,
) -> Result<(), String> {
    for raw in 0..blocks {
        let block = BlockAddr::new(raw);
        let mut claimed: Vec<CacheId> = snapshot
            .get(block)
            .map(|b| b.holders.clone())
            .unwrap_or_default();
        claimed.sort_by_key(|c| c.index());
        let seen = oracle.holders(block);
        if claimed != seen {
            return Err(format!(
                "oracle cross-check: {block} protocol holders {claimed:?} != oracle copies {seen:?}"
            ));
        }
    }
    Ok(())
}

struct Node {
    protocol: Box<dyn CoherenceProtocol>,
    oracle: ShadowMemory,
    /// A second concrete instance that reached the same snapshot by a
    /// different path, kept for the confluence check.
    alternate: Option<(Box<dyn CoherenceProtocol>, ShadowMemory)>,
}

/// Extracts the complete transition relation of `build()`'s protocol over
/// a `caches × blocks` configuration.
///
/// With `audited` set, every step runs the engine's invariant catalogue
/// and the shadow-memory oracle, and every discovered state is
/// cross-checked against the oracle's holder sets; extraction fails on the
/// first violation. Unaudited extraction records the machine verbatim.
///
/// After discovery, a **confluence** pass re-derives the outgoing row of
/// every state that was reached by more than one concrete path, from the
/// second instance: if the two rows differ, the canonical snapshot is not
/// a sufficient statistic of the machine's behaviour (hidden state — the
/// table would be nondeterministic) and extraction fails.
///
/// # Errors
///
/// Returns an [`ExtractError`] describing the first audit violation,
/// confluence divergence, or state-space blow-up past an internal cap.
pub fn extract<F>(
    build: F,
    caches: u32,
    blocks: u64,
    audited: bool,
) -> Result<ProtocolTable, ExtractError>
where
    F: Fn() -> Box<dyn CoherenceProtocol>,
{
    let cfg = CheckConfig {
        caches,
        blocks,
        depth: 0,
    };
    let symbols = symbols_for(&cfg);
    let initial = build();
    let scheme = initial.name();
    let style = initial.style();
    let symmetry = initial.cache_symmetry();
    let err = |state: usize, symbol: String, detail: String| ExtractError {
        scheme: scheme.clone(),
        state,
        symbol,
        detail,
    };

    let mut ids: HashMap<StateSnapshot, usize> = HashMap::new();
    let mut snaps: Vec<StateSnapshot> = Vec::new();
    let mut nodes: Vec<Node> = Vec::new();
    let mut rows: Vec<Vec<Transition>> = Vec::new();

    let snap0 = initial.snapshot();
    ids.insert(snap0.clone(), 0);
    snaps.push(snap0);
    nodes.push(Node {
        protocol: initial,
        oracle: ShadowMemory::new(),
        alternate: None,
    });

    let mut cursor = 0;
    while cursor < nodes.len() {
        let mut row = Vec::with_capacity(symbols.len());
        for symbol in &symbols {
            let mut protocol = nodes[cursor].protocol.boxed_clone();
            let mut oracle = nodes[cursor].oracle.clone();
            let out = apply_symbol(protocol.as_mut(), &mut oracle, symbol, audited)
                .map_err(|detail| err(cursor, symbol.to_string(), detail))?;
            let snap = protocol.snapshot();
            if audited {
                cross_check_oracle(&snap, &oracle, blocks)
                    .map_err(|detail| err(cursor, symbol.to_string(), detail))?;
            }
            let to = match ids.get(&snap) {
                Some(&id) => {
                    if nodes[id].alternate.is_none() {
                        nodes[id].alternate = Some((protocol, oracle));
                    }
                    id
                }
                None => {
                    let id = nodes.len();
                    if id >= MAX_STATES {
                        return Err(err(
                            cursor,
                            symbol.to_string(),
                            format!("state space exceeds {MAX_STATES} states"),
                        ));
                    }
                    ids.insert(snap.clone(), id);
                    snaps.push(snap);
                    nodes.push(Node {
                        protocol,
                        oracle,
                        alternate: None,
                    });
                    id
                }
            };
            row.push(Transition {
                to,
                event: out.event,
                ops: out.ops.clone(),
                movements: out.movements.iter().map(|m| m.code()).collect(),
                fanout: out.clean_write_fanout,
            });
        }
        rows.push(row);
        cursor += 1;
    }

    // Confluence: every state reached by a second concrete path must
    // produce the identical row from that second instance.
    for id in 0..nodes.len() {
        let Some((alt_protocol, alt_oracle)) = nodes[id].alternate.take() else {
            continue;
        };
        for (si, symbol) in symbols.iter().enumerate() {
            let mut protocol = alt_protocol.boxed_clone();
            let mut oracle = alt_oracle.clone();
            let out = apply_symbol(protocol.as_mut(), &mut oracle, symbol, audited)
                .map_err(|detail| err(id, symbol.to_string(), detail))?;
            let snap = protocol.snapshot();
            let expected = &rows[id][si];
            let to = ids.get(&snap).copied();
            let movements: Vec<String> = out.movements.iter().map(|m| m.code()).collect();
            if to != Some(expected.to)
                || out.event != expected.event
                || out.ops != expected.ops
                || movements != expected.movements
                || out.clean_write_fanout != expected.fanout
            {
                return Err(err(
                    id,
                    symbol.to_string(),
                    "confluence violation: two instances with equal canonical snapshots \
                     diverge — the snapshot is not a sufficient statistic"
                        .to_string(),
                ));
            }
        }
    }

    let states = snaps
        .into_iter()
        .zip(rows)
        .map(|(snap, transitions)| TableState {
            blocks: snap.blocks().to_vec(),
            transitions,
        })
        .collect();
    Ok(ProtocolTable {
        scheme,
        style,
        symmetry,
        caches,
        blocks,
        symbols,
        states,
    })
}

impl ProtocolTable {
    /// Total number of transitions (states × symbols for a well-formed
    /// table).
    pub fn transition_count(&self) -> usize {
        self.states.iter().map(|s| s.transitions.len()).sum()
    }

    /// The state of `block` in state `id`, if tracked there.
    pub fn block_state(&self, id: usize, block: BlockAddr) -> Option<&BlockState> {
        self.states[id].blocks.iter().find(|b| b.block == block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirsim_protocol::Scheme;

    #[test]
    fn symbol_alphabet_is_refs_then_evictions() {
        let cfg = CheckConfig {
            caches: 2,
            blocks: 1,
            depth: 0,
        };
        let symbols = symbols_for(&cfg);
        // 2 caches × 2 ops × 1 block refs, then 2 caches × 1 block evictions.
        assert_eq!(symbols.len(), 6);
        assert!(!symbols[0].is_evict());
        assert!(symbols[5].is_evict());
        assert_eq!(symbols[4].to_string(), "evict blk0x0 $#0");
    }

    #[test]
    fn symbol_permutation_renames_the_actor_only() {
        let sym = Symbol::Ref(Step {
            cache: CacheId::new(0),
            block: BlockAddr::new(0),
            write: true,
        });
        let p = sym.permuted(&[2, 1, 0]);
        assert_eq!(p.cache(), CacheId::new(2));
        assert_eq!(p.block(), BlockAddr::new(0));
    }

    #[test]
    fn extracts_full_map_directory() {
        let table = extract(|| Scheme::dir_n_nb().build(2), 2, 1, true).unwrap();
        assert_eq!(table.scheme, "DirnNB");
        assert_eq!(table.caches, 2);
        // State 0 is the empty initial state.
        assert!(table.states[0].blocks.is_empty());
        // Every state has a full row.
        for s in &table.states {
            assert_eq!(s.transitions.len(), table.symbols.len());
        }
        // A write after a remote read invalidates: some transition carries
        // an inval movement.
        assert!(table
            .states
            .iter()
            .flat_map(|s| &s.transitions)
            .any(|t| t.movements.iter().any(|m| m.starts_with("inval("))));
    }

    #[test]
    fn unaudited_extraction_accepts_a_broken_machine() {
        let table = extract(
            || Box::new(dirsim_verify::mutants::DroppedInvalidate::new(3)),
            3,
            1,
            false,
        )
        .unwrap();
        assert!(table.states.len() > 1);
    }

    #[test]
    fn audited_extraction_rejects_a_broken_machine() {
        let err = extract(
            || Box::new(dirsim_verify::mutants::DroppedInvalidate::new(3)),
            3,
            1,
            true,
        )
        .unwrap_err();
        assert!(
            err.detail.contains("invariant") || err.detail.contains("oracle"),
            "{err}"
        );
    }
}
