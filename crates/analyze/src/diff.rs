//! State-level semantic diffs between a live extraction and a committed
//! golden table.
//!
//! States are matched by **content** (their canonical block list), never by
//! discovery id, so a protocol change that merely reorders BFS discovery
//! produces no noise — only genuine semantic drift (states appearing or
//! vanishing, transitions reclassified, movements changed) is reported,
//! each entry anchored to a human-readable rendering of the state it
//! occurred in.

use std::collections::HashMap;
use std::fmt;

use dirsim_protocol::BlockState;

use crate::serial::state_key;
use crate::table::{ProtocolTable, Transition};

/// One difference between golden and live tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffEntry {
    /// A header field differs (configuration mismatch, style drift, …).
    Header {
        /// Which field.
        field: &'static str,
        /// Golden value.
        golden: String,
        /// Live value.
        live: String,
    },
    /// A state in the golden table is no longer reachable live.
    MissingState {
        /// Rendering of the lost state.
        state: String,
    },
    /// A live state the golden table has never seen.
    ExtraState {
        /// Rendering of the new state.
        state: String,
    },
    /// The same state handles the same symbol differently.
    Transition {
        /// Rendering of the source state.
        state: String,
        /// The symbol label.
        symbol: String,
        /// Which cell field differs (`event`, `ops`, `moves`, `fanout`,
        /// `destination`).
        field: &'static str,
        /// Golden value.
        golden: String,
        /// Live value.
        live: String,
    },
}

impl fmt::Display for DiffEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffEntry::Header {
                field,
                golden,
                live,
            } => write!(f, "header {field}: golden={golden} live={live}"),
            DiffEntry::MissingState { state } => {
                write!(f, "state no longer reachable: {state}")
            }
            DiffEntry::ExtraState { state } => write!(f, "new unexpected state: {state}"),
            DiffEntry::Transition {
                state,
                symbol,
                field,
                golden,
                live,
            } => write!(
                f,
                "in {state} on '{symbol}': {field} golden={golden} live={live}"
            ),
        }
    }
}

/// Readable rendering of a state's block list, e.g.
/// `{blk0x0: holders=[$#0,$#1] dirty ptr=[$#0] bcast}`.
pub fn render_state(blocks: &[BlockState]) -> String {
    if blocks.is_empty() {
        return "{empty}".to_string();
    }
    let mut out = String::from("{");
    for (i, b) in blocks.iter().enumerate() {
        if i > 0 {
            out.push_str("; ");
        }
        let holders: Vec<String> = b.holders.iter().map(|c| c.to_string()).collect();
        out.push_str(&format!("{}: holders=[{}]", b.block, holders.join(",")));
        out.push_str(if b.dirty { " dirty" } else { " clean" });
        if !b.pointers.is_empty() {
            let ptrs: Vec<String> = b.pointers.iter().map(|c| c.to_string()).collect();
            out.push_str(&format!(" ptr=[{}]", ptrs.join(",")));
        }
        if b.broadcast_bit {
            out.push_str(" bcast");
        }
        if !b.aux.is_empty() {
            out.push_str(&format!(" aux={:?}", b.aux));
        }
    }
    out.push('}');
    out
}

/// A complete semantic diff of two tables for one scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDiff {
    /// The scheme the tables describe (the live table's name).
    pub scheme: String,
    /// Every difference found, in golden-table state order.
    pub entries: Vec<DiffEntry>,
}

impl TableDiff {
    /// Whether the tables agree completely.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for TableDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return write!(f, "{}: tables agree", self.scheme);
        }
        writeln!(
            f,
            "{}: {} difference(s) against the golden table",
            self.scheme,
            self.entries.len()
        )?;
        for e in &self.entries {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

fn fmt_transition_value(t: &Transition, dest: &str) -> (String, String, String, String, String) {
    (
        t.event.map_or("none".to_string(), |e| e.name().to_string()),
        format!(
            "[{}]",
            t.ops
                .iter()
                .map(|o| o.name().to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
        format!("[{}]", t.movements.join(",")),
        t.fanout.map_or("none".to_string(), |v| v.to_string()),
        dest.to_string(),
    )
}

/// Diffs `live` against `golden`, matching states by content.
///
/// `ignore_scheme_name` suppresses the scheme-name header entry — used
/// when diffing a mutant against its base scheme's golden, where the name
/// is expected to differ and only semantic drift matters.
pub fn diff_tables(
    golden: &ProtocolTable,
    live: &ProtocolTable,
    ignore_scheme_name: bool,
) -> TableDiff {
    let mut entries = Vec::new();
    if !ignore_scheme_name && golden.scheme != live.scheme {
        entries.push(DiffEntry::Header {
            field: "scheme",
            golden: golden.scheme.clone(),
            live: live.scheme.clone(),
        });
    }
    let headers: [(&'static str, String, String); 4] = [
        ("caches", golden.caches.to_string(), live.caches.to_string()),
        ("blocks", golden.blocks.to_string(), live.blocks.to_string()),
        (
            "style",
            format!("{:?}", golden.style),
            format!("{:?}", live.style),
        ),
        (
            "symmetry",
            format!("{:?}", golden.symmetry),
            format!("{:?}", live.symmetry),
        ),
    ];
    for (field, g, l) in headers {
        if g != l {
            entries.push(DiffEntry::Header {
                field,
                golden: g,
                live: l,
            });
        }
    }
    let golden_syms: Vec<String> = golden.symbols.iter().map(|s| s.to_string()).collect();
    let live_syms: Vec<String> = live.symbols.iter().map(|s| s.to_string()).collect();
    if golden_syms != live_syms {
        entries.push(DiffEntry::Header {
            field: "symbols",
            golden: golden_syms.join(" | "),
            live: live_syms.join(" | "),
        });
        return TableDiff {
            scheme: live.scheme.clone(),
            entries,
        };
    }

    let live_by_key: HashMap<String, usize> = live
        .states
        .iter()
        .enumerate()
        .map(|(id, s)| (state_key(&s.blocks), id))
        .collect();
    let golden_keys: HashMap<String, usize> = golden
        .states
        .iter()
        .enumerate()
        .map(|(id, s)| (state_key(&s.blocks), id))
        .collect();

    for state in &live.states {
        if !golden_keys.contains_key(&state_key(&state.blocks)) {
            entries.push(DiffEntry::ExtraState {
                state: render_state(&state.blocks),
            });
        }
    }
    for gstate in &golden.states {
        let Some(&live_id) = live_by_key.get(&state_key(&gstate.blocks)) else {
            entries.push(DiffEntry::MissingState {
                state: render_state(&gstate.blocks),
            });
            continue;
        };
        let lstate = &live.states[live_id];
        for (si, (gt, lt)) in gstate
            .transitions
            .iter()
            .zip(&lstate.transitions)
            .enumerate()
        {
            let gdest = golden
                .states
                .get(gt.to)
                .map_or("<undefined>".to_string(), |s| render_state(&s.blocks));
            let ldest = live
                .states
                .get(lt.to)
                .map_or("<undefined>".to_string(), |s| render_state(&s.blocks));
            let (ge, go, gm, gf, gd) = fmt_transition_value(gt, &gdest);
            let (le, lo, lm, lf, ld) = fmt_transition_value(lt, &ldest);
            let state = render_state(&gstate.blocks);
            let symbol = golden_syms[si].clone();
            let fields: [(&'static str, &String, &String); 5] = [
                ("event", &ge, &le),
                ("ops", &go, &lo),
                ("moves", &gm, &lm),
                ("fanout", &gf, &lf),
                ("destination", &gd, &ld),
            ];
            for (field, g, l) in fields {
                if g != l {
                    entries.push(DiffEntry::Transition {
                        state: state.clone(),
                        symbol: symbol.clone(),
                        field,
                        golden: g.clone(),
                        live: l.clone(),
                    });
                }
            }
        }
    }
    TableDiff {
        scheme: live.scheme.clone(),
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::extract;
    use dirsim_protocol::{EventKind, Scheme};

    #[test]
    fn identical_tables_diff_empty() {
        let a = extract(|| Scheme::dir1_nb().build(2), 2, 1, true).unwrap();
        let b = a.clone();
        assert!(diff_tables(&a, &b, false).is_empty());
    }

    #[test]
    fn event_drift_is_reported_per_state() {
        let golden = extract(|| Scheme::dir_n_nb().build(2), 2, 1, true).unwrap();
        let mut live = golden.clone();
        // Forge a misclassification in one cell.
        let cell = live.states[1]
            .transitions
            .iter_mut()
            .find(|t| t.event == Some(EventKind::RmBlkCln))
            .expect("full-map table has a clean read miss from state 1");
        cell.event = Some(EventKind::RdHit);
        let diff = diff_tables(&golden, &live, false);
        assert!(!diff.is_empty());
        assert!(
            diff.entries
                .iter()
                .any(|e| matches!(e, DiffEntry::Transition { field: "event", .. })),
            "{diff}"
        );
        let rendered = diff.to_string();
        assert!(rendered.contains("rm-blk-cln"), "{rendered}");
        assert!(rendered.contains("rd-hit"), "{rendered}");
    }

    #[test]
    fn lost_state_is_reported() {
        let golden = extract(|| Scheme::dir_n_nb().build(2), 2, 1, true).unwrap();
        let mut live = golden.clone();
        // Drop the last state and re-point its in-edges at state 0.
        let lost = live.states.len() - 1;
        live.states.pop();
        for s in &mut live.states {
            for t in &mut s.transitions {
                if t.to == lost {
                    t.to = 0;
                }
            }
        }
        let diff = diff_tables(&golden, &live, false);
        assert!(diff
            .entries
            .iter()
            .any(|e| matches!(e, DiffEntry::MissingState { .. })));
    }

    #[test]
    fn render_state_is_compact() {
        use dirsim_mem::{BlockAddr, CacheId};
        use dirsim_protocol::BlockState;
        let s = BlockState {
            block: BlockAddr::new(0),
            holders: vec![CacheId::new(1)],
            dirty: true,
            pointers: vec![CacheId::new(1)],
            broadcast_bit: false,
            aux: vec![],
        };
        assert_eq!(
            render_state(&[s]),
            "{blk0x0: holders=[$#1] dirty ptr=[$#1]}"
        );
        assert_eq!(render_state(&[]), "{empty}");
    }
}
