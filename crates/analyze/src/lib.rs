//! # dirsim-analyze
//!
//! Static analysis of the coherence protocols: lift each hand-written
//! `on_data_ref` state machine into an explicit declarative **transition
//! table** and check whole classes of bugs *before any trace runs*.
//!
//! The paper's `Dir_i X` schemes (and the snoopy baselines) are implemented
//! as imperative [`dirsim_protocol::CoherenceProtocol`] machines; the only
//! prior correctness net was dynamic — `dirsim-verify`'s bounded BFS and
//! lockstep replay over executions. This crate closes the remaining gap:
//!
//! 1. [`table::extract`] drives a protocol through **every** symbol of a
//!    small configuration (the `verify::CheckConfig` reference alphabet
//!    plus capacity evictions) from every reachable state, producing a
//!    complete, deterministic [`table::ProtocolTable`] — one row per
//!    reachable state, one column per symbol.
//! 2. [`checks::run_lints`] runs the static check catalogue over the table:
//!    exhaustiveness, reachability, drainability, structural invariants,
//!    event-classification agreement, pointer-capacity bounds, broadcast
//!    discipline, sharer-set conservation, and cache-permutation symmetry.
//! 3. [`serial`] serializes tables to JSON-lines (via `dirsim-obs`'s JSON
//!    layer) for the committed goldens in `crates/analyze/golden/`, and
//!    [`diff::diff_tables`] turns any semantic drift between a live
//!    extraction and its golden into a readable state-level diff.
//!
//! The `analyze` binary wires these together as a CI gate; see the README's
//! "Static analysis" section for a walkthrough.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checks;
pub mod diff;
pub mod serial;
pub mod table;

pub use checks::{run_lints, LintFinding};
pub use diff::{diff_tables, TableDiff};
pub use serial::{parse_table, table_to_jsonl};
pub use table::{extract, ExtractError, ProtocolTable, Symbol, TableState, Transition};
