//! JSON-lines serialization of [`ProtocolTable`]s — the golden-file
//! format under `crates/analyze/golden/`.
//!
//! The format follows the `dirsim-obs` export conventions: one JSON object
//! per line, each carrying a `"record"` discriminator, with a leading
//! header record pinning the schema version. Three record kinds:
//!
//! ```text
//! {"record":"table","schema":1,"scheme":"Dir1NB","style":"copy-back-invalidate",...}
//! {"record":"state","id":0,"blocks":[{"block":0,"holders":[],...}]}
//! {"record":"transition","from":0,"sym":1,"to":1,"event":"wm-first-ref",...}
//! ```
//!
//! Parsing reuses [`dirsim_obs::parse_lines`] (the shared JSONL front half)
//! and reports [`SchemaError`]s with 1-based line numbers, exactly like the
//! metrics schema checker.

use dirsim_mem::{BlockAddr, CacheId};
use dirsim_obs::{parse_lines, Json, SchemaError};
use dirsim_protocol::{BlockState, BusOp, CacheSymmetry, EventKind, ProtocolStyle};
use dirsim_verify::Step;

use crate::table::{ProtocolTable, Symbol, TableState, Transition};

/// Version stamp of the golden-table format.
pub const TABLE_SCHEMA: u32 = 1;

fn int(v: u64) -> Json {
    Json::Int(v as i128)
}

fn cache_arr(caches: &[CacheId]) -> Json {
    Json::Arr(caches.iter().map(|c| int(c.index() as u64)).collect())
}

fn style_name(style: ProtocolStyle) -> &'static str {
    match style {
        ProtocolStyle::CopyBackInvalidate => "copy-back-invalidate",
        ProtocolStyle::WriteThrough => "write-through",
        ProtocolStyle::Update => "update",
    }
}

fn parse_style(name: &str) -> Option<ProtocolStyle> {
    match name {
        "copy-back-invalidate" => Some(ProtocolStyle::CopyBackInvalidate),
        "write-through" => Some(ProtocolStyle::WriteThrough),
        "update" => Some(ProtocolStyle::Update),
        _ => None,
    }
}

fn symmetry_name(symmetry: CacheSymmetry) -> &'static str {
    match symmetry {
        CacheSymmetry::Symmetric => "symmetric",
        CacheSymmetry::Asymmetric => "asymmetric",
    }
}

fn parse_symmetry(name: &str) -> Option<CacheSymmetry> {
    match name {
        "symmetric" => Some(CacheSymmetry::Symmetric),
        "asymmetric" => Some(CacheSymmetry::Asymmetric),
        _ => None,
    }
}

fn block_to_json(b: &BlockState) -> Json {
    Json::Obj(vec![
        ("block".into(), int(b.block.raw())),
        ("holders".into(), cache_arr(&b.holders)),
        ("dirty".into(), Json::Bool(b.dirty)),
        ("pointers".into(), cache_arr(&b.pointers)),
        ("bcast".into(), Json::Bool(b.broadcast_bit)),
        (
            "aux".into(),
            Json::Arr(b.aux.iter().map(|&a| int(a)).collect()),
        ),
    ])
}

/// Canonical content key of one state (its block list as compact JSON) —
/// what the golden diff and the product-factorization check match states
/// on, so ids can differ between tables without spurious mismatches.
pub fn state_key(blocks: &[BlockState]) -> String {
    Json::Arr(blocks.iter().map(block_to_json).collect()).to_string_compact()
}

/// Serializes a table to the JSON-lines golden format (trailing newline
/// included).
pub fn table_to_jsonl(table: &ProtocolTable) -> String {
    let mut out = String::new();
    let header = Json::Obj(vec![
        ("record".into(), Json::Str("table".into())),
        ("schema".into(), int(u64::from(TABLE_SCHEMA))),
        ("scheme".into(), Json::Str(table.scheme.clone())),
        ("style".into(), Json::Str(style_name(table.style).into())),
        (
            "symmetry".into(),
            Json::Str(symmetry_name(table.symmetry).into()),
        ),
        ("caches".into(), int(u64::from(table.caches))),
        ("blocks".into(), int(table.blocks)),
        ("states".into(), int(table.states.len() as u64)),
        (
            "symbols".into(),
            Json::Arr(
                table
                    .symbols
                    .iter()
                    .map(|s| Json::Str(s.to_string()))
                    .collect(),
            ),
        ),
    ]);
    out.push_str(&header.to_string_compact());
    out.push('\n');
    for (id, state) in table.states.iter().enumerate() {
        let record = Json::Obj(vec![
            ("record".into(), Json::Str("state".into())),
            ("id".into(), int(id as u64)),
            (
                "blocks".into(),
                Json::Arr(state.blocks.iter().map(block_to_json).collect()),
            ),
        ]);
        out.push_str(&record.to_string_compact());
        out.push('\n');
    }
    for (id, state) in table.states.iter().enumerate() {
        for (si, t) in state.transitions.iter().enumerate() {
            let record = Json::Obj(vec![
                ("record".into(), Json::Str("transition".into())),
                ("from".into(), int(id as u64)),
                ("sym".into(), int(si as u64)),
                ("to".into(), int(t.to as u64)),
                (
                    "event".into(),
                    match t.event {
                        Some(e) => Json::Str(e.name().into()),
                        None => Json::Null,
                    },
                ),
                (
                    "ops".into(),
                    Json::Arr(t.ops.iter().map(|o| Json::Str(o.name().into())).collect()),
                ),
                (
                    "moves".into(),
                    Json::Arr(t.movements.iter().map(|m| Json::Str(m.clone())).collect()),
                ),
                (
                    "fanout".into(),
                    match t.fanout {
                        Some(f) => int(u64::from(f)),
                        None => Json::Null,
                    },
                ),
            ]);
            out.push_str(&record.to_string_compact());
            out.push('\n');
        }
    }
    out
}

fn fail<T>(line: usize, message: impl Into<String>) -> Result<T, SchemaError> {
    Err(SchemaError {
        line,
        message: message.into(),
    })
}

fn req_u64(line: usize, value: &Json, key: &str) -> Result<u64, SchemaError> {
    match value.get(key).and_then(Json::as_u64) {
        Some(v) => Ok(v),
        None => fail(line, format!("missing or non-integer {key:?}")),
    }
}

fn req_str<'a>(line: usize, value: &'a Json, key: &str) -> Result<&'a str, SchemaError> {
    match value.get(key).and_then(Json::as_str) {
        Some(v) => Ok(v),
        None => fail(line, format!("missing or non-string {key:?}")),
    }
}

fn req_bool(line: usize, value: &Json, key: &str) -> Result<bool, SchemaError> {
    match value.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => fail(line, format!("missing or non-bool {key:?}")),
    }
}

fn req_arr<'a>(line: usize, value: &'a Json, key: &str) -> Result<&'a [Json], SchemaError> {
    match value.get(key).and_then(Json::as_arr) {
        Some(v) => Ok(v),
        None => fail(line, format!("missing or non-array {key:?}")),
    }
}

fn parse_caches(line: usize, items: &[Json], key: &str) -> Result<Vec<CacheId>, SchemaError> {
    items
        .iter()
        .map(|j| match j.as_u64() {
            Some(i) => Ok(CacheId::new(i as u32)),
            None => fail(line, format!("non-integer cache index in {key:?}")),
        })
        .collect()
}

fn parse_block(line: usize, value: &Json) -> Result<BlockState, SchemaError> {
    let aux = req_arr(line, value, "aux")?
        .iter()
        .map(|j| match j.as_u64() {
            Some(a) => Ok(a),
            None => fail(line, "non-integer aux word"),
        })
        .collect::<Result<Vec<u64>, _>>()?;
    Ok(BlockState {
        block: BlockAddr::new(req_u64(line, value, "block")?),
        holders: parse_caches(line, req_arr(line, value, "holders")?, "holders")?,
        dirty: req_bool(line, value, "dirty")?,
        pointers: parse_caches(line, req_arr(line, value, "pointers")?, "pointers")?,
        broadcast_bit: req_bool(line, value, "bcast")?,
        aux,
    })
}

/// Parses a symbol label as rendered by [`Symbol`]'s `Display`:
/// `read blk0x1 $#2`, `write blk0x0 $#0`, or `evict blk0x0 $#1`.
fn parse_symbol(line: usize, label: &str) -> Result<Symbol, SchemaError> {
    let bad = || SchemaError {
        line,
        message: format!("malformed symbol label {label:?}"),
    };
    let mut parts = label.split_whitespace();
    let verb = parts.next().ok_or_else(bad)?;
    let block = parts
        .next()
        .and_then(|b| b.strip_prefix("blk0x"))
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        .map(BlockAddr::new)
        .ok_or_else(bad)?;
    let cache = parts
        .next()
        .and_then(|c| c.strip_prefix("$#"))
        .and_then(|i| i.parse::<u32>().ok())
        .map(CacheId::new)
        .ok_or_else(bad)?;
    if parts.next().is_some() {
        return Err(bad());
    }
    match verb {
        "read" | "write" => Ok(Symbol::Ref(Step {
            cache,
            block,
            write: verb == "write",
        })),
        "evict" => Ok(Symbol::Evict { cache, block }),
        _ => Err(bad()),
    }
}

fn parse_event(line: usize, value: &Json) -> Result<Option<EventKind>, SchemaError> {
    match value.get("event") {
        Some(Json::Null) => Ok(None),
        Some(Json::Str(name)) => match EventKind::ALL.iter().find(|e| e.name() == name.as_str()) {
            Some(&e) => Ok(Some(e)),
            None => fail(line, format!("unknown event {name:?}")),
        },
        _ => fail(line, "missing \"event\" (string or null)"),
    }
}

fn parse_ops(line: usize, items: &[Json]) -> Result<Vec<BusOp>, SchemaError> {
    items
        .iter()
        .map(|j| {
            let Some(name) = j.as_str() else {
                return fail(line, "non-string bus op");
            };
            match BusOp::ALL.iter().find(|o| o.name() == name) {
                Some(&op) => Ok(op),
                None => fail(line, format!("unknown bus op {name:?}")),
            }
        })
        .collect()
}

/// Parses a JSON-lines golden file back into a [`ProtocolTable`].
///
/// Validates the structural schema: a leading `table` header at the
/// supported [`TABLE_SCHEMA`], exactly the declared number of `state`
/// records with dense ids, and exactly one `transition` record per
/// `(state, symbol)` pair.
///
/// # Errors
///
/// Returns a [`SchemaError`] with the 1-based line number of the first
/// malformed or missing record.
pub fn parse_table(text: &str) -> Result<ProtocolTable, SchemaError> {
    let mut lines = parse_lines(text)?.into_iter();
    let Some((line, kind, header)) = lines.next() else {
        return fail(0, "empty table file (no header record)");
    };
    if kind != "table" {
        return fail(
            line,
            format!("first record must be a table header, got {kind:?}"),
        );
    }
    match req_u64(line, &header, "schema")? {
        v if v == u64::from(TABLE_SCHEMA) => {}
        v => {
            return fail(
                line,
                format!("unsupported table schema {v} (expected {TABLE_SCHEMA})"),
            )
        }
    }
    let scheme = req_str(line, &header, "scheme")?.to_string();
    let style = parse_style(req_str(line, &header, "style")?).ok_or_else(|| SchemaError {
        line,
        message: "unknown \"style\"".into(),
    })?;
    let symmetry =
        parse_symmetry(req_str(line, &header, "symmetry")?).ok_or_else(|| SchemaError {
            line,
            message: "unknown \"symmetry\"".into(),
        })?;
    let caches = req_u64(line, &header, "caches")? as u32;
    let blocks = req_u64(line, &header, "blocks")?;
    let state_count = req_u64(line, &header, "states")? as usize;
    let symbols = req_arr(line, &header, "symbols")?
        .iter()
        .map(|j| match j.as_str() {
            Some(label) => parse_symbol(line, label),
            None => fail(line, "non-string symbol label"),
        })
        .collect::<Result<Vec<Symbol>, _>>()?;

    let mut blocks_by_id: Vec<Option<Vec<BlockState>>> = vec![None; state_count];
    let mut rows: Vec<Vec<Option<Transition>>> = vec![vec![None; symbols.len()]; state_count];
    for (line, kind, value) in lines {
        match kind.as_str() {
            "state" => {
                let id = req_u64(line, &value, "id")? as usize;
                if id >= state_count {
                    return fail(line, format!("state id {id} out of range"));
                }
                if blocks_by_id[id].is_some() {
                    return fail(line, format!("duplicate state id {id}"));
                }
                let parsed = req_arr(line, &value, "blocks")?
                    .iter()
                    .map(|b| parse_block(line, b))
                    .collect::<Result<Vec<BlockState>, _>>()?;
                blocks_by_id[id] = Some(parsed);
            }
            "transition" => {
                let from = req_u64(line, &value, "from")? as usize;
                let sym = req_u64(line, &value, "sym")? as usize;
                let to = req_u64(line, &value, "to")? as usize;
                if from >= state_count || to >= state_count {
                    return fail(line, "transition endpoint out of range");
                }
                if sym >= symbols.len() {
                    return fail(line, format!("symbol index {sym} out of range"));
                }
                if rows[from][sym].is_some() {
                    return fail(line, format!("duplicate transition ({from}, sym {sym})"));
                }
                let fanout = match value.get("fanout") {
                    Some(Json::Null) => None,
                    Some(j) => match j.as_u64() {
                        Some(f) => Some(f as u32),
                        None => return fail(line, "non-integer \"fanout\""),
                    },
                    None => return fail(line, "missing \"fanout\""),
                };
                let movements = req_arr(line, &value, "moves")?
                    .iter()
                    .map(|j| match j.as_str() {
                        Some(m) => Ok(m.to_string()),
                        None => fail(line, "non-string movement"),
                    })
                    .collect::<Result<Vec<String>, _>>()?;
                rows[from][sym] = Some(Transition {
                    to,
                    event: parse_event(line, &value)?,
                    ops: parse_ops(line, req_arr(line, &value, "ops")?)?,
                    movements,
                    fanout,
                });
            }
            other => return fail(line, format!("unknown record kind {other:?}")),
        }
    }

    let mut states = Vec::with_capacity(state_count);
    for (id, (blocks, row)) in blocks_by_id.into_iter().zip(rows).enumerate() {
        let Some(blocks) = blocks else {
            return fail(0, format!("missing state record for id {id}"));
        };
        let transitions = row
            .into_iter()
            .enumerate()
            .map(|(si, t)| match t {
                Some(t) => Ok(t),
                None => fail(0, format!("missing transition (state {id}, sym {si})")),
            })
            .collect::<Result<Vec<Transition>, _>>()?;
        states.push(TableState {
            blocks,
            transitions,
        });
    }
    Ok(ProtocolTable {
        scheme,
        style,
        symmetry,
        caches,
        blocks,
        symbols,
        states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::extract;
    use dirsim_protocol::Scheme;

    #[test]
    fn round_trips_an_extracted_table() {
        let table = extract(|| Scheme::dir1_b().build(2), 2, 1, true).unwrap();
        let text = table_to_jsonl(&table);
        let parsed = parse_table(&text).unwrap();
        assert_eq!(parsed, table);
    }

    #[test]
    fn state_key_is_content_sensitive() {
        let a = BlockState::basic(BlockAddr::new(0), vec![CacheId::new(0)], false);
        let mut b = a.clone();
        assert_eq!(
            state_key(std::slice::from_ref(&a)),
            state_key(std::slice::from_ref(&b))
        );
        b.dirty = true;
        assert_ne!(state_key(&[a]), state_key(&[b]));
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        let table = extract(|| Scheme::dir0_b().build(2), 2, 1, true).unwrap();
        let bad = table_to_jsonl(&table).replacen("\"schema\":1", "\"schema\":9", 1);
        let err = parse_table(&bad).unwrap_err();
        assert!(err.message.contains("unsupported table schema"), "{err}");
    }

    #[test]
    fn parse_rejects_missing_transition() {
        let table = extract(|| Scheme::dir0_b().build(2), 2, 1, true).unwrap();
        let text = table_to_jsonl(&table);
        let truncated: String = text
            .lines()
            .take(text.lines().count() - 1)
            .map(|l| format!("{l}\n"))
            .collect();
        let err = parse_table(&truncated).unwrap_err();
        assert!(err.message.contains("missing transition"), "{err}");
    }

    #[test]
    fn symbol_labels_parse_back() {
        for label in ["read blk0x0 $#0", "write blk0x1 $#2", "evict blk0xa $#1"] {
            let sym = parse_symbol(1, label).unwrap();
            assert_eq!(sym.to_string(), label);
        }
        assert!(parse_symbol(1, "poke blk0x0 $#0").is_err());
    }
}
