//! Golden-table snapshot tests: every gauntlet scheme's live extraction
//! must lint clean and match its committed golden byte-for-byte at the
//! semantic level, and the deliberately broken `verify::mutants` must be
//! caught — proving the static gate actually bites.

use std::path::PathBuf;

use dirsim_analyze::checks::check_product;
use dirsim_analyze::diff::DiffEntry;
use dirsim_analyze::{diff_tables, extract, parse_table, run_lints, table_to_jsonl};
use dirsim_protocol::Scheme;
use dirsim_verify::mutants::{DroppedInvalidate, MisclassifiedHit};

const CACHES: u32 = 3;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join(format!("{name}.jsonl"))
}

fn load_golden(name: &str) -> dirsim_analyze::ProtocolTable {
    let path = golden_path(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}; bless goldens first", path.display()));
    parse_table(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn every_gauntlet_scheme_lints_clean_and_matches_its_golden() {
    for scheme in dirsim_verify::gauntlet() {
        let name = scheme.name();
        let table =
            extract(|| scheme.build(CACHES), CACHES, 1, true).unwrap_or_else(|e| panic!("{e}"));
        let probe = scheme.build(CACHES);
        let findings = run_lints(&table, probe.as_ref(), scheme.dir_spec());
        assert!(findings.is_empty(), "{name}: {findings:?}");
        let golden = load_golden(&name);
        let diff = diff_tables(&golden, &table, false);
        assert!(diff.is_empty(), "{diff}");
    }
}

#[test]
fn every_golden_round_trips_through_the_serializer() {
    for scheme in dirsim_verify::gauntlet() {
        let golden = load_golden(&scheme.name());
        let reparsed = parse_table(&table_to_jsonl(&golden)).unwrap();
        assert_eq!(reparsed, golden, "{}", scheme.name());
    }
}

#[test]
fn every_scheme_factors_into_a_per_block_product() {
    for scheme in dirsim_verify::gauntlet() {
        let single = extract(|| scheme.build(CACHES), CACHES, 1, true).unwrap();
        let double = extract(|| scheme.build(CACHES), CACHES, 2, true).unwrap();
        let findings = check_product(&single, &double);
        assert!(findings.is_empty(), "{}: {findings:?}", scheme.name());
    }
}

#[test]
fn dropped_invalidate_mutant_is_caught_statically_and_by_the_golden_diff() {
    let table = extract(
        || Box::new(DroppedInvalidate::new(CACHES)),
        CACHES,
        1,
        false,
    )
    .unwrap();
    let probe = Scheme::dir_n_nb().build(CACHES);
    let findings = run_lints(&table, probe.as_ref(), None);
    // The lost invalidation shows up as a dirty-not-exclusive state and as
    // an unaccounted sharer departure — no golden needed.
    assert!(
        findings.iter().any(|f| f.check == "structural"),
        "{findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.check == "conservation"),
        "{findings:?}"
    );
    // And as a state-level diff against the base scheme's golden.
    let diff = diff_tables(&load_golden("DirnNB"), &table, true);
    assert!(
        diff.entries
            .iter()
            .any(|e| matches!(e, DiffEntry::ExtraState { .. })),
        "the stale-sharer states are new relative to the golden: {diff}"
    );
}

#[test]
fn misclassified_hit_mutant_is_caught_statically_and_by_the_golden_diff() {
    let table = extract(|| Box::new(MisclassifiedHit::new(CACHES)), CACHES, 1, false).unwrap();
    let probe = Scheme::dir_n_nb().build(CACHES);
    let findings = run_lints(&table, probe.as_ref(), None);
    assert!(findings.iter().any(|f| f.check == "event"), "{findings:?}");
    // State evolution is identical to DirnNB — only the event column
    // drifts, which is exactly what the golden diff pinpoints.
    let diff = diff_tables(&load_golden("DirnNB"), &table, true);
    assert!(
        diff.entries.iter().any(|e| matches!(
            e,
            DiffEntry::Transition { field: "event", golden, live, .. }
                if golden == "rm-blk-cln" && live == "rd-hit"
        )),
        "{diff}"
    );
    assert!(
        !diff.entries.iter().any(|e| matches!(
            e,
            DiffEntry::ExtraState { .. } | DiffEntry::MissingState { .. }
        )),
        "state space must be unchanged: {diff}"
    );
}

#[test]
fn goldens_pin_the_expected_state_counts() {
    // The reachable-state count is itself a semantic fingerprint: a
    // protocol change that grows or shrinks the space must be deliberate.
    let expected = [
        ("DirnNB", 20),
        ("Dir0B", 21),
        ("Dir1B", 39),
        ("Dir2B", 57),
        ("Dir1NB", 8),
        ("Dir2NB", 14),
        ("CoarseVector", 36),
        ("Tang", 20),
        ("YenFu", 20),
        ("DirUpd", 50),
        ("WTI", 20),
        ("Illinois", 23),
        ("Dragon", 50),
        ("Berkeley", 21),
    ];
    for (name, states) in expected {
        assert_eq!(load_golden(name).states.len(), states, "{name}");
    }
}
