//! # dirsim-bench
//!
//! Reproduction harness for the paper's evaluation section: the `repro`
//! binary regenerates every table and figure, and the Criterion benches
//! (`tables`, `figures`, `throughput`) time the simulations that produce
//! them.
//!
//! Run the full report:
//!
//! ```text
//! cargo run -p dirsim-bench --bin repro --release
//! ```
//!
//! or one artifact:
//!
//! ```text
//! cargo run -p dirsim-bench --bin repro --release -- --only table4
//! ```

#![warn(missing_docs)]

use dirsim::paper;
use dirsim::prelude::*;
use dirsim::report;
use dirsim_protocol::DirSpec;

/// Reference count per trace used by the full report.
pub const REPORT_REFS: usize = 1_000_000;

/// Reference count per trace used by quick (CI/bench) runs.
pub const QUICK_REFS: usize = 100_000;

/// Every artifact the repro binary can produce, in paper order.
/// `sec4.finite` and `sec5.sys` are the paper's sketched extensions
/// (finite caches; effective-processor bound), fully implemented here.
pub const ARTIFACTS: [&str; 22] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "sec4.finite",
    "sec5.1",
    "sec5.2",
    "sec5.sys",
    "sec6a",
    "sec6b",
    "sec6c",
    "sec7.network",
    "compare",
    "robustness",
    "sec5.timing",
    "sensitivity",
];

/// Renders one artifact given pre-computed headline/extended results.
///
/// `headline` must come from [`paper::headline_experiment`] and `extended`
/// from [`paper::extended_experiment`] at the same scale.
///
/// # Panics
///
/// Panics if `name` is not in [`ARTIFACTS`] or required schemes are absent.
pub fn render_artifact(
    name: &str,
    headline: &ExperimentResults,
    extended: &ExperimentResults,
    refs: usize,
) -> String {
    let pipelined = CostModel::pipelined();
    match name {
        "table1" => report::render_table1(),
        "table2" => report::render_table2(),
        "table3" => report::render_table3(headline),
        "table4" => report::render_table4(headline),
        "table5" => report::render_table5(headline, pipelined),
        "fig1" => report::render_figure1(headline, Scheme::dir0_b()),
        "fig2" => report::render_figure2(headline),
        "fig3" => report::render_figure3(headline),
        "fig4" => report::render_figure4(headline, pipelined),
        "fig5" => report::render_figure5(headline, pipelined),
        "sec4.finite" => {
            let rows = paper::finite_cache_study(
                Scheme::Directory(DirSpec::dir0_b()),
                refs.min(200_000),
                &[256, 1024, 4096, 16384],
            )
            .expect("finite-cache simulation");
            report::render_finite_cache("Dir0B", &rows)
        }
        "sec5.sys" => {
            let system = dirsim::analysis::SystemModel::PAPER;
            let bounds = dirsim::analysis::effective_processor_bounds(headline, pipelined, system);
            let mut out = report::render_effective_processors(&bounds, system);
            // First-order contention (M/D/1): effective throughput per
            // processor as the machine grows.
            let mut table = report::TextTable::new(
                "Section 5 extension: per-processor throughput under bus contention",
            );
            table.headers(["scheme", "n=2", "n=4", "n=8", "n=12"]);
            for s in &headline.per_scheme {
                let bd = s.combined.breakdown(pipelined);
                let mut row = vec![s.scheme.name()];
                for n in [2u32, 4, 8, 12] {
                    let t = system.contended_throughput(
                        bd.cycles_per_ref(),
                        bd.cycles_per_transaction(),
                        bd.transactions_per_ref(),
                        n,
                    );
                    row.push(if t == 0.0 {
                        "sat".to_string()
                    } else {
                        format!("{:.0}%", t * 100.0)
                    });
                }
                table.row(row);
            }
            out.push('\n');
            out.push_str(&table.render());
            out
        }
        "sec5.1" => {
            let qs = [0.0, 0.5, 1.0, 2.0, 4.0];
            let lines: Vec<(String, Vec<(f64, f64)>)> = headline
                .per_scheme
                .iter()
                .map(|s| {
                    (
                        s.scheme.name(),
                        paper::q_sensitivity(&s.combined, pipelined, &qs),
                    )
                })
                .collect();
            report::render_q_sweep(&lines)
        }
        "sec5.2" => {
            let impacts = paper::lock_impact(
                refs,
                vec![
                    Scheme::Directory(DirSpec::dir1_nb()),
                    Scheme::Directory(DirSpec::dir0_b()),
                ],
            )
            .expect("lock-impact simulation");
            report::render_lock_impact(&impacts)
        }
        "sec6a" => {
            // DirnNB sequential invalidation vs Dir0B broadcast, plus the
            // Berkeley and coarse-vector placements.
            let mut table = report::TextTable::new(
                "Section 6a: broadcast vs sequential invalidation vs limited broadcast",
            );
            table.headers(["scheme", "cycles/ref (pipelined)"]);
            for scheme in [
                Scheme::dir0_b(),
                Scheme::dir_n_nb(),
                Scheme::dir1_b(),
                Scheme::CoarseVector,
                Scheme::Berkeley,
                Scheme::Illinois,
                Scheme::Dragon,
                Scheme::DirUpdate,
            ] {
                if let Some(s) = extended.get(scheme) {
                    table.row([
                        scheme.to_string(),
                        format!("{:.4}", s.combined.cycles_per_ref(pipelined)),
                    ]);
                }
            }
            table.render()
        }
        "sec6b" => {
            let dir1b = &extended[Scheme::dir1_b()];
            let points = paper::broadcast_sensitivity(&dir1b.combined, &[1, 2, 4, 8, 16, 32]);
            report::render_broadcast_sweep("Dir1B", &points)
        }
        "sec6c" => {
            let mut out = String::new();
            for n in [4u16, 16, 64] {
                let rows = paper::pointer_sweep(n, refs.min(200_000), &[1, 2, 4])
                    .expect("pointer sweep simulation");
                out.push_str(&report::render_pointer_sweep(n, &rows));
                out.push('\n');
            }
            out
        }
        "sec5.timing" => {
            let rows =
                paper::utilization_study(refs.min(60_000), &[2, 4, 8, 16], Scheme::paper_lineup());
            report::render_utilization(&rows)
        }
        "sensitivity" => {
            let rows = paper::sharing_sweep(
                refs.min(100_000),
                &[0.0, 0.01, 0.02, 0.05, 0.10, 0.20],
                Scheme::paper_lineup(),
            )
            .expect("sharing-sweep simulation");
            report::render_sharing_sweep(&rows)
        }
        "robustness" => {
            let rows =
                paper::seed_sensitivity(refs.min(100_000), 3).expect("seed-sensitivity simulation");
            report::render_seed_sensitivity(&rows)
        }
        "compare" => {
            let mut out = report::render_table4_comparison(headline);
            out.push('\n');
            out.push_str(&report::render_table5_comparison(extended));
            out
        }
        "sec7.network" => {
            let mut out = String::new();
            for nodes in [16u16, 64] {
                let rows = paper::network_scaling(
                    nodes,
                    refs.min(100_000),
                    vec![
                        Scheme::Directory(DirSpec::dir1_b()),
                        Scheme::Directory(DirSpec::dir_n_nb()),
                        Scheme::Wti,
                        Scheme::Dragon,
                    ],
                )
                .expect("network-scaling simulation");
                out.push_str(&report::render_network_scaling(&rows));
                out.push('\n');
            }
            out
        }
        other => panic!("unknown artifact {other:?}; expected one of {ARTIFACTS:?}"),
    }
}

/// CSV data series for external plotting: one `(file name, contents)` pair
/// per figure-like artifact.
pub fn csv_artifacts(
    headline: &ExperimentResults,
    extended: &ExperimentResults,
) -> Vec<(String, String)> {
    use std::fmt::Write as _;
    let pipelined = CostModel::pipelined();
    let non_pipelined = CostModel::non_pipelined();
    let mut out = Vec::new();

    // Figure 1: fan-out histogram.
    let mut csv = String::from("fanout,count,fraction\n");
    if let Some(s) = headline.get(Scheme::dir0_b()) {
        for (k, count) in s.combined.fanout.iter() {
            let _ = writeln!(csv, "{k},{count},{}", s.combined.fanout.fraction(k));
        }
    }
    out.push(("fig1_fanout.csv".to_string(), csv));

    // Figures 2/3: cycles per reference per scheme and trace.
    let mut csv = String::from("scheme,trace,pipelined,non_pipelined\n");
    for s in &headline.per_scheme {
        let _ = writeln!(
            csv,
            "{},ALL,{},{}",
            s.scheme.name(),
            s.combined.cycles_per_ref(pipelined),
            s.combined.cycles_per_ref(non_pipelined)
        );
        for (trace, r) in &s.per_trace {
            let _ = writeln!(
                csv,
                "{},{},{},{}",
                s.scheme.name(),
                trace,
                r.cycles_per_ref(pipelined),
                r.cycles_per_ref(non_pipelined)
            );
        }
    }
    out.push(("fig2_fig3_cycles.csv".to_string(), csv));

    // Figure 4: category fractions.
    let mut csv = String::from("scheme,category,fraction\n");
    for s in &headline.per_scheme {
        for (cat, frac) in s.combined.breakdown(pipelined).fractions() {
            let _ = writeln!(csv, "{},{},{}", s.scheme.name(), cat.name(), frac);
        }
    }
    out.push(("fig4_breakdown.csv".to_string(), csv));

    // Figure 5: cycles per transaction.
    let mut csv = String::from("scheme,cycles_per_transaction\n");
    for s in &headline.per_scheme {
        let _ = writeln!(
            csv,
            "{},{}",
            s.scheme.name(),
            s.combined.breakdown(pipelined).cycles_per_transaction()
        );
    }
    out.push(("fig5_per_transaction.csv".to_string(), csv));

    // §5.1 q sweep.
    let mut csv = String::from("scheme,q,cycles_per_ref\n");
    for s in &headline.per_scheme {
        for (q, v) in paper::q_sensitivity(&s.combined, pipelined, &[0.0, 0.25, 0.5, 1.0, 2.0, 4.0])
        {
            let _ = writeln!(csv, "{},{q},{v}", s.scheme.name());
        }
    }
    out.push(("sec5_1_q_sweep.csv".to_string(), csv));

    // §6b broadcast sweep for Dir1B.
    let mut csv = String::from("b,cycles_per_ref\n");
    if let Some(dir1b) = extended.get(Scheme::dir1_b()) {
        for (b, v) in paper::broadcast_sensitivity(&dir1b.combined, &[1, 2, 4, 8, 16, 32]) {
            let _ = writeln!(csv, "{b},{v}");
        }
    }
    out.push(("sec6b_broadcast.csv".to_string(), csv));

    out
}

/// Prints an error and its full `source()` chain to stderr, one cause per
/// line — shared by the command-line binaries so trace, config and
/// simulation failures keep their context instead of being flattened to a
/// single string.
pub fn report_error(program: &str, err: &dyn std::error::Error) {
    eprintln!("{program}: {err}");
    let mut source = err.source();
    while let Some(cause) = source {
        eprintln!("  caused by: {cause}");
        source = cause.source();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_list_is_complete_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for a in ARTIFACTS {
            assert!(seen.insert(a));
        }
        assert_eq!(ARTIFACTS.len(), 22);
    }

    #[test]
    fn all_artifacts_render_at_small_scale() {
        let refs = 10_000;
        let headline = paper::headline_experiment(refs).run().unwrap();
        let extended = paper::extended_experiment(refs).run().unwrap();
        for a in ARTIFACTS {
            // sec6c resimulates; keep it tiny via the refs argument.
            let text = render_artifact(a, &headline, &extended, 5_000);
            assert!(!text.is_empty(), "{a} rendered empty");
        }
    }

    #[test]
    fn csv_artifacts_are_well_formed() {
        let refs = 10_000;
        let headline = paper::headline_experiment(refs).run().unwrap();
        let extended = paper::extended_experiment(refs).run().unwrap();
        let files = csv_artifacts(&headline, &extended);
        assert_eq!(files.len(), 6);
        for (name, content) in files {
            assert!(name.ends_with(".csv"));
            let mut lines = content.lines();
            let header = lines.next().unwrap_or_else(|| panic!("{name} empty"));
            let cols = header.split(',').count();
            assert!(cols >= 2, "{name}: header {header}");
            let mut rows = 0;
            for line in lines {
                assert_eq!(line.split(',').count(), cols, "{name}: ragged row {line}");
                rows += 1;
            }
            assert!(rows > 0, "{name} has no data rows");
        }
    }
}
