//! Command-line trace tooling: generate, convert, inspect, filter, and
//! cold-store multiprocessor address traces in every format the
//! frontend registry knows (`DTR1` binary, `DTR2` compressed, `DTR3`
//! corpus, text, CSV).
//!
//! ```text
//! trace_tool gen <scenario|spec.scn> <refs> <out>       generate a scenario trace
//! trace_tool convert <in> <out>                          any format -> any format
//! trace_tool stats <in>                                  Table 3-style statistics
//! trace_tool stat <in>                                   alias for stats
//! trace_tool strip-locks <in> <out>                      drop spin-lock test reads
//! trace_tool head <n> <in>                               print first n records as text
//! trace_tool pack <in> <out.dtrz>                        pack into a DTR3 corpus
//! trace_tool unpack <in.dtrz> <out.dtr>                  corpus -> DTR1 binary
//! trace_tool verify <in.dtrz>                            magic + count + checksum
//! ```
//!
//! Inputs are sniffed by magic bytes first, then extension (see
//! `dirsim_trace::frontend`), so a `DTR1` file works under any name.
//! Output format is chosen by extension: `.txt` text, `.csv` CSV,
//! `.dtr2` compressed, `.dtrz` corpus, anything else fixed-record
//! binary. `gen`, `stats`/`stat`, `pack`, `unpack`, and `verify` stream
//! — constant memory no matter how many references the file holds.
//! `convert`, `strip-locks` and `head` materialise the trace.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::process::ExitCode;

use dirsim_trace::codec::BinaryWriter;
use dirsim_trace::compress::write_compressed;
use dirsim_trace::corpus::{verify_corpus, write_corpus, CorpusReader};
use dirsim_trace::filter::without_lock_tests;
use dirsim_trace::frontend::write_csv;
use dirsim_trace::io::{write_binary, write_text, TraceIoError};
use dirsim_trace::{open_trace, IterSource, MemRef, Scenario, TraceSource, TraceStats};

/// Chunk size (in references) for the streaming subcommands.
const STREAM_CHUNK: usize = 65_536;

fn is_text(path: &str) -> bool {
    path.ends_with(".txt") || path.ends_with(".trace")
}

fn is_csv(path: &str) -> bool {
    path.ends_with(".csv")
}

fn is_compressed(path: &str) -> bool {
    path.ends_with(".dtr2")
}

fn is_corpus(path: &str) -> bool {
    path.ends_with(".dtrz")
}

fn read_refs(path: &str) -> Result<Vec<MemRef>, TraceIoError> {
    let mut src = open_trace(path)?;
    let mut refs = Vec::new();
    let mut chunk = Vec::new();
    while src.read_chunk(&mut chunk, STREAM_CHUNK)? > 0 {
        refs.extend_from_slice(&chunk);
    }
    Ok(refs)
}

/// Streams `refs` to `path` in the format its extension names. Every
/// sink writes as it goes, so `gen` at 10^8 references never holds the
/// trace in memory.
fn write_stream(path: &str, refs: impl Iterator<Item = MemRef>) -> Result<u64, TraceIoError> {
    let mut out = BufWriter::new(File::create(path)?);
    let n = if is_text(path) {
        write_text(&mut out, refs)?
    } else if is_csv(path) {
        write_csv(&mut out, refs)?
    } else if is_compressed(path) {
        write_compressed(&mut out, refs)?
    } else if is_corpus(path) {
        write_corpus(&mut out, IterSource::new(refs))?
    } else {
        write_binary(&mut out, refs)?
    };
    out.flush()?;
    Ok(n)
}

fn write_refs(path: &str, refs: &[MemRef]) -> Result<u64, TraceIoError> {
    write_stream(path, refs.iter().copied())
}

/// One streaming pass over any trace file: Table 3-style statistics in
/// constant memory.
fn stream_stats(path: &str) -> Result<TraceStats, TraceIoError> {
    let mut src = open_trace(path)?;
    let mut stats = TraceStats::new();
    let mut chunk = Vec::new();
    while src.read_chunk(&mut chunk, STREAM_CHUNK)? > 0 {
        for r in &chunk {
            stats.observe(r);
        }
    }
    Ok(stats)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: trace_tool \
                 <gen|convert|stats|stat|strip-locks|head|pack|unpack|verify> \
                 ... (see --help)";
    match args.first().map(String::as_str) {
        Some("gen") => {
            let [_, preset, refs, out] = &args[..] else {
                return Err("usage: trace_tool gen <scenario|spec.scn> <refs> <out>".into());
            };
            let trace = Scenario::resolve(preset)?;
            let n: usize = refs.parse().map_err(|_| "refs must be a number")?;
            let written = write_stream(out, trace.workload().take(n))?;
            eprintln!("wrote {written} references to {out}");
            Ok(())
        }
        Some("convert") => {
            let [_, input, output] = &args[..] else {
                return Err("usage: trace_tool convert <in> <out>".into());
            };
            let refs = read_refs(input)?;
            let written = write_refs(output, &refs)?;
            eprintln!("converted {written} references {input} -> {output}");
            Ok(())
        }
        Some("stats" | "stat") => {
            let [_, input] = &args[..] else {
                return Err("usage: trace_tool stats <in>".into());
            };
            let stats = stream_stats(input)?;
            println!("{stats}");
            println!(
                "lock-read fraction: {:.3}; read/write ratio: {:.2}",
                stats.lock_read_fraction(),
                stats.read_write_ratio()
            );
            Ok(())
        }
        Some("strip-locks") => {
            let [_, input, output] = &args[..] else {
                return Err("usage: trace_tool strip-locks <in> <out>".into());
            };
            let refs = read_refs(input)?;
            let before = refs.len();
            let filtered: Vec<MemRef> = without_lock_tests(refs).collect();
            write_refs(output, &filtered)?;
            eprintln!(
                "dropped {} lock-test reads ({} -> {})",
                before - filtered.len(),
                before,
                filtered.len()
            );
            Ok(())
        }
        Some("head") => {
            let [_, n, input] = &args[..] else {
                return Err("usage: trace_tool head <n> <in>".into());
            };
            let n: usize = n.parse().map_err(|_| "n must be a number")?;
            let refs = read_refs(input)?;
            let mut stdout = std::io::stdout().lock();
            write_text(&mut stdout, refs.into_iter().take(n))?;
            Ok(())
        }
        Some("pack") => {
            let [_, input, output] = &args[..] else {
                return Err("usage: trace_tool pack <in> <out.dtrz>".into());
            };
            let src = open_trace(input)?;
            let mut out = BufWriter::new(File::create(output)?);
            let written = write_corpus(&mut out, src)?;
            out.flush()?;
            eprintln!("packed {written} references {input} -> {output}");
            Ok(())
        }
        Some("unpack") => {
            let [_, input, output] = &args[..] else {
                return Err("usage: trace_tool unpack <in.dtrz> <out.dtr>".into());
            };
            let mut src = CorpusReader::open(input)?;
            let mut writer = BinaryWriter::new(BufWriter::new(File::create(output)?))?;
            let mut chunk = Vec::new();
            while src.read_chunk(&mut chunk, STREAM_CHUNK)? > 0 {
                for r in &chunk {
                    writer.push(r)?;
                }
            }
            let (mut out, written) = writer.finish()?;
            out.flush()?;
            eprintln!("unpacked {written} references {input} -> {output}");
            Ok(())
        }
        Some("verify") => {
            let [_, input] = &args[..] else {
                return Err("usage: trace_tool verify <in.dtrz>".into());
            };
            let file = File::open(input)?;
            let summary = verify_corpus(BufReader::new(file))?;
            println!(
                "{input}: OK — {} references, {} payload bytes, checksum {:#018x}",
                summary.records, summary.payload_bytes, summary.checksum
            );
            Ok(())
        }
        _ => Err(usage.into()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            dirsim_bench::report_error("trace_tool", err.as_ref());
            ExitCode::FAILURE
        }
    }
}
