//! Command-line trace tooling: generate, convert, inspect and filter
//! multiprocessor address traces in the `DTR1` binary and text formats.
//!
//! ```text
//! trace_tool gen <scenario|spec.scn> <refs> <out.dtr>   generate a scenario trace
//! trace_tool convert <in> <out>                          binary <-> text (by extension)
//! trace_tool stats <in>                                  Table 3-style statistics
//! trace_tool strip-locks <in> <out>                      drop spin-lock test reads
//! trace_tool head <n> <in>                               print first n records as text
//! ```
//!
//! Files ending in `.txt` are treated as text, `.dtr2` as compressed
//! binary, anything else as fixed-record binary.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::process::ExitCode;

use dirsim_trace::compress::{read_compressed, write_compressed};
use dirsim_trace::filter::without_lock_tests;
use dirsim_trace::io::{read_binary, read_text, write_binary, write_text, TraceIoError};
use dirsim_trace::{MemRef, Scenario, TraceStats};

fn is_text(path: &str) -> bool {
    path.ends_with(".txt")
}

fn is_compressed(path: &str) -> bool {
    path.ends_with(".dtr2")
}

fn read_refs(path: &str) -> Result<Vec<MemRef>, TraceIoError> {
    let file = File::open(path)?;
    if is_text(path) {
        read_text(BufReader::new(file)).collect()
    } else if is_compressed(path) {
        read_compressed(BufReader::new(file)).collect()
    } else {
        read_binary(BufReader::new(file)).collect()
    }
}

fn write_refs(path: &str, refs: &[MemRef]) -> Result<u64, TraceIoError> {
    let mut out = BufWriter::new(File::create(path)?);
    let n = if is_text(path) {
        write_text(&mut out, refs.iter().copied())?
    } else if is_compressed(path) {
        write_compressed(&mut out, refs.iter().copied())?
    } else {
        write_binary(&mut out, refs.iter().copied())?
    };
    out.flush()?;
    Ok(n)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: trace_tool <gen|convert|stats|strip-locks|head> ... (see --help)";
    match args.first().map(String::as_str) {
        Some("gen") => {
            let [_, preset, refs, out] = &args[..] else {
                return Err("usage: trace_tool gen <scenario|spec.scn> <refs> <out>".into());
            };
            let trace = Scenario::resolve(preset)?;
            let n: usize = refs.parse().map_err(|_| "refs must be a number")?;
            let refs: Vec<MemRef> = trace.workload().take(n).collect();
            let written = write_refs(out, &refs)?;
            eprintln!("wrote {written} references to {out}");
            Ok(())
        }
        Some("convert") => {
            let [_, input, output] = &args[..] else {
                return Err("usage: trace_tool convert <in> <out>".into());
            };
            let refs = read_refs(input)?;
            let written = write_refs(output, &refs)?;
            eprintln!("converted {written} references {input} -> {output}");
            Ok(())
        }
        Some("stats") => {
            let [_, input] = &args[..] else {
                return Err("usage: trace_tool stats <in>".into());
            };
            let refs = read_refs(input)?;
            let stats = TraceStats::from_refs(refs);
            println!("{stats}");
            println!(
                "lock-read fraction: {:.3}; read/write ratio: {:.2}",
                stats.lock_read_fraction(),
                stats.read_write_ratio()
            );
            Ok(())
        }
        Some("strip-locks") => {
            let [_, input, output] = &args[..] else {
                return Err("usage: trace_tool strip-locks <in> <out>".into());
            };
            let refs = read_refs(input)?;
            let before = refs.len();
            let filtered: Vec<MemRef> = without_lock_tests(refs).collect();
            write_refs(output, &filtered)?;
            eprintln!(
                "dropped {} lock-test reads ({} -> {})",
                before - filtered.len(),
                before,
                filtered.len()
            );
            Ok(())
        }
        Some("head") => {
            let [_, n, input] = &args[..] else {
                return Err("usage: trace_tool head <n> <in>".into());
            };
            let n: usize = n.parse().map_err(|_| "n must be a number")?;
            let refs = read_refs(input)?;
            let mut stdout = std::io::stdout().lock();
            write_text(&mut stdout, refs.into_iter().take(n))?;
            Ok(())
        }
        _ => Err(usage.into()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            dirsim_bench::report_error("trace_tool", err.as_ref());
            ExitCode::FAILURE
        }
    }
}
