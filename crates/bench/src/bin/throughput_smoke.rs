//! CI throughput smoke test: runs the paper's extended scheme matrix
//! through each execution path and fails if the single-pass engine is
//! slower than the legacy serial path — the engine's per-reference work
//! is identical, so a slowdown means a structural regression (an extra
//! pass over the trace, a per-reference allocation), never tuning drift.
//!
//! Usage: `throughput_smoke [refs_per_trace]` (default 100 000)
//!
//! Prints one row per mode with wall time, engine steps per second
//! (references × schemes), and speedup over serial. The sharded row is
//! informational: its speedup depends on the core count of the machine,
//! so it warns rather than fails when it loses to single-pass.

use std::process::ExitCode;
use std::time::Instant;

use dirsim::{ExecutionMode, Experiment, ExperimentResults};

fn steps_of(results: &ExperimentResults) -> u64 {
    results.per_scheme.iter().map(|s| s.combined.refs).sum()
}

fn timed(exp: &Experiment, mode: ExecutionMode) -> (f64, u64) {
    let start = Instant::now();
    let results = exp.run_with(mode).expect("simulation");
    (start.elapsed().as_secs_f64(), steps_of(&results))
}

fn main() -> ExitCode {
    let refs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let exp = dirsim::paper::extended_experiment(refs);
    println!(
        "throughput smoke: {} workloads x {} schemes at {refs} refs/trace ({workers} cores)",
        exp.workload_count(),
        exp.scheme_count(),
    );

    let modes = [
        ("serial", ExecutionMode::Serial),
        ("single-pass", ExecutionMode::SinglePass),
        ("sharded", ExecutionMode::Sharded { workers }),
    ];

    // Shared-runner noise is bursty, so unpaired timings are useless: a
    // slow patch of machine can double any individual measurement. Each
    // round times all three modes back-to-back and the gate looks at
    // per-round *ratios* (adjacent measurements see the same machine
    // conditions), judging single-pass by its best round.
    const ROUNDS: usize = 5;
    exp.run_with(ExecutionMode::SinglePass).expect("warm-up");
    let mut best = [f64::INFINITY; 3];
    let mut steps = [0u64; 3];
    let mut best_ratio = 0.0f64;
    for _ in 0..ROUNDS {
        let mut round = [0.0; 3];
        for (i, &(_, mode)) in modes.iter().enumerate() {
            let (secs, n) = timed(&exp, mode);
            round[i] = secs;
            best[i] = best[i].min(secs);
            steps[i] = n;
        }
        best_ratio = best_ratio.max(round[0] / round[1]);
    }

    let mut rates = Vec::new();
    println!(
        "{:>12} {:>9} {:>14} {:>9}",
        "mode", "seconds", "steps/sec", "vs serial"
    );
    for (i, (label, _)) in modes.iter().enumerate() {
        let rate = steps[i] as f64 / best[i];
        let speedup = rates.first().map_or(1.0, |&(_, r)| rate / r);
        println!("{label:>12} {:>9.2} {rate:>14.0} {speedup:>8.2}x", best[i]);
        rates.push((label, rate));
    }

    // 10% guard band on the best paired round: a real regression slows
    // every round well past this; noise does not slow all five.
    if best_ratio < 0.90 {
        eprintln!(
            "FAIL: single-pass never reached serial throughput \
             (best round {best_ratio:.2}x serial)"
        );
        return ExitCode::FAILURE;
    }
    let (single_pass, sharded) = (rates[1].1, rates[2].1);
    if workers > 1 && sharded < single_pass {
        eprintln!(
            "warning: sharded ({sharded:.0} steps/sec) did not beat single-pass \
             ({single_pass:.0} steps/sec) on this machine"
        );
    }
    println!("OK: single-pass best round is {best_ratio:.2}x serial");
    ExitCode::SUCCESS
}
