//! CI throughput smoke test: runs the paper's extended scheme matrix
//! through each execution path and fails if the single-pass engine is
//! slower than the legacy serial path — the engine's per-reference work
//! is identical, so a slowdown means a structural regression (an extra
//! pass over the trace, a per-reference allocation), never tuning drift.
//!
//! Two rounds run back to back: the paper's **infinite**-cache model
//! (block-sharded) and a **finite** 64-set × 4-way geometry (set-sharded,
//! with real LRU replacement traffic). Each round gets the same paired
//! gate, so the finite-cache engine path is held to the same bar the
//! infinite path has been since it was parallelised.
//!
//! A second paired gate covers the staged pipeline's overlapped decode:
//! `pipelined` (one step worker plus a decode producer thread) must not
//! lose to `single-pass` (the same placement with decode inline) — the
//! stepping work is identical, so losing means the handshake itself
//! regressed, not the machine.
//!
//! A third, decode-bound round exercises corpus ingestion: a generated
//! DTR1 file (`--decode-refs`, default 10^7 references) is drained
//! through the buffered reader and through the mmap-backed zero-copy
//! source, back to back per round. Both rates are exported
//! (`buffered_decode_refs_per_sec`, `mmap_decode_refs_per_sec`, plus
//! their ratio) so `bench_gate` ratchets the decode path alongside the
//! engine; the round only hard-fails when mmap decode falls below 0.8×
//! buffered — a structural loss, since the mmap path does strictly less
//! work per record. One instrumented pipelined simulation per source
//! then records `decode_stall_seconds`, so the exported metrics show the
//! overlap the faster decode buys.
//!
//! Usage: `throughput_smoke [refs_per_trace] [--metrics-json <path>]
//! [--bench-json <path>] [--decode-refs N]` (default 100 000 references
//! per trace)
//!
//! Prints one row per mode with wall time, engine steps per second
//! (references × schemes), and speedup over serial. The sharded rows are
//! informational: their speedup depends on the core count of the machine,
//! so they warn rather than fail when they lose to single-pass.
//!
//! `--metrics-json` records the measured timings (`smoke_best_seconds`,
//! `steps_per_sec` per `{cache, mode}`, `smoke_best_ratio` and
//! `smoke_pipelined_ratio` per `{cache}`) as JSON lines after the gate's
//! measurements complete, so exporting never perturbs the timing; it then
//! runs one instrumented pipelined pass per cache model so the pipeline
//! metrics (`decode_stall_seconds`, `step_stall_seconds`,
//! `pipeline_queue_depth`, `pipeline_occupancy`) land in the same file
//! for schema validation. `--bench-json` additionally writes a one-object
//! perf-trajectory file (`BENCH_throughput.json` in CI) whose `metrics`
//! map holds one steps/sec entry per cache-model × mode pair plus the
//! paired `{cache}_pipelined_vs_inline_ratio`.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use dirsim::obs::{Json, MetricsRegistry, Recorder, RunManifest};
use dirsim::prelude::Scheme;
use dirsim::{BroadcastSimulator, ExecutionMode, Experiment, ExperimentResults, SimConfig};
use dirsim_mem::CacheGeometry;
use dirsim_trace::io::{read_binary, write_binary};
use dirsim_trace::{BorrowedChunkSource, MmapTraceSource, Scenario, TraceSource};

/// Floor on measured wall time per timed pass. Coarse clocks (or an
/// absurdly small ref count) can report ~0 elapsed seconds; rather than
/// clamping the divisor — which silently turns a too-short measurement
/// into a bogus but finite rate — the harness *calibrates* the reference
/// count upward until a probe pass exceeds this floor, so every timed
/// round is comfortably above clock granularity and no clamp is needed.
const MIN_SECS: f64 = 5e-3;

/// Upper bound on calibration doublings: 2^20 × the requested refs is
/// far past any plausible clock-granularity problem, so hitting this
/// means the clock is broken, not the workload too small.
const MAX_CALIBRATION_DOUBLINGS: u32 = 20;

/// Doubles `refs` until a single-pass probe takes at least [`MIN_SECS`].
/// Calibrating on the infinite-cache experiment (the fastest per
/// reference) guarantees the slower finite round clears the floor too.
fn calibrate_refs(mut refs: usize) -> Result<usize, dirsim::Error> {
    for _ in 0..MAX_CALIBRATION_DOUBLINGS {
        let exp = dirsim::paper::extended_experiment(refs);
        let start = Instant::now();
        exp.run_with(ExecutionMode::SinglePass)?;
        if start.elapsed().as_secs_f64() >= MIN_SECS {
            break;
        }
        refs *= 2;
    }
    Ok(refs)
}

/// Paired rounds per cache model. Shared-runner noise is bursty, so
/// unpaired timings are useless: a slow patch of machine can double any
/// individual measurement. Each round times all modes back-to-back and
/// the gates look at per-round *ratios* (adjacent measurements see the
/// same machine conditions), judging each gated mode by its best round.
const ROUNDS: usize = 5;

/// The finite-cache geometry for the finite round: small enough that the
/// paper workloads generate steady replacement traffic, large enough that
/// the run is not pure eviction churn.
const FINITE_GEOMETRY: CacheGeometry = CacheGeometry { sets: 64, ways: 4 };

const MODES: usize = 4;

/// Mode order: serial (index 0) and single-pass (index 1) form the PR 2
/// pair; single-pass (inline decode) and pipelined (index 3, overlapped
/// decode on one step worker) form the overlap pair.
const MODE_LABELS: [&str; MODES] = ["serial", "single-pass", "sharded", "pipelined"];

fn modes(workers: usize) -> [ExecutionMode; MODES] {
    [
        ExecutionMode::Serial,
        ExecutionMode::SinglePass,
        ExecutionMode::Sharded { workers },
        // One step worker: isolates the decode overlap itself, instead of
        // mixing it with sharding speedups or core-count noise.
        ExecutionMode::Pipelined { workers: 1 },
    ]
}

fn steps_of(results: &ExperimentResults) -> u64 {
    results.per_scheme.iter().map(|s| s.combined.refs).sum()
}

fn timed(exp: &Experiment, mode: ExecutionMode) -> Result<(f64, u64), dirsim::Error> {
    let start = Instant::now();
    let results = exp.run_with(mode)?;
    // No clamp: `calibrate_refs` scaled the workload past MIN_SECS, so
    // the elapsed time is genuinely non-zero.
    Ok((start.elapsed().as_secs_f64(), steps_of(&results)))
}

/// One cache model's paired measurement: best seconds and steps per mode,
/// plus the best per-round ratios the gates judge (serial / single-pass,
/// and single-pass / pipelined).
struct Round {
    best: [f64; MODES],
    steps: [u64; MODES],
    best_ratio: f64,
    best_pipelined_ratio: f64,
}

fn measure(exp: &Experiment, workers: usize) -> Result<Round, dirsim::Error> {
    // Warm-up pass: first-touch page faults and lazy allocations land
    // here instead of skewing round one.
    exp.run_with(ExecutionMode::SinglePass)?;
    let mut best = [f64::INFINITY; MODES];
    let mut steps = [0u64; MODES];
    let mut best_ratio = 0.0f64;
    let mut best_pipelined_ratio = 0.0f64;
    for _ in 0..ROUNDS {
        let mut round = [f64::INFINITY; MODES];
        for (i, &mode) in modes(workers).iter().enumerate() {
            let (secs, n) = timed(exp, mode)?;
            round[i] = secs;
            best[i] = best[i].min(secs);
            steps[i] = n;
        }
        // Calibration keeps every measurement above MIN_SECS, so the
        // ratios are finite.
        best_ratio = best_ratio.max(round[0] / round[1]);
        best_pipelined_ratio = best_pipelined_ratio.max(round[1] / round[3]);
    }
    Ok(Round {
        best,
        steps,
        best_ratio,
        best_pipelined_ratio,
    })
}

/// Prints the per-mode table for one round and returns steps/sec per mode.
fn report(label: &str, round: &Round) -> [f64; MODES] {
    println!(
        "[{label}] {:>12} {:>9} {:>14} {:>9}",
        "mode", "seconds", "steps/sec", "vs serial"
    );
    let mut rates = [0.0f64; MODES];
    for i in 0..MODES {
        rates[i] = round.steps[i] as f64 / round.best[i];
        let speedup = rates[i] / rates[0];
        println!(
            "[{label}] {:>12} {:>9.2} {:>14.0} {speedup:>8.2}x",
            MODE_LABELS[i], round.best[i], rates[i]
        );
    }
    rates
}

/// Applies the gates to one round: single-pass must reach 90% of serial
/// throughput in at least one paired round, and pipelined must reach 90%
/// of single-pass throughput in at least one paired round; sharded only
/// warns.
fn gate(label: &str, round: &Round, rates: &[f64; MODES], workers: usize) -> bool {
    // 10% guard band on the best paired round: a real regression slows
    // every round well past this; noise does not slow all five.
    if round.best_ratio < 0.90 {
        eprintln!(
            "FAIL[{label}]: single-pass never reached serial throughput \
             (best round {:.2}x serial)",
            round.best_ratio
        );
        return false;
    }
    if round.best_pipelined_ratio < 0.90 {
        eprintln!(
            "FAIL[{label}]: pipelined decode never reached inline throughput \
             (best round {:.2}x single-pass)",
            round.best_pipelined_ratio
        );
        return false;
    }
    let (single_pass, sharded) = (rates[1], rates[2]);
    if workers > 1 && sharded < single_pass {
        eprintln!(
            "warning[{label}]: sharded ({sharded:.0} steps/sec) did not beat \
             single-pass ({single_pass:.0} steps/sec) on this machine"
        );
    }
    println!(
        "OK[{label}]: single-pass best round is {:.2}x serial, \
         pipelined best round is {:.2}x single-pass",
        round.best_ratio, round.best_pipelined_ratio
    );
    true
}

/// Default size of the generated decode-round corpus: large enough that
/// the round is bound by record decode (the file no longer fits any
/// reasonable L2), small enough to generate in seconds.
const DECODE_REFS: usize = 10_000_000;

/// Floor on mmap-vs-buffered decode: the zero-copy path does strictly
/// less work per record, so falling below 0.8× buffered is structural
/// (a copy or allocation crept back in), not noise.
const DECODE_FLOOR: f64 = 0.8;

/// The decode-bound corpus round's measurements.
struct DecodeRound {
    refs: u64,
    /// Best wall seconds per path across the paired rounds.
    buffered_best: f64,
    mmap_best: f64,
    /// Total `decode_stall_seconds` from one instrumented pipelined
    /// simulation per source (evidence, not gated: the faster decode
    /// should leave the step side waiting less).
    stall_buffered: f64,
    stall_mmap: f64,
}

impl DecodeRound {
    fn buffered_rate(&self) -> f64 {
        self.refs as f64 / self.buffered_best
    }

    fn mmap_rate(&self) -> f64 {
        self.refs as f64 / self.mmap_best
    }

    fn ratio(&self) -> f64 {
        self.mmap_rate() / self.buffered_rate()
    }
}

/// Drains the whole file through the buffered reader; returns (secs, refs).
fn drain_buffered(path: &std::path::Path) -> Result<(f64, u64), Box<dyn std::error::Error>> {
    let file = std::fs::File::open(path)?;
    let mut src = read_binary(std::io::BufReader::new(file));
    let mut chunk = Vec::new();
    let mut n = 0u64;
    let start = Instant::now();
    while src.read_chunk(&mut chunk, 32_768)? > 0 {
        n += chunk.len() as u64;
    }
    Ok((start.elapsed().as_secs_f64().max(MIN_SECS), n))
}

/// Drains the whole file through the mmap source's borrowed-chunk view
/// (the zero-copy path the engine takes); returns (secs, refs).
fn drain_mmap(path: &std::path::Path) -> Result<(f64, u64), Box<dyn std::error::Error>> {
    let mut src = MmapTraceSource::open(path)?;
    let mut n = 0u64;
    let start = Instant::now();
    loop {
        let chunk = src.next_chunk(32_768)?;
        if chunk.is_empty() {
            break;
        }
        n += chunk.len() as u64;
    }
    Ok((start.elapsed().as_secs_f64().max(MIN_SECS), n))
}

/// One instrumented pipelined pass over the corpus; returns the total
/// `decode_stall_seconds` the step side accumulated.
fn pipelined_stall<S>(source: S) -> Result<f64, dirsim::Error>
where
    S: TraceSource + Send,
{
    let registry = Arc::new(MetricsRegistry::new());
    BroadcastSimulator::paper()
        .recorder(Arc::clone(&registry) as Arc<dyn Recorder>)
        .run_pipelined(&[Scheme::Wti], 4, source)?;
    Ok(registry
        .histogram_summary("decode_stall_seconds", &[])
        .map(|s| s.sum)
        .unwrap_or(0.0))
}

/// Generates the decode corpus, runs the paired buffered/mmap rounds,
/// and takes the pipelined stall evidence.
fn measure_decode(decode_refs: usize) -> Result<DecodeRound, Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join(format!("dirsim-smoke-decode-{}.dtr", std::process::id()));
    let workload = Scenario::named("pops").expect("bundled scenario");
    {
        let file = std::fs::File::create(&path)?;
        let mut w = std::io::BufWriter::new(file);
        write_binary(&mut w, workload.workload().take(decode_refs))?;
        std::io::Write::flush(&mut w)?;
    }
    // Warm-up drains: page-cache population and first-touch faults land
    // here instead of skewing round one of either path.
    drain_buffered(&path)?;
    drain_mmap(&path)?;
    let mut round = DecodeRound {
        refs: decode_refs as u64,
        buffered_best: f64::INFINITY,
        mmap_best: f64::INFINITY,
        stall_buffered: 0.0,
        stall_mmap: 0.0,
    };
    for _ in 0..ROUNDS {
        let (secs, n) = drain_buffered(&path)?;
        assert_eq!(n, round.refs, "buffered decode dropped records");
        round.buffered_best = round.buffered_best.min(secs);
        let (secs, n) = drain_mmap(&path)?;
        assert_eq!(n, round.refs, "mmap decode dropped records");
        round.mmap_best = round.mmap_best.min(secs);
    }
    round.stall_buffered = pipelined_stall(read_binary(std::io::BufReader::new(
        std::fs::File::open(&path)?,
    )))?;
    round.stall_mmap = pipelined_stall(MmapTraceSource::open(&path).map_err(dirsim::Error::from)?)?;
    std::fs::remove_file(&path).ok();
    Ok(round)
}

fn report_decode(round: &DecodeRound) -> bool {
    println!(
        "[decode] {:>12} {:>9} {:>14}",
        "source", "seconds", "refs/sec"
    );
    println!(
        "[decode] {:>12} {:>9.3} {:>14.0}",
        "buffered",
        round.buffered_best,
        round.buffered_rate()
    );
    println!(
        "[decode] {:>12} {:>9.3} {:>14.0}",
        "mmap",
        round.mmap_best,
        round.mmap_rate()
    );
    println!(
        "[decode] pipelined decode_stall_seconds: buffered {:.4}, mmap {:.4}",
        round.stall_buffered, round.stall_mmap
    );
    let ratio = round.ratio();
    if ratio < DECODE_FLOOR {
        eprintln!(
            "FAIL[decode]: mmap decode reached only {ratio:.2}x buffered \
             (floor {DECODE_FLOOR:.2}x) — the zero-copy path regressed structurally"
        );
        return false;
    }
    if ratio < 1.0 {
        eprintln!(
            "warning[decode]: mmap decode ({:.0} refs/sec) did not beat buffered \
             ({:.0} refs/sec) on this machine ({ratio:.2}x)",
            round.mmap_rate(),
            round.buffered_rate()
        );
    } else {
        println!("OK[decode]: mmap decode is {ratio:.2}x buffered");
    }
    true
}

fn run() -> Result<ExitCode, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut refs: usize = 100_000;
    let mut decode_refs: usize = DECODE_REFS;
    let mut metrics_json: Option<String> = None;
    let mut bench_json: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics-json" => {
                i += 1;
                metrics_json = Some(args.get(i).ok_or("--metrics-json requires a path")?.clone());
            }
            "--bench-json" => {
                i += 1;
                bench_json = Some(args.get(i).ok_or("--bench-json requires a path")?.clone());
            }
            "--decode-refs" => {
                i += 1;
                decode_refs = args
                    .get(i)
                    .ok_or("--decode-refs requires a number")?
                    .parse()
                    .map_err(|_| "--decode-refs requires a number")?;
            }
            other => {
                refs = other.parse().map_err(|_| {
                    format!(
                        "unknown argument {other}; usage: throughput_smoke \
                         [refs_per_trace] [--metrics-json <path>] [--bench-json <path>] \
                         [--decode-refs N]"
                    )
                })?;
            }
        }
        i += 1;
    }

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let requested = refs;
    let refs = calibrate_refs(refs)?;
    if refs != requested {
        println!(
            "calibrated refs_per_trace {requested} -> {refs} so every timed \
             pass exceeds the {MIN_SECS}s floor"
        );
    }
    let infinite = dirsim::paper::extended_experiment(refs);
    let finite = dirsim::paper::extended_experiment(refs).sim_config(
        SimConfig::builder()
            .geometry(FINITE_GEOMETRY)
            .build()
            .expect("smoke geometry is valid"),
    );
    println!(
        "throughput smoke: {} workloads x {} schemes at {refs} refs/trace \
         ({workers} cores; finite round {}x{})",
        infinite.workload_count(),
        infinite.scheme_count(),
        FINITE_GEOMETRY.sets,
        FINITE_GEOMETRY.ways,
    );

    let started = Instant::now();
    let caches = [("infinite", &infinite), ("finite", &finite)];
    let mut rounds = Vec::with_capacity(caches.len());
    for (label, exp) in &caches {
        let round = measure(exp, workers)?;
        let rates = report(label, &round);
        rounds.push((*label, round, rates));
    }
    let decode = measure_decode(decode_refs)?;

    // Export after every measurement so recording can't perturb the gate.
    if let Some(path) = &metrics_json {
        let registry = Arc::new(MetricsRegistry::new());
        for (cache, round, _) in &rounds {
            for (i, mode) in MODE_LABELS.iter().enumerate() {
                let labels = [("cache", *cache), ("mode", mode)];
                registry.gauge("smoke_best_seconds", &labels, round.best[i]);
                registry.gauge(
                    "steps_per_sec",
                    &labels,
                    round.steps[i] as f64 / round.best[i],
                );
            }
            registry.gauge("smoke_best_ratio", &[("cache", *cache)], round.best_ratio);
            registry.gauge(
                "smoke_pipelined_ratio",
                &[("cache", *cache)],
                round.best_pipelined_ratio,
            );
            // The overlap pair under its own mode labels: `inline` is the
            // single-pass placement (same stepping, decode on the calling
            // thread), `pipelined` the overlapped one.
            for (mode, idx) in [("inline", 1usize), ("pipelined", 3usize)] {
                registry.gauge(
                    "smoke_overlap_best_seconds",
                    &[("cache", *cache), ("mode", mode)],
                    round.best[idx],
                );
            }
        }
        // The corpus decode round: paired rates per source, plus the
        // stall evidence from the instrumented pipelined passes.
        for (source, rate, stall) in [
            ("buffered", decode.buffered_rate(), decode.stall_buffered),
            ("mmap", decode.mmap_rate(), decode.stall_mmap),
        ] {
            registry.gauge("decode_refs_per_sec", &[("source", source)], rate);
            registry.gauge(
                "corpus_pipelined_stall_seconds",
                &[("source", source)],
                stall,
            );
        }
        // One instrumented pipelined pass per cache model (after all the
        // timing), so the pipeline-overlap metrics land in the exported
        // file and CI schema-validates their names and shapes.
        for (_, exp) in &caches {
            (*exp)
                .clone()
                .recorder(Arc::clone(&registry) as Arc<dyn Recorder>)
                .run_with(ExecutionMode::Pipelined {
                    workers: workers.min(2),
                })?;
        }
        let manifest = RunManifest::new("throughput_smoke")
            .schemes(dirsim::paper::extended_schemes().iter().map(|s| s.name()))
            .mode("paired-rounds")
            .trace("synth:paper-workloads")
            .refs(refs as u64)
            .wall_secs(started.elapsed().as_secs_f64())
            .extra("rounds", &ROUNDS.to_string())
            .extra("workers", &workers.to_string())
            .extra(
                "finite_geometry",
                &format!("{}x{}", FINITE_GEOMETRY.sets, FINITE_GEOMETRY.ways),
            );
        dirsim::obs::write_jsonl_file(std::path::Path::new(path), &manifest, &registry)
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("metrics written to {path}");
    }

    if let Some(path) = &bench_json {
        // Perf-trajectory file: one flat metrics map per CI run, so a
        // plotting job can chart steps/sec per cache model × mode over
        // commit history.
        let mut metrics = Vec::new();
        for (cache, round, rates) in &rounds {
            for i in 0..MODES {
                let key = format!("{cache}_{}_steps_per_sec", MODE_LABELS[i].replace('-', "_"));
                metrics.push((key, dirsim::obs::json::float(rates[i])));
            }
            metrics.push((
                format!("{cache}_best_ratio"),
                dirsim::obs::json::float(round.best_ratio),
            ));
            metrics.push((
                format!("{cache}_pipelined_vs_inline_ratio"),
                dirsim::obs::json::float(round.best_pipelined_ratio),
            ));
        }
        metrics.push((
            "buffered_decode_refs_per_sec".into(),
            dirsim::obs::json::float(decode.buffered_rate()),
        ));
        metrics.push((
            "mmap_decode_refs_per_sec".into(),
            dirsim::obs::json::float(decode.mmap_rate()),
        ));
        metrics.push((
            "mmap_over_buffered_decode_ratio".into(),
            dirsim::obs::json::float(decode.ratio()),
        ));
        // Same record shape the CI trajectory archive appends to
        // BENCH_history.jsonl: commit + date identify the point on the
        // perf curve, the metrics map is what gets plotted (and gated).
        let commit = std::env::var("GITHUB_SHA")
            .or_else(|_| std::env::var("DIRSIM_COMMIT"))
            .unwrap_or_else(|_| "local".into());
        let doc = Json::Obj(vec![
            ("bench".into(), Json::Str("throughput".into())),
            ("commit".into(), Json::Str(commit)),
            ("date".into(), Json::Str(utc_date_string())),
            ("refs_per_trace".into(), Json::Int(refs as i128)),
            ("decode_refs".into(), Json::Int(decode_refs as i128)),
            ("workers".into(), Json::Int(workers as i128)),
            ("metrics".into(), Json::Obj(metrics)),
        ]);
        std::fs::write(path, doc.to_string_compact() + "\n").map_err(|e| format!("{path}: {e}"))?;
        eprintln!("perf trajectory written to {path}");
    }

    let mut ok = true;
    for (cache, round, rates) in &rounds {
        ok &= gate(cache, round, rates, workers);
    }
    ok &= report_decode(&decode);
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// UTC calendar date (`YYYY-MM-DD`) without a date-time dependency:
/// Howard Hinnant's `civil_from_days` on the epoch day count.
fn utc_date_string() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(err) => {
            dirsim_bench::report_error("throughput_smoke", err.as_ref());
            ExitCode::FAILURE
        }
    }
}
